//! End-to-end integration tests: the full synthesis pipeline —
//! generate circuit -> ALSRAC -> traditional optimization -> technology
//! mapping — across circuit families, metrics, and both cost models.

use alsrac_suite::circuits::{arith, blif, catalog, control};
use alsrac_suite::core::baseline::{liu, su};
use alsrac_suite::core::flow::{run, FlowConfig};
use alsrac_suite::map::cell::{evaluate_mapping as eval_cells, map_cells, Library};
use alsrac_suite::map::lut::{evaluate_mapping as eval_luts, map_luts};
use alsrac_suite::metrics::ErrorMetric;

fn er_config(threshold: f64) -> FlowConfig {
    FlowConfig {
        metric: ErrorMetric::ErrorRate,
        threshold,
        max_iterations: 250,
        ..FlowConfig::default()
    }
}

#[test]
fn alsrac_meets_threshold_across_families() {
    for exact in [
        arith::ripple_carry_adder(4),
        arith::wallace_multiplier(3),
        control::priority_encoder(8),
        catalog::ecc_network(8, 19),
    ] {
        let result = run(&exact, &er_config(0.02)).expect("flow");
        assert!(
            result.measured.error_rate <= 0.02 + 1e-12,
            "{}: measured {}",
            exact.name(),
            result.measured.error_rate
        );
        assert!(
            result.approx.num_ands() <= exact.num_ands(),
            "{}",
            exact.name()
        );
    }
}

#[test]
fn approximate_circuit_maps_correctly_to_luts() {
    let exact = arith::kogge_stone_adder(4);
    let result = run(&exact, &er_config(0.10)).expect("flow");
    let mapping = map_luts(&result.approx, 6);
    for p in 0..(1u64 << exact.num_inputs()) {
        let bits: Vec<bool> = (0..exact.num_inputs()).map(|i| p >> i & 1 != 0).collect();
        assert_eq!(
            eval_luts(&result.approx, &mapping, &bits),
            result.approx.evaluate(&bits),
            "LUT cover diverges at pattern {p:b}"
        );
    }
}

#[test]
fn approximate_circuit_maps_correctly_to_cells() {
    let exact = arith::ripple_carry_adder(4);
    let result = run(&exact, &er_config(0.05)).expect("flow");
    let library = Library::mcnc();
    let mapping = map_cells(&result.approx, &library);
    for p in 0..(1u64 << exact.num_inputs()) {
        let bits: Vec<bool> = (0..exact.num_inputs()).map(|i| p >> i & 1 != 0).collect();
        assert_eq!(
            eval_cells(&result.approx, &mapping, &bits),
            result.approx.evaluate(&bits),
            "cell cover diverges at pattern {p:b}"
        );
    }
}

#[test]
fn flow_output_round_trips_through_blif() {
    let exact = arith::wallace_multiplier(3);
    let result = run(&exact, &er_config(0.05)).expect("flow");
    let text = blif::write(&result.approx);
    let parsed = blif::parse(&text).expect("parse back");
    for p in (0..64u64).step_by(5) {
        let bits: Vec<bool> = (0..6).map(|i| p >> i & 1 != 0).collect();
        assert_eq!(parsed.evaluate(&bits), result.approx.evaluate(&bits));
    }
}

#[test]
fn all_three_methods_respect_the_same_budget() {
    let exact = arith::kogge_stone_adder(4);
    let threshold = 0.04;
    let a = run(&exact, &er_config(threshold)).expect("alsrac");
    let s = su::run(
        &exact,
        &su::SuConfig {
            threshold,
            max_iterations: 200,
            ..su::SuConfig::default()
        },
    )
    .expect("su");
    let l = liu::run(
        &exact,
        &liu::LiuConfig {
            threshold,
            steps: 150,
            ..liu::LiuConfig::default()
        },
    )
    .expect("liu");
    for (name, r) in [("alsrac", &a), ("su", &s), ("liu", &l)] {
        assert!(
            r.measured.error_rate <= threshold + 1e-12,
            "{name}: {}",
            r.measured.error_rate
        );
    }
}

#[test]
fn alsrac_is_competitive_with_su_on_structured_adders() {
    // The paper's headline (Table IV) is that ALSRAC saves more area than
    // Su's single-signal substitution at benchmark scale. At this test's
    // tiny scale the comparison is noisy — and our Su reimplementation is
    // *stronger* than the paper's (it ranks signals and estimates errors
    // on exhaustive patterns, which is only feasible for toy circuits) —
    // so here we only assert ALSRAC stays competitive; the paper-shape
    // comparison is the `table4` harness binary (see EXPERIMENTS.md).
    let mut alsrac_total = 0.0;
    let mut su_total = 0.0;
    for exact in [arith::carry_lookahead_adder(5), arith::kogge_stone_adder(5)] {
        for threshold in [0.01, 0.05] {
            let a = run(&exact, &er_config(threshold)).expect("alsrac");
            let s = su::run(
                &exact,
                &su::SuConfig {
                    threshold,
                    max_iterations: 250,
                    ..su::SuConfig::default()
                },
            )
            .expect("su");
            alsrac_total += a.approx.num_ands() as f64 / exact.num_ands() as f64;
            su_total += s.approx.num_ands() as f64 / exact.num_ands() as f64;
        }
    }
    assert!(
        alsrac_total <= su_total * 1.25,
        "ALSRAC ({alsrac_total:.3}) lost badly to Su ({su_total:.3})"
    );
}

#[test]
fn nmed_flow_produces_small_value_errors() {
    // Under a tight NMED budget the surviving errors must be small in
    // magnitude even if they are frequent: that is what distinguishes ED
    // metrics from ER.
    let exact = arith::ripple_carry_adder(5);
    let config = FlowConfig {
        metric: ErrorMetric::Nmed,
        threshold: 0.005,
        max_iterations: 250,
        ..FlowConfig::default()
    };
    let result = run(&exact, &config).expect("flow");
    let nmed = result.measured.nmed.expect("decodable");
    assert!(nmed <= 0.005 + 1e-12);
    if let Some(max_ed) = result.measured.max_error_distance {
        // 5-bit adder, max output 63: mean-constrained errors shouldn't
        // reach the top of the range.
        assert!(max_ed < 63, "max ED {max_ed} suspiciously large");
    }
}

#[test]
fn optimizer_is_exact_within_the_flow() {
    // Sanity: resyn2-lite inside the flow must never change the function.
    // Run the flow with optimization disabled and enabled from the same
    // seed: both must respect the threshold.
    let exact = arith::wallace_multiplier(3);
    for optimize in [false, true] {
        let config = FlowConfig {
            metric: ErrorMetric::ErrorRate,
            threshold: 0.03,
            optimize_after_apply: optimize,
            max_iterations: 150,
            seed: 5,
            ..FlowConfig::default()
        };
        let result = run(&exact, &config).expect("flow");
        assert!(
            result.measured.error_rate <= 0.03 + 1e-12,
            "optimize={optimize}"
        );
    }
}
