//! Property tests for the event-driven incremental simulation engine:
//! the scratch-arena flip propagation and the cone-local resimulation are
//! pure optimizations, bit-identical to full recomputation on arbitrary
//! circuits, arbitrary LAC applications, and at every thread count.
//!
//! Runs on the `alsrac-rt` property harness (same pattern as
//! `equivalence_props.rs`): properties generate a network *shape* and
//! build the circuit inside, so failures shrink toward smaller graphs.

use alsrac_rt::{check, pool, prop_assert_eq, u64s, usizes, Config, Gen};
use alsrac_suite::aig::{Aig, NodeId};
use alsrac_suite::circuits::random_logic::{random_network, RandomNetworkConfig};
use alsrac_suite::core::estimate::Estimator;
use alsrac_suite::core::lac::{generate_lacs, LacConfig};
use alsrac_suite::sim::{FlipInfluence, InfluenceScratch, PatternBuffer, Simulation};

fn config() -> Config {
    Config::with_cases(32)
}

/// Generator of network shapes: `(num_inputs, num_outputs, num_gates, seed)`.
fn networks() -> impl Gen<Value = (usize, usize, usize, u64)> {
    (usizes(2..9), usizes(1..5), usizes(5..70), u64s())
}

fn build(&(num_inputs, num_outputs, num_gates, seed): &(usize, usize, usize, u64)) -> Aig {
    random_network(&RandomNetworkConfig {
        num_inputs,
        num_outputs,
        num_gates,
        locality: 16,
        seed,
    })
}

/// Word-for-word comparison of two influence masks (per output and the
/// any-output union). `FlipInfluence` deliberately has no `PartialEq`; the
/// masks are its entire observable state.
fn assert_same_influence(fast: &FlipInfluence, full: &FlipInfluence) -> Result<(), String> {
    prop_assert_eq!(fast.num_outputs(), full.num_outputs());
    for po in 0..full.num_outputs() {
        prop_assert_eq!(fast.po_mask(po), full.po_mask(po));
    }
    prop_assert_eq!(fast.any_mask(), full.any_mask());
    Ok(())
}

#[test]
fn scratch_arena_influence_matches_full_cone_on_random_graphs() {
    check(
        "event-driven influence == full-cone influence",
        &config(),
        &networks(),
        |cfg| {
            let aig = build(cfg);
            let patterns = PatternBuffer::random(aig.num_inputs(), 192, cfg.3 ^ 0x9e37);
            let sim = Simulation::new(&aig, &patterns);
            let fanouts = aig.fanout_map();
            // One scratch reused across every node: stale state leaking
            // from one propagation into the next would show up here.
            let mut scratch = InfluenceScratch::new();
            for raw in 0..aig.num_nodes() {
                let node = NodeId::new(raw);
                let fast = FlipInfluence::compute_with(&aig, &sim, &fanouts, node, &mut scratch);
                let full = FlipInfluence::compute_full(&aig, &sim, &fanouts, node);
                assert_same_influence(&fast, &full)?;
            }
            Ok(())
        },
    );
}

#[test]
fn cone_local_update_matches_full_resimulation_on_random_lacs() {
    check(
        "Simulation::update == Simulation::new after LAC apply",
        &config(),
        &networks(),
        |cfg| {
            let aig = build(cfg);
            // A tiny care set keeps the care sets small enough that the
            // generator actually produces feasible candidates.
            let care_patterns = PatternBuffer::random(aig.num_inputs(), 4, cfg.3 ^ 0x51);
            let care_sim = Simulation::new(&aig, &care_patterns);
            let fanouts = aig.fanout_map();
            let lacs = generate_lacs(
                &aig,
                &care_sim,
                &care_patterns,
                &fanouts,
                &LacConfig::default(),
            );
            let est_patterns = PatternBuffer::random(aig.num_inputs(), 128, cfg.3 ^ 0xa3);
            let base = Simulation::new(&aig, &est_patterns);
            for lac in lacs.iter().take(8) {
                let Ok((rebuilt, delta)) = lac.apply_with_delta(&aig, &fanouts) else {
                    continue; // cyclic substitution: apply refuses it too
                };
                let updated = base.update(&rebuilt, &delta, &est_patterns);
                let fresh = Simulation::new(&rebuilt, &est_patterns);
                prop_assert_eq!(updated.num_words(), fresh.num_words());
                for raw in 0..rebuilt.num_nodes() {
                    let node = NodeId::new(raw);
                    prop_assert_eq!(updated.node_words(node), fresh.node_words(node));
                }
            }
            Ok(())
        },
    );
}

#[test]
fn estimation_engines_agree_at_every_thread_count() {
    // The estimator's two engines — full-TFO-cone influences and the
    // event-driven scratch arena (one scratch per pool worker) — must
    // produce identical measurements, and the scratch engine must be
    // invariant under the worker count (the ISSUE's bit-identical
    // parallel contract).
    check(
        "full-influence == scratch-arena estimate_all at 1/3/7 threads",
        &Config::with_cases(16),
        &networks(),
        |cfg| {
            let aig = build(cfg);
            let care_patterns = PatternBuffer::random(aig.num_inputs(), 4, cfg.3 ^ 0x51);
            let care_sim = Simulation::new(&aig, &care_patterns);
            let fanouts = aig.fanout_map();
            let lacs = generate_lacs(
                &aig,
                &care_sim,
                &care_patterns,
                &fanouts,
                &LacConfig::default(),
            );
            if lacs.is_empty() {
                return Ok(());
            }
            let est_patterns = PatternBuffer::random(aig.num_inputs(), 256, cfg.3 ^ 0xa3);
            let reference = pool::with_threads(1, || {
                Estimator::new(&aig, &aig, &est_patterns, &fanouts)
                    .with_full_influence()
                    .estimate_all(&lacs)
            });
            for threads in [1, 3, 7] {
                let scratch_engine = pool::with_threads(threads, || {
                    Estimator::new(&aig, &aig, &est_patterns, &fanouts).estimate_all(&lacs)
                });
                prop_assert_eq!(&reference, &scratch_engine);
            }
            Ok(())
        },
    );
}
