//! Integration tests for the interchange formats and the SAT-based
//! verification layer: AIGER/BLIF/Verilog emission of flow outputs, CEC of
//! the exact transforms at sizes beyond exhaustive reach, and statistical
//! certification of measured errors.

use alsrac_suite::circuits::{aiger, arith, blif, verilog};
use alsrac_suite::core::exact::{exact_resub_pass, ExactResubConfig};
use alsrac_suite::core::flow::{run, FlowConfig};
use alsrac_suite::metrics::ErrorMetric;
use alsrac_suite::metrics::{error_rate_upper_bound, samples_for_certification};
use alsrac_suite::sat::cec::{equivalent, CecResult};
use alsrac_suite::synth;

#[test]
fn flow_output_round_trips_through_aiger() {
    let exact = arith::wallace_multiplier(3);
    let result = run(
        &exact,
        &FlowConfig {
            metric: ErrorMetric::ErrorRate,
            threshold: 0.05,
            max_iterations: 150,
            ..FlowConfig::default()
        },
    )
    .expect("flow");
    for (label, parsed) in [
        (
            "ascii",
            aiger::parse_ascii(&aiger::write_ascii(&result.approx)).expect("aag"),
        ),
        (
            "binary",
            aiger::parse_binary(&aiger::write_binary(&result.approx)).expect("aig"),
        ),
    ] {
        for p in 0..64u64 {
            let bits: Vec<bool> = (0..6).map(|i| p >> i & 1 != 0).collect();
            assert_eq!(
                parsed.evaluate(&bits),
                result.approx.evaluate(&bits),
                "{label} pattern {p:b}"
            );
        }
    }
}

#[test]
fn cec_certifies_optimizer_beyond_exhaustive_reach() {
    // 24 inputs: exhaustive simulation is out of the question; the miter
    // is how we know resyn2-lite is still exact at this size.
    let original = arith::ripple_carry_adder(12);
    let optimized = synth::optimize(&original);
    assert_eq!(equivalent(&original, &optimized), CecResult::Equivalent);
}

#[test]
fn cec_catches_an_injected_bug() {
    let original = arith::kogge_stone_adder(6);
    let mut broken = original.clone();
    let last = broken.num_outputs() - 1;
    broken.set_output_lit(last, alsrac_suite::aig::Lit::TRUE);
    let CecResult::Counterexample(cex) = equivalent(&original, &broken) else {
        panic!("expected a counterexample");
    };
    assert_ne!(original.evaluate(&cex), broken.evaluate(&cex));
}

#[test]
fn exact_resub_then_alsrac_composes() {
    let exact = arith::kogge_stone_adder(5);
    let (lossless, _) = exact_resub_pass(&exact, &ExactResubConfig::default());
    assert_eq!(equivalent(&exact, &lossless), CecResult::Equivalent);
    let result = run(
        &lossless,
        &FlowConfig {
            metric: ErrorMetric::ErrorRate,
            threshold: 0.04,
            max_iterations: 150,
            ..FlowConfig::default()
        },
    )
    .expect("flow");
    // The budget still holds relative to the lossless stage, which is
    // function-identical to the original.
    assert!(result.measured.error_rate <= 0.04 + 1e-12);
}

#[test]
fn verilog_emission_covers_flow_output() {
    let exact = arith::ripple_carry_adder(4);
    let result = run(
        &exact,
        &FlowConfig {
            metric: ErrorMetric::ErrorRate,
            threshold: 0.05,
            max_iterations: 100,
            ..FlowConfig::default()
        },
    )
    .expect("flow");
    let v = verilog::write(&result.approx);
    assert!(v.contains("module"));
    assert_eq!(
        v.matches("assign").count(),
        result.approx.num_ands() + result.approx.num_outputs()
    );
    // And BLIF for the same circuit parses back.
    let reparsed = blif::parse(&blif::write(&result.approx)).expect("blif");
    assert_eq!(reparsed.num_outputs(), result.approx.num_outputs());
}

#[test]
fn measured_errors_carry_meaningful_confidence_bounds() {
    let exact = arith::ripple_carry_adder(4);
    let result = run(
        &exact,
        &FlowConfig {
            metric: ErrorMetric::ErrorRate,
            threshold: 0.05,
            max_iterations: 150,
            ..FlowConfig::default()
        },
    )
    .expect("flow");
    let upper = error_rate_upper_bound(&result.measured, 1.96);
    assert!(upper >= result.measured.error_rate);
    // Exhaustive measurement on 8 inputs: the bound is close to the point.
    assert!(upper - result.measured.error_rate < 0.05);
    // Certification planning: 10x tighter budget needs ~10x the samples.
    let a = samples_for_certification(0.01, 1.96);
    let b = samples_for_certification(0.001, 1.96);
    assert!(b > 8 * a && b < 12 * a);
}
