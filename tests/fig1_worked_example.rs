//! Integration test: the paper's complete worked example (Fig. 1,
//! Tables I-II, Examples 1-4) through the public API of every layer.

use alsrac_suite::aig::{Aig, Lit};
use alsrac_suite::core::care::ApproximateCareSet;
use alsrac_suite::core::lac::Lac;
use alsrac_suite::metrics::measure;
use alsrac_suite::sim::{PatternBuffer, Simulation};
use alsrac_suite::truthtable::{isop, minimize, Cube};

/// Fig. 1a from Table I: x = !a!b, y = bc, u = c|d, z = a!b | b!c, w = !c,
/// v = z ^ w.
fn fig1() -> (Aig, Lit, Lit, Lit) {
    let mut aig = Aig::new("fig1a");
    let a = aig.add_input("a");
    let b = aig.add_input("b");
    let c = aig.add_input("c");
    let d = aig.add_input("d");
    let _x = aig.and(!a, !b);
    let _y = aig.and(b, c);
    let u = aig.or(c, d);
    let anb = aig.and(a, !b);
    let bnc = aig.and(b, !c);
    let z = aig.or(anb, bnc);
    let w = !c;
    let v = aig.xor(z, w);
    aig.add_output("v", v);
    (aig, u, z, v)
}

/// Pattern index for "abcd" written MSB-first as in the paper.
fn pattern(abcd: usize) -> Vec<bool> {
    vec![abcd & 8 != 0, abcd & 4 != 0, abcd & 2 != 0, abcd & 1 != 0]
}

#[test]
fn table_i_values_match() {
    let (aig, u, z, v) = fig1();
    // Full Table I for u, z, v (the signals the example uses).
    let table = [
        // abcd, u, z, v
        (0b0000, false, false, true),
        (0b0001, true, false, true),
        (0b0010, true, false, false),
        (0b0011, true, false, false),
        (0b0100, false, true, false),
        (0b0101, true, true, false),
        (0b0110, true, false, false),
        (0b0111, true, false, false),
        (0b1000, false, true, false),
        (0b1001, true, true, false),
        (0b1010, true, true, true),
        (0b1011, true, true, true),
        (0b1100, false, true, false),
        (0b1101, true, true, false),
        (0b1110, true, false, false),
        (0b1111, true, false, false),
    ];
    let rows: Vec<Vec<bool>> = table.iter().map(|&(p, ..)| pattern(p)).collect();
    let patterns = PatternBuffer::from_rows(4, &rows);
    let sim = Simulation::new(&aig, &patterns);
    for (i, &(abcd, want_u, want_z, want_v)) in table.iter().enumerate() {
        assert_eq!(sim.lit_bit(u, i), want_u, "u at abcd={abcd:04b}");
        assert_eq!(sim.lit_bit(z, i), want_z, "z at abcd={abcd:04b}");
        assert_eq!(sim.lit_bit(v, i), want_v, "v at abcd={abcd:04b}");
    }
}

#[test]
fn full_worked_example() {
    let (aig, u, z, v) = fig1();

    // Example 2 / Theorem 1: under all 16 patterns {u, z} cannot express v.
    let all = PatternBuffer::exhaustive(4);
    let sim_all = Simulation::new(&aig, &all);
    assert!(ApproximateCareSet::harvest(&sim_all, &all, v, &[u, z]).is_none());

    // Examples 1 and 3: with the 5 shaded patterns it becomes feasible and
    // the cares at (u, z) are {00, 01, 10}.
    let rows: Vec<Vec<bool>> = [0b0000, 0b0010, 0b0011, 0b0100, 0b1000]
        .iter()
        .map(|&p| pattern(p))
        .collect();
    let five = PatternBuffer::from_rows(4, &rows);
    let sim5 = Simulation::new(&aig, &five);
    let care =
        ApproximateCareSet::harvest(&sim5, &five, v, &[u, z]).expect("feasible per Example 3");
    assert_eq!(care.num_care_patterns(), 3);
    assert!(!care.care_set().get(0b11), "uz = 11 is the don't-care");

    // Example 4 / Table II: the derived function is !u & !z (a NOR).
    let on = care.on_set();
    let cover = minimize(
        &isop(on, &on.or(&care.dont_care_set())),
        on,
        &care.dont_care_set(),
    );
    assert_eq!(cover.cubes(), &[Cube::TAUTOLOGY.with_neg(0).with_neg(1)]);

    // Applying the LAC simplifies the circuit and introduces exactly
    // 18.75% error rate under uniform inputs (3 of 16 patterns).
    let lac = Lac {
        node: v,
        divisors: vec![u, z],
        cover,
        est_cost: 1,
        est_saved: 0,
    };
    let approx = lac.apply(&aig).expect("no cycle");
    assert!(
        approx.num_ands() < aig.num_ands(),
        "Fig. 1b is smaller than Fig. 1a"
    );
    let m = measure(&aig, &approx, &all).expect("same arity");
    assert!((m.error_rate - 3.0 / 16.0).abs() < 1e-12);
}
