//! Determinism regression tests: the full ALSRAC flow is a pure function
//! of `(circuit, FlowConfig)` — in particular of `FlowConfig::seed` — and
//! distinct seeds actually change the random pattern streams.
//!
//! This pins the reproducibility contract stated in `flow.rs` ("every
//! random decision derives from it") end to end: if the PRNG, the seed
//! derivation, or the order of random draws inside the flow ever changes
//! between two builds, these assertions localize it immediately.

use alsrac_rt::{derive_indexed, derive_seed, Stream};
use alsrac_suite::circuits::catalog::{iscas_and_arith, Scale};
use alsrac_suite::core::flow::{run, FlowConfig, FlowResult};
use alsrac_suite::metrics::ErrorMetric;
use alsrac_suite::sim::PatternBuffer;

/// A small catalog circuit (the `c1908`-analogue ECC network, 8 inputs).
fn catalog_circuit() -> alsrac_suite::aig::Aig {
    iscas_and_arith(Scale::Test)
        .into_iter()
        .find(|b| b.paper_name == "c1908")
        .expect("catalog has c1908")
        .aig
}

fn flow_config(seed: u64) -> FlowConfig {
    FlowConfig {
        metric: ErrorMetric::ErrorRate,
        threshold: 0.10,
        max_iterations: 150,
        seed,
        ..FlowConfig::default()
    }
}

/// Bit-identical comparison of two flow results: the accepted-LAC history
/// (error estimates compared as raw f64 bits) and the final measurement.
fn assert_identical(a: &FlowResult, b: &FlowResult) {
    assert_eq!(a.iterations, b.iterations, "iteration counts differ");
    assert_eq!(a.applied, b.applied, "accepted-LAC counts differ");
    assert_eq!(
        a.approx.num_ands(),
        b.approx.num_ands(),
        "final sizes differ"
    );
    assert_eq!(a.history.len(), b.history.len(), "history lengths differ");
    for (i, (ra, rb)) in a.history.iter().zip(&b.history).enumerate() {
        assert_eq!(
            ra.estimated_error.to_bits(),
            rb.estimated_error.to_bits(),
            "accepted LAC {i}: estimated errors differ"
        );
        assert_eq!(ra.ands, rb.ands, "accepted LAC {i}: sizes differ");
        assert_eq!(ra.rounds, rb.rounds, "accepted LAC {i}: rounds differ");
    }
    assert_eq!(a.measured.num_patterns, b.measured.num_patterns);
    assert_eq!(
        a.measured.error_rate.to_bits(),
        b.measured.error_rate.to_bits(),
        "measured error rates differ"
    );
    assert_eq!(
        a.measured.nmed.map(f64::to_bits),
        b.measured.nmed.map(f64::to_bits)
    );
    assert_eq!(
        a.measured.mred.map(f64::to_bits),
        b.measured.mred.map(f64::to_bits)
    );
    assert_eq!(a.measured.max_error_distance, b.measured.max_error_distance);
}

#[test]
fn same_seed_gives_bit_identical_flow_runs() {
    let circuit = catalog_circuit();
    let config = flow_config(42);
    let first = run(&circuit, &config).expect("flow");
    let second = run(&circuit, &config).expect("flow");
    assert!(
        first.applied > 0,
        "flow accepted no LACs; the determinism check would be vacuous"
    );
    assert_identical(&first, &second);
}

#[test]
fn parallel_flow_runs_are_bit_identical_to_serial() {
    // The pool contract (`alsrac_rt::pool`): thread count is a throughput
    // knob, never an observable input. A flow run with the pool forced
    // serial must match runs at several worker counts bit for bit —
    // history, estimated errors, and the final measurement included.
    let circuit = catalog_circuit();
    let config = flow_config(42);
    let serial = alsrac_rt::pool::with_threads(1, || run(&circuit, &config).expect("flow"));
    assert!(
        serial.applied > 0,
        "flow accepted no LACs; the parallel-equivalence check would be vacuous"
    );
    for threads in [2, 3, 8] {
        let parallel =
            alsrac_rt::pool::with_threads(threads, || run(&circuit, &config).expect("flow"));
        assert_identical(&serial, &parallel);
    }
}

#[test]
fn ragged_measurement_blocks_are_identical_at_odd_thread_counts() {
    // `measure_sampled` splits the pattern budget into fixed-size blocks;
    // a rounds count that is not a multiple of the block size leaves a
    // ragged tail, and an odd worker count makes the block-to-thread
    // assignment non-uniform. Neither may leak into the fold: partial
    // counts are combined in block order regardless of which worker
    // produced them.
    use alsrac_suite::metrics::{measure_sampled, MEASURE_BLOCK_PATTERNS};

    let exact = catalog_circuit();
    let approx = {
        let config = flow_config(42);
        run(&exact, &config).expect("flow").approx
    };
    let rounds = MEASURE_BLOCK_PATTERNS * 4 + 513; // 5 blocks, ragged tail
    let serial = alsrac_rt::pool::with_threads(1, || {
        measure_sampled(&exact, &approx, rounds, 42).expect("measure")
    });
    assert_eq!(serial.num_patterns, rounds);
    assert!(
        serial.error_rate > 0.0,
        "approximation must actually disagree with the exact circuit"
    );
    for threads in [3, 7] {
        let parallel = alsrac_rt::pool::with_threads(threads, || {
            measure_sampled(&exact, &approx, rounds, 42).expect("measure")
        });
        assert_eq!(serial.num_patterns, parallel.num_patterns);
        assert_eq!(
            serial.error_rate.to_bits(),
            parallel.error_rate.to_bits(),
            "{threads} threads: measured error rate differs from serial"
        );
        assert_eq!(
            serial.nmed.map(f64::to_bits),
            parallel.nmed.map(f64::to_bits),
            "{threads} threads: NMED differs from serial"
        );
        assert_eq!(
            serial.mred.map(f64::to_bits),
            parallel.mred.map(f64::to_bits),
            "{threads} threads: MRED differs from serial"
        );
        assert_eq!(
            serial.max_error_distance, parallel.max_error_distance,
            "{threads} threads: max error distance differs from serial"
        );
    }
}

#[test]
fn different_seeds_give_different_pattern_streams() {
    // The flow's per-iteration care-pattern stream is keyed by the seed:
    // two seeds must disagree somewhere in the first few iterations' draws.
    let num_inputs = 8;
    let rounds = 32;
    let streams_differ = (1..4u64).any(|iteration| {
        let a = PatternBuffer::random(
            num_inputs,
            rounds,
            derive_indexed(42, Stream::Care, iteration),
        );
        let b = PatternBuffer::random(
            num_inputs,
            rounds,
            derive_indexed(43, Stream::Care, iteration),
        );
        (0..num_inputs).any(|i| a.input_words(i) != b.input_words(i))
    });
    assert!(
        streams_differ,
        "seeds 42 and 43 yield identical care streams"
    );

    // Same for the estimation and measurement sub-streams.
    for stream in [Stream::Estimation, Stream::Measurement] {
        assert_ne!(
            derive_seed(42, stream),
            derive_seed(43, stream),
            "{stream:?} sub-seed collides across root seeds"
        );
    }
}

#[test]
fn different_seeds_can_change_the_flow_trace() {
    // Not every seed pair diverges on a small circuit, but across a few
    // seeds the accepted-LAC traces must not all be bit-identical (that
    // would mean the seed is ignored).
    let circuit = catalog_circuit();
    let traces: Vec<Vec<u64>> = (1..5u64)
        .map(|seed| {
            run(&circuit, &flow_config(seed))
                .expect("flow")
                .history
                .iter()
                .map(|r| r.estimated_error.to_bits() ^ r.ands as u64)
                .collect()
        })
        .collect();
    assert!(
        traces.windows(2).any(|w| w[0] != w[1]),
        "four different seeds produced identical traces"
    );
}

#[test]
fn incremental_flow_is_bit_identical_to_full_resimulation() {
    // `FlowConfig::full_resim` switches the estimation stage between the
    // full-sweep baseline (re-simulate both circuits every iteration,
    // full-TFO-cone influences) and the incremental engine (carried
    // simulation with cone-local updates, event-driven scratch-arena
    // influences). Both are exact, so the whole flow — history, accepted
    // LACs, and the final measurement — must be bit-identical, at every
    // thread count.
    let circuit = catalog_circuit();
    let full_config = FlowConfig {
        full_resim: true,
        ..flow_config(42)
    };
    let incremental_config = flow_config(42);
    assert!(!incremental_config.full_resim, "incremental is the default");

    let reference = alsrac_rt::pool::with_threads(1, || run(&circuit, &full_config).expect("flow"));
    assert!(
        reference.applied > 0,
        "flow accepted no LACs; the engine-equivalence check would be vacuous"
    );
    for threads in [1, 3, 7] {
        let incremental = alsrac_rt::pool::with_threads(threads, || {
            run(&circuit, &incremental_config).expect("flow")
        });
        assert_identical(&reference, &incremental);
    }
}
