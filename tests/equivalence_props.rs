//! Property-based tests: functional-equivalence invariants of the exact
//! transformations (optimizer passes, mappers, BLIF) over random circuits,
//! and interval invariants of the two-level minimization engine.

use alsrac_suite::aig::Aig;
use alsrac_suite::circuits::{blif, random_logic::{random_network, RandomNetworkConfig}};
use alsrac_suite::map::cell::{evaluate_mapping as eval_cells, map_cells, Library};
use alsrac_suite::map::lut::{evaluate_mapping as eval_luts, map_luts};
use alsrac_suite::synth;
use alsrac_suite::truthtable::{isop, minimize, sop_to_aig, Tt};
use proptest::prelude::*;

/// Exhaustive equivalence check for small-input circuits.
fn equivalent(a: &Aig, b: &Aig) -> bool {
    assert!(a.num_inputs() <= 10);
    (0..1u64 << a.num_inputs()).all(|p| {
        let bits: Vec<bool> = (0..a.num_inputs()).map(|i| p >> i & 1 != 0).collect();
        a.evaluate(&bits) == b.evaluate(&bits)
    })
}

fn arb_network() -> impl Strategy<Value = Aig> {
    (2usize..9, 1usize..5, 5usize..90, any::<u64>()).prop_map(
        |(num_inputs, num_outputs, num_gates, seed)| {
            random_network(&RandomNetworkConfig {
                num_inputs,
                num_outputs,
                num_gates,
                locality: 16,
                seed,
            })
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn optimize_preserves_function(aig in arb_network()) {
        let optimized = synth::optimize(&aig);
        prop_assert!(equivalent(&aig, &optimized));
        prop_assert!(optimized.num_ands() <= aig.num_ands());
    }

    #[test]
    fn balance_never_deepens(aig in arb_network()) {
        let balanced = synth::balance(&aig);
        prop_assert!(equivalent(&aig, &balanced));
        prop_assert!(balanced.depth() <= aig.depth());
    }

    #[test]
    fn lut_cover_implements_the_circuit(aig in arb_network()) {
        let mapping = map_luts(&aig, 4);
        for p in 0..1u64 << aig.num_inputs() {
            let bits: Vec<bool> = (0..aig.num_inputs()).map(|i| p >> i & 1 != 0).collect();
            prop_assert_eq!(eval_luts(&aig, &mapping, &bits), aig.evaluate(&bits));
        }
    }

    #[test]
    fn cell_cover_implements_the_circuit(aig in arb_network()) {
        let library = Library::mcnc();
        let mapping = map_cells(&aig, &library);
        for p in 0..1u64 << aig.num_inputs() {
            let bits: Vec<bool> = (0..aig.num_inputs()).map(|i| p >> i & 1 != 0).collect();
            prop_assert_eq!(eval_cells(&aig, &mapping, &bits), aig.evaluate(&bits));
        }
    }

    #[test]
    fn blif_round_trip_is_identity(aig in arb_network()) {
        let text = blif::write(&aig);
        let parsed = blif::parse(&text).expect("own output parses");
        prop_assert!(equivalent(&aig, &parsed));
    }

    #[test]
    fn isop_respects_interval(on_bits in any::<u64>(), dc_bits in any::<u64>()) {
        let on = Tt::from_bits(6, on_bits & !dc_bits);
        let dc = Tt::from_bits(6, dc_bits & !(on_bits & !dc_bits));
        let upper = on.or(&dc);
        let cover = isop(&on, &upper);
        let f = cover.to_tt(6);
        prop_assert!(on.and(&f.not()).is_const0(), "misses on-set");
        prop_assert!(f.and(&upper.not()).is_const0(), "hits off-set");

        let minimized = minimize(&cover, &on, &dc);
        let g = minimized.to_tt(6);
        prop_assert!(on.and(&g.not()).is_const0());
        prop_assert!(g.and(&upper.not()).is_const0());
        prop_assert!(minimized.num_cubes() <= cover.num_cubes());
    }

    #[test]
    fn sop_to_aig_builds_the_cover(bits in any::<u64>()) {
        let f = Tt::from_bits(6, bits);
        let cover = isop(&f, &f);
        let mut aig = Aig::new("t");
        let inputs = aig.add_inputs("x", 6);
        let root = sop_to_aig(&mut aig, &cover, &inputs);
        aig.add_output("y", root);
        for p in 0..64usize {
            let pattern: Vec<bool> = (0..6).map(|i| p >> i & 1 != 0).collect();
            prop_assert_eq!(aig.evaluate(&pattern)[0], f.get(p));
        }
    }

    #[test]
    fn cleaned_is_idempotent_and_equivalent(aig in arb_network()) {
        let once = aig.cleaned();
        let twice = once.cleaned();
        prop_assert!(equivalent(&aig, &once));
        prop_assert_eq!(once.num_ands(), twice.num_ands());
    }
}
