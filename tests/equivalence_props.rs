//! Property-based tests: functional-equivalence invariants of the exact
//! transformations (optimizer passes, mappers, BLIF) over random circuits,
//! and interval invariants of the two-level minimization engine.
//!
//! Runs on the `alsrac-rt` property harness. Circuit-valued properties
//! generate a [`RandomNetworkConfig`] (sizes + seed) and build the network
//! inside the property, so failures shrink toward smaller circuits.

use alsrac_rt::{check, prop_assert, prop_assert_eq, u64s, usizes, Config, Gen};
use alsrac_suite::aig::Aig;
use alsrac_suite::circuits::{
    blif,
    random_logic::{random_network, RandomNetworkConfig},
};
use alsrac_suite::map::cell::{evaluate_mapping as eval_cells, map_cells, Library};
use alsrac_suite::map::lut::{evaluate_mapping as eval_luts, map_luts};
use alsrac_suite::synth;
use alsrac_suite::truthtable::{isop, minimize, sop_to_aig, Tt};

/// The proptest suite ran 48 cases per property; keep that budget.
fn config() -> Config {
    Config::with_cases(48)
}

/// Generator of network shapes: `(num_inputs, num_outputs, num_gates, seed)`.
fn networks() -> impl Gen<Value = (usize, usize, usize, u64)> {
    (usizes(2..9), usizes(1..5), usizes(5..90), u64s())
}

fn build(&(num_inputs, num_outputs, num_gates, seed): &(usize, usize, usize, u64)) -> Aig {
    random_network(&RandomNetworkConfig {
        num_inputs,
        num_outputs,
        num_gates,
        locality: 16,
        seed,
    })
}

/// Exhaustive equivalence check for small-input circuits.
fn equivalent(a: &Aig, b: &Aig) -> bool {
    assert!(a.num_inputs() <= 10);
    (0..1u64 << a.num_inputs()).all(|p| {
        let bits: Vec<bool> = (0..a.num_inputs()).map(|i| p >> i & 1 != 0).collect();
        a.evaluate(&bits) == b.evaluate(&bits)
    })
}

#[test]
fn optimize_preserves_function() {
    check(
        "optimize preserves function",
        &config(),
        &networks(),
        |cfg| {
            let aig = build(cfg);
            let optimized = synth::optimize(&aig);
            prop_assert!(equivalent(&aig, &optimized), "function changed");
            prop_assert!(
                optimized.num_ands() <= aig.num_ands(),
                "optimizer grew the circuit"
            );
            Ok(())
        },
    );
}

#[test]
fn balance_never_deepens() {
    check("balance never deepens", &config(), &networks(), |cfg| {
        let aig = build(cfg);
        let balanced = synth::balance(&aig);
        prop_assert!(equivalent(&aig, &balanced), "function changed");
        prop_assert!(
            balanced.depth() <= aig.depth(),
            "balance deepened the circuit"
        );
        Ok(())
    });
}

#[test]
fn lut_cover_implements_the_circuit() {
    check(
        "lut cover implements the circuit",
        &config(),
        &networks(),
        |cfg| {
            let aig = build(cfg);
            let mapping = map_luts(&aig, 4);
            for p in 0..1u64 << aig.num_inputs() {
                let bits: Vec<bool> = (0..aig.num_inputs()).map(|i| p >> i & 1 != 0).collect();
                prop_assert_eq!(eval_luts(&aig, &mapping, &bits), aig.evaluate(&bits));
            }
            Ok(())
        },
    );
}

#[test]
fn cell_cover_implements_the_circuit() {
    let library = Library::mcnc();
    check(
        "cell cover implements the circuit",
        &config(),
        &networks(),
        |cfg| {
            let aig = build(cfg);
            let mapping = map_cells(&aig, &library);
            for p in 0..1u64 << aig.num_inputs() {
                let bits: Vec<bool> = (0..aig.num_inputs()).map(|i| p >> i & 1 != 0).collect();
                prop_assert_eq!(eval_cells(&aig, &mapping, &bits), aig.evaluate(&bits));
            }
            Ok(())
        },
    );
}

#[test]
fn blif_round_trip_is_identity() {
    check(
        "blif round trip is identity",
        &config(),
        &networks(),
        |cfg| {
            let aig = build(cfg);
            let text = blif::write(&aig);
            let parsed = match blif::parse(&text) {
                Ok(parsed) => parsed,
                Err(e) => return Err(format!("own output failed to parse: {e}")),
            };
            prop_assert!(equivalent(&aig, &parsed), "round trip changed the function");
            Ok(())
        },
    );
}

#[test]
fn isop_respects_interval() {
    check(
        "isop respects interval",
        &config(),
        &(u64s(), u64s()),
        |&(on_bits, dc_bits)| {
            let on = Tt::from_bits(6, on_bits & !dc_bits);
            let dc = Tt::from_bits(6, dc_bits & !(on_bits & !dc_bits));
            let upper = on.or(&dc);
            let cover = isop(&on, &upper);
            let f = cover.to_tt(6);
            prop_assert!(on.and(&f.not()).is_const0(), "misses on-set");
            prop_assert!(f.and(&upper.not()).is_const0(), "hits off-set");

            let minimized = minimize(&cover, &on, &dc);
            let g = minimized.to_tt(6);
            prop_assert!(on.and(&g.not()).is_const0(), "minimized misses on-set");
            prop_assert!(g.and(&upper.not()).is_const0(), "minimized hits off-set");
            prop_assert!(
                minimized.num_cubes() <= cover.num_cubes(),
                "minimization grew the cover"
            );
            Ok(())
        },
    );
}

#[test]
fn sop_to_aig_builds_the_cover() {
    check("sop_to_aig builds the cover", &config(), &u64s(), |&bits| {
        let f = Tt::from_bits(6, bits);
        let cover = isop(&f, &f);
        let mut aig = Aig::new("t");
        let inputs = aig.add_inputs("x", 6);
        let root = sop_to_aig(&mut aig, &cover, &inputs);
        aig.add_output("y", root);
        for p in 0..64usize {
            let pattern: Vec<bool> = (0..6).map(|i| p >> i & 1 != 0).collect();
            prop_assert_eq!(aig.evaluate(&pattern)[0], f.get(p));
        }
        Ok(())
    });
}

#[test]
fn cleaned_is_idempotent_and_equivalent() {
    check(
        "cleaned is idempotent and equivalent",
        &config(),
        &networks(),
        |cfg| {
            let aig = build(cfg);
            let once = aig.cleaned();
            let twice = once.cleaned();
            prop_assert!(equivalent(&aig, &once), "cleanup changed the function");
            prop_assert_eq!(once.num_ands(), twice.num_ands());
            Ok(())
        },
    );
}
