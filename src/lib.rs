//! Umbrella crate for the ALSRAC reproduction workspace.
//!
//! This crate exists to host the workspace-level integration tests
//! (`tests/`) and runnable examples (`examples/`). It re-exports the member
//! crates so examples can use a single dependency:
//!
//! ```
//! use alsrac_suite::aig::Aig;
//!
//! let mut g = Aig::new("demo");
//! let a = g.add_input("a");
//! g.add_output("y", !a);
//! assert_eq!(g.evaluate(&[false]), vec![true]);
//! ```

pub use alsrac as core;
pub use alsrac_aig as aig;
pub use alsrac_circuits as circuits;
pub use alsrac_map as map;
pub use alsrac_metrics as metrics;
pub use alsrac_rt as rt;
pub use alsrac_sat as sat;
pub use alsrac_sim as sim;
pub use alsrac_synth as synth;
pub use alsrac_truthtable as truthtable;
