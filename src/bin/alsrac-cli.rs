//! `alsrac-cli` — run the ALSRAC flow on a circuit file from the command
//! line.
//!
//! ```text
//! alsrac-cli --input adder.blif --metric er --threshold 0.01 --output approx.blif
//! alsrac-cli --bench rca32 --metric nmed --threshold 0.0005 --map lut6
//! alsrac-cli --bench ks32 --metric wce --threshold 4 --deadline 30 --sat-conflicts 100000
//! ```
//!
//! Input formats: BLIF (`.blif`), ASCII AIGER (`.aag`), binary AIGER
//! (`.aig`), or a named generated benchmark via `--bench`. The output
//! format follows the output file extension.
//!
//! # Budgets and interruption
//!
//! `--deadline SECS` bounds the wall clock and `--sat-conflicts` /
//! `--sat-propagations` cap each SAT certification query (capped queries
//! degrade the certificate instead of hanging the run). Ctrl-C (SIGINT)
//! trips the flow's cancel token cooperatively: the run stops at the next
//! iteration boundary, writes its loop state to the `--checkpoint` path,
//! flushes the trace, prints the best circuit found so far, and exits
//! with status 130. A later invocation with `--resume PATH` (same
//! circuit, seed, metric, and threshold) continues from that state and
//! produces a result bit-identical to a never-interrupted run.

use std::error::Error;
use std::path::Path;
use std::process::ExitCode;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use alsrac_suite::aig::Aig;
use alsrac_suite::circuits::{aiger, blif, catalog};
use alsrac_suite::core::baseline::{liu, su};
use alsrac_suite::core::checkpoint::Checkpoint;
use alsrac_suite::core::flow::{self, run, FlowConfig, FlowOutcome};
use alsrac_suite::core::serve::{self, CircuitSource, ExitReason, ServeOptions};
use alsrac_suite::map::cell::{map_cells, Library};
use alsrac_suite::map::lut::map_luts;
use alsrac_suite::metrics::{CertStatus, ErrorMetric};
use alsrac_suite::rt::budget::{Budget, CancelToken};

struct Args {
    input: Option<String>,
    bench: Option<String>,
    output: Option<String>,
    metric: ErrorMetric,
    threshold: f64,
    seed: u64,
    method: String,
    map: Option<String>,
    measure_rounds: usize,
    deadline: Option<f64>,
    sat_conflicts: Option<u64>,
    sat_propagations: Option<u64>,
    checkpoint: String,
    resume: Option<String>,
    serve: bool,
    socket: Option<String>,
    workers: Option<usize>,
}

const USAGE: &str = "\
usage: alsrac-cli [options]
  --input FILE        input circuit (.blif, .aag, .aig)
  --bench NAME        use a generated benchmark (e.g. rca32, voter) instead
  --output FILE       write the approximate circuit (.blif, .aag, .aig)
  --metric er|nmed|mred|wce   error metric (default er)
  --threshold X       error budget (default 0.01; an absolute maximum
                      error distance when --metric wce)
  --method alsrac|su|liu  synthesis method (default alsrac)
  --map lut6|cells    also report mapped cost
  --seed N            RNG seed (default 1)
  --rounds N          Monte-Carlo measurement rounds (default 100000)
  --deadline SECS     stop after this much wall time, checkpointing
  --sat-conflicts N   cap each SAT certification query at N conflicts
  --sat-propagations N  cap each SAT query at N literal propagations
  --checkpoint FILE   where an interrupted run saves its state
                      (default alsrac_checkpoint.json)
  --resume FILE       continue a previously interrupted run from FILE
                      (requires the same circuit, seed, metric, threshold)
  --serve             run as a JSONL job daemon on stdin/stdout instead of
                      a single flow (requests in, responses and streamed
                      trace records out, one JSON object per line)
  --socket PATH       with --serve: listen on a Unix socket at PATH and
                      serve one connection at a time instead of stdio
  --workers N         with --serve: concurrent job workers (default: the
                      pool thread count, i.e. ALSRAC_THREADS or the CPU count)

Ctrl-C checkpoints the run to the --checkpoint path and exits 130.
In --serve mode, Ctrl-C checkpoints running jobs, cancels queued ones,
emits the final shutdown record, and exits 130.
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        input: None,
        bench: None,
        output: None,
        metric: ErrorMetric::ErrorRate,
        threshold: 0.01,
        seed: 1,
        method: "alsrac".to_string(),
        map: None,
        measure_rounds: 100_000,
        deadline: None,
        sat_conflicts: None,
        sat_propagations: None,
        checkpoint: "alsrac_checkpoint.json".to_string(),
        resume: None,
        serve: false,
        socket: None,
        workers: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = || iter.next().ok_or(format!("{flag} needs a value"));
        match flag.as_str() {
            "--input" => args.input = Some(value()?),
            "--bench" => args.bench = Some(value()?),
            "--output" => args.output = Some(value()?),
            "--metric" => {
                args.metric = match value()?.as_str() {
                    "er" => ErrorMetric::ErrorRate,
                    "nmed" => ErrorMetric::Nmed,
                    "mred" => ErrorMetric::Mred,
                    "wce" => ErrorMetric::Wce,
                    other => return Err(format!("unknown metric {other}")),
                }
            }
            "--threshold" => {
                args.threshold = value()?.parse().map_err(|e| format!("threshold: {e}"))?
            }
            "--seed" => args.seed = value()?.parse().map_err(|e| format!("seed: {e}"))?,
            "--rounds" => {
                args.measure_rounds = value()?.parse().map_err(|e| format!("rounds: {e}"))?
            }
            "--method" => args.method = value()?,
            "--map" => args.map = Some(value()?),
            "--deadline" => {
                let secs: f64 = value()?.parse().map_err(|e| format!("deadline: {e}"))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err(format!("deadline must be a positive number, got {secs}"));
                }
                args.deadline = Some(secs);
            }
            "--sat-conflicts" => {
                args.sat_conflicts = Some(
                    value()?
                        .parse()
                        .map_err(|e| format!("sat-conflicts: {e}"))?,
                )
            }
            "--sat-propagations" => {
                args.sat_propagations = Some(
                    value()?
                        .parse()
                        .map_err(|e| format!("sat-propagations: {e}"))?,
                )
            }
            "--checkpoint" => args.checkpoint = value()?,
            "--resume" => args.resume = Some(value()?),
            "--serve" => args.serve = true,
            "--socket" => args.socket = Some(value()?),
            "--workers" => {
                let n: usize = value()?.parse().map_err(|e| format!("workers: {e}"))?;
                if n == 0 {
                    return Err("workers must be at least 1".to_string());
                }
                args.workers = Some(n);
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.serve {
        if args.input.is_some() || args.bench.is_some() {
            return Err("--serve takes circuits via submit requests, not --input/--bench".into());
        }
        if args.output.is_some() || args.resume.is_some() {
            return Err("--output/--resume do not apply in --serve mode".to_string());
        }
        return Ok(args);
    }
    if args.socket.is_some() || args.workers.is_some() {
        return Err("--socket/--workers require --serve".to_string());
    }
    if args.input.is_none() == args.bench.is_none() {
        return Err("exactly one of --input or --bench is required".to_string());
    }
    if args.method != "alsrac" {
        let budgeted = args.deadline.is_some()
            || args.sat_conflicts.is_some()
            || args.sat_propagations.is_some()
            || args.resume.is_some();
        if budgeted {
            return Err(format!(
                "--deadline/--sat-conflicts/--sat-propagations/--resume require \
                 --method alsrac, not {:?}",
                args.method
            ));
        }
    }
    Ok(args)
}

fn load(args: &Args) -> Result<Aig, Box<dyn Error>> {
    if let Some(name) = &args.bench {
        return catalog::by_name(name, catalog::Scale::Paper)
            .ok_or_else(|| format!("unknown benchmark {name:?}").into());
    }
    let path = args.input.as_deref().expect("validated");
    let ext = Path::new(path)
        .extension()
        .and_then(|e| e.to_str())
        .unwrap_or("");
    match ext {
        "blif" => Ok(blif::parse(&std::fs::read_to_string(path)?)?),
        "aag" => Ok(aiger::parse_ascii(&std::fs::read_to_string(path)?)?),
        "aig" => Ok(aiger::parse_binary(&std::fs::read(path)?)?),
        other => Err(format!("unsupported input extension {other:?}").into()),
    }
}

fn save(path: &str, aig: &Aig) -> Result<(), Box<dyn Error>> {
    let ext = Path::new(path)
        .extension()
        .and_then(|e| e.to_str())
        .unwrap_or("");
    match ext {
        "blif" => std::fs::write(path, blif::write(aig))?,
        "aag" => std::fs::write(path, aiger::write_ascii(aig))?,
        "aig" => std::fs::write(path, aiger::write_binary(aig))?,
        other => return Err(format!("unsupported output extension {other:?}").into()),
    }
    Ok(())
}

/// The token the SIGINT handler trips. Installed once before the flow
/// starts; the handler only does an atomic store, which is
/// async-signal-safe.
static SIGINT_CANCEL: OnceLock<CancelToken> = OnceLock::new();

extern "C" fn on_sigint(_signum: i32) {
    if let Some(token) = SIGINT_CANCEL.get() {
        token.trip();
    }
}

/// Installs `on_sigint` as the SIGINT disposition via libc `signal(2)`
/// (no signal-handling crate in this dependency-free workspace). Returns
/// the token the handler trips.
fn install_sigint_handler() -> CancelToken {
    const SIGINT: i32 = 2;
    unsafe extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    let token = SIGINT_CANCEL.get_or_init(CancelToken::new).clone();
    unsafe {
        signal(SIGINT, on_sigint as extern "C" fn(i32) as usize);
    }
    token
}

/// Builds the circuit resolver the daemon's shared catalog uses: named
/// circuits come from the bundled generators (at either scale, with the
/// large scale-study multipliers also reachable by name), inline text
/// goes through the BLIF/AIGER parsers.
fn serve_resolver() -> Box<serve::Resolver> {
    Box::new(|source: &CircuitSource| match source {
        CircuitSource::Named { name, scale } => {
            let scale = match scale.as_str() {
                "paper" => catalog::Scale::Paper,
                _ => catalog::Scale::Test,
            };
            catalog::by_name(name, scale)
                .or_else(|| {
                    catalog::scale_benchmarks()
                        .into_iter()
                        .find(|b| b.paper_name == *name)
                        .map(|b| b.aig)
                })
                .ok_or_else(|| format!("unknown benchmark {name:?}"))
        }
        CircuitSource::Blif(text) => blif::parse(text).map_err(|e| e.to_string()),
        CircuitSource::Aag(text) => aiger::parse_ascii(text).map_err(|e| e.to_string()),
    })
}

/// Runs the daemon over stdio or a Unix socket until shutdown. Returns
/// exit code 130 when SIGINT stopped the session (mirroring the
/// single-flow checkpoint path).
fn run_serve(args: &Args) -> Result<ExitCode, Box<dyn Error>> {
    let stop = install_sigint_handler();
    let catalog = Arc::new(serve::Catalog::new(serve_resolver()));
    let mut options = ServeOptions::default();
    if let Some(n) = args.workers {
        options.workers = n;
    }
    let reason = match &args.socket {
        Some(path) => serve_socket(path, &catalog, &options, &stop)?,
        None => {
            eprintln!(
                "alsrac-cli: serving JSONL on stdin/stdout ({} workers)",
                options.workers
            );
            let reader = std::io::BufReader::new(std::io::stdin());
            serve::serve(reader, std::io::stdout(), catalog, &options, Some(stop)).reason
        }
    };
    Ok(match reason {
        ExitReason::StopRequested => ExitCode::from(130),
        _ => ExitCode::SUCCESS,
    })
}

/// Accepts connections on a Unix socket one at a time, running a serve
/// session per connection, until a client sends `shutdown` or SIGINT
/// arrives. A client hanging up (EOF) just ends its session; the daemon
/// keeps listening.
fn serve_socket(
    path: &str,
    catalog: &Arc<serve::Catalog>,
    options: &ServeOptions,
    stop: &CancelToken,
) -> Result<ExitReason, Box<dyn Error>> {
    use std::os::unix::net::UnixListener;

    // A stale socket file from a crashed daemon would make bind fail.
    if std::fs::metadata(path).is_ok() {
        std::fs::remove_file(path).map_err(|e| format!("cannot replace socket {path}: {e}"))?;
    }
    let listener =
        UnixListener::bind(path).map_err(|e| format!("cannot bind socket {path}: {e}"))?;
    // Non-blocking accept so SIGINT is noticed between connections too.
    listener.set_nonblocking(true)?;
    eprintln!(
        "alsrac-cli: serving JSONL on {path} ({} workers)",
        options.workers
    );
    let reason = loop {
        if stop.is_tripped() {
            break ExitReason::StopRequested;
        }
        match listener.accept() {
            Ok((stream, _addr)) => {
                stream.set_nonblocking(false)?;
                let writer = stream.try_clone()?;
                let reader = std::io::BufReader::new(stream);
                let summary = serve::serve(
                    reader,
                    writer,
                    Arc::clone(catalog),
                    options,
                    Some(stop.clone()),
                );
                match summary.reason {
                    // EOF just means this client hung up; wait for the next.
                    ExitReason::InputClosed => continue,
                    other => break other,
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => return Err(format!("accept on {path} failed: {e}").into()),
        }
    };
    let _ = std::fs::remove_file(path);
    Ok(reason)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match real_main(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn real_main(args: &Args) -> Result<ExitCode, Box<dyn Error>> {
    if args.serve {
        // The daemon owns the trace sink (streamed records ARE the
        // protocol), so ALSRAC_TRACE does not apply here.
        return run_serve(args);
    }
    if let Some(path) = alsrac_suite::rt::trace::init_from_env()? {
        eprintln!("tracing to {path} (ALSRAC_TRACE)");
    }
    let exact = load(args)?;
    eprintln!("loaded: {exact:?}");

    let result = match args.method.as_str() {
        "alsrac" => {
            let mut budget = Budget::unlimited().with_cancel(install_sigint_handler());
            if let Some(secs) = args.deadline {
                budget = budget.with_deadline_after(Duration::from_secs_f64(secs));
            }
            if let Some(n) = args.sat_conflicts {
                budget = budget.with_sat_conflicts(n);
            }
            if let Some(n) = args.sat_propagations {
                budget = budget.with_sat_propagations(n);
            }
            let config = FlowConfig {
                metric: args.metric,
                threshold: args.threshold,
                seed: args.seed,
                measure_rounds: args.measure_rounds,
                budget,
                ..FlowConfig::default()
            };
            match &args.resume {
                Some(path) => {
                    let text = std::fs::read_to_string(path)
                        .map_err(|e| format!("cannot read checkpoint {path}: {e}"))?;
                    let checkpoint = Checkpoint::parse(&text)?;
                    eprintln!(
                        "resuming from {path}: {} iterations done, {} applied",
                        checkpoint.iterations, checkpoint.applied
                    );
                    flow::resume(&exact, &config, checkpoint)?
                }
                None => run(&exact, &config)?,
            }
        }
        "su" => su::run(
            &exact,
            &su::SuConfig {
                metric: args.metric,
                threshold: args.threshold,
                seed: args.seed,
                measure_rounds: args.measure_rounds,
                ..su::SuConfig::default()
            },
        )?,
        "liu" => liu::run(
            &exact,
            &liu::LiuConfig {
                metric: args.metric,
                threshold: args.threshold,
                seed: args.seed,
                measure_rounds: args.measure_rounds,
                ..liu::LiuConfig::default()
            },
        )?,
        other => return Err(format!("unknown method {other:?}").into()),
    };

    if let FlowOutcome::Interrupted { reason } = &result.outcome {
        eprintln!("interrupted: {reason}");
    }
    println!(
        "{} -> {} AND nodes ({:.2}%), {} changes applied{}",
        exact.num_ands(),
        result.approx.num_ands(),
        result.approx.num_ands() as f64 / exact.num_ands().max(1) as f64 * 100.0,
        result.applied,
        if result.outcome.is_completed() {
            ""
        } else {
            " (best so far)"
        },
    );
    println!(
        "measured: ER = {:.6}  NMED = {}  MRED = {}",
        result.measured.error_rate,
        result
            .measured
            .nmed
            .map_or("n/a".to_string(), |v| format!("{v:.8}")),
        result
            .measured
            .mred
            .map_or("n/a".to_string(), |v| format!("{v:.8}")),
    );

    if let Some(cert) = &result.certificate {
        let qualifier = match &cert.status {
            CertStatus::Degraded { reason } => format!("DEGRADED: {reason}; sampled value"),
            CertStatus::Certified if cert.exact => "exact".to_string(),
            CertStatus::Certified => format!(
                "within {:.0}% w.p. {:.0}%",
                cert.epsilon * 100.0,
                (1.0 - cert.delta) * 100.0
            ),
        };
        println!(
            "certified: {} = {} ({qualifier}, {} SAT queries)",
            cert.metric, cert.value, cert.sat_queries,
        );
    }

    match args.map.as_deref() {
        Some("lut6") => {
            let base = map_luts(&exact, 6);
            let approx = map_luts(&result.approx, 6);
            println!(
                "6-LUT: {} -> {} LUTs, depth {} -> {}",
                base.num_luts(),
                approx.num_luts(),
                base.depth(),
                approx.depth()
            );
        }
        Some("cells") => {
            let lib = Library::mcnc();
            let base = map_cells(&exact, &lib);
            let approx = map_cells(&result.approx, &lib);
            println!(
                "cells: area {:.1} -> {:.1}, delay {:.1} -> {:.1}",
                base.area, approx.area, base.delay, approx.delay
            );
        }
        Some(other) => return Err(format!("unknown mapper {other:?}").into()),
        None => {}
    }

    if let Some(path) = &args.output {
        save(path, &result.approx)?;
        eprintln!("wrote {path}");
    }
    // No-ops unless ALSRAC_TRACE installed a sink above.
    alsrac_suite::rt::trace::emit_totals();
    alsrac_suite::rt::trace::flush();

    if let Some(checkpoint) = &result.checkpoint {
        std::fs::write(&args.checkpoint, checkpoint.to_json() + "\n")
            .map_err(|e| format!("cannot write checkpoint {}: {e}", args.checkpoint))?;
        eprintln!(
            "checkpoint written to {}; continue with --resume {}",
            args.checkpoint, args.checkpoint
        );
        // Conventional exit status for SIGINT-terminated processes; also
        // used for deadline expiry so wrappers treat both as "stopped
        // early, partial result saved".
        return Ok(ExitCode::from(130));
    }
    Ok(ExitCode::SUCCESS)
}
