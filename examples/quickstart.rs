//! Quickstart: approximate an 8-bit Kogge-Stone adder under a 2%
//! error-rate budget.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use alsrac_suite::circuits::arith;
use alsrac_suite::core::flow::{run, FlowConfig};
use alsrac_suite::map::cell::{map_cells, Library};
use alsrac_suite::metrics::ErrorMetric;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. An exact circuit: 8-bit Kogge-Stone adder (16 inputs, 9 outputs).
    let exact = arith::kogge_stone_adder(8);
    println!("exact:  {exact:?}");

    // 2. Run ALSRAC with an error-rate threshold of 2%.
    let config = FlowConfig {
        metric: ErrorMetric::ErrorRate,
        threshold: 0.02,
        seed: 1,
        ..FlowConfig::default()
    };
    let result = run(&exact, &config)?;
    println!("approx: {:?}", result.approx);
    println!(
        "applied {} LACs over {} iterations",
        result.applied, result.iterations
    );
    println!(
        "measured error rate: {:.4}% (threshold 2%)",
        result.measured.error_rate * 100.0
    );

    // 3. Map both circuits to standard cells and compare.
    let library = Library::mcnc();
    let base = map_cells(&exact, &library);
    let approx = map_cells(&result.approx, &library);
    println!(
        "area:  {:.1} -> {:.1}  (ratio {:.2}%)",
        base.area,
        approx.area,
        approx.area / base.area * 100.0
    );
    println!(
        "delay: {:.1} -> {:.1}  (ratio {:.2}%)",
        base.delay,
        approx.delay,
        approx.delay / base.delay * 100.0
    );
    Ok(())
}
