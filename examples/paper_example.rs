//! The paper's worked example (Fig. 1, Tables I–II, Examples 1–4),
//! reproduced end to end.
//!
//! ```text
//! cargo run --release --example paper_example
//! ```

use alsrac_suite::aig::Aig;
use alsrac_suite::core::care::ApproximateCareSet;
use alsrac_suite::core::lac::Lac;
use alsrac_suite::metrics::measure;
use alsrac_suite::sim::{PatternBuffer, Simulation};
use alsrac_suite::truthtable::{isop, minimize};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Fig. 1a, reconstructed from the node value table (Table I):
    //   x = !a!b, y = bc, u = c|d, z = a!b | b!c, w = !c, v = z ^ w.
    let mut aig = Aig::new("fig1a");
    let a = aig.add_input("a");
    let b = aig.add_input("b");
    let c = aig.add_input("c");
    let d = aig.add_input("d");
    let _x = aig.and(!a, !b);
    let _y = aig.and(b, c);
    let u = aig.or(c, d);
    let anb = aig.and(a, !b);
    let bnc = aig.and(b, !c);
    let z = aig.or(anb, bnc);
    let w = !c;
    let v = aig.xor(z, w);
    aig.add_output("v", v);
    println!("Fig. 1a circuit: {aig:?}");

    // Example 1: simulate the 5 shaded PI patterns abcd in
    // {0000, 0010, 0011, 0100, 1000}.
    let rows = vec![
        vec![false, false, false, false],
        vec![false, false, true, false],
        vec![false, false, true, true],
        vec![false, true, false, false],
        vec![true, false, false, false],
    ];
    let patterns = PatternBuffer::from_rows(4, &rows);
    let sim = Simulation::new(&aig, &patterns);

    // Examples 2-3: {u, z} is infeasible under all 16 patterns but feasible
    // under the 5 sampled ones.
    let all = PatternBuffer::exhaustive(4);
    let sim_all = Simulation::new(&aig, &all);
    assert!(
        ApproximateCareSet::harvest(&sim_all, &all, v, &[u, z]).is_none(),
        "Example 2: accurate resubstitution is impossible"
    );
    let care = ApproximateCareSet::harvest(&sim, &patterns, v, &[u, z])
        .expect("Example 3: approximate resubstitution is possible");
    println!(
        "approximate cares of v at (u, z): {} patterns: {:?} (dc: {:?})",
        care.num_care_patterns(),
        care.care_set(),
        care.dont_care_set()
    );

    // Example 4: the ISOP over the care truth table is !u & !z — a NOR.
    let on = care.on_set();
    let cover = minimize(
        &isop(on, &on.or(&care.dont_care_set())),
        on,
        &care.dont_care_set(),
    );
    println!("resubstitution function: v^ = {cover:?}  (x0 = u, x1 = z)");

    // Apply the LAC and measure: 3 of 16 patterns err -> ER = 18.75%.
    let lac = Lac {
        node: v,
        divisors: vec![u, z],
        cover,
        est_cost: 1,
        est_saved: 0,
    };
    let approx = lac.apply(&aig).expect("no cycle");
    println!("approximate circuit: {approx:?}");
    let m = measure(&aig, &approx, &all)?;
    println!(
        "error rate under uniform inputs: {:.2}% (paper: 18.75%)",
        m.error_rate * 100.0
    );
    assert!((m.error_rate - 0.1875).abs() < 1e-12);
    Ok(())
}
