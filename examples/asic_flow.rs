//! ASIC flow: approximate a Wallace multiplier under an NMED budget,
//! map to standard cells, and export BLIF (the Table V scenario).
//!
//! ```text
//! cargo run --release --example asic_flow
//! ```

use alsrac_suite::circuits::{arith, blif};
use alsrac_suite::core::flow::{run, FlowConfig};
use alsrac_suite::map::cell::{map_cells, Library};
use alsrac_suite::metrics::ErrorMetric;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let exact = arith::wallace_multiplier(6);
    println!("exact multiplier: {exact:?}");

    // NMED threshold of 0.1%: errors are small relative to the 12-bit
    // output range, the regime of Table V.
    let config = FlowConfig {
        metric: ErrorMetric::Nmed,
        threshold: 0.001,
        seed: 2,
        ..FlowConfig::default()
    };
    let result = run(&exact, &config)?;
    println!(
        "approx: {:?}  (applied {} LACs, NMED = {:.5}%)",
        result.approx,
        result.applied,
        result.measured.nmed.unwrap_or(f64::NAN) * 100.0
    );
    println!(
        "max error distance: {} of {}",
        result.measured.max_error_distance.unwrap_or(0),
        (1u64 << exact.num_outputs()) - 1
    );

    let library = Library::mcnc();
    let base = map_cells(&exact, &library);
    let mapped = map_cells(&result.approx, &library);
    println!(
        "cell area {:.1} -> {:.1} ({:.2}%), delay {:.1} -> {:.1} ({:.2}%)",
        base.area,
        mapped.area,
        mapped.area / base.area * 100.0,
        base.delay,
        mapped.delay,
        mapped.delay / base.delay * 100.0,
    );
    // Cell histogram of the approximate design.
    let mut counts = std::collections::BTreeMap::new();
    for cell in &mapped.cells {
        *counts.entry(cell.gate.clone()).or_insert(0usize) += 1;
    }
    println!("cells: {counts:?}");

    // Interchange: write the approximate AIG as BLIF.
    let text = blif::write(&result.approx);
    let out = std::env::temp_dir().join("alsrac_approx_mult.blif");
    std::fs::write(&out, &text)?;
    println!("wrote {} bytes of BLIF to {}", text.len(), out.display());
    // Round-trip sanity.
    let reparsed = blif::parse(&text)?;
    assert_eq!(reparsed.num_outputs(), exact.num_outputs());
    Ok(())
}
