//! FPGA flow: approximate control logic under an error-rate budget and map
//! to 6-input LUTs (the Table VI scenario).
//!
//! ```text
//! cargo run --release --example fpga_flow
//! ```

use alsrac_suite::circuits::control;
use alsrac_suite::core::flow::{run, FlowConfig};
use alsrac_suite::map::lut::{evaluate_mapping, map_luts};
use alsrac_suite::metrics::ErrorMetric;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let exact = control::priority_encoder(12);
    println!("exact priority encoder: {exact:?}");

    let config = FlowConfig {
        metric: ErrorMetric::ErrorRate,
        threshold: 0.01, // the paper's Table VI threshold
        seed: 3,
        ..FlowConfig::default()
    };
    let result = run(&exact, &config)?;
    println!(
        "approx: {:?}  (ER = {:.3}%)",
        result.approx,
        result.measured.error_rate * 100.0
    );

    let base = map_luts(&exact, 6);
    let mapped = map_luts(&result.approx, 6);
    println!(
        "LUTs {} -> {} ({:.2}%), depth {} -> {} ({:.2}%)",
        base.num_luts(),
        mapped.num_luts(),
        mapped.num_luts() as f64 / base.num_luts() as f64 * 100.0,
        base.depth(),
        mapped.depth(),
        f64::from(mapped.depth()) / f64::from(base.depth()) * 100.0,
    );

    // The LUT cover implements exactly the approximate circuit: check a few
    // patterns through the mapped network.
    for p in [0usize, 1, 5, 100, 4095] {
        let bits: Vec<bool> = (0..exact.num_inputs()).map(|i| p >> i & 1 != 0).collect();
        assert_eq!(
            evaluate_mapping(&result.approx, &mapped, &bits),
            result.approx.evaluate(&bits),
            "LUT cover must match the approximate circuit"
        );
    }
    println!("LUT cover verified against the approximate AIG");
    Ok(())
}
