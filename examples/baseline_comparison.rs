//! Three-way comparison on one circuit: ALSRAC vs Su's substitution method
//! vs Liu's stochastic method, all at the same error-rate budget.
//!
//! ```text
//! cargo run --release --example baseline_comparison
//! ```

use alsrac_suite::circuits::arith;
use alsrac_suite::core::baseline::{liu, su};
use alsrac_suite::core::flow;
use alsrac_suite::map::cell::{map_cells, Library};
use alsrac_suite::metrics::ErrorMetric;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let exact = arith::kogge_stone_adder(8);
    let threshold = 0.03;
    let library = Library::mcnc();
    let base = map_cells(&exact, &library);
    println!(
        "exact: {exact:?}  area {:.1}  delay {:.1}\nthreshold: ER <= {:.1}%\n",
        base.area,
        base.delay,
        threshold * 100.0
    );

    let alsrac = flow::run(
        &exact,
        &flow::FlowConfig {
            metric: ErrorMetric::ErrorRate,
            threshold,
            seed: 7,
            ..flow::FlowConfig::default()
        },
    )?;
    let su = su::run(
        &exact,
        &su::SuConfig {
            metric: ErrorMetric::ErrorRate,
            threshold,
            seed: 7,
            ..su::SuConfig::default()
        },
    )?;
    let liu = liu::run(
        &exact,
        &liu::LiuConfig {
            metric: ErrorMetric::ErrorRate,
            threshold,
            steps: 250,
            seed: 7,
            ..liu::LiuConfig::default()
        },
    )?;

    println!(
        "{:<8} {:>8} {:>8} {:>10} {:>8}",
        "method", "area", "delay", "ER", "changes"
    );
    for (name, result) in [("ALSRAC", &alsrac), ("Su", &su), ("Liu", &liu)] {
        let mapped = map_cells(&result.approx, &library);
        println!(
            "{:<8} {:>7.2}% {:>7.2}% {:>9.3}% {:>8}",
            name,
            mapped.area / base.area * 100.0,
            mapped.delay / base.delay * 100.0,
            result.measured.error_rate * 100.0,
            result.applied,
        );
    }
    Ok(())
}
