//! Exact vs approximate resubstitution — the paper's §I argument, live.
//!
//! First a zero-error SAT-based resubstitution pass (the machinery of
//! Mishchenko et al. [14]/[18]) squeezes what it can without changing the
//! function, verified by combinational equivalence checking. Then ALSRAC
//! spends an error budget on top and the circuit shrinks much further —
//! with the runtime of both stages printed for the scalability contrast.
//!
//! ```text
//! cargo run --release --example exact_vs_approx
//! ```

use std::time::Instant;

use alsrac_suite::circuits::arith;
use alsrac_suite::core::exact::{exact_resub_pass, ExactResubConfig};
use alsrac_suite::core::flow::{run, FlowConfig};
use alsrac_suite::metrics::{wilson_interval, ErrorMetric};
use alsrac_suite::sat::cec::{equivalent, CecResult};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let exact = arith::kogge_stone_adder(8);
    println!("original: {exact:?}");

    // Stage 1: exact resubstitution (zero error, SAT-powered).
    let start = Instant::now();
    let (lossless, stats) = exact_resub_pass(&exact, &ExactResubConfig::default());
    let exact_time = start.elapsed();
    println!(
        "exact resubstitution + sweep: {} -> {} ands in {:.2?} \
         ({} nodes examined, {} SAT queries, {} applied)",
        exact.num_ands(),
        lossless.num_ands(),
        exact_time,
        stats.examined,
        stats.sat_queries,
        stats.applied,
    );
    match equivalent(&exact, &lossless) {
        CecResult::Equivalent => println!("CEC: lossless stage verified equivalent"),
        CecResult::Counterexample(cex) => panic!("exact stage changed the function: {cex:?}"),
    }

    // Stage 2: ALSRAC on top, spending a 3% error-rate budget.
    let start = Instant::now();
    let result = run(
        &lossless,
        &FlowConfig {
            metric: ErrorMetric::ErrorRate,
            threshold: 0.03,
            seed: 11,
            ..FlowConfig::default()
        },
    )?;
    let approx_time = start.elapsed();
    println!(
        "ALSRAC (ER <= 3%): {} -> {} ands in {:.2?} ({} LACs)",
        lossless.num_ands(),
        result.approx.num_ands(),
        approx_time,
        result.applied,
    );

    // Statistical certification of the measured error.
    let errors = (result.measured.error_rate * result.measured.num_patterns as f64) as u64;
    let (lo, hi) = wilson_interval(errors, result.measured.num_patterns as u64, 1.96);
    println!(
        "measured ER = {:.4}% over {} patterns (95% CI: {:.4}%..{:.4}%)",
        result.measured.error_rate * 100.0,
        result.measured.num_patterns,
        lo * 100.0,
        hi * 100.0,
    );
    Ok(())
}
