#!/usr/bin/env bash
# Tier-1 verification gate, fully offline (the build environment cannot
# fetch crates; the workspace is hermetic by policy — see DESIGN.md).
#
# Usage: scripts/ci.sh [step]
#
# Every step runs under a timing harness: the script prints a per-step
# wall-time summary on exit and, on failure, names the step that failed.
# All smoke gates share ONE `cargo build --release --offline --workspace`
# (run lazily by the first gate that needs it), so invoking `all` builds
# the release binaries exactly once.
#
# Steps (default `all` runs every one in order):
#   fmt     cargo fmt --check
#   clippy  cargo clippy with warnings denied
#   build   release build of the whole workspace (shared by every gate)
#   test    test suite at the default thread pool, then pinned to
#           ALSRAC_THREADS=1 (serial) and ALSRAC_THREADS=3 (odd worker
#           count, so non-divisible work splits are exercised)
#   smoke   telemetry gate: a seeded flow run under ALSRAC_TRACE must
#           produce schema-valid JSONL that matches the flow's returned
#           stats bit for bit, and the disabled-trace overhead on a hot
#           loop must stay within 2% (see `report --smoke|--overhead`)
#   bench-smoke
#           incremental-engine gate: `bench_sim --smoke` runs the flow on
#           a small circuit under both simulation engines and asserts the
#           results bit-identical, `sim_words_saved > 0`, strictly fewer
#           node-words than the full-sweep baseline, and per-circuit
#           engine-attributed `speedup >= 1.0`; the run's ALSRAC_TRACE
#           output (including the influence_quenched_nodes counter) must
#           validate under `report`
#   window-smoke
#           windowed-resubstitution gate: `bench_window --smoke` runs the
#           flow on every bundled Test-scale circuit with windowing on and
#           off and asserts the results bit-identical with live window
#           counters; also runs the scale-circuit generator self-checks
#   cert-smoke
#           certification gate: `bench_cert --smoke` certifies the exact
#           error rate of every bundled circuit's optimized output (the
#           binary asserts agreement with an independent Monte-Carlo
#           sample within the Wilson bound) and the WCE-constrained flow's
#           certified bound; the artifact is validated by `report --cert`
#           and must be bit-identical between ALSRAC_THREADS=1 and 3 apart
#           from the recorded "threads" field
#   fault-smoke
#           robustness gate: the fault-injection property suite sweeps
#           seeded cancel faults over two bundled circuits and asserts
#           every interrupted run checkpoints and resumes bit-identically
#           to the uninterrupted run, SAT starvation degrades certificates
#           instead of hanging, and a failing trace sink changes nothing;
#           run at ALSRAC_THREADS=1 and 3 (the suite additionally pins
#           1/3/7 workers in-process)
#   serve-smoke
#           daemon gate: `bench_serve --smoke` runs three concurrent jobs
#           through an in-process daemon at ALSRAC_THREADS=1 and 3 and
#           asserts every streamed run_end bit-identical to a direct
#           `flow::run` at the same seed, a malformed request line yields
#           a structured error naming its line number without killing the
#           daemon, and cancelling an in-flight job yields an interrupted
#           record whose checkpoint `flow::resume` completes from; then a
#           scripted transcript is piped through the real `alsrac-cli
#           --serve` binary — including a repeated identical submit that
#           must come back `cache_hit` from the result cache — and the
#           captured session (responses plus job-tagged flow records)
#           must be a schema-valid trace.
#           `report --serve` validates both fresh artifacts and the
#           committed BENCH_serve.json
set -euo pipefail
cd "$(dirname "$0")/.."

step="${1:-all}"

# --------------------------------------------------------------------
# Harness: per-step timing, fail-fast step naming, shared temp files,
# and the one shared release build.

STEP_NAMES=()
STEP_SECS=()
CURRENT_STEP=""
TMP_FILES=()
RELEASE_BUILT=0

on_exit() {
    status=$?
    rm -f ${TMP_FILES[@]+"${TMP_FILES[@]}"}
    if [[ ${#STEP_NAMES[@]} -gt 0 ]]; then
        echo
        echo "step timing:"
        for i in "${!STEP_NAMES[@]}"; do
            printf '  %-14s %4ss\n' "${STEP_NAMES[$i]}" "${STEP_SECS[$i]}"
        done
    fi
    if [[ $status -ne 0 ]]; then
        echo "CI FAILED in step '${CURRENT_STEP:-<setup>}' (exit $status)." >&2
    fi
    exit "$status"
}
trap on_exit EXIT

run_step() {
    local name="$1"
    shift
    CURRENT_STEP="$name"
    local start=$SECONDS
    "$@"
    STEP_NAMES+=("$name")
    STEP_SECS+=($((SECONDS - start)))
    CURRENT_STEP=""
}

tmpfile() {
    local f
    f="$(mktemp -t "$1")"
    TMP_FILES+=("$f")
    echo "$f"
}

# Every gate binary comes out of this one workspace build; the first
# caller pays for it, the rest reuse it.
ensure_release_build() {
    if [[ $RELEASE_BUILT -eq 0 ]]; then
        echo "==> cargo build --release --offline --workspace (shared)"
        cargo build --release --offline --workspace
        RELEASE_BUILT=1
    fi
}

# --------------------------------------------------------------------
# Steps

run_fmt() {
    echo "==> cargo fmt --check"
    cargo fmt --all -- --check
}

run_clippy() {
    echo "==> cargo clippy (deny warnings)"
    cargo clippy --workspace --all-targets --offline -- -D warnings
}

run_build() {
    ensure_release_build
}

run_test() {
    echo "==> cargo test -q --offline (default thread pool)"
    cargo test -q --offline

    # The pool promises thread count is invisible to results: the whole
    # suite must also pass with the pool pinned serial and pinned to an
    # odd worker count via the env knob.
    echo "==> cargo test -q --offline (ALSRAC_THREADS=1)"
    ALSRAC_THREADS=1 cargo test -q --offline

    echo "==> cargo test -q --offline (ALSRAC_THREADS=3)"
    ALSRAC_THREADS=3 cargo test -q --offline
}

run_smoke() {
    ensure_release_build

    echo "==> trace smoke gate (schema + bit-exactness)"
    smoke_trace="$(tmpfile alsrac_smoke_XXXXXX.jsonl)"
    ALSRAC_TRACE="$smoke_trace" target/release/report --smoke

    echo "==> disabled-trace overhead gate (<= 2%)"
    target/release/report --overhead
}

run_bench_smoke() {
    ensure_release_build

    echo "==> incremental simulation gate (bit-exact + words saved + speedup)"
    bench_json="$(tmpfile alsrac_bench_sim_XXXXXX.json)"
    bench_trace="$(tmpfile alsrac_bench_sim_XXXXXX.jsonl)"
    # bench_sim asserts: flow output bit-identical between the full-sweep
    # and incremental engines (repeated at 1/3/7 workers by the test
    # suite), sim_words_saved > 0, strictly fewer node-words simulated
    # incrementally, and engine-attributed wall speedup >= 1.0 after
    # bounded remeasurement.
    ALSRAC_TRACE="$bench_trace" target/release/bench_sim --smoke "$bench_json"
    grep -q '"sim_words_saved": \?0[,}]' "$bench_json" && {
        echo "bench-smoke: sim_words_saved is zero" >&2
        exit 1
    }
    # Belt and braces on top of the binary's own assert: a per-circuit
    # "speedup" below 1.0 serializes as "0.xxx" ("flow_speedup" is
    # informational and deliberately not matched).
    grep -q '"speedup": \?0\.' "$bench_json" && {
        echo "bench-smoke: an engine speedup fell below 1.0" >&2
        exit 1
    }
    # The run's trace — flow records from both engines plus the totals
    # records carrying sim_node_words/influence_words/sim_words_saved/
    # influence_quenched_nodes — must be schema-valid counters included.
    target/release/report "$bench_trace" >/dev/null
    echo "bench-smoke gate passed."
}

run_window_smoke() {
    ensure_release_build

    echo "==> scale-circuit generator self-checks"
    cargo test -q --offline -p alsrac-circuits -- multiply_accumulate scale_suite

    echo "==> windowed resubstitution gate (bit-exact + live counters)"
    window_json="$(tmpfile alsrac_bench_window_XXXXXX.json)"
    # bench_window --smoke asserts: flow output bit-identical between the
    # windowed and whole-circuit paths on every bundled circuit, and
    # window_extracted > 0 on each windowed run.
    target/release/bench_window --smoke "$window_json"
    grep -q '"window_extracted": \?0[,}]' "$window_json" && {
        echo "window-smoke: window_extracted is zero" >&2
        exit 1
    }
    echo "window-smoke gate passed."
}

run_cert_smoke() {
    ensure_release_build

    echo "==> certification gate (Wilson agreement + thread determinism)"
    cert_t1="$(tmpfile alsrac_bench_cert1_XXXXXX.json)"
    cert_t3="$(tmpfile alsrac_bench_cert3_XXXXXX.json)"
    # bench_cert --smoke asserts: every certified error rate agrees with an
    # independent sampled estimate within the Wilson interval, and every
    # WCE-constrained flow result is certified at or below its bound.
    ALSRAC_THREADS=1 target/release/bench_cert --smoke "$cert_t1"
    ALSRAC_THREADS=3 target/release/bench_cert --smoke "$cert_t3"
    target/release/report --cert "$cert_t1"
    # Certification is SAT-backed and sampling is block-seeded, so the
    # artifact must not depend on the worker count — only the recorded
    # "threads" field itself may differ.
    if ! diff <(sed 's/"threads":[0-9]*/"threads":0/' "$cert_t1") \
        <(sed 's/"threads":[0-9]*/"threads":0/' "$cert_t3"); then
        echo "cert-smoke: artifact differs between 1 and 3 threads" >&2
        exit 1
    fi
    echo "cert-smoke gate passed."
}

run_fault_smoke() {
    echo "==> fault-injection gate (checkpoint/resume bit-identity)"
    # The suite arms process-global fault plans, so it runs in its own
    # test binary; both pinned pool sizes must reproduce the same bits
    # (the suite also pins 1/3/7 workers in-process via with_threads).
    ALSRAC_THREADS=1 cargo test -q --offline -p alsrac --test fault_injection
    ALSRAC_THREADS=3 cargo test -q --offline -p alsrac --test fault_injection
    echo "fault-smoke gate passed."
}

run_serve_smoke() {
    ensure_release_build

    echo "==> daemon gate (bit-identity + cancel/resume, 1 and 3 workers)"
    serve_t1="$(tmpfile alsrac_bench_serve1_XXXXXX.json)"
    serve_t3="$(tmpfile alsrac_bench_serve3_XXXXXX.json)"
    # bench_serve --smoke asserts in-process: every streamed run_end
    # bit-identical to a direct flow::run at the same seed, a malformed
    # line rejected by line number without killing the daemon, and an
    # in-flight cancel interrupted with a checkpoint flow::resume
    # completes from.
    ALSRAC_THREADS=1 target/release/bench_serve --smoke "$serve_t1"
    ALSRAC_THREADS=3 target/release/bench_serve --smoke "$serve_t3"
    target/release/report --serve "$serve_t1"
    target/release/report --serve "$serve_t3"

    echo "==> committed throughput artifact still validates"
    target/release/report --serve BENCH_serve.json

    echo "==> end-to-end transcript through the real daemon binary"
    session="$(tmpfile alsrac_serve_session_XXXXXX.jsonl)"
    printf '%s\n' \
        '{"op":"submit","circuit":"cla32","metric":"er","threshold":0.05,"seed":1,"max_iterations":5,"measure_rounds":2000}' \
        'this is not a request' \
        '{"op":"status"}' \
        '{"op":"submit","circuit":"cla32","metric":"er","threshold":0.05,"seed":1,"max_iterations":5,"measure_rounds":2000}' \
        '{"op":"shutdown","mode":"drain"}' \
        | target/release/alsrac-cli --serve --workers 1 2>/dev/null >"$session"
    check() {
        grep -q "$1" "$session" || {
            echo "serve-smoke: captured session lacks $2" >&2
            exit 1
        }
    }
    check '"type":"response","op":"submit","ok":true,"job_id":1' "the submit ack"
    check '"type":"run_end".*"job_id":1' "the job-tagged run_end"
    check '"type":"error","line":2,' "the line-numbered parse error"
    check '"type":"job_done","job_id":1,"outcome":"completed"' "the terminal job record"
    # The second, identical submit must be served from the result cache:
    # its terminal record carries cache_hit and the session totals count it.
    check '"type":"job_done","job_id":2,.*"cache_hit":true' "the cache-served job record"
    check '"type":"shutdown","reason":"shutdown_request"' "the final shutdown record"
    # The captured session — responses interleaved with job-tagged flow
    # records — must itself be a schema-valid trace file.
    session_summary="$(tmpfile alsrac_serve_summary_XXXXXX.json)"
    target/release/report "$session" --summary "$session_summary" >/dev/null
    echo "serve-smoke gate passed."
}

case "$step" in
fmt) run_step fmt run_fmt ;;
clippy) run_step clippy run_clippy ;;
build) run_step build run_build ;;
test) run_step test run_test ;;
smoke) run_step smoke run_smoke ;;
bench-smoke) run_step bench-smoke run_bench_smoke ;;
window-smoke) run_step window-smoke run_window_smoke ;;
cert-smoke) run_step cert-smoke run_cert_smoke ;;
fault-smoke) run_step fault-smoke run_fault_smoke ;;
serve-smoke) run_step serve-smoke run_serve_smoke ;;
all)
    run_step fmt run_fmt
    run_step clippy run_clippy
    run_step build run_build
    run_step test run_test
    run_step smoke run_smoke
    run_step bench-smoke run_bench_smoke
    run_step window-smoke run_window_smoke
    run_step cert-smoke run_cert_smoke
    run_step fault-smoke run_fault_smoke
    run_step serve-smoke run_serve_smoke
    ;;
*)
    echo "unknown step '$step' (expected fmt|clippy|build|test|smoke|bench-smoke|window-smoke|cert-smoke|fault-smoke|serve-smoke|all)" >&2
    exit 2
    ;;
esac

echo "CI green ($step)."
