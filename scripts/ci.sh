#!/usr/bin/env bash
# Tier-1 verification gate, fully offline (the build environment cannot
# fetch crates; the workspace is hermetic by policy — see DESIGN.md).
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline"
cargo test -q --offline

echo "CI green."
