#!/usr/bin/env bash
# Tier-1 verification gate, fully offline (the build environment cannot
# fetch crates; the workspace is hermetic by policy — see DESIGN.md).
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline (default thread pool)"
cargo test -q --offline

# The pool promises thread count is invisible to results: the whole suite
# must also pass with the pool pinned serial via the env knob.
echo "==> cargo test -q --offline (ALSRAC_THREADS=1)"
ALSRAC_THREADS=1 cargo test -q --offline

echo "CI green."
