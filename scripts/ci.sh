#!/usr/bin/env bash
# Tier-1 verification gate, fully offline (the build environment cannot
# fetch crates; the workspace is hermetic by policy — see DESIGN.md).
#
# Usage: scripts/ci.sh [step]
#
# Steps (default `all` runs every one in order):
#   fmt     cargo fmt --check
#   clippy  cargo clippy with warnings denied
#   build   release build of the whole workspace
#   test    test suite at the default thread pool, then pinned to
#           ALSRAC_THREADS=1 (serial) and ALSRAC_THREADS=3 (odd worker
#           count, so non-divisible work splits are exercised)
#   smoke   telemetry gate: a seeded flow run under ALSRAC_TRACE must
#           produce schema-valid JSONL that matches the flow's returned
#           stats bit for bit, and the disabled-trace overhead on a hot
#           loop must stay within 2% (see `report --smoke|--overhead`)
#   bench-smoke
#           incremental-engine gate: `bench_sim --smoke` runs the flow on
#           a small circuit under both simulation engines and asserts the
#           results bit-identical, `sim_words_saved > 0`, and strictly
#           fewer node-words than the full-sweep baseline
#   window-smoke
#           windowed-resubstitution gate: `bench_window --smoke` runs the
#           flow on every bundled Test-scale circuit with windowing on and
#           off and asserts the results bit-identical with live window
#           counters; also runs the scale-circuit generator self-checks
#   cert-smoke
#           certification gate: `bench_cert --smoke` certifies the exact
#           error rate of every bundled circuit's optimized output (the
#           binary asserts agreement with an independent Monte-Carlo
#           sample within the Wilson bound) and the WCE-constrained flow's
#           certified bound; the artifact is validated by `report --cert`
#           and must be bit-identical between ALSRAC_THREADS=1 and 3 apart
#           from the recorded "threads" field
#   fault-smoke
#           robustness gate: the fault-injection property suite sweeps
#           seeded cancel faults over two bundled circuits and asserts
#           every interrupted run checkpoints and resumes bit-identically
#           to the uninterrupted run, SAT starvation degrades certificates
#           instead of hanging, and a failing trace sink changes nothing;
#           run at ALSRAC_THREADS=1 and 3 (the suite additionally pins
#           1/3/7 workers in-process)
set -euo pipefail
cd "$(dirname "$0")/.."

step="${1:-all}"

run_fmt() {
    echo "==> cargo fmt --check"
    cargo fmt --all -- --check
}

run_clippy() {
    echo "==> cargo clippy (deny warnings)"
    cargo clippy --workspace --all-targets --offline -- -D warnings
}

run_build() {
    echo "==> cargo build --release --offline"
    cargo build --release --offline
}

run_test() {
    echo "==> cargo test -q --offline (default thread pool)"
    cargo test -q --offline

    # The pool promises thread count is invisible to results: the whole
    # suite must also pass with the pool pinned serial and pinned to an
    # odd worker count via the env knob.
    echo "==> cargo test -q --offline (ALSRAC_THREADS=1)"
    ALSRAC_THREADS=1 cargo test -q --offline

    echo "==> cargo test -q --offline (ALSRAC_THREADS=3)"
    ALSRAC_THREADS=3 cargo test -q --offline
}

run_smoke() {
    # `report` is built by the build step; build it here too so the smoke
    # step is self-contained when invoked alone.
    cargo build --release --offline -p alsrac-bench --bin report

    echo "==> trace smoke gate (schema + bit-exactness)"
    smoke_trace="$(mktemp -t alsrac_smoke_XXXXXX.jsonl)"
    trap 'rm -f "$smoke_trace"' EXIT
    ALSRAC_TRACE="$smoke_trace" target/release/report --smoke

    echo "==> disabled-trace overhead gate (<= 2%)"
    target/release/report --overhead
}

run_bench_smoke() {
    # Self-contained like the smoke step: build the binary if invoked alone.
    cargo build --release --offline -p alsrac-bench --bin bench_sim

    echo "==> incremental simulation gate (bit-exact + words saved)"
    bench_json="$(mktemp -t alsrac_bench_sim_XXXXXX.json)"
    # `all` runs the smoke step first; keep its temp file in the trap too.
    trap 'rm -f "$bench_json" "${smoke_trace:-}"' EXIT
    # bench_sim asserts: flow output bit-identical between the full-sweep
    # and incremental engines, sim_words_saved > 0, and strictly fewer
    # node-words simulated incrementally.
    target/release/bench_sim --smoke "$bench_json"
    grep -q '"sim_words_saved": 0[,}]' "$bench_json" && {
        echo "bench-smoke: sim_words_saved is zero" >&2
        exit 1
    }
    echo "bench-smoke gate passed."
}

run_window_smoke() {
    # Self-contained like the smoke step: build the binary if invoked alone.
    cargo build --release --offline -p alsrac-bench --bin bench_window

    echo "==> scale-circuit generator self-checks"
    cargo test -q --offline -p alsrac-circuits -- multiply_accumulate scale_suite

    echo "==> windowed resubstitution gate (bit-exact + live counters)"
    window_json="$(mktemp -t alsrac_bench_window_XXXXXX.json)"
    # `all` runs the earlier steps first; keep their temp files in the trap.
    trap 'rm -f "$window_json" "${bench_json:-}" "${smoke_trace:-}"' EXIT
    # bench_window --smoke asserts: flow output bit-identical between the
    # windowed and whole-circuit paths on every bundled circuit, and
    # window_extracted > 0 on each windowed run.
    target/release/bench_window --smoke "$window_json"
    grep -q '"window_extracted": 0[,}]' "$window_json" && {
        echo "window-smoke: window_extracted is zero" >&2
        exit 1
    }
    echo "window-smoke gate passed."
}

run_cert_smoke() {
    # Self-contained like the smoke step: build the binaries if invoked alone.
    cargo build --release --offline -p alsrac-bench --bin bench_cert --bin report

    echo "==> certification gate (Wilson agreement + thread determinism)"
    cert_t1="$(mktemp -t alsrac_bench_cert1_XXXXXX.json)"
    cert_t3="$(mktemp -t alsrac_bench_cert3_XXXXXX.json)"
    # `all` runs the earlier steps first; keep their temp files in the trap.
    trap 'rm -f "$cert_t1" "$cert_t3" "${window_json:-}" "${bench_json:-}" "${smoke_trace:-}"' EXIT
    # bench_cert --smoke asserts: every certified error rate agrees with an
    # independent sampled estimate within the Wilson interval, and every
    # WCE-constrained flow result is certified at or below its bound.
    ALSRAC_THREADS=1 target/release/bench_cert --smoke "$cert_t1"
    ALSRAC_THREADS=3 target/release/bench_cert --smoke "$cert_t3"
    target/release/report --cert "$cert_t1"
    # Certification is SAT-backed and sampling is block-seeded, so the
    # artifact must not depend on the worker count — only the recorded
    # "threads" field itself may differ.
    if ! diff <(sed 's/"threads":[0-9]*/"threads":0/' "$cert_t1") \
        <(sed 's/"threads":[0-9]*/"threads":0/' "$cert_t3"); then
        echo "cert-smoke: artifact differs between 1 and 3 threads" >&2
        exit 1
    fi
    echo "cert-smoke gate passed."
}

run_fault_smoke() {
    echo "==> fault-injection gate (checkpoint/resume bit-identity)"
    # The suite arms process-global fault plans, so it runs in its own
    # test binary; both pinned pool sizes must reproduce the same bits
    # (the suite also pins 1/3/7 workers in-process via with_threads).
    ALSRAC_THREADS=1 cargo test -q --offline -p alsrac --test fault_injection
    ALSRAC_THREADS=3 cargo test -q --offline -p alsrac --test fault_injection
    echo "fault-smoke gate passed."
}

case "$step" in
fmt) run_fmt ;;
clippy) run_clippy ;;
build) run_build ;;
test) run_test ;;
smoke) run_smoke ;;
bench-smoke) run_bench_smoke ;;
window-smoke) run_window_smoke ;;
cert-smoke) run_cert_smoke ;;
fault-smoke) run_fault_smoke ;;
all)
    run_fmt
    run_clippy
    run_build
    run_test
    run_smoke
    run_bench_smoke
    run_window_smoke
    run_cert_smoke
    run_fault_smoke
    ;;
*)
    echo "unknown step '$step' (expected fmt|clippy|build|test|smoke|bench-smoke|window-smoke|cert-smoke|fault-smoke|all)" >&2
    exit 2
    ;;
esac

echo "CI green ($step)."
