//! Conversion of two-level covers into AIG nodes with quick factoring.
//!
//! ALSRAC materializes each accepted LAC by converting its ISOP into AIG
//! nodes over the divisor literals (§III-B3: "the ISOP expression will be
//! converted to some nodes in the circuit"). Plain SOP construction wastes
//! nodes when cubes share literals, so we apply the classic *quick factor*
//! heuristic: recursively divide the cover by its most frequent literal.

use alsrac_aig::{Aig, Lit};

use crate::{Cube, Sop};

/// Builds `sop` into `aig` as a factored AND/OR tree over the literals in
/// `inputs` (variable `i` of the cover maps to `inputs[i]`), returning the
/// root literal.
///
/// # Panics
///
/// Panics if a cube references a variable `>= inputs.len()`.
///
/// # Example
///
/// ```
/// use alsrac_aig::Aig;
/// use alsrac_truthtable::{isop, sop_to_aig, Tt};
///
/// let mut aig = Aig::new("t");
/// let a = aig.add_input("a");
/// let b = aig.add_input("b");
/// let f = Tt::var(0, 2).xor(&Tt::var(1, 2));
/// let root = sop_to_aig(&mut aig, &isop(&f, &f), &[a, b]);
/// aig.add_output("y", root);
/// assert_eq!(aig.evaluate(&[true, false]), vec![true]);
/// assert_eq!(aig.evaluate(&[true, true]), vec![false]);
/// ```
pub fn sop_to_aig(aig: &mut Aig, sop: &Sop, inputs: &[Lit]) -> Lit {
    for cube in sop.cubes() {
        let used = cube.pos | cube.neg;
        assert!(
            inputs.len() >= 32 || used >> inputs.len() == 0,
            "cube {cube:?} references a variable beyond the {} inputs",
            inputs.len()
        );
    }
    build(aig, sop.cubes(), inputs)
}

/// Counts the AND nodes [`sop_to_aig`] would create for a cover over
/// `num_inputs` fresh inputs. Used to score LAC candidates without touching
/// the real graph.
pub fn factored_aig_cost(sop: &Sop, num_inputs: usize) -> usize {
    let mut scratch = Aig::new("cost");
    let inputs = scratch.add_inputs("x", num_inputs);
    let _ = sop_to_aig(&mut scratch, sop, &inputs);
    scratch.num_ands()
}

fn cube_to_lits(cube: Cube, inputs: &[Lit]) -> Vec<Lit> {
    let mut lits = Vec::with_capacity(cube.num_literals() as usize);
    for (v, &input) in inputs.iter().enumerate() {
        if cube.pos >> v & 1 != 0 {
            lits.push(input);
        } else if cube.neg >> v & 1 != 0 {
            lits.push(!input);
        }
    }
    lits
}

fn build(aig: &mut Aig, cubes: &[Cube], inputs: &[Lit]) -> Lit {
    if cubes.is_empty() {
        return Lit::FALSE;
    }
    if cubes.contains(&Cube::TAUTOLOGY) {
        return Lit::TRUE;
    }
    if cubes.len() == 1 {
        let lits = cube_to_lits(cubes[0], inputs);
        return aig.and_all(&lits);
    }

    // Most frequent literal across the cover (positive and negative
    // occurrences counted separately).
    let mut best: Option<(usize, bool, usize)> = None; // (var, positive, count)
    for v in 0..inputs.len().min(32) {
        let pos_count = cubes.iter().filter(|c| c.pos >> v & 1 != 0).count();
        let neg_count = cubes.iter().filter(|c| c.neg >> v & 1 != 0).count();
        for (positive, count) in [(true, pos_count), (false, neg_count)] {
            if count > best.map_or(0, |(_, _, c)| c) {
                best = Some((v, positive, count));
            }
        }
    }

    match best {
        Some((var, positive, count)) if count > 1 => {
            let mut quotient = Vec::new();
            let mut remainder = Vec::new();
            for &cube in cubes {
                let mask = 1u32 << var;
                let in_quotient = if positive {
                    cube.pos & mask != 0
                } else {
                    cube.neg & mask != 0
                };
                if in_quotient {
                    quotient.push(cube.without(var));
                } else {
                    remainder.push(cube);
                }
            }
            let lit = inputs[var].complement_if(!positive);
            let q = build(aig, &quotient, inputs);
            let divided = aig.and(lit, q);
            let r = build(aig, &remainder, inputs);
            aig.or(divided, r)
        }
        _ => {
            // No sharing: plain sum of products.
            let products: Vec<Lit> = cubes
                .iter()
                .map(|&c| {
                    let lits = cube_to_lits(c, inputs);
                    aig.and_all(&lits)
                })
                .collect();
            aig.or_all(&products)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{isop, Tt};

    /// Builds the cover and compares it against the truth table on all
    /// patterns.
    fn check_build(f: &Tt) {
        let n = f.nvars();
        let cover = isop(f, f);
        let mut aig = Aig::new("t");
        let inputs = aig.add_inputs("x", n);
        let root = sop_to_aig(&mut aig, &cover, &inputs);
        aig.add_output("y", root);
        for p in 0..f.num_patterns() {
            let bits: Vec<bool> = (0..n).map(|i| p >> i & 1 != 0).collect();
            assert_eq!(aig.evaluate(&bits)[0], f.get(p), "pattern {p:b}");
        }
    }

    #[test]
    fn constants() {
        let mut aig = Aig::new("t");
        let inputs = aig.add_inputs("x", 2);
        assert_eq!(sop_to_aig(&mut aig, &Sop::zero(), &inputs), Lit::FALSE);
        let taut = Sop::new(vec![Cube::TAUTOLOGY]);
        assert_eq!(sop_to_aig(&mut aig, &taut, &inputs), Lit::TRUE);
        assert_eq!(aig.num_ands(), 0);
    }

    #[test]
    fn exhaustive_3var_functions() {
        for bits in 0u64..256 {
            check_build(&Tt::from_bits(3, bits));
        }
    }

    #[test]
    fn sampled_5var_functions() {
        for seed in 0u64..40 {
            // Cheap deterministic pseudo-random tables.
            let bits = seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .rotate_left((seed % 63) as u32);
            check_build(&Tt::from_bits(5, bits));
        }
    }

    #[test]
    fn factoring_shares_common_literal() {
        // x0 x1 + x0 x2 + x0 x3: unfactored needs 3 product ANDs + OR tree;
        // factored form is x0 & (x1 + x2 + x3) = 3 ANDs total.
        let sop = Sop::new(vec![
            Cube::TAUTOLOGY.with_pos(0).with_pos(1),
            Cube::TAUTOLOGY.with_pos(0).with_pos(2),
            Cube::TAUTOLOGY.with_pos(0).with_pos(3),
        ]);
        assert_eq!(factored_aig_cost(&sop, 4), 3);
    }

    #[test]
    fn cost_matches_real_build() {
        let f = Tt::from_fn(4, |p| (p * 7) % 3 == 1);
        let cover = isop(&f, &f);
        let mut aig = Aig::new("t");
        let inputs = aig.add_inputs("x", 4);
        let before = aig.num_ands();
        let _ = sop_to_aig(&mut aig, &cover, &inputs);
        assert_eq!(aig.num_ands() - before, factored_aig_cost(&cover, 4));
    }

    #[test]
    #[should_panic(expected = "beyond")]
    fn rejects_out_of_range_variable() {
        let sop = Sop::new(vec![Cube::TAUTOLOGY.with_pos(5)]);
        let mut aig = Aig::new("t");
        let inputs = aig.add_inputs("x", 2);
        sop_to_aig(&mut aig, &sop, &inputs);
    }
}
