//! Minato–Morreale irredundant sum-of-products computation.

use crate::{Cube, Sop, Tt};

/// Computes an irredundant sum-of-products for an incompletely specified
/// function.
///
/// `lower` is the on-set (patterns that must evaluate to 1) and `upper` is
/// the on-set plus don't-care set (patterns that may evaluate to 1);
/// `lower ⊆ upper` must hold. The returned cover `f` satisfies
/// `lower ⊆ f ⊆ upper`, every cube is prime with respect to the interval,
/// and no cube can be dropped without uncovering part of `lower`.
///
/// This is the recursive procedure of Minato (1992) built on Morreale's
/// theorem, the standard ISOP engine inside ABC — and the role Espresso
/// plays in ALSRAC's LAC derivation (§III-B3 of the paper).
///
/// # Panics
///
/// Panics if the tables have different variable counts or `lower ⊈ upper`.
///
/// # Example
///
/// ```
/// use alsrac_truthtable::{isop, Tt};
///
/// // XOR with no don't-cares needs two cubes.
/// let f = Tt::var(0, 2).xor(&Tt::var(1, 2));
/// let cover = isop(&f, &f);
/// assert_eq!(cover.num_cubes(), 2);
/// assert_eq!(cover.to_tt(2), f);
/// ```
pub fn isop(lower: &Tt, upper: &Tt) -> Sop {
    assert_eq!(
        lower.nvars(),
        upper.nvars(),
        "variable count mismatch between bounds"
    );
    assert!(
        lower.and(&upper.not()).is_const0(),
        "lower bound must be contained in upper bound"
    );
    let (cubes, _f) = isop_rec(lower, upper, lower.nvars());
    Sop::new(cubes)
}

/// Recursive worker: returns the cover and the exact function it denotes.
fn isop_rec(lower: &Tt, upper: &Tt, nvars: usize) -> (Vec<Cube>, Tt) {
    if lower.is_const0() {
        return (Vec::new(), Tt::zero(nvars));
    }
    if upper.is_const1() {
        return (vec![Cube::TAUTOLOGY], Tt::ones(nvars));
    }
    // Pick the highest variable either bound depends on. Since lower != 0
    // and upper != 1 with lower ⊆ upper, at least one such variable exists.
    let var = (0..nvars)
        .rev()
        .find(|&v| lower.depends_on(v) || upper.depends_on(v))
        .expect("non-constant interval must depend on a variable");

    let l0 = lower.cofactor(var, false);
    let l1 = lower.cofactor(var, true);
    let u0 = upper.cofactor(var, false);
    let u1 = upper.cofactor(var, true);

    // Minterms only coverable with the literal !var / var respectively.
    let (mut c0, f0) = isop_rec(&l0.and(&u1.not()), &u0, nvars);
    let (mut c1, f1) = isop_rec(&l1.and(&u0.not()), &u1, nvars);
    // What remains must be covered by cubes free of `var`.
    let remainder = l0.and(&f0.not()).or(&l1.and(&f1.not()));
    let (cr, fr) = isop_rec(&remainder, &u0.and(&u1), nvars);

    for c in &mut c0 {
        *c = c.with_neg(var);
    }
    for c in &mut c1 {
        *c = c.with_pos(var);
    }

    let var_tt = Tt::var(var, nvars);
    let f = var_tt.not().and(&f0).or(&var_tt.and(&f1)).or(&fr);

    let mut cubes = c0;
    cubes.extend(c1);
    cubes.extend(cr);
    (cubes, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Checks the interval property lower ⊆ cover ⊆ upper.
    fn check_interval(cover: &Sop, lower: &Tt, upper: &Tt) {
        let f = cover.to_tt(lower.nvars());
        assert!(
            lower.and(&f.not()).is_const0(),
            "cover misses on-set minterms: {cover:?}"
        );
        assert!(
            f.and(&upper.not()).is_const0(),
            "cover overlaps off-set: {cover:?}"
        );
    }

    /// Checks that no cube can be dropped (irredundancy).
    fn check_irredundant(cover: &Sop, lower: &Tt) {
        let n = lower.nvars();
        for skip in 0..cover.num_cubes() {
            let rest: Sop = cover
                .cubes()
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != skip)
                .map(|(_, c)| *c)
                .collect();
            assert!(
                !lower.and(&rest.to_tt(n).not()).is_const0(),
                "cube {skip} of {cover:?} is redundant"
            );
        }
    }

    #[test]
    fn constant_functions() {
        let z = Tt::zero(3);
        let o = Tt::ones(3);
        assert!(isop(&z, &z).is_zero());
        let full = isop(&o, &o);
        assert_eq!(full.num_cubes(), 1);
        assert_eq!(full.cubes()[0], Cube::TAUTOLOGY);
    }

    #[test]
    fn single_variable() {
        let a = Tt::var(0, 1);
        let cover = isop(&a, &a);
        assert_eq!(cover.num_cubes(), 1);
        assert_eq!(cover.cubes()[0], Cube::TAUTOLOGY.with_pos(0));
    }

    #[test]
    fn xor_needs_two_cubes() {
        let f = Tt::var(0, 2).xor(&Tt::var(1, 2));
        let cover = isop(&f, &f);
        assert_eq!(cover.num_cubes(), 2);
        check_interval(&cover, &f, &f);
        check_irredundant(&cover, &f);
    }

    #[test]
    fn dont_cares_shrink_cover() {
        // on = {11}, dc = {10, 01}: a single one-literal cube (or even the
        // tautology? no: 00 is off-set) covers it.
        let on = Tt::from_bits(2, 0b1000);
        let dc = Tt::from_bits(2, 0b0110);
        let cover = isop(&on, &on.or(&dc));
        assert_eq!(cover.num_cubes(), 1);
        assert_eq!(cover.cubes()[0].num_literals(), 1);
        check_interval(&cover, &on, &on.or(&dc));
    }

    #[test]
    fn paper_example_table_ii() {
        // ALSRAC Fig. 1 / Table II: inputs (u, z), on = {00}, off = {01, 10},
        // dc = {11}. The ISOP should produce !u & !z (a NOR).
        let on = Tt::from_bits(2, 0b0001);
        let dc = Tt::from_bits(2, 0b1000);
        let cover = isop(&on, &on.or(&dc));
        assert_eq!(cover.num_cubes(), 1);
        assert_eq!(cover.cubes()[0], Cube::TAUTOLOGY.with_neg(0).with_neg(1));
    }

    #[test]
    fn exhaustive_3var_completely_specified() {
        for bits in 0u64..256 {
            let f = Tt::from_bits(3, bits);
            let cover = isop(&f, &f);
            assert_eq!(cover.to_tt(3), f, "bits={bits:08b}");
            check_irredundant(&cover, &f);
        }
    }

    #[test]
    fn exhaustive_2var_with_dont_cares() {
        for on_bits in 0u64..16 {
            for dc_bits in 0u64..16 {
                if on_bits & dc_bits != 0 {
                    continue;
                }
                let on = Tt::from_bits(2, on_bits);
                let dc = Tt::from_bits(2, dc_bits);
                let upper = on.or(&dc);
                let cover = isop(&on, &upper);
                check_interval(&cover, &on, &upper);
                check_irredundant(&cover, &on);
            }
        }
    }

    #[test]
    fn larger_function_covers_correctly() {
        // 8-var majority-ish function.
        let f = Tt::from_fn(8, |p| (p as u32).count_ones() >= 5);
        let cover = isop(&f, &f);
        assert_eq!(cover.to_tt(8), f);
    }

    #[test]
    #[should_panic(expected = "contained in upper")]
    fn rejects_invalid_interval() {
        let on = Tt::ones(2);
        let upper = Tt::zero(2);
        isop(&on, &upper);
    }
}
