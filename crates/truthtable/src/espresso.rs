//! Espresso-style two-level minimization: expand / irredundant / reduce.
//!
//! [`isop`](crate::isop) already produces an irredundant prime cover, but —
//! like Espresso — iterating EXPAND, IRREDUNDANT_COVER and REDUCE can escape
//! local minima and trade cubes against literals. This module implements a
//! truth-table-backed version of that loop, sufficient for the small
//! (≤ ~12 input) functions the synthesis flows manipulate.

use crate::{Cube, Sop, Tt};

/// Maximum number of expand/reduce rounds before giving up on improvement.
const MAX_ROUNDS: usize = 4;

/// Improves a two-level cover of an incompletely specified function.
///
/// `initial` must satisfy `on ⊆ initial ⊆ on ∪ dc`; the returned cover
/// satisfies the same interval and has a cost (cube count, then literal
/// count) no worse than the initial cover.
///
/// # Panics
///
/// Panics if the variable counts disagree, `on` and `dc` overlap, or
/// `initial` violates the interval.
///
/// # Example
///
/// ```
/// use alsrac_truthtable::{isop, minimize, Tt};
///
/// let on = Tt::from_fn(4, |p| (p & 0b11) == 0b11);
/// let dc = Tt::from_fn(4, |p| (p & 0b11) == 0b01);
/// let cover = minimize(&isop(&on, &on.or(&dc)), &on, &dc);
/// assert!(cover.num_cubes() <= 1 + isop(&on, &on.or(&dc)).num_cubes());
/// ```
pub fn minimize(initial: &Sop, on: &Tt, dc: &Tt) -> Sop {
    let nvars = on.nvars();
    assert_eq!(nvars, dc.nvars(), "variable count mismatch");
    assert!(on.and(dc).is_const0(), "on-set and dc-set overlap");
    let upper = on.or(dc);
    let f = initial.to_tt(nvars);
    assert!(
        on.and(&f.not()).is_const0() && f.and(&upper.not()).is_const0(),
        "initial cover violates the on/dc interval"
    );

    let mut best = initial.clone();
    let mut best_cost = cost(&best);
    let mut current = initial.clone();
    for _ in 0..MAX_ROUNDS {
        expand(&mut current, &upper, nvars);
        drop_contained(&mut current);
        irredundant(&mut current, on, nvars);
        let c = cost(&current);
        if c < best_cost {
            best_cost = c;
            best = current.clone();
        } else {
            break;
        }
        reduce(&mut current, on, nvars);
    }
    debug_assert!(on.and(&best.to_tt(nvars).not()).is_const0());
    debug_assert!(best.to_tt(nvars).and(&upper.not()).is_const0());
    best
}

fn cost(s: &Sop) -> (usize, u32) {
    (s.num_cubes(), s.num_literals())
}

/// EXPAND: greedily drop literals from each cube while the cube stays inside
/// `upper` (on ∪ dc).
fn expand(cover: &mut Sop, upper: &Tt, nvars: usize) {
    let off = upper.not();
    let cubes: Vec<Cube> = cover
        .cubes()
        .iter()
        .map(|&cube| {
            let mut cube = cube;
            for v in 0..nvars {
                let candidate = cube.without(v);
                if candidate == cube {
                    continue;
                }
                if candidate.to_tt(nvars).and(&off).is_const0() {
                    cube = candidate;
                }
            }
            cube
        })
        .collect();
    *cover = Sop::new(cubes);
}

/// Removes cubes contained in another single cube of the cover.
fn drop_contained(cover: &mut Sop) {
    let cubes = cover.cubes().to_vec();
    let mut keep = vec![true; cubes.len()];
    for i in 0..cubes.len() {
        if !keep[i] {
            continue;
        }
        for j in 0..cubes.len() {
            if i != j
                && keep[j]
                && cubes[i].is_contained_in(cubes[j])
                && (i > j || cubes[i] != cubes[j])
            {
                keep[i] = false;
                break;
            }
        }
    }
    *cover = cubes
        .into_iter()
        .zip(keep)
        .filter(|(_, k)| *k)
        .map(|(c, _)| c)
        .collect();
}

/// IRREDUNDANT: drop cubes whose on-set contribution is covered by the rest.
fn irredundant(cover: &mut Sop, on: &Tt, nvars: usize) {
    let mut cubes = cover.cubes().to_vec();
    // Try dropping larger cubes last so small special-case cubes go first.
    let mut order: Vec<usize> = (0..cubes.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(cubes[i].num_literals()));
    for &i in &order {
        let candidate = cubes[i];
        let rest: Sop = cubes
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i && cubes[j] != candidate)
            .map(|(_, c)| *c)
            .collect();
        let contribution = on.and(&candidate.to_tt(nvars));
        if contribution.and(&rest.to_tt(nvars).not()).is_const0() {
            // Mark as removed by replacing with a duplicate sentinel: easier
            // to filter once at the end.
            cubes[i] = Cube {
                pos: u32::MAX,
                neg: u32::MAX,
            };
        }
    }
    *cover = cubes
        .into_iter()
        .filter(|c| {
            *c != Cube {
                pos: u32::MAX,
                neg: u32::MAX,
            }
        })
        .collect();
}

/// REDUCE: shrink each cube to the smallest cube still covering the on-set
/// minterms only it covers, opening room for the next EXPAND.
fn reduce(cover: &mut Sop, on: &Tt, nvars: usize) {
    let cubes = cover.cubes().to_vec();
    let mut reduced = Vec::with_capacity(cubes.len());
    for (i, &cube) in cubes.iter().enumerate() {
        let others: Sop = cubes
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, c)| *c)
            .collect();
        let required = on.and(&cube.to_tt(nvars)).and(&others.to_tt(nvars).not());
        if required.is_const0() {
            reduced.push(cube);
            continue;
        }
        let mut shrunk = cube;
        for v in 0..nvars {
            if shrunk.pos >> v & 1 != 0 || shrunk.neg >> v & 1 != 0 {
                continue;
            }
            let var_tt = Tt::var(v, nvars);
            if required.and(&var_tt.not()).is_const0() {
                shrunk = shrunk.with_pos(v);
            } else if required.and(&var_tt).is_const0() {
                shrunk = shrunk.with_neg(v);
            }
        }
        reduced.push(shrunk);
    }
    *cover = Sop::new(reduced);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isop;

    fn check_interval(cover: &Sop, on: &Tt, dc: &Tt) {
        let f = cover.to_tt(on.nvars());
        assert!(on.and(&f.not()).is_const0(), "misses on-set");
        assert!(f.and(&on.or(dc).not()).is_const0(), "hits off-set");
    }

    #[test]
    fn minimize_keeps_interval_exhaustive_3var() {
        for on_bits in (0u64..256).step_by(7) {
            for dc_bits in (0u64..256).step_by(11) {
                let dc_bits = dc_bits & !on_bits;
                let on = Tt::from_bits(3, on_bits);
                let dc = Tt::from_bits(3, dc_bits);
                let initial = isop(&on, &on.or(&dc));
                let min = minimize(&initial, &on, &dc);
                check_interval(&min, &on, &dc);
                assert!(cost(&min) <= cost(&initial));
            }
        }
    }

    #[test]
    fn minimize_constant_zero() {
        let on = Tt::zero(4);
        let dc = Tt::zero(4);
        let min = minimize(&Sop::zero(), &on, &dc);
        assert!(min.is_zero());
    }

    #[test]
    fn minimize_tautology() {
        let on = Tt::ones(3);
        let dc = Tt::zero(3);
        let min = minimize(&isop(&on, &on), &on, &dc);
        assert_eq!(min.num_cubes(), 1);
        assert_eq!(min.num_literals(), 0);
    }

    #[test]
    fn expand_uses_dont_cares() {
        // on = {111}, dc = everything else except {000}: expand should grow
        // the full-literal cube into something with at most one literal.
        let on = Tt::from_fn(3, |p| p == 7);
        let dc = Tt::from_fn(3, |p| p != 7 && p != 0);
        let initial = Sop::new(vec![Cube::TAUTOLOGY.with_pos(0).with_pos(1).with_pos(2)]);
        let min = minimize(&initial, &on, &dc);
        check_interval(&min, &on, &dc);
        assert_eq!(min.num_cubes(), 1);
        assert!(min.num_literals() <= 1);
    }

    #[test]
    fn redundant_cube_is_dropped() {
        // f = x0 + x0 x1 (second cube redundant).
        let on = Tt::var(0, 2);
        let dc = Tt::zero(2);
        let initial = Sop::new(vec![
            Cube::TAUTOLOGY.with_pos(0),
            Cube::TAUTOLOGY.with_pos(0).with_pos(1),
        ]);
        let min = minimize(&initial, &on, &dc);
        assert_eq!(min.num_cubes(), 1);
        check_interval(&min, &on, &dc);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn rejects_overlapping_on_dc() {
        let on = Tt::ones(2);
        let dc = Tt::ones(2);
        minimize(&Sop::zero(), &on, &dc);
    }

    #[test]
    #[should_panic(expected = "violates")]
    fn rejects_bad_initial_cover() {
        let on = Tt::ones(2);
        let dc = Tt::zero(2);
        minimize(&Sop::zero(), &on, &dc);
    }
}
