//! Bit-packed truth tables.

use std::fmt;

/// Maximum number of variables a [`Tt`] supports.
///
/// 16 variables = 65 536 minterns = 1024 words, comfortably covering the
/// divisor counts (≤ 10) and cut sizes (≤ 8) used anywhere in this
/// workspace.
pub const MAX_VARS: usize = 16;

/// Per-variable "value is 1" masks for variables living inside one word.
const WORD_MASKS: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

/// A truth table over `nvars` variables, one bit per input pattern.
///
/// Pattern `p`'s output is bit `p % 64` of word `p / 64`; bit `i` of `p`
/// is the value of variable `i`. For fewer than 6 variables only the low
/// `2^nvars` bits of the single word are used and the rest are kept zero.
///
/// ```
/// use alsrac_truthtable::Tt;
///
/// let a = Tt::var(0, 2);
/// let b = Tt::var(1, 2);
/// let f = a.xor(&b);
/// assert_eq!(f.to_bits(), 0b0110);
/// assert_eq!(f.count_ones(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Tt {
    nvars: u8,
    words: Vec<u64>,
}

impl Tt {
    fn words_for(nvars: usize) -> usize {
        assert!(nvars <= MAX_VARS, "at most {MAX_VARS} variables supported");
        if nvars <= 6 {
            1
        } else {
            1 << (nvars - 6)
        }
    }

    /// Mask of the bits of the last word that are meaningful.
    fn tail_mask(nvars: usize) -> u64 {
        if nvars >= 6 {
            u64::MAX
        } else {
            (1u64 << (1 << nvars)) - 1
        }
    }

    /// The constant-0 function of `nvars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `nvars > MAX_VARS` (same for all constructors).
    pub fn zero(nvars: usize) -> Tt {
        Tt {
            nvars: nvars as u8,
            words: vec![0; Tt::words_for(nvars)],
        }
    }

    /// The constant-1 function of `nvars` variables.
    pub fn ones(nvars: usize) -> Tt {
        let mut t = Tt {
            nvars: nvars as u8,
            words: vec![u64::MAX; Tt::words_for(nvars)],
        };
        *t.words.last_mut().expect("at least one word") &= Tt::tail_mask(nvars);
        t
    }

    /// The projection function of variable `var` among `nvars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `var >= nvars`.
    pub fn var(var: usize, nvars: usize) -> Tt {
        assert!(var < nvars, "variable {var} out of range for {nvars} vars");
        let mut t = Tt::zero(nvars);
        if var < 6 {
            let mask = WORD_MASKS[var] & Tt::tail_mask(nvars);
            for w in &mut t.words {
                *w = mask;
            }
            if var < 6 && nvars < 6 {
                t.words[0] = WORD_MASKS[var] & Tt::tail_mask(nvars);
            }
        } else {
            let block = 1usize << (var - 6);
            for (i, w) in t.words.iter_mut().enumerate() {
                if i / block % 2 == 1 {
                    *w = u64::MAX;
                }
            }
        }
        t
    }

    /// Builds a table over ≤ 6 variables from the low `2^nvars` bits of
    /// `bits`.
    ///
    /// # Panics
    ///
    /// Panics if `nvars > 6`.
    pub fn from_bits(nvars: usize, bits: u64) -> Tt {
        assert!(nvars <= 6, "from_bits supports at most 6 variables");
        Tt {
            nvars: nvars as u8,
            words: vec![bits & Tt::tail_mask(nvars)],
        }
    }

    /// Builds a table by evaluating `f` on every pattern index.
    pub fn from_fn(nvars: usize, mut f: impl FnMut(usize) -> bool) -> Tt {
        let mut t = Tt::zero(nvars);
        for p in 0..t.num_patterns() {
            if f(p) {
                t.set(p, true);
            }
        }
        t
    }

    /// Number of variables.
    pub fn nvars(&self) -> usize {
        self.nvars as usize
    }

    /// Number of input patterns (`2^nvars`).
    pub fn num_patterns(&self) -> usize {
        1usize << self.nvars
    }

    /// The raw bits for a table of ≤ 6 variables.
    ///
    /// # Panics
    ///
    /// Panics if the table has more than 6 variables.
    pub fn to_bits(&self) -> u64 {
        assert!(self.nvars <= 6, "to_bits supports at most 6 variables");
        self.words[0]
    }

    /// Returns the backing words.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Returns the output for input pattern `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p >= 2^nvars`.
    pub fn get(&self, p: usize) -> bool {
        assert!(p < self.num_patterns(), "pattern {p} out of range");
        self.words[p / 64] >> (p % 64) & 1 != 0
    }

    /// Sets the output for input pattern `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p >= 2^nvars`.
    pub fn set(&mut self, p: usize, value: bool) {
        assert!(p < self.num_patterns(), "pattern {p} out of range");
        if value {
            self.words[p / 64] |= 1 << (p % 64);
        } else {
            self.words[p / 64] &= !(1 << (p % 64));
        }
    }

    fn binary(&self, other: &Tt, f: impl Fn(u64, u64) -> u64) -> Tt {
        assert_eq!(self.nvars, other.nvars, "variable count mismatch");
        Tt {
            nvars: self.nvars,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Bitwise AND.
    ///
    /// # Panics
    ///
    /// Panics if the variable counts differ (same for `or`/`xor`).
    pub fn and(&self, other: &Tt) -> Tt {
        self.binary(other, |a, b| a & b)
    }

    /// Bitwise OR.
    pub fn or(&self, other: &Tt) -> Tt {
        self.binary(other, |a, b| a | b)
    }

    /// Bitwise XOR.
    pub fn xor(&self, other: &Tt) -> Tt {
        self.binary(other, |a, b| a ^ b)
    }

    /// Bitwise complement.
    pub fn not(&self) -> Tt {
        let mut t = Tt {
            nvars: self.nvars,
            words: self.words.iter().map(|&w| !w).collect(),
        };
        *t.words.last_mut().expect("at least one word") &= Tt::tail_mask(self.nvars());
        t
    }

    /// Returns `true` if the function is constant 0.
    pub fn is_const0(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Returns `true` if the function is constant 1.
    pub fn is_const1(&self) -> bool {
        self.eq(&Tt::ones(self.nvars()))
    }

    /// Number of on-set minterms.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Positive cofactor: the function with `var` fixed to `value`,
    /// replicated over both halves so the result has the same `nvars`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= nvars`.
    pub fn cofactor(&self, var: usize, value: bool) -> Tt {
        assert!(var < self.nvars(), "variable {var} out of range");
        let mut t = self.clone();
        if var < 6 {
            let shift = 1u32 << var;
            let mask = WORD_MASKS[var];
            for w in &mut t.words {
                if value {
                    let hi = *w & mask;
                    *w = hi | hi >> shift;
                } else {
                    let lo = *w & !mask;
                    *w = lo | lo << shift;
                }
            }
        } else {
            let block = 1usize << (var - 6);
            let n = t.words.len();
            let mut i = 0;
            while i < n {
                for j in 0..block {
                    let (lo, hi) = (i + j, i + j + block);
                    let src = if value { hi } else { lo };
                    let v = t.words[src];
                    t.words[lo] = v;
                    t.words[hi] = v;
                }
                i += 2 * block;
            }
        }
        *t.words.last_mut().expect("at least one word") &= Tt::tail_mask(self.nvars());
        t
    }

    /// Returns `true` if the function depends on variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= nvars`.
    pub fn depends_on(&self, var: usize) -> bool {
        self.cofactor(var, false) != self.cofactor(var, true)
    }

    /// Returns the set of variables the function depends on.
    pub fn support(&self) -> Vec<usize> {
        (0..self.nvars()).filter(|&v| self.depends_on(v)).collect()
    }
}

impl fmt::Debug for Tt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tt({}v:", self.nvars)?;
        for p in (0..self.num_patterns()).rev() {
            if p % 8 == 7 && p + 1 != self.num_patterns() {
                write!(f, "_")?;
            }
            write!(f, "{}", self.get(p) as u8)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        for n in 0..=8 {
            let z = Tt::zero(n);
            let o = Tt::ones(n);
            assert!(z.is_const0());
            assert!(o.is_const1());
            assert!(!z.is_const1() || n == usize::MAX);
            assert_eq!(z.count_ones(), 0);
            assert_eq!(o.count_ones(), 1 << n);
            assert_eq!(z.not(), o);
            assert_eq!(o.not(), z);
        }
    }

    #[test]
    fn zero_vars_is_a_single_bit() {
        let z = Tt::zero(0);
        let o = Tt::ones(0);
        assert_eq!(z.num_patterns(), 1);
        assert!(!z.get(0));
        assert!(o.get(0));
    }

    #[test]
    fn var_projection_small() {
        for n in 1..=6 {
            for v in 0..n {
                let t = Tt::var(v, n);
                for p in 0..t.num_patterns() {
                    assert_eq!(t.get(p), p >> v & 1 != 0, "n={n} v={v} p={p}");
                }
            }
        }
    }

    #[test]
    fn var_projection_large() {
        for n in [7, 8, 9] {
            for v in 0..n {
                let t = Tt::var(v, n);
                for p in (0..t.num_patterns()).step_by(13) {
                    assert_eq!(t.get(p), p >> v & 1 != 0, "n={n} v={v} p={p}");
                }
            }
        }
    }

    #[test]
    fn from_fn_round_trip() {
        let t = Tt::from_fn(7, |p| p % 3 == 0);
        for p in 0..128 {
            assert_eq!(t.get(p), p % 3 == 0);
        }
    }

    #[test]
    fn boolean_ops_match_bitwise_semantics() {
        let a = Tt::var(0, 3);
        let b = Tt::var(1, 3);
        let c = Tt::var(2, 3);
        let f = a.and(&b).or(&c.not());
        for p in 0..8 {
            let (av, bv, cv) = (p & 1 != 0, p & 2 != 0, p & 4 != 0);
            assert_eq!(f.get(p), av && bv || !cv);
        }
    }

    #[test]
    fn not_keeps_tail_bits_clear() {
        let t = Tt::zero(2).not();
        assert_eq!(t.to_bits(), 0b1111);
        assert!(t.is_const1());
    }

    #[test]
    fn cofactor_small_vars() {
        // f = a & b | !a & c  (mux on a), 3 vars.
        let a = Tt::var(0, 3);
        let b = Tt::var(1, 3);
        let c = Tt::var(2, 3);
        let f = a.and(&b).or(&a.not().and(&c));
        assert_eq!(f.cofactor(0, true), b);
        assert_eq!(f.cofactor(0, false), c);
    }

    #[test]
    fn cofactor_large_vars() {
        // 8 vars; f = var6 ? var0 : var7.
        let v0 = Tt::var(0, 8);
        let v6 = Tt::var(6, 8);
        let v7 = Tt::var(7, 8);
        let f = v6.and(&v0).or(&v6.not().and(&v7));
        assert_eq!(f.cofactor(6, true), v0);
        assert_eq!(f.cofactor(6, false), v7);
    }

    #[test]
    fn cofactor_is_independent_of_var() {
        let a = Tt::var(0, 4);
        let b = Tt::var(3, 4);
        let f = a.xor(&b);
        let c0 = f.cofactor(3, false);
        assert!(!c0.depends_on(3));
        assert!(c0.depends_on(0));
    }

    #[test]
    fn support_detection() {
        let a = Tt::var(0, 5);
        let d = Tt::var(3, 5);
        let f = a.or(&d);
        assert_eq!(f.support(), vec![0, 3]);
        assert!(Tt::ones(5).support().is_empty());
    }

    #[test]
    fn get_set_round_trip() {
        let mut t = Tt::zero(9);
        t.set(100, true);
        t.set(511, true);
        assert!(t.get(100));
        assert!(t.get(511));
        assert!(!t.get(99));
        t.set(100, false);
        assert!(!t.get(100));
        assert_eq!(t.count_ones(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_validates_pattern() {
        Tt::zero(3).get(8);
    }

    #[test]
    #[should_panic(expected = "variable count mismatch")]
    fn binary_op_validates_arity() {
        let _ = Tt::zero(3).and(&Tt::zero(4));
    }

    #[test]
    fn debug_is_readable() {
        let t = Tt::from_bits(2, 0b0110);
        assert_eq!(format!("{t:?}"), "Tt(2v:0110)");
    }
}
