//! Truth tables of AIG cones.
//!
//! Rewriting, refactoring, and standard-cell matching all need the local
//! function a node computes over a chosen cut. This module evaluates a cone
//! symbolically by assigning a projection table to each leaf and sweeping
//! the interior.

use alsrac_aig::{Aig, Lit, NodeId};

use crate::Tt;

/// Computes the truth table of `root` over the cut `leaves` (leaf `i`
/// becomes variable `i`).
///
/// Returns `None` when `leaves` is not a valid cut of `root` (a path
/// escapes to an input or constant outside the leaf set; the constant node
/// *is* allowed to be reached implicitly and evaluates to 0).
///
/// # Panics
///
/// Panics if `leaves` has more than [`MAX_VARS`](crate::MAX_VARS) entries.
///
/// # Example
///
/// ```
/// use alsrac_aig::Aig;
/// use alsrac_truthtable::{cone_tt, Tt};
///
/// let mut aig = Aig::new("t");
/// let a = aig.add_input("a");
/// let b = aig.add_input("b");
/// let x = aig.xor(a, b);
/// let tt = cone_tt(&aig, x, &[a.node(), b.node()]).expect("valid cut");
/// assert_eq!(tt, Tt::var(0, 2).xor(&Tt::var(1, 2)));
/// ```
pub fn cone_tt(aig: &Aig, root: Lit, leaves: &[NodeId]) -> Option<Tt> {
    let nvars = leaves.len();
    // The constant node is always an implicit leaf evaluating to 0, unless
    // it is explicitly one of the leaves.
    let interior = match aig.cone_interior(root.node(), leaves) {
        Some(i) => i,
        None => {
            // Retry with the constant node added as an implicit leaf.
            let mut extended: Vec<NodeId> = leaves.to_vec();
            extended.push(NodeId::CONST);
            aig.cone_interior(root.node(), &extended)?
        }
    };
    let mut tables: Vec<Option<Tt>> = vec![None; aig.num_nodes()];
    tables[NodeId::CONST.index()] = Some(Tt::zero(nvars));
    for (i, &leaf) in leaves.iter().enumerate() {
        tables[leaf.index()] = Some(Tt::var(i, nvars));
    }
    for id in interior {
        if tables[id.index()].is_some() {
            continue; // a leaf may also be listed as interior when root is a leaf
        }
        let [f0, f1] = aig.and_fanins(id);
        let t0 = lit_tt(&tables, f0)?;
        let t1 = lit_tt(&tables, f1)?;
        tables[id.index()] = Some(t0.and(&t1));
    }
    let result = lit_tt(&tables, root)?;
    Some(result)
}

fn lit_tt(tables: &[Option<Tt>], lit: Lit) -> Option<Tt> {
    let t = tables[lit.node().index()].as_ref()?;
    Some(if lit.is_complement() {
        t.not()
    } else {
        t.clone()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_cone() {
        let mut aig = Aig::new("maj");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let ab = aig.and(a, b);
        let bc = aig.and(b, c);
        let ca = aig.and(c, a);
        let o1 = aig.or(ab, bc);
        let maj = aig.or(o1, ca);
        aig.add_output("m", maj);
        let tt = cone_tt(&aig, maj, &[a.node(), b.node(), c.node()]).expect("cut");
        let want = Tt::from_fn(3, |p| (p as u32).count_ones() >= 2);
        assert_eq!(tt, want);
    }

    #[test]
    fn complemented_root() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let x = aig.and(a, b);
        let tt = cone_tt(&aig, !x, &[a.node(), b.node()]).expect("cut");
        assert_eq!(tt, Tt::var(0, 2).and(&Tt::var(1, 2)).not());
    }

    #[test]
    fn intermediate_leaf() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let x = aig.and(a, b);
        let y = aig.and(x, c);
        // Cut {x, c}: y = var0 & var1.
        let tt = cone_tt(&aig, y, &[x.node(), c.node()]).expect("cut");
        assert_eq!(tt, Tt::var(0, 2).and(&Tt::var(1, 2)));
    }

    #[test]
    fn invalid_cut_returns_none() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let x = aig.and(a, b);
        assert!(cone_tt(&aig, x, &[a.node()]).is_none());
    }

    #[test]
    fn constant_fanin_is_implicit() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        aig.add_output("y", a);
        // Root literal is the constant itself.
        let tt = cone_tt(&aig, alsrac_aig::Lit::TRUE, &[a.node()]).expect("cut");
        assert!(tt.is_const1());
    }

    #[test]
    fn root_equal_to_leaf() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let x = aig.and(a, b);
        let tt = cone_tt(&aig, x, &[x.node()]).expect("trivial cut");
        assert_eq!(tt, Tt::var(0, 1));
    }
}
