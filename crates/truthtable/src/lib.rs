//! Truth tables and two-level minimization for the ALSRAC reproduction.
//!
//! ALSRAC derives each approximate resubstitution function by building a
//! truth table over the divisor variables (with don't-cares outside the
//! approximate care set) and computing an irredundant sum-of-products
//! (ISOP) from it — the role Espresso plays in the paper (§III-B3).
//!
//! This crate provides:
//!
//! * [`Tt`] — a bit-packed truth table over up to 16 variables,
//! * [`Cube`] / [`Sop`] — product terms and sum-of-products covers,
//! * [`isop`] — the Minato–Morreale irredundant SOP computation over an
//!   incompletely specified function (on-set ⊆ cover ⊆ on-set ∪ dc-set),
//! * [`minimize`] — an Espresso-style expand / irredundant / reduce loop
//!   that improves an initial cover,
//! * [`sop_to_aig`] — conversion of a cover to AIG nodes with quick
//!   literal factoring (used when a LAC is materialized in the circuit).
//!
//! # Example: minimize an incompletely specified function
//!
//! ```
//! use alsrac_truthtable::{isop, minimize, Tt};
//!
//! // f(a, b) must be 1 on ab=00 and may be anything on ab=11.
//! let on = Tt::from_bits(2, 0b0001);
//! let dc = Tt::from_bits(2, 0b1000);
//! let cover = minimize(&isop(&on, &on.or(&dc)), &on, &dc);
//! assert_eq!(cover.num_cubes(), 1); // single cube !a & !b
//! assert!(cover.to_tt(2).and(&on).eq(&on)); // covers the on-set
//! assert!(cover.to_tt(2).and(&on.or(&dc).not()).is_const0()); // avoids off-set
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cube;
mod espresso;
mod factor;
mod isop;
mod network;
mod tt;

pub use cube::{Cube, Sop};
pub use espresso::minimize;
pub use factor::{factored_aig_cost, sop_to_aig};
pub use isop::isop;
pub use network::cone_tt;
pub use tt::{Tt, MAX_VARS};
