//! Cubes (product terms) and sum-of-products covers.

use std::fmt;

use crate::Tt;

/// A product term over up to 32 variables.
///
/// Bit `i` of `pos` means "variable `i` appears positively"; bit `i` of
/// `neg` means it appears complemented. A variable mentioned in neither
/// mask is absent from the product. `pos & neg == 0` always holds for cubes
/// produced by this crate (a contradictory cube is the empty set and is
/// never emitted).
///
/// ```
/// use alsrac_truthtable::Cube;
///
/// let c = Cube::TAUTOLOGY.with_pos(0).with_neg(2); // x0 & !x2
/// assert!(c.covers(0b001));
/// assert!(!c.covers(0b101));
/// assert_eq!(c.num_literals(), 2);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Cube {
    /// Positive-literal mask.
    pub pos: u32,
    /// Negative-literal mask.
    pub neg: u32,
}

impl Cube {
    /// The empty product (constant 1).
    pub const TAUTOLOGY: Cube = Cube { pos: 0, neg: 0 };

    /// Returns this cube with variable `var` added as a positive literal.
    #[must_use]
    pub fn with_pos(mut self, var: usize) -> Cube {
        self.pos |= 1 << var;
        self
    }

    /// Returns this cube with variable `var` added as a negative literal.
    #[must_use]
    pub fn with_neg(mut self, var: usize) -> Cube {
        self.neg |= 1 << var;
        self
    }

    /// Returns this cube with any literal of `var` removed.
    #[must_use]
    pub fn without(mut self, var: usize) -> Cube {
        self.pos &= !(1 << var);
        self.neg &= !(1 << var);
        self
    }

    /// Number of literals in the product.
    pub fn num_literals(self) -> u32 {
        (self.pos | self.neg).count_ones()
    }

    /// Returns `true` if input pattern `p` (bit `i` = variable `i`) satisfies
    /// the product.
    pub fn covers(self, p: usize) -> bool {
        let p = p as u32;
        p & self.pos == self.pos && !p & self.neg == self.neg
    }

    /// Returns `true` if every minterm of `self` is also covered by `other`
    /// (single-cube containment).
    pub fn is_contained_in(self, other: Cube) -> bool {
        other.pos & !self.pos == 0 && other.neg & !self.neg == 0
    }

    /// Expands the cube to a truth table over `nvars` variables.
    ///
    /// # Panics
    ///
    /// Panics if the cube mentions a variable `>= nvars`.
    pub fn to_tt(self, nvars: usize) -> Tt {
        assert!(
            (self.pos | self.neg) >> nvars == 0 || nvars >= 32,
            "cube mentions a variable outside {nvars} vars"
        );
        let mut t = Tt::ones(nvars);
        for v in 0..nvars.min(32) {
            if self.pos >> v & 1 != 0 {
                t = t.and(&Tt::var(v, nvars));
            } else if self.neg >> v & 1 != 0 {
                t = t.and(&Tt::var(v, nvars).not());
            }
        }
        t
    }
}

impl fmt::Debug for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.pos == 0 && self.neg == 0 {
            return write!(f, "1");
        }
        for v in 0..32 {
            if self.pos >> v & 1 != 0 {
                write!(f, "x{v}")?;
            } else if self.neg >> v & 1 != 0 {
                write!(f, "!x{v}")?;
            }
        }
        Ok(())
    }
}

/// A sum-of-products cover: a disjunction of [`Cube`]s.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Sop {
    cubes: Vec<Cube>,
}

impl Sop {
    /// Creates a cover from a list of cubes.
    pub fn new(cubes: Vec<Cube>) -> Sop {
        Sop { cubes }
    }

    /// The empty cover (constant 0).
    pub fn zero() -> Sop {
        Sop { cubes: Vec::new() }
    }

    /// The cubes of the cover.
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Number of cubes.
    pub fn num_cubes(&self) -> usize {
        self.cubes.len()
    }

    /// Total number of literals across all cubes (the classic SOP cost).
    pub fn num_literals(&self) -> u32 {
        self.cubes.iter().map(|c| c.num_literals()).sum()
    }

    /// Returns `true` if the cover is the constant-0 function.
    pub fn is_zero(&self) -> bool {
        self.cubes.is_empty()
    }

    /// Evaluates the cover on input pattern `p`.
    pub fn eval(&self, p: usize) -> bool {
        self.cubes.iter().any(|c| c.covers(p))
    }

    /// Expands the cover to a truth table over `nvars` variables.
    ///
    /// # Panics
    ///
    /// Panics if any cube mentions a variable `>= nvars`.
    pub fn to_tt(&self, nvars: usize) -> Tt {
        let mut t = Tt::zero(nvars);
        for c in &self.cubes {
            t = t.or(&c.to_tt(nvars));
        }
        t
    }
}

impl fmt::Debug for Sop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cubes.is_empty() {
            return write!(f, "0");
        }
        for (i, c) in self.cubes.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{c:?}")?;
        }
        Ok(())
    }
}

impl FromIterator<Cube> for Sop {
    fn from_iter<I: IntoIterator<Item = Cube>>(iter: I) -> Sop {
        Sop {
            cubes: iter.into_iter().collect(),
        }
    }
}

impl Extend<Cube> for Sop {
    fn extend<I: IntoIterator<Item = Cube>>(&mut self, iter: I) {
        self.cubes.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tautology_covers_everything() {
        for p in 0..16 {
            assert!(Cube::TAUTOLOGY.covers(p));
        }
        assert!(Cube::TAUTOLOGY.to_tt(4).is_const1());
    }

    #[test]
    fn literal_masks() {
        let c = Cube::TAUTOLOGY.with_pos(1).with_neg(3);
        assert!(c.covers(0b0010));
        assert!(c.covers(0b0110));
        assert!(!c.covers(0b1010)); // x3 = 1 violates !x3
        assert!(!c.covers(0b0000)); // x1 = 0 violates x1
        assert_eq!(c.num_literals(), 2);
    }

    #[test]
    fn without_removes_either_polarity() {
        let c = Cube::TAUTOLOGY.with_pos(0).with_neg(1);
        assert_eq!(c.without(0).num_literals(), 1);
        assert_eq!(c.without(1).num_literals(), 1);
        assert_eq!(c.without(2), c);
    }

    #[test]
    fn containment() {
        let big = Cube::TAUTOLOGY.with_pos(0);
        let small = big.with_neg(1);
        assert!(small.is_contained_in(big));
        assert!(!big.is_contained_in(small));
        assert!(small.is_contained_in(Cube::TAUTOLOGY));
    }

    #[test]
    fn cube_to_tt_matches_covers() {
        let c = Cube::TAUTOLOGY.with_pos(2).with_neg(0);
        let t = c.to_tt(4);
        for p in 0..16 {
            assert_eq!(t.get(p), c.covers(p));
        }
    }

    #[test]
    fn sop_eval_and_tt_agree() {
        let s = Sop::new(vec![
            Cube::TAUTOLOGY.with_pos(0).with_pos(1),
            Cube::TAUTOLOGY.with_neg(2),
        ]);
        let t = s.to_tt(3);
        for p in 0..8 {
            assert_eq!(t.get(p), s.eval(p));
        }
        assert_eq!(s.num_cubes(), 2);
        assert_eq!(s.num_literals(), 3);
    }

    #[test]
    fn empty_sop_is_zero() {
        let s = Sop::zero();
        assert!(s.is_zero());
        assert!(s.to_tt(3).is_const0());
        assert!(!s.eval(5));
    }

    #[test]
    fn debug_formats() {
        let c = Cube::TAUTOLOGY.with_pos(0).with_neg(2);
        assert_eq!(format!("{c:?}"), "x0!x2");
        let s = Sop::new(vec![c, Cube::TAUTOLOGY]);
        assert_eq!(format!("{s:?}"), "x0!x2 + 1");
        assert_eq!(format!("{:?}", Sop::zero()), "0");
    }

    #[test]
    fn collect_and_extend() {
        let mut s: Sop = [Cube::TAUTOLOGY.with_pos(0)].into_iter().collect();
        s.extend([Cube::TAUTOLOGY.with_neg(1)]);
        assert_eq!(s.num_cubes(), 2);
    }
}
