//! Word-level construction helpers over AIG literals.
//!
//! A "word" is a `Vec<Lit>` in LSB-first order. These helpers build the
//! datapath structures the benchmark generators are assembled from. All of
//! them are pure netlist constructors: they only append nodes to the given
//! graph and never declare inputs or outputs.

use alsrac_aig::{Aig, Lit};

/// Result of a full adder: `(sum, carry)`.
fn full_adder(aig: &mut Aig, a: Lit, b: Lit, cin: Lit) -> (Lit, Lit) {
    let axb = aig.xor(a, b);
    let sum = aig.xor(axb, cin);
    let ab = aig.and(a, b);
    let cx = aig.and(cin, axb);
    let carry = aig.or(ab, cx);
    (sum, carry)
}

/// Ripple-carry addition of two equal-width words, returning
/// `(sum, carry_out)`.
///
/// # Panics
///
/// Panics if the words have different widths.
pub fn ripple_add(aig: &mut Aig, a: &[Lit], b: &[Lit], cin: Lit) -> (Vec<Lit>, Lit) {
    assert_eq!(a.len(), b.len(), "operand width mismatch");
    let mut sum = Vec::with_capacity(a.len());
    let mut carry = cin;
    for (&ai, &bi) in a.iter().zip(b) {
        let (s, c) = full_adder(aig, ai, bi, carry);
        sum.push(s);
        carry = c;
    }
    (sum, carry)
}

/// Carry-lookahead addition with 4-bit lookahead blocks chained by their
/// block carries, returning `(sum, carry_out)` — the classic CLA structure
/// of the `cla32` benchmark.
///
/// # Panics
///
/// Panics if the words have different widths.
pub fn carry_lookahead_add(aig: &mut Aig, a: &[Lit], b: &[Lit], cin: Lit) -> (Vec<Lit>, Lit) {
    assert_eq!(a.len(), b.len(), "operand width mismatch");
    const BLOCK: usize = 4;
    let mut sum = Vec::with_capacity(a.len());
    let mut carry = cin;
    for start in (0..a.len()).step_by(BLOCK) {
        let end = (start + BLOCK).min(a.len());
        let (block_sum, block_carry) =
            flat_lookahead_add(aig, &a[start..end], &b[start..end], carry);
        sum.extend(block_sum);
        carry = block_carry;
    }
    (sum, carry)
}

/// Fully flattened lookahead addition (all carries as two-level
/// generate/propagate expressions). Used for the blocks of
/// [`carry_lookahead_add`]; exponential in width, so keep operands short.
fn flat_lookahead_add(aig: &mut Aig, a: &[Lit], b: &[Lit], cin: Lit) -> (Vec<Lit>, Lit) {
    let n = a.len();
    let mut g = Vec::with_capacity(n);
    let mut p = Vec::with_capacity(n);
    for i in 0..n {
        g.push(aig.and(a[i], b[i]));
        p.push(aig.xor(a[i], b[i]));
    }
    // carry[i] = g[i-1] | p[i-1] g[i-2] | ... | p[i-1]..p[0] cin
    let mut carries = Vec::with_capacity(n + 1);
    carries.push(cin);
    for i in 1..=n {
        let mut terms = Vec::with_capacity(i + 1);
        for j in (0..i).rev() {
            // g[j] & p[j+1] & ... & p[i-1]
            let mut term = g[j];
            for &pk in &p[j + 1..i] {
                term = aig.and(term, pk);
            }
            terms.push(term);
        }
        let mut all_p = cin;
        for &pk in &p[..i] {
            all_p = aig.and(all_p, pk);
        }
        terms.push(all_p);
        carries.push(aig.or_all(&terms));
    }
    let sum = (0..n).map(|i| aig.xor(p[i], carries[i])).collect();
    (sum, carries[n])
}

/// Kogge–Stone parallel-prefix addition, returning `(sum, carry_out)`.
///
/// Mirrors the `ksa32` benchmark: log-depth prefix tree of
/// generate/propagate pairs.
///
/// # Panics
///
/// Panics if the words have different widths.
pub fn kogge_stone_add(aig: &mut Aig, a: &[Lit], b: &[Lit], cin: Lit) -> (Vec<Lit>, Lit) {
    assert_eq!(a.len(), b.len(), "operand width mismatch");
    let n = a.len();
    let mut g: Vec<Lit> = Vec::with_capacity(n);
    let mut p: Vec<Lit> = Vec::with_capacity(n);
    let mut p0: Vec<Lit> = Vec::with_capacity(n); // original propagate (xor)
    for i in 0..n {
        let gi = aig.and(a[i], b[i]);
        let pi = aig.xor(a[i], b[i]);
        // Fold cin into position 0's generate: g0' = g0 | p0 & cin.
        if i == 0 {
            let pc = aig.and(pi, cin);
            g.push(aig.or(gi, pc));
        } else {
            g.push(gi);
        }
        p.push(pi);
        p0.push(pi);
    }
    let mut dist = 1;
    while dist < n {
        let prev_g = g.clone();
        let prev_p = p.clone();
        for i in dist..n {
            let pg = aig.and(prev_p[i], prev_g[i - dist]);
            g[i] = aig.or(prev_g[i], pg);
            p[i] = aig.and(prev_p[i], prev_p[i - dist]);
        }
        dist *= 2;
    }
    // carry into bit i is g[i-1]; sum[i] = p0[i] ^ carry_in(i).
    let mut sum = Vec::with_capacity(n);
    for i in 0..n {
        let c = if i == 0 { cin } else { g[i - 1] };
        sum.push(aig.xor(p0[i], c));
    }
    (sum, g[n - 1])
}

/// Two's-complement subtraction `a - b`, returning `(difference, borrow)`
/// where `borrow` is 1 when `a < b` (unsigned).
pub fn subtract(aig: &mut Aig, a: &[Lit], b: &[Lit]) -> (Vec<Lit>, Lit) {
    let nb: Vec<Lit> = b.iter().map(|&l| !l).collect();
    let (diff, carry) = ripple_add(aig, a, &nb, Lit::TRUE);
    (diff, !carry)
}

/// Unsigned array multiplication, returning the `2n`-bit product.
///
/// Rows of partial products are accumulated with ripple adders — the
/// classic array multiplier structure (the `mtp8` benchmark family).
pub fn array_multiply(aig: &mut Aig, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
    let (n, m) = (a.len(), b.len());
    if n == 0 || m == 0 {
        return Vec::new();
    }
    // Start with row 0.
    let mut acc: Vec<Lit> = a.iter().map(|&ai| aig.and(ai, b[0])).collect();
    acc.resize(n + m, Lit::FALSE);
    for (j, &bj) in b.iter().enumerate().skip(1) {
        let row: Vec<Lit> = a.iter().map(|&ai| aig.and(ai, bj)).collect();
        // Add `row` into acc at offset j.
        let (sum, carry) = ripple_add(aig, &acc[j..j + n], &row, Lit::FALSE);
        acc.splice(j..j + n, sum);
        if j + n < n + m {
            acc[j + n] = carry;
        }
    }
    acc
}

/// Unsigned Wallace-tree multiplication, returning the `2n`-bit product.
///
/// Partial products are reduced with carry-save (3:2 compressor) layers and
/// the final two rows are merged with a ripple adder — the `wal8` benchmark
/// family.
pub fn wallace_multiply(aig: &mut Aig, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
    let (n, m) = (a.len(), b.len());
    if n == 0 || m == 0 {
        return Vec::new();
    }
    let width = n + m;
    // Column-wise dots.
    let mut columns: Vec<Vec<Lit>> = vec![Vec::new(); width];
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            let dot = aig.and(ai, bj);
            columns[i + j].push(dot);
        }
    }
    // Reduce until every column has at most 2 dots.
    while columns.iter().any(|c| c.len() > 2) {
        let mut next: Vec<Vec<Lit>> = vec![Vec::new(); width];
        for (col, dots) in columns.iter().enumerate() {
            let mut k = 0;
            while dots.len() - k >= 3 {
                let (s, c) = full_adder(aig, dots[k], dots[k + 1], dots[k + 2]);
                next[col].push(s);
                if col + 1 < width {
                    next[col + 1].push(c);
                }
                k += 3;
            }
            if dots.len() - k == 2 {
                let s = aig.xor(dots[k], dots[k + 1]);
                let c = aig.and(dots[k], dots[k + 1]);
                next[col].push(s);
                if col + 1 < width {
                    next[col + 1].push(c);
                }
            } else if dots.len() - k == 1 {
                next[col].push(dots[k]);
            }
        }
        columns = next;
    }
    // Final carry-propagate addition over the two remaining rows.
    let row0: Vec<Lit> = columns
        .iter()
        .map(|c| c.first().copied().unwrap_or(Lit::FALSE))
        .collect();
    let row1: Vec<Lit> = columns
        .iter()
        .map(|c| c.get(1).copied().unwrap_or(Lit::FALSE))
        .collect();
    let (sum, _carry) = ripple_add(aig, &row0, &row1, Lit::FALSE);
    sum
}

/// Unsigned comparison `a < b`.
pub fn less_than(aig: &mut Aig, a: &[Lit], b: &[Lit]) -> Lit {
    let (_, borrow) = subtract(aig, a, b);
    borrow
}

/// Word equality `a == b`.
pub fn equal(aig: &mut Aig, a: &[Lit], b: &[Lit]) -> Lit {
    assert_eq!(a.len(), b.len(), "operand width mismatch");
    let eqs: Vec<Lit> = a.iter().zip(b).map(|(&x, &y)| aig.xnor(x, y)).collect();
    aig.and_all(&eqs)
}

/// Bitwise select between two words: `if sel { t } else { e }`.
pub fn mux_word(aig: &mut Aig, sel: Lit, t: &[Lit], e: &[Lit]) -> Vec<Lit> {
    assert_eq!(t.len(), e.len(), "operand width mismatch");
    t.iter()
        .zip(e)
        .map(|(&ti, &ei)| aig.mux(sel, ti, ei))
        .collect()
}

/// Logical barrel shift left of `value` by `amount` (LSB-first amount),
/// filling with zeros. The result has the same width as `value`.
pub fn barrel_shift_left(aig: &mut Aig, value: &[Lit], amount: &[Lit]) -> Vec<Lit> {
    let mut current = value.to_vec();
    for (k, &sel) in amount.iter().enumerate() {
        let shift = 1usize << k;
        let shifted: Vec<Lit> = (0..current.len())
            .map(|i| {
                if i >= shift {
                    current[i - shift]
                } else {
                    Lit::FALSE
                }
            })
            .collect();
        current = mux_word(aig, sel, &shifted, &current);
    }
    current
}

/// Logical barrel shift right (zero-filling).
pub fn barrel_shift_right(aig: &mut Aig, value: &[Lit], amount: &[Lit]) -> Vec<Lit> {
    let mut current = value.to_vec();
    for (k, &sel) in amount.iter().enumerate() {
        let shift = 1usize << k;
        let shifted: Vec<Lit> = (0..current.len())
            .map(|i| current.get(i + shift).copied().unwrap_or(Lit::FALSE))
            .collect();
        current = mux_word(aig, sel, &shifted, &current);
    }
    current
}

/// Constant word of the given width.
pub fn constant_word(value: u64, width: usize) -> Vec<Lit> {
    (0..width)
        .map(|i| {
            if value >> i & 1 != 0 {
                Lit::TRUE
            } else {
                Lit::FALSE
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Evaluates a word-level circuit built by `build` on all pairs of
    /// `w`-bit operands (or a sample for wide words) against `model`.
    fn check_binop(
        w: usize,
        build: impl Fn(&mut Aig, &[Lit], &[Lit]) -> Vec<Lit>,
        model: impl Fn(u64, u64) -> u64,
        out_width: usize,
    ) {
        let mut aig = Aig::new("t");
        let a = aig.add_inputs("a", w);
        let b = aig.add_inputs("b", w);
        let out = build(&mut aig, &a, &b);
        assert_eq!(out.len(), out_width);
        for (i, &o) in out.iter().enumerate() {
            aig.add_output(format!("o{i}"), o);
        }
        let step = if w <= 4 { 1 } else { 37 };
        for av in (0..1u64 << w).step_by(step) {
            for bv in (0..1u64 << w).step_by(step) {
                let mut bits = Vec::new();
                for i in 0..w {
                    bits.push(av >> i & 1 != 0);
                }
                for i in 0..w {
                    bits.push(bv >> i & 1 != 0);
                }
                let got: u64 = aig
                    .evaluate(&bits)
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| (v as u64) << i)
                    .sum();
                assert_eq!(got, model(av, bv), "a={av} b={bv} w={w}");
            }
        }
    }

    #[test]
    fn ripple_add_is_addition() {
        check_binop(
            4,
            |g, a, b| {
                let (mut s, c) = ripple_add(g, a, b, Lit::FALSE);
                s.push(c);
                s
            },
            |a, b| a + b,
            5,
        );
    }

    #[test]
    fn cla_is_addition() {
        check_binop(
            4,
            |g, a, b| {
                let (mut s, c) = carry_lookahead_add(g, a, b, Lit::FALSE);
                s.push(c);
                s
            },
            |a, b| a + b,
            5,
        );
    }

    #[test]
    fn kogge_stone_is_addition() {
        for w in [1, 2, 3, 4, 6] {
            check_binop(
                w,
                |g, a, b| {
                    let (mut s, c) = kogge_stone_add(g, a, b, Lit::FALSE);
                    s.push(c);
                    s
                },
                |a, b| a + b,
                w + 1,
            );
        }
    }

    #[test]
    fn adders_with_carry_in() {
        let mut aig = Aig::new("t");
        let a = aig.add_inputs("a", 3);
        let b = aig.add_inputs("b", 3);
        let (s1, c1) = ripple_add(&mut aig, &a, &b, Lit::TRUE);
        let (s2, c2) = carry_lookahead_add(&mut aig, &a, &b, Lit::TRUE);
        let (s3, c3) = kogge_stone_add(&mut aig, &a, &b, Lit::TRUE);
        for (i, &l) in s1.iter().chain(&s2).chain(&s3).enumerate() {
            aig.add_output(format!("s{i}"), l);
        }
        aig.add_output("c1", c1);
        aig.add_output("c2", c2);
        aig.add_output("c3", c3);
        for av in 0..8u64 {
            for bv in 0..8u64 {
                let want = av + bv + 1;
                let mut bits = Vec::new();
                for i in 0..3 {
                    bits.push(av >> i & 1 != 0);
                }
                for i in 0..3 {
                    bits.push(bv >> i & 1 != 0);
                }
                let out = aig.evaluate(&bits);
                for adder in 0..3 {
                    let mut got = 0u64;
                    for i in 0..3 {
                        got |= (out[adder * 3 + i] as u64) << i;
                    }
                    got |= (out[9 + adder] as u64) << 3;
                    assert_eq!(got, want, "adder {adder} a={av} b={bv}");
                }
            }
        }
    }

    #[test]
    fn subtract_matches_two_complement() {
        check_binop(
            4,
            |g, a, b| {
                let (mut d, borrow) = subtract(g, a, b);
                d.push(borrow);
                d
            },
            |a, b| (a.wrapping_sub(b) & 0xF) | (u64::from(a < b) << 4),
            5,
        );
    }

    #[test]
    fn array_multiply_is_multiplication() {
        check_binop(4, array_multiply, |a, b| a * b, 8);
    }

    #[test]
    fn wallace_multiply_is_multiplication() {
        check_binop(4, wallace_multiply, |a, b| a * b, 8);
        check_binop(3, wallace_multiply, |a, b| a * b, 6);
    }

    #[test]
    fn comparisons() {
        check_binop(
            3,
            |g, a, b| {
                let lt = less_than(g, a, b);
                let eq = equal(g, a, b);
                vec![lt, eq]
            },
            |a, b| u64::from(a < b) | (u64::from(a == b) << 1),
            2,
        );
    }

    #[test]
    fn shifts() {
        // 4-bit value, 2-bit amount packed as a 6-bit operand space: test
        // via dedicated circuit instead of check_binop.
        let mut aig = Aig::new("t");
        let v = aig.add_inputs("v", 4);
        let s = aig.add_inputs("s", 2);
        let left = barrel_shift_left(&mut aig, &v, &s);
        let right = barrel_shift_right(&mut aig, &v, &s);
        for (i, &l) in left.iter().chain(&right).enumerate() {
            aig.add_output(format!("o{i}"), l);
        }
        for vv in 0..16u64 {
            for sv in 0..4u64 {
                let mut bits = Vec::new();
                for i in 0..4 {
                    bits.push(vv >> i & 1 != 0);
                }
                for i in 0..2 {
                    bits.push(sv >> i & 1 != 0);
                }
                let out = aig.evaluate(&bits);
                let got_l: u64 = (0..4).map(|i| (out[i] as u64) << i).sum();
                let got_r: u64 = (0..4).map(|i| (out[4 + i] as u64) << i).sum();
                assert_eq!(got_l, vv << sv & 0xF, "left v={vv} s={sv}");
                assert_eq!(got_r, vv >> sv, "right v={vv} s={sv}");
            }
        }
    }

    #[test]
    fn constant_word_bits() {
        let w = constant_word(0b1010, 4);
        assert_eq!(w, vec![Lit::FALSE, Lit::TRUE, Lit::FALSE, Lit::TRUE]);
    }

    #[test]
    fn mux_word_selects() {
        let mut aig = Aig::new("t");
        let s = aig.add_input("s");
        let t = aig.add_inputs("t", 2);
        let e = aig.add_inputs("e", 2);
        let m = mux_word(&mut aig, s, &t, &e);
        aig.add_output("m0", m[0]);
        aig.add_output("m1", m[1]);
        assert_eq!(
            aig.evaluate(&[true, true, false, false, true]),
            vec![true, false]
        );
        assert_eq!(
            aig.evaluate(&[false, true, false, false, true]),
            vec![false, true]
        );
    }
}
