//! Structural Verilog netlist writer.
//!
//! Emits a synthesizable gate-level module (`assign`-based AND/NOT forms)
//! so approximate circuits can be handed to downstream EDA tools. Write
//! only — round-tripping Verilog is out of scope; use BLIF or AIGER for
//! interchange.

use alsrac_aig::{Aig, Node, NodeId};

/// Serializes the graph as a structural Verilog module.
///
/// Inputs and outputs keep their names (sanitized to identifier
/// characters); internal nodes become wires `n<index>`.
pub fn write(aig: &Aig) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let module = sanitize(aig.name());
    let inputs: Vec<String> = (0..aig.num_inputs())
        .map(|i| sanitize(aig.input_name(i)))
        .collect();
    let outputs: Vec<String> = aig.outputs().iter().map(|o| sanitize(&o.name)).collect();

    let _ = writeln!(out, "module {module} (");
    let mut ports: Vec<String> = inputs
        .iter()
        .map(|n| format!("  input  wire {n}"))
        .collect();
    ports.extend(outputs.iter().map(|n| format!("  output wire {n}")));
    let _ = writeln!(out, "{}", ports.join(",\n"));
    let _ = writeln!(out, ");");

    let signal = |id: NodeId| -> String {
        match aig.node(id) {
            Node::Const => "1'b0".to_string(),
            Node::Input { index } => sanitize(aig.input_name(*index as usize)),
            Node::And { .. } => format!("n{}", id.index()),
        }
    };
    let literal = |lit: alsrac_aig::Lit| -> String {
        let s = signal(lit.node());
        if lit.is_complement() {
            if s == "1'b0" {
                "1'b1".to_string()
            } else {
                format!("~{s}")
            }
        } else {
            s
        }
    };

    for id in aig.iter_ands() {
        let _ = writeln!(out, "  wire n{};", id.index());
    }
    for id in aig.iter_ands() {
        let [f0, f1] = aig.and_fanins(id);
        let _ = writeln!(
            out,
            "  assign n{} = {} & {};",
            id.index(),
            literal(f0),
            literal(f1)
        );
    }
    for (o, output) in aig.outputs().iter().enumerate() {
        let _ = writeln!(out, "  assign {} = {};", outputs[o], literal(output.lit));
    }
    out.push_str("endmodule\n");
    out
}

fn sanitize(name: &str) -> String {
    let mut cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() || cleaned.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        cleaned.insert(0, '_');
    }
    cleaned
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith;

    #[test]
    fn emits_well_formed_module() {
        let aig = arith::ripple_carry_adder(2);
        let v = write(&aig);
        assert!(v.starts_with("module rca2 ("));
        assert!(v.trim_end().ends_with("endmodule"));
        assert!(v.contains("input  wire a0"));
        assert!(v.contains("output wire cout"));
        // One assign per AND node plus one per output.
        let assigns = v.matches("assign").count();
        assert_eq!(assigns, aig.num_ands() + aig.num_outputs());
    }

    #[test]
    fn complemented_edges_use_negation() {
        let mut aig = alsrac_aig::Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let x = aig.and(!a, b);
        aig.add_output("y", !x);
        let v = write(&aig);
        assert!(v.contains("~a & b"));
        assert!(v.contains("assign y = ~n"));
    }

    #[test]
    fn constants_become_literals() {
        let mut aig = alsrac_aig::Aig::new("t");
        let _a = aig.add_input("a");
        aig.add_output("zero", alsrac_aig::Lit::FALSE);
        aig.add_output("one", alsrac_aig::Lit::TRUE);
        let v = write(&aig);
        assert!(v.contains("assign zero = 1'b0;"));
        assert!(v.contains("assign one = 1'b1;"));
    }

    #[test]
    fn sanitizes_awkward_names() {
        let mut aig = alsrac_aig::Aig::new("2bad name!");
        let a = aig.add_input("in[0]");
        aig.add_output("out.0", a);
        let v = write(&aig);
        assert!(v.contains("module _2bad_name_"));
        assert!(v.contains("in_0_"));
        assert!(v.contains("out_0"));
    }
}
