//! Named benchmark suites mirroring Table III of the ALSRAC paper.
//!
//! The original benchmark *files* (ISCAS'85, MCNC, EPFL) are artifacts we do
//! not ship; each entry here generates a circuit of the same family. Where
//! the original is an irregular netlist with no closed-form spec (the ISCAS
//! `c*` circuits, EPFL `cavlc`/`i2c`/`mem ctrl`), the analogue is either a
//! structured circuit of the same class (ALUs, parity/ECC networks,
//! comparator datapaths) or a seeded random network of comparable size —
//! see [`crate::random_logic`]. DESIGN.md records every substitution.
//!
//! Every suite is available at two scales: [`Scale::Test`] keeps circuits
//! small enough for exhaustive checking in unit tests, [`Scale::Paper`]
//! approaches the sizes of Table III for the experiment harness.

use alsrac_aig::Aig;

use crate::{arith, control, random_logic, words};

/// Generation scale for the benchmark suites.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Small instances (exhaustively checkable; fast tests).
    Test,
    /// Instances approaching the paper's Table III sizes.
    Paper,
}

/// A generated benchmark with its provenance.
#[derive(Clone, Debug)]
pub struct Benchmark {
    /// The paper's benchmark name this entry stands in for.
    pub paper_name: &'static str,
    /// The generated circuit.
    pub aig: Aig,
}

impl Benchmark {
    fn new(paper_name: &'static str, aig: Aig) -> Benchmark {
        Benchmark { paper_name, aig }
    }
}

/// `c1908`-style analogue: a Hamming-like parity/ECC network. `n` data
/// bits produce check bits over seeded overlapping groups plus a corrected
/// data word.
pub fn ecc_network(n: usize, seed: u64) -> Aig {
    let mut rng = alsrac_rt::Rng::from_seed(seed);
    let mut aig = Aig::new(format!("ecc{n}"));
    let data = aig.add_inputs("d", n);
    let groups = (usize::BITS as usize - n.leading_zeros() as usize) + 1;
    let mut checks = Vec::with_capacity(groups);
    for g in 0..groups {
        let members: Vec<_> = data
            .iter()
            .enumerate()
            .filter(|(i, _)| i >> g & 1 == 1 || rng.gen_bool(0.25))
            .map(|(_, &l)| l)
            .collect();
        let parity = aig.xor_all(&members);
        checks.push(parity);
        aig.add_output(format!("c{g}"), parity);
    }
    // A syndrome-driven "corrected" bit per data position: data XOR (all
    // checks agree on this position), giving reconvergent parity logic.
    for (i, &d) in data.iter().enumerate() {
        let involved: Vec<_> = (0..groups)
            .filter(|&g| i >> g & 1 == 1)
            .map(|g| checks[g])
            .collect();
        let syndrome = aig.and_all(&involved);
        let corrected = aig.xor(d, syndrome);
        aig.add_output(format!("o{i}"), corrected);
    }
    aig
}

/// `c2670`/`c7552`-style analogue: adder + comparator + parity datapath.
pub fn adder_comparator(n: usize) -> Aig {
    let mut aig = Aig::new(format!("addcmp{n}"));
    let a = aig.add_inputs("a", n);
    let b = aig.add_inputs("b", n);
    let (sum, carry) = words::ripple_add(&mut aig, &a, &b, alsrac_aig::Lit::FALSE);
    let lt = words::less_than(&mut aig, &a, &b);
    let eq = words::equal(&mut aig, &a, &b);
    let parity = aig.xor_all(&sum);
    for (i, &s) in sum.iter().enumerate() {
        aig.add_output(format!("s{i}"), s);
    }
    aig.add_output("cout", carry);
    aig.add_output("lt", lt);
    aig.add_output("eq", eq);
    aig.add_output("par", parity);
    aig
}

/// The ISCAS + arithmetic suite of Table IV (ASIC / ER experiments).
pub fn iscas_and_arith(scale: Scale) -> Vec<Benchmark> {
    match scale {
        Scale::Test => vec![
            Benchmark::new("alu4", arith::alu(3)),
            Benchmark::new("c880", arith::alu(4)),
            Benchmark::new("c1908", ecc_network(8, 19)),
            Benchmark::new("c2670", adder_comparator(6)),
            Benchmark::new("cla32", arith::carry_lookahead_adder(6)),
            Benchmark::new("ksa32", arith::kogge_stone_adder(6)),
            Benchmark::new("mtp8", arith::array_multiplier(4)),
            Benchmark::new("rca32", arith::ripple_carry_adder(6)),
            Benchmark::new("wal8", arith::wallace_multiplier(4)),
        ],
        Scale::Paper => vec![
            Benchmark::new("alu4", arith::alu(8)),
            Benchmark::new("c880", arith::alu(12)),
            Benchmark::new("c1908", ecc_network(24, 19)),
            Benchmark::new("c2670", adder_comparator(20)),
            Benchmark::new("c3540", arith::alu(16)),
            Benchmark::new("c5315", adder_comparator(40)),
            Benchmark::new("c7552", adder_comparator(56)),
            Benchmark::new("cla32", arith::carry_lookahead_adder(32)),
            Benchmark::new("ksa32", arith::kogge_stone_adder(32)),
            Benchmark::new("mtp8", arith::array_multiplier(8)),
            Benchmark::new("rca32", arith::ripple_carry_adder(32)),
            Benchmark::new("wal8", arith::wallace_multiplier(8)),
        ],
    }
}

/// The arithmetic subset of Table V (ASIC / NMED experiments).
pub fn arithmetic_subset(scale: Scale) -> Vec<Benchmark> {
    iscas_and_arith(scale)
        .into_iter()
        .filter(|b| matches!(b.paper_name, "cla32" | "ksa32" | "mtp8" | "rca32" | "wal8"))
        .collect()
}

/// The EPFL random/control suite of Table VI (FPGA / ER experiments).
pub fn epfl_control(scale: Scale) -> Vec<Benchmark> {
    match scale {
        Scale::Test => vec![
            Benchmark::new("arbiter", control::arbiter(6)),
            Benchmark::new("cavlc", random_logic::control_like("cavlc", 8, 90, 11)),
            Benchmark::new(
                "alu ctrl",
                random_logic::control_like("alu_ctrl", 7, 30, 12),
            ),
            Benchmark::new("decoder", control::decoder(4)),
            Benchmark::new("int2float", control::int_to_float(8, 4, 3)),
            Benchmark::new("priority", control::priority_encoder(10)),
            Benchmark::new("router", control::crossbar_router(2, 3)),
            Benchmark::new("voter", control::voter(9)),
        ],
        Scale::Paper => vec![
            Benchmark::new("arbiter", control::arbiter(32)),
            Benchmark::new("cavlc", random_logic::control_like("cavlc", 10, 280, 11)),
            Benchmark::new(
                "alu ctrl",
                random_logic::control_like("alu_ctrl", 7, 80, 12),
            ),
            Benchmark::new("decoder", control::decoder(7)),
            Benchmark::new("i2c ctrl", random_logic::control_like("i2c", 18, 600, 13)),
            Benchmark::new("int2float", control::int_to_float(11, 5, 4)),
            Benchmark::new(
                "mem ctrl",
                random_logic::control_like("mem_ctrl", 30, 2400, 14),
            ),
            Benchmark::new("priority", control::priority_encoder(64)),
            Benchmark::new("router", control::crossbar_router(4, 4)),
            Benchmark::new("voter", control::voter(31)),
        ],
    }
}

/// The EPFL arithmetic suite of Table VII (FPGA / MRED experiments).
///
/// `hyp` is omitted at both scales, as in the paper ("ALSRAC cannot
/// synthesize it within 24 hours").
pub fn epfl_arith(scale: Scale) -> Vec<Benchmark> {
    match scale {
        Scale::Test => vec![
            Benchmark::new("adder", arith::ripple_carry_adder(6)),
            Benchmark::new("shifter", arith::barrel_shifter(8)),
            Benchmark::new("divisor", arith::divider(5)),
            Benchmark::new("log2", arith::log2(8, 4)),
            Benchmark::new("max", arith::max_of(3, 4)),
            Benchmark::new("mult", arith::wallace_multiplier(4)),
            Benchmark::new("sine", arith::sine(6)),
            Benchmark::new("sqrt", arith::sqrt(8)),
            Benchmark::new("square", arith::square(5)),
        ],
        Scale::Paper => vec![
            Benchmark::new("adder", arith::ripple_carry_adder(32)),
            Benchmark::new("shifter", arith::barrel_shifter(32)),
            Benchmark::new("divisor", arith::divider(12)),
            Benchmark::new("log2", arith::log2(16, 8)),
            Benchmark::new("max", arith::max_of(4, 16)),
            Benchmark::new("mult", arith::wallace_multiplier(10)),
            Benchmark::new("sine", arith::sine(12)),
            Benchmark::new("sqrt", arith::sqrt(16)),
            Benchmark::new("square", arith::square(12)),
        ],
    }
}

/// Large generated circuits for the windowed-resubstitution scale
/// experiments (`bench_window` / BENCH_scale.json): scaled array
/// multipliers and EPFL-style arithmetic datapaths in the 10k–100k AND
/// range. These are not part of the paper's tables — whole-circuit
/// resubstitution does not finish on them, which is the point.
pub fn scale_benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark::new("wal32", arith::wallace_multiplier(32)),
        Benchmark::new("mtp48", arith::array_multiplier(48)),
        Benchmark::new("mac16x8", arith::multiply_accumulate(16, 8)),
        Benchmark::new("mac24x16", arith::multiply_accumulate(24, 16)),
    ]
}

/// Looks up a single benchmark by its paper name across all suites.
pub fn by_name(paper_name: &str, scale: Scale) -> Option<Aig> {
    iscas_and_arith(scale)
        .into_iter()
        .chain(epfl_control(scale))
        .chain(epfl_arith(scale))
        .find(|b| b.paper_name == paper_name)
        .map(|b| b.aig)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_suites_generate_valid_circuits() {
        for scale in [Scale::Test, Scale::Paper] {
            for bench in iscas_and_arith(scale)
                .into_iter()
                .chain(epfl_control(scale))
                .chain(epfl_arith(scale))
            {
                assert!(bench.aig.num_inputs() > 0, "{}", bench.paper_name);
                assert!(bench.aig.num_outputs() > 0, "{}", bench.paper_name);
                assert!(bench.aig.num_ands() > 0, "{}", bench.paper_name);
                // The reference evaluator must run without panicking.
                let zeros = vec![false; bench.aig.num_inputs()];
                let _ = bench.aig.evaluate(&zeros);
            }
        }
    }

    #[test]
    fn paper_scale_is_larger_than_test_scale() {
        let small: usize = iscas_and_arith(Scale::Test)
            .iter()
            .map(|b| b.aig.num_ands())
            .sum();
        let large: usize = iscas_and_arith(Scale::Paper)
            .iter()
            .map(|b| b.aig.num_ands())
            .sum();
        assert!(large > 2 * small);
    }

    #[test]
    fn scale_suite_reaches_window_scale() {
        let suite = scale_benchmarks();
        assert!(!suite.is_empty());
        for bench in &suite {
            assert!(
                bench.aig.num_ands() >= 10_000,
                "{} has only {} ANDs",
                bench.paper_name,
                bench.aig.num_ands()
            );
            assert!(
                bench.aig.num_ands() <= 150_000,
                "{} too large: {} ANDs",
                bench.paper_name,
                bench.aig.num_ands()
            );
            // The reference evaluator must run without panicking.
            let zeros = vec![false; bench.aig.num_inputs()];
            let out = bench.aig.evaluate(&zeros);
            assert!(out.iter().all(|&v| !v), "zero inputs give zero outputs");
        }
    }

    #[test]
    fn by_name_finds_benchmarks() {
        assert!(by_name("rca32", Scale::Test).is_some());
        assert!(by_name("voter", Scale::Paper).is_some());
        assert!(by_name("hyp", Scale::Paper).is_none());
    }

    #[test]
    fn arithmetic_subset_matches_table_v() {
        let names: Vec<_> = arithmetic_subset(Scale::Test)
            .iter()
            .map(|b| b.paper_name)
            .collect();
        assert_eq!(names, vec!["cla32", "ksa32", "mtp8", "rca32", "wal8"]);
    }

    #[test]
    fn ecc_network_has_reconvergence() {
        let aig = ecc_network(8, 19);
        assert!(aig.num_ands() > 30);
        assert_eq!(aig.num_inputs(), 8);
    }

    #[test]
    fn adder_comparator_flags_are_consistent() {
        let aig = adder_comparator(4);
        // a = 3, b = 5: lt = 1, eq = 0, sum = 8.
        let mut bits = vec![false; 8];
        bits[0] = true;
        bits[1] = true; // a = 3
        bits[4] = true;
        bits[6] = true; // b = 5
        let out = aig.evaluate(&bits);
        let sum: u64 = (0..4).map(|i| (out[i] as u64) << i).sum();
        let cout = out[4];
        let lt = out[5];
        let eq = out[6];
        assert_eq!(sum | (cout as u64) << 4, 8);
        assert!(lt);
        assert!(!eq);
    }
}
