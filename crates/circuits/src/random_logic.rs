//! Seeded random logic networks.
//!
//! Used in two roles: as stand-ins for the irregular control benchmarks
//! (`cavlc`, `i2c ctrl`, `mem ctrl` and friends have no closed-form
//! specification we can regenerate, but any dense random multi-level
//! network exercises the same synthesis code paths), and as the circuit
//! source for the property-based tests of the synthesis and mapping crates.

use alsrac_aig::{Aig, Lit};
use alsrac_rt::Rng;

/// Configuration for [`random_network`].
#[derive(Clone, Debug)]
pub struct RandomNetworkConfig {
    /// Number of primary inputs.
    pub num_inputs: usize,
    /// Number of primary outputs.
    pub num_outputs: usize,
    /// Number of AND nodes to attempt to create.
    pub num_gates: usize,
    /// How far back a gate may reach for its fanins: a gate prefers recent
    /// literals when this is small, giving deeper, narrower networks.
    pub locality: usize,
    /// RNG seed; the same configuration and seed give the same circuit.
    pub seed: u64,
}

impl Default for RandomNetworkConfig {
    fn default() -> RandomNetworkConfig {
        RandomNetworkConfig {
            num_inputs: 8,
            num_outputs: 4,
            num_gates: 60,
            locality: 24,
            seed: 1,
        }
    }
}

/// Generates a random multi-level AIG.
///
/// Gates pick two distinct earlier literals (optionally complemented) from
/// a sliding window of recent signals; outputs are drawn from the last
/// created signals so most of the network stays alive after sweeping.
/// Structural hashing may merge some requested gates, so `num_ands()` can
/// be slightly below `num_gates`.
///
/// # Panics
///
/// Panics if `num_inputs == 0` or `num_outputs == 0`.
pub fn random_network(config: &RandomNetworkConfig) -> Aig {
    assert!(config.num_inputs > 0, "need at least one input");
    assert!(config.num_outputs > 0, "need at least one output");
    let mut rng = Rng::from_seed(config.seed);
    let mut aig = Aig::new(format!("rand_s{}", config.seed));
    let mut signals: Vec<Lit> = aig.add_inputs("x", config.num_inputs);

    for _ in 0..config.num_gates {
        let window = config.locality.max(2).min(signals.len());
        let lo = signals.len() - window;
        let i = rng.gen_range(lo..signals.len());
        let mut j = rng.gen_range(lo..signals.len());
        if i == j {
            j = if j + 1 < signals.len() { j + 1 } else { lo };
        }
        let a = signals[i].complement_if(rng.gen_bool(0.5));
        let b = signals[j].complement_if(rng.gen_bool(0.5));
        let g = aig.and(a, b);
        signals.push(g);
    }

    let tail = signals.len().saturating_sub(config.num_outputs * 2);
    for o in 0..config.num_outputs {
        let idx = rng.gen_range(tail..signals.len());
        let lit = signals[idx].complement_if(rng.gen_bool(0.5));
        aig.add_output(format!("y{o}"), lit);
    }
    aig
}

/// Convenience: a random network sized to mimic a mid-size control
/// benchmark (`i2c`/`cavlc` class).
pub fn control_like(name: &str, num_inputs: usize, num_gates: usize, seed: u64) -> Aig {
    let mut aig = random_network(&RandomNetworkConfig {
        num_inputs,
        num_outputs: (num_inputs / 2).max(1),
        num_gates,
        locality: num_gates / 4 + 8,
        seed,
    });
    aig.set_name(name.to_string());
    aig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let cfg = RandomNetworkConfig::default();
        let a = random_network(&cfg);
        let b = random_network(&cfg);
        assert_eq!(a.num_ands(), b.num_ands());
        // Same structure: same evaluation on sampled patterns.
        for p in 0..16u64 {
            let bits: Vec<bool> = (0..8).map(|i| p >> i & 1 != 0).collect();
            assert_eq!(a.evaluate(&bits), b.evaluate(&bits));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_network(&RandomNetworkConfig::default());
        let b = random_network(&RandomNetworkConfig {
            seed: 2,
            ..RandomNetworkConfig::default()
        });
        let mut any_diff = false;
        for p in 0..64u64 {
            let bits: Vec<bool> = (0..8).map(|i| p >> i & 1 != 0).collect();
            if a.evaluate(&bits) != b.evaluate(&bits) {
                any_diff = true;
                break;
            }
        }
        assert!(any_diff, "two seeds produced identical functions");
    }

    #[test]
    fn creates_roughly_requested_size() {
        let cfg = RandomNetworkConfig {
            num_gates: 200,
            ..RandomNetworkConfig::default()
        };
        let aig = random_network(&cfg);
        assert!(aig.num_ands() > 100, "size {}", aig.num_ands());
        assert!(aig.num_ands() <= 200);
        assert_eq!(aig.num_inputs(), 8);
        assert_eq!(aig.num_outputs(), 4);
    }

    #[test]
    fn control_like_names_and_sizes() {
        let aig = control_like("i2c_like", 16, 300, 7);
        assert_eq!(aig.name(), "i2c_like");
        assert_eq!(aig.num_inputs(), 16);
        assert!(aig.num_ands() > 150);
    }

    #[test]
    fn outputs_survive_sweep() {
        let aig = random_network(&RandomNetworkConfig::default());
        let cleaned = aig.cleaned();
        // Most of the logic should be reachable from the outputs.
        assert!(cleaned.num_ands() * 4 >= aig.num_ands());
    }
}
