//! Random/control benchmark generators.
//!
//! Analogues of the EPFL random/control set used in Table VI of the paper:
//! decoders, priority encoders, arbiters, voters, routers, and an
//! int-to-float converter.

use alsrac_aig::{Aig, Lit};

use crate::words;

/// `decoder{n}`: full `n`-to-`2^n` decoder (`n` inputs, `2^n` outputs).
///
/// # Panics
///
/// Panics if `n > 12` (the output count would explode).
pub fn decoder(n: usize) -> Aig {
    assert!(n <= 12, "decoder limited to 12 select bits");
    let mut aig = Aig::new(format!("decoder{n}"));
    let sel = aig.add_inputs("s", n);
    for value in 0..1usize << n {
        let lits: Vec<Lit> = sel
            .iter()
            .enumerate()
            .map(|(i, &s)| s.complement_if(value >> i & 1 == 0))
            .collect();
        let out = aig.and_all(&lits);
        aig.add_output(format!("d{value}"), out);
    }
    aig
}

/// `priority{n}`: priority encoder over `n` request lines (`n` inputs,
/// `ceil(log2(n)) + 1` outputs: the index of the lowest-numbered active
/// request plus a `valid` flag).
pub fn priority_encoder(n: usize) -> Aig {
    let idx_bits = usize::BITS as usize - (n.max(2) - 1).leading_zeros() as usize;
    let mut aig = Aig::new(format!("priority{n}"));
    let req = aig.add_inputs("r", n);
    let mut taken = Lit::FALSE;
    let mut index = words::constant_word(0, idx_bits);
    for (i, &r) in req.iter().enumerate() {
        let wins = aig.and(r, !taken);
        let this = words::constant_word(i as u64, idx_bits);
        index = words::mux_word(&mut aig, wins, &this, &index);
        taken = aig.or(taken, r);
    }
    for (i, &b) in index.iter().enumerate() {
        aig.add_output(format!("i{i}"), b);
    }
    aig.add_output("valid", taken);
    aig
}

/// `arbiter{n}`: combinational rotating-priority arbiter (`n` request lines
/// plus `ceil(log2 n)` pointer bits in, `n` one-hot grant lines out).
///
/// Grants the first active request at or after the pointer position — the
/// combinational core of a round-robin arbiter, standing in for the EPFL
/// `arbiter`.
pub fn arbiter(n: usize) -> Aig {
    let ptr_bits = usize::BITS as usize - (n.max(2) - 1).leading_zeros() as usize;
    let mut aig = Aig::new(format!("arbiter{n}"));
    let req = aig.add_inputs("r", n);
    let ptr = aig.add_inputs("p", ptr_bits);

    // at_or_after[i] = 1 iff i >= ptr (unsigned compare against constant i).
    let mut grants = vec![Lit::FALSE; n];
    // Two passes: first requests at/after the pointer, then wrap-around.
    let mut any_high = Lit::FALSE; // some request granted in the first pass
    let mut taken_high = Lit::FALSE;
    let mut high_grants = vec![Lit::FALSE; n];
    for i in 0..n {
        let iconst = words::constant_word(i as u64, ptr_bits);
        let lt = words::less_than(&mut aig, &iconst, &ptr);
        let eligible = !lt; // i >= ptr
        let wins_pre = aig.and(req[i], eligible);
        let wins = aig.and(wins_pre, !taken_high);
        high_grants[i] = wins;
        taken_high = aig.or(taken_high, wins_pre);
        any_high = aig.or(any_high, wins);
    }
    let mut taken_low = Lit::FALSE;
    for i in 0..n {
        let wins_pre = aig.and(req[i], !any_high);
        let wins = aig.and(wins_pre, !taken_low);
        grants[i] = aig.or(high_grants[i], wins);
        taken_low = aig.or(taken_low, req[i]);
    }
    for (i, &g) in grants.iter().enumerate() {
        aig.add_output(format!("g{i}"), g);
    }
    aig
}

/// `voter{n}`: majority voter over `n` (odd) inputs (`n` inputs, 1 output).
///
/// Built as a population count followed by a threshold compare — the EPFL
/// `voter` analogue.
///
/// # Panics
///
/// Panics if `n` is even or zero.
pub fn voter(n: usize) -> Aig {
    assert!(n % 2 == 1, "voter needs an odd input count");
    let mut aig = Aig::new(format!("voter{n}"));
    let xs = aig.add_inputs("x", n);
    let count = popcount(&mut aig, &xs);
    let threshold = words::constant_word((n / 2 + 1) as u64, count.len());
    let lt = words::less_than(&mut aig, &count, &threshold);
    aig.add_output("maj", !lt);
    aig
}

/// Population count of a list of bits, returned as a word.
pub fn popcount(aig: &mut Aig, bits: &[Lit]) -> Vec<Lit> {
    match bits.len() {
        0 => vec![Lit::FALSE],
        1 => vec![bits[0]],
        _ => {
            let half = bits.len() / 2;
            let mut left = popcount(aig, &bits[..half]);
            let mut right = popcount(aig, &bits[half..]);
            let width = left.len().max(right.len()) + 1;
            left.resize(width, Lit::FALSE);
            right.resize(width, Lit::FALSE);
            let (sum, _carry) = words::ripple_add(aig, &left, &right, Lit::FALSE);
            sum
        }
    }
}

/// `router{k}x{n}`: a `k`-port crossbar route selector: for each output
/// port, `n`-bit data is selected from one of `k` input ports by a
/// per-output select field (`k*n + k*ceil(log2 k)` inputs, `k*n` outputs).
///
/// Stands in for the EPFL `router` control benchmark.
pub fn crossbar_router(k: usize, n: usize) -> Aig {
    let sel_bits = usize::BITS as usize - (k.max(2) - 1).leading_zeros() as usize;
    let mut aig = Aig::new(format!("router{k}x{n}"));
    let ports: Vec<Vec<Lit>> = (0..k)
        .map(|p| aig.add_inputs(&format!("in{p}_"), n))
        .collect();
    let selects: Vec<Vec<Lit>> = (0..k)
        .map(|p| aig.add_inputs(&format!("sel{p}_"), sel_bits))
        .collect();
    for (out_port, sel) in selects.iter().enumerate() {
        let mut chosen = vec![Lit::FALSE; n];
        for (in_port, data) in ports.iter().enumerate() {
            let iconst = words::constant_word(in_port as u64, sel_bits);
            let is_sel = words::equal(&mut aig, sel, &iconst);
            let gated: Vec<Lit> = data.iter().map(|&d| aig.and(d, is_sel)).collect();
            chosen = chosen
                .iter()
                .zip(&gated)
                .map(|(&c, &g)| aig.or(c, g))
                .collect();
        }
        for (i, &c) in chosen.iter().enumerate() {
            aig.add_output(format!("out{out_port}_{i}"), c);
        }
    }
    aig
}

/// `int2float{n}`: converts an `n`-bit unsigned integer to a tiny float
/// format with `e` exponent bits and `m` mantissa bits (truncating) — the
/// EPFL `int2float` analogue.
///
/// Zero maps to all-zero. The exponent is the leading-one position plus 1
/// (so subnormals are not modeled), the mantissa the bits below the leading
/// one, truncated to `m` bits.
pub fn int_to_float(n: usize, e: usize, m: usize) -> Aig {
    let mut aig = Aig::new(format!("int2float{n}"));
    let x = aig.add_inputs("x", n);

    let mut found = Lit::FALSE;
    let mut exponent = words::constant_word(0, e);
    let mut mantissa = vec![Lit::FALSE; m];
    for i in (0..n).rev() {
        let is_leading = aig.and(x[i], !found);
        let exp_val = words::constant_word((i + 1) as u64, e);
        exponent = words::mux_word(&mut aig, is_leading, &exp_val, &exponent);
        // Mantissa: bits i-1, i-2, ... below the leading one, MSB-aligned.
        let this_mant: Vec<Lit> = (0..m)
            .map(|j| {
                // mantissa bit (m-1-j) below the top: source index i-1-j.
                let offset = j + 1;
                if offset <= i {
                    x[i - offset]
                } else {
                    Lit::FALSE
                }
            })
            .rev()
            .collect(); // LSB-first
        mantissa = words::mux_word(&mut aig, is_leading, &this_mant, &mantissa);
        found = aig.or(found, x[i]);
    }
    for (i, &b) in mantissa.iter().enumerate() {
        aig.add_output(format!("m{i}"), b);
    }
    for (i, &b) in exponent.iter().enumerate() {
        aig.add_output(format!("e{i}"), b);
    }
    aig
}

/// Software model of [`int_to_float`]: returns `(mantissa, exponent)`.
pub fn int_to_float_model(x: u64, e: usize, m: usize) -> (u64, u64) {
    if x == 0 {
        return (0, 0);
    }
    let top = 63 - x.leading_zeros() as usize;
    let exponent = ((top + 1) as u64) & ((1 << e) - 1);
    let mut mantissa = 0u64;
    for j in 0..m {
        let offset = j + 1;
        if offset <= top {
            let bit = x >> (top - offset) & 1;
            mantissa |= bit << (m - 1 - j);
        }
    }
    (mantissa, exponent)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval_word(aig: &Aig, inputs: u64) -> u64 {
        let bits: Vec<bool> = (0..aig.num_inputs())
            .map(|i| inputs >> i & 1 != 0)
            .collect();
        aig.evaluate(&bits)
            .iter()
            .enumerate()
            .map(|(i, &v)| (v as u64) << i)
            .sum()
    }

    #[test]
    fn decoder_is_one_hot() {
        let aig = decoder(3);
        for s in 0..8u64 {
            assert_eq!(eval_word(&aig, s), 1 << s);
        }
    }

    #[test]
    fn priority_encoder_finds_first_request() {
        let aig = priority_encoder(5);
        for r in 0..32u64 {
            let out = eval_word(&aig, r);
            let idx = out & 0b111;
            let valid = out >> 3 & 1;
            if r == 0 {
                assert_eq!(valid, 0);
            } else {
                assert_eq!(valid, 1);
                assert_eq!(idx, r.trailing_zeros() as u64, "r={r:b}");
            }
        }
    }

    #[test]
    fn arbiter_grants_rotating_priority() {
        let n = 4;
        let aig = arbiter(n);
        for r in 0..16u64 {
            for p in 0..4u64 {
                let out = eval_word(&aig, r | p << n);
                if r == 0 {
                    assert_eq!(out, 0, "no grant without requests");
                    continue;
                }
                // Expected: first active request at or after p, else wrap.
                let mut want = None;
                for i in p..n as u64 {
                    if r >> i & 1 != 0 {
                        want = Some(i);
                        break;
                    }
                }
                if want.is_none() {
                    for i in 0..n as u64 {
                        if r >> i & 1 != 0 {
                            want = Some(i);
                            break;
                        }
                    }
                }
                assert_eq!(out, 1 << want.expect("some request"), "r={r:b} p={p}");
                assert_eq!(out.count_ones(), 1, "grant is one-hot");
            }
        }
    }

    #[test]
    fn voter_is_majority() {
        let aig = voter(5);
        for x in 0..32u64 {
            let want = u64::from(x.count_ones() >= 3);
            assert_eq!(eval_word(&aig, x), want, "x={x:b}");
        }
    }

    #[test]
    fn popcount_counts() {
        let mut aig = Aig::new("t");
        let xs = aig.add_inputs("x", 6);
        let count = popcount(&mut aig, &xs);
        for (i, &c) in count.iter().enumerate() {
            aig.add_output(format!("c{i}"), c);
        }
        for x in 0..64u64 {
            assert_eq!(eval_word(&aig, x), u64::from(x.count_ones()));
        }
    }

    #[test]
    fn router_routes_selected_port() {
        let aig = crossbar_router(2, 2);
        // Inputs: in0 (2b), in1 (2b), sel0 (1b), sel1 (1b).
        let pack = |in0: u64, in1: u64, s0: u64, s1: u64| in0 | in1 << 2 | s0 << 4 | s1 << 5;
        for in0 in 0..4u64 {
            for in1 in 0..4u64 {
                for s0 in 0..2u64 {
                    for s1 in 0..2u64 {
                        let out = eval_word(&aig, pack(in0, in1, s0, s1));
                        let want0 = if s0 == 0 { in0 } else { in1 };
                        let want1 = if s1 == 0 { in0 } else { in1 };
                        assert_eq!(out, want0 | want1 << 2);
                    }
                }
            }
        }
    }

    #[test]
    fn int2float_matches_model() {
        let (n, e, m) = (8, 4, 3);
        let aig = int_to_float(n, e, m);
        for x in 0..256u64 {
            let out = eval_word(&aig, x);
            let got_m = out & ((1 << m) - 1);
            let got_e = out >> m;
            let (wm, we) = int_to_float_model(x, e, m);
            assert_eq!((got_m, got_e), (wm, we), "x={x}");
        }
    }
}
