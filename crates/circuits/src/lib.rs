//! Benchmark circuit generators and BLIF interchange for the ALSRAC
//! reproduction.
//!
//! The ALSRAC paper evaluates on ISCAS'85, MCNC arithmetic, and EPFL
//! benchmark files that are distributed as artifacts we do not ship.
//! Instead, this crate *generates* functionally comparable circuits of the
//! same families directly as AIGs:
//!
//! * [`arith`] — adders (ripple-carry, carry-lookahead, Kogge–Stone),
//!   multipliers (array and Wallace-tree), ALUs, comparators, barrel
//!   shifters, squarers, restoring square root and division, and small
//!   fixed-point `sine`/`log2` datapaths;
//! * [`control`] — decoders, priority encoders, arbiters, majority voters,
//!   crossbar routers, and int-to-float converters;
//! * [`random_logic`] — seeded layered random networks used as stand-ins
//!   for the irregular control benchmarks and by property-based tests;
//! * [`blif`] — a BLIF subset reader/writer for interchange with external
//!   tools;
//! * [`catalog`] — the named benchmark suites mirroring Table III of the
//!   paper, with a documented mapping from each original benchmark to its
//!   generated analogue.
//!
//! # Example
//!
//! ```
//! use alsrac_circuits::arith;
//!
//! let adder = arith::ripple_carry_adder(8);
//! assert_eq!(adder.num_inputs(), 16);
//! assert_eq!(adder.num_outputs(), 9); // sum + carry-out
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aiger;
pub mod arith;
pub mod blif;
pub mod catalog;
pub mod control;
pub mod random_logic;
pub mod verilog;
pub mod words;
