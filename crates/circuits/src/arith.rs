//! Arithmetic benchmark generators.
//!
//! Each function returns a complete [`Aig`] with named inputs and outputs.
//! The families mirror the arithmetic benchmarks of the ALSRAC paper
//! (Table III): `rca32`, `cla32`, `ksa32`, `mtp8`, `wal8`, `alu4`, and the
//! EPFL arithmetic set (`adder`, `shifter`, `divisor`, `log2`, `max`,
//! `mult`, `sine`, `sqrt`, `square`). Bit-widths are parameters so test
//! suites can use small instances and the experiment harness can use
//! paper-scale ones.

use alsrac_aig::{Aig, Lit};

use crate::words;

/// `rca{n}`: ripple-carry adder, `2n` inputs, `n+1` outputs.
pub fn ripple_carry_adder(n: usize) -> Aig {
    let mut aig = Aig::new(format!("rca{n}"));
    let a = aig.add_inputs("a", n);
    let b = aig.add_inputs("b", n);
    let (sum, carry) = words::ripple_add(&mut aig, &a, &b, Lit::FALSE);
    for (i, &s) in sum.iter().enumerate() {
        aig.add_output(format!("s{i}"), s);
    }
    aig.add_output("cout", carry);
    aig
}

/// `cla{n}`: carry-lookahead adder, `2n` inputs, `n+1` outputs.
pub fn carry_lookahead_adder(n: usize) -> Aig {
    let mut aig = Aig::new(format!("cla{n}"));
    let a = aig.add_inputs("a", n);
    let b = aig.add_inputs("b", n);
    let (sum, carry) = words::carry_lookahead_add(&mut aig, &a, &b, Lit::FALSE);
    for (i, &s) in sum.iter().enumerate() {
        aig.add_output(format!("s{i}"), s);
    }
    aig.add_output("cout", carry);
    aig
}

/// `ksa{n}`: Kogge–Stone adder, `2n` inputs, `n+1` outputs.
pub fn kogge_stone_adder(n: usize) -> Aig {
    let mut aig = Aig::new(format!("ksa{n}"));
    let a = aig.add_inputs("a", n);
    let b = aig.add_inputs("b", n);
    let (sum, carry) = words::kogge_stone_add(&mut aig, &a, &b, Lit::FALSE);
    for (i, &s) in sum.iter().enumerate() {
        aig.add_output(format!("s{i}"), s);
    }
    aig.add_output("cout", carry);
    aig
}

/// `mtp{n}`: array multiplier, `2n` inputs, `2n` outputs.
pub fn array_multiplier(n: usize) -> Aig {
    let mut aig = Aig::new(format!("mtp{n}"));
    let a = aig.add_inputs("a", n);
    let b = aig.add_inputs("b", n);
    let product = words::array_multiply(&mut aig, &a, &b);
    for (i, &p) in product.iter().enumerate() {
        aig.add_output(format!("p{i}"), p);
    }
    aig
}

/// `wal{n}`: Wallace-tree multiplier, `2n` inputs, `2n` outputs.
pub fn wallace_multiplier(n: usize) -> Aig {
    let mut aig = Aig::new(format!("wal{n}"));
    let a = aig.add_inputs("a", n);
    let b = aig.add_inputs("b", n);
    let product = words::wallace_multiply(&mut aig, &a, &b);
    for (i, &p) in product.iter().enumerate() {
        aig.add_output(format!("p{i}"), p);
    }
    aig
}

/// ALU opcode truth: the 8 operations of [`alu`].
///
/// `op` = 0: `a + b`, 1: `a - b`, 2: `a & b`, 3: `a | b`, 4: `a ^ b`,
/// 5: `a < b` (zero-extended), 6: `~(a & b)`, 7: `b`.
pub fn alu_model(op: u64, a: u64, b: u64, n: usize) -> u64 {
    let mask = if n >= 64 { u64::MAX } else { (1 << n) - 1 };
    (match op {
        0 => a.wrapping_add(b),
        1 => a.wrapping_sub(b),
        2 => a & b,
        3 => a | b,
        4 => a ^ b,
        5 => u64::from(a < b),
        6 => !(a & b),
        7 => b,
        _ => unreachable!("3-bit opcode"),
    }) & mask
}

/// `alu{n}`: an `n`-bit 8-operation ALU (`2n + 3` inputs, `n` outputs).
///
/// This is the stand-in for the MCNC `alu4` benchmark: a mixed
/// arithmetic/logic function with control inputs selecting the operation.
pub fn alu(n: usize) -> Aig {
    let mut aig = Aig::new(format!("alu{n}"));
    let a = aig.add_inputs("a", n);
    let b = aig.add_inputs("b", n);
    let op = aig.add_inputs("op", 3);

    let (add, _) = words::ripple_add(&mut aig, &a, &b, Lit::FALSE);
    let (sub, borrow) = words::subtract(&mut aig, &a, &b);
    let and: Vec<Lit> = a.iter().zip(&b).map(|(&x, &y)| aig.and(x, y)).collect();
    let or: Vec<Lit> = a.iter().zip(&b).map(|(&x, &y)| aig.or(x, y)).collect();
    let xor: Vec<Lit> = a.iter().zip(&b).map(|(&x, &y)| aig.xor(x, y)).collect();
    let mut slt = vec![Lit::FALSE; n];
    slt[0] = borrow;
    let nand: Vec<Lit> = and.iter().map(|&l| !l).collect();
    let pass_b = b.clone();

    let choices = [add, sub, and, or, xor, slt, nand, pass_b];
    let mut result = vec![Lit::FALSE; n];
    for bit in 0..n {
        // 8:1 mux per output bit.
        let mut layer: Vec<Lit> = choices.iter().map(|w| w[bit]).collect();
        for &sel in &op {
            let mut next = Vec::with_capacity(layer.len() / 2);
            for pair in layer.chunks(2) {
                next.push(aig.mux(sel, pair[1], pair[0]));
            }
            layer = next;
        }
        result[bit] = layer[0];
    }
    for (i, &r) in result.iter().enumerate() {
        aig.add_output(format!("y{i}"), r);
    }
    aig
}

/// `max{k}x{n}`: maximum of `k` unsigned `n`-bit words (`k*n` inputs,
/// `n` outputs) — the EPFL `max` analogue.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn max_of(k: usize, n: usize) -> Aig {
    assert!(k > 0, "max of zero words is undefined");
    let mut aig = Aig::new(format!("max{k}x{n}"));
    let operands: Vec<Vec<Lit>> = (0..k)
        .map(|i| aig.add_inputs(&format!("x{i}_"), n))
        .collect();
    let mut best = operands[0].clone();
    for word in &operands[1..] {
        let lt = words::less_than(&mut aig, &best, word);
        best = words::mux_word(&mut aig, lt, word, &best);
    }
    for (i, &m) in best.iter().enumerate() {
        aig.add_output(format!("m{i}"), m);
    }
    aig
}

/// `shifter{n}`: logical right barrel shifter (`n + log2(n)` inputs,
/// `n` outputs) — the EPFL `shifter` analogue.
///
/// # Panics
///
/// Panics if `n` is not a power of two.
pub fn barrel_shifter(n: usize) -> Aig {
    assert!(n.is_power_of_two(), "shifter width must be a power of two");
    let sh_bits = n.trailing_zeros() as usize;
    let mut aig = Aig::new(format!("shifter{n}"));
    let v = aig.add_inputs("v", n);
    let s = aig.add_inputs("s", sh_bits);
    let out = words::barrel_shift_right(&mut aig, &v, &s);
    for (i, &o) in out.iter().enumerate() {
        aig.add_output(format!("y{i}"), o);
    }
    aig
}

/// `square{n}`: squarer (`n` inputs, `2n` outputs) — the EPFL `square`
/// analogue.
pub fn square(n: usize) -> Aig {
    let mut aig = Aig::new(format!("square{n}"));
    let a = aig.add_inputs("a", n);
    let product = words::wallace_multiply(&mut aig, &a.clone(), &a);
    for (i, &p) in product.iter().enumerate() {
        aig.add_output(format!("p{i}"), p);
    }
    aig
}

/// `sqrt{n}`: restoring integer square root (`n` inputs, `n/2` outputs) —
/// the EPFL `sqrt` analogue.
///
/// # Panics
///
/// Panics if `n` is odd or zero.
pub fn sqrt(n: usize) -> Aig {
    assert!(
        n > 0 && n.is_multiple_of(2),
        "sqrt width must be even and positive"
    );
    let half = n / 2;
    let w = half + 3; // remainder working width
    let mut aig = Aig::new(format!("sqrt{n}"));
    let a = aig.add_inputs("a", n);

    let mut rem: Vec<Lit> = vec![Lit::FALSE; w];
    let mut root: Vec<Lit> = Vec::new(); // MSB-first accumulation
    for step in 0..half {
        // Bring down bits 2i+1, 2i (i counts from the top).
        let i = half - 1 - step;
        let mut shifted = vec![a[2 * i], a[2 * i + 1]];
        shifted.extend(rem.iter().take(w - 2).copied());
        // Trial subtrahend: (root << 2) | 01, zero-extended to w.
        let mut trial = vec![Lit::TRUE, Lit::FALSE];
        trial.extend(root.iter().rev().copied()); // root is MSB-first
        trial.resize(w, Lit::FALSE);
        let (diff, borrow) = words::subtract(&mut aig, &shifted, &trial);
        let accept = !borrow;
        rem = words::mux_word(&mut aig, accept, &diff, &shifted);
        root.push(accept);
    }
    // root is MSB-first; outputs are LSB-first.
    for (i, &bit) in root.iter().rev().enumerate() {
        aig.add_output(format!("q{i}"), bit);
    }
    aig
}

/// `div{n}`: restoring unsigned divider computing `a / b` and `a % b`
/// (`2n` inputs, `2n` outputs; division by zero yields all-ones quotient) —
/// the EPFL `divisor` analogue.
pub fn divider(n: usize) -> Aig {
    let w = n + 1;
    let mut aig = Aig::new(format!("div{n}"));
    let a = aig.add_inputs("a", n);
    let b = aig.add_inputs("b", n);
    let mut b_ext = b.clone();
    b_ext.resize(w, Lit::FALSE);

    let mut rem: Vec<Lit> = vec![Lit::FALSE; w];
    let mut quotient_msb_first = Vec::with_capacity(n);
    for step in 0..n {
        let i = n - 1 - step;
        let mut shifted = vec![a[i]];
        shifted.extend(rem.iter().take(w - 1).copied());
        let (diff, borrow) = words::subtract(&mut aig, &shifted, &b_ext);
        let accept = !borrow;
        rem = words::mux_word(&mut aig, accept, &diff, &shifted);
        quotient_msb_first.push(accept);
    }
    for (i, &q) in quotient_msb_first.iter().rev().enumerate() {
        aig.add_output(format!("q{i}"), q);
    }
    for (i, &r) in rem.iter().take(n).enumerate() {
        aig.add_output(format!("r{i}"), r);
    }
    aig
}

/// `sine{n}`: fixed-point sine approximation (`n` inputs, `n` outputs) —
/// the EPFL `sine` analogue.
///
/// Computes `sin(pi * x) ~= 4 x (1 - x)` on an `n`-bit fraction
/// `x in [0, 1)`; the output is the top `n` bits of the parabola. The exact
/// bit-level model is [`sine_model`].
pub fn sine(n: usize) -> Aig {
    let mut aig = Aig::new(format!("sine{n}"));
    let x = aig.add_inputs("x", n);
    // one_minus_x = !x (i.e. (2^n - 1) - x, the reflection; off by one ulp
    // from 2^n - x, fine for a benchmark function).
    let reflected: Vec<Lit> = x.iter().map(|&l| !l).collect();
    let product = words::wallace_multiply(&mut aig, &x, &reflected); // 2n bits
                                                                     // 4 * product / 2^n scaled back to n bits: take bits [n-2 .. 2n-2).
    for i in 0..n {
        let bit = product.get(n - 2 + i).copied().unwrap_or(Lit::FALSE);
        aig.add_output(format!("y{i}"), bit);
    }
    aig
}

/// Bit-exact software model of [`sine`].
pub fn sine_model(x: u64, n: usize) -> u64 {
    let reflected = !x & ((1 << n) - 1);
    let product = x * reflected; // 2n bits
    let mask = (1u64 << n) - 1;
    product >> (n - 2) & mask
}

/// `log2_{n}`: integer/fraction binary logarithm (`n` inputs,
/// `ceil(log2(n)) + frac` outputs) — the EPFL `log2` analogue.
///
/// Outputs the exponent (position of the leading one) and `frac` bits of
/// the normalized mantissa below the leading one (linear-interpolation
/// fraction). Input zero yields all-zero outputs. The bit-exact model is
/// [`log2_model`].
pub fn log2(n: usize, frac: usize) -> Aig {
    let exp_bits = usize::BITS as usize - (n - 1).leading_zeros() as usize;
    let mut aig = Aig::new(format!("log2_{n}"));
    let x = aig.add_inputs("x", n);

    // Leading-one position: priority scan from MSB.
    let mut found = Lit::FALSE;
    let mut exponent = words::constant_word(0, exp_bits);
    for i in (0..n).rev() {
        let is_leading = aig.and(x[i], !found);
        let this_exp = words::constant_word(i as u64, exp_bits);
        exponent = words::mux_word(&mut aig, is_leading, &this_exp, &exponent);
        found = aig.or(found, x[i]);
    }
    // Normalize: shift left so the leading one moves to bit n-1, then take
    // the bits just below it as the fraction.
    let shift_amount: Vec<Lit> = {
        // shift = (n-1) - exponent.
        let n_minus_1 = words::constant_word((n - 1) as u64, exp_bits);
        let (diff, _borrow) = words::subtract(&mut aig, &n_minus_1, &exponent);
        diff
    };
    let normalized = words::barrel_shift_left(&mut aig, &x, &shift_amount);
    for (i, &e) in exponent.iter().enumerate() {
        aig.add_output(format!("e{i}"), e);
    }
    for i in 0..frac {
        // Fraction bit i sits `frac - i` places below the leading one.
        let bit = if frac - i < n {
            normalized[n - 1 - (frac - i)]
        } else {
            Lit::FALSE
        };
        aig.add_output(format!("f{i}"), bit);
    }
    aig
}

/// Bit-exact software model of [`log2`]: returns `(exponent, fraction)`.
pub fn log2_model(x: u64, n: usize, frac: usize) -> (u64, u64) {
    if x == 0 {
        return (0, 0);
    }
    let exponent = 63 - x.leading_zeros() as u64;
    let shift = (n as u64 - 1) - exponent;
    let normalized = (x << shift) & ((1 << n) - 1);
    let mut fraction = 0u64;
    for i in 0..frac {
        if frac - i < n {
            let bit = normalized >> (n - 1 - (frac - i)) & 1;
            fraction |= bit << i;
        }
    }
    (exponent, fraction)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval_word(aig: &Aig, inputs: u64) -> u64 {
        let bits: Vec<bool> = (0..aig.num_inputs())
            .map(|i| inputs >> i & 1 != 0)
            .collect();
        aig.evaluate(&bits)
            .iter()
            .enumerate()
            .map(|(i, &v)| (v as u64) << i)
            .sum()
    }

    #[test]
    fn adders_agree_with_arithmetic() {
        for make in [
            ripple_carry_adder as fn(usize) -> Aig,
            carry_lookahead_adder,
            kogge_stone_adder,
        ] {
            let aig = make(4);
            for a in 0..16u64 {
                for b in 0..16u64 {
                    assert_eq!(eval_word(&aig, a | b << 4), a + b, "{}", aig.name());
                }
            }
        }
    }

    #[test]
    fn multipliers_agree_with_arithmetic() {
        for make in [array_multiplier as fn(usize) -> Aig, wallace_multiplier] {
            let aig = make(4);
            for a in 0..16u64 {
                for b in 0..16u64 {
                    assert_eq!(eval_word(&aig, a | b << 4), a * b, "{}", aig.name());
                }
            }
        }
    }

    #[test]
    fn alu_implements_all_ops() {
        let n = 4;
        let aig = alu(n);
        for op in 0..8u64 {
            for a in (0..16u64).step_by(3) {
                for b in 0..16u64 {
                    let input = a | b << n | op << (2 * n);
                    assert_eq!(
                        eval_word(&aig, input),
                        alu_model(op, a, b, n),
                        "op={op} a={a} b={b}"
                    );
                }
            }
        }
    }

    #[test]
    fn max_selects_largest() {
        let aig = max_of(3, 3);
        for a in 0..8u64 {
            for b in 0..8u64 {
                for c in 0..8u64 {
                    let input = a | b << 3 | c << 6;
                    assert_eq!(eval_word(&aig, input), a.max(b).max(c));
                }
            }
        }
    }

    #[test]
    fn shifter_shifts_right() {
        let aig = barrel_shifter(8);
        for v in (0..256u64).step_by(7) {
            for s in 0..8u64 {
                assert_eq!(eval_word(&aig, v | s << 8), v >> s);
            }
        }
    }

    #[test]
    fn square_is_multiplication_by_self() {
        let aig = square(4);
        for a in 0..16u64 {
            assert_eq!(eval_word(&aig, a), a * a);
        }
    }

    #[test]
    fn sqrt_is_integer_square_root() {
        let aig = sqrt(8);
        for a in 0..256u64 {
            let want = (a as f64).sqrt().floor() as u64;
            assert_eq!(eval_word(&aig, a), want, "a={a}");
        }
    }

    #[test]
    fn divider_computes_quotient_and_remainder() {
        let n = 4;
        let aig = divider(n);
        for a in 0..16u64 {
            for b in 1..16u64 {
                let out = eval_word(&aig, a | b << n);
                let (q, r) = (out & 0xF, out >> n);
                assert_eq!(q, a / b, "a={a} b={b}");
                assert_eq!(r, a % b, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn divider_by_zero_saturates_quotient() {
        let aig = divider(4);
        for a in 0..16u64 {
            let out = eval_word(&aig, a);
            assert_eq!(out & 0xF, 0xF, "quotient saturates");
            assert_eq!(out >> 4, a, "remainder is the dividend");
        }
    }

    #[test]
    fn sine_matches_model() {
        let n = 6;
        let aig = sine(n);
        for x in 0..(1u64 << n) {
            assert_eq!(eval_word(&aig, x), sine_model(x, n), "x={x}");
        }
    }

    #[test]
    fn sine_peaks_mid_range() {
        let n = 8;
        let mid = sine_model(1 << (n - 1), n);
        let low = sine_model(3, n);
        assert!(mid > low);
    }

    #[test]
    fn log2_matches_model() {
        let n = 8;
        let frac = 4;
        let aig = log2(n, frac);
        let exp_bits = 3;
        for x in 0..256u64 {
            let out = eval_word(&aig, x);
            let (e, f) = (out & ((1 << exp_bits) - 1), out >> exp_bits);
            let (we, wf) = log2_model(x, n, frac);
            assert_eq!((e, f), (we, wf), "x={x}");
        }
    }

    #[test]
    fn generated_sizes_are_reasonable() {
        // Paper-scale sanity: the 32-bit adders and 8-bit multipliers land
        // in the same magnitude as Table III's node counts.
        assert!(ripple_carry_adder(32).num_ands() < 700);
        assert!(carry_lookahead_adder(32).num_ands() < 7000);
        assert!(kogge_stone_adder(32).num_ands() < 1500);
        let m = array_multiplier(8).num_ands();
        assert!((300..1500).contains(&m), "mtp8 size {m}");
    }
}

/// `hyp{n}`: integer hypotenuse `floor(sqrt(x^2 + y^2))` (`2n` inputs,
/// `n + 1` outputs) — the EPFL `hyp` analogue (listed in Table III; the
/// paper's flow does not finish the original within 24 hours, and the
/// experiment harness likewise omits it).
pub fn hypotenuse(n: usize) -> Aig {
    let mut aig = Aig::new(format!("hyp{n}"));
    let x = aig.add_inputs("x", n);
    let y = aig.add_inputs("y", n);
    let xx = words::wallace_multiply(&mut aig, &x.clone(), &x); // 2n bits
    let yy = words::wallace_multiply(&mut aig, &y.clone(), &y);
    let (sum, carry) = words::ripple_add(&mut aig, &xx, &yy, Lit::FALSE);
    let mut radicand = sum;
    radicand.push(carry); // 2n + 1 bits
    radicand.push(Lit::FALSE); // even width for the sqrt recurrence
                               // Restoring square root over 2n+2 bits -> n+1 result bits.
    let w = (radicand.len() / 2) + 3;
    let half = radicand.len() / 2;
    let mut rem: Vec<Lit> = vec![Lit::FALSE; w];
    let mut root: Vec<Lit> = Vec::new();
    for step in 0..half {
        let i = half - 1 - step;
        let mut shifted = vec![radicand[2 * i], radicand[2 * i + 1]];
        shifted.extend(rem.iter().take(w - 2).copied());
        let mut trial = vec![Lit::TRUE, Lit::FALSE];
        trial.extend(root.iter().rev().copied());
        trial.resize(w, Lit::FALSE);
        let (diff, borrow) = words::subtract(&mut aig, &shifted, &trial);
        let accept = !borrow;
        rem = words::mux_word(&mut aig, accept, &diff, &shifted);
        root.push(accept);
    }
    for (i, &bit) in root.iter().rev().enumerate() {
        aig.add_output(format!("h{i}"), bit);
    }
    aig
}

/// `mac{n}x{taps}`: multiply-accumulate datapath `Σᵢ aᵢ·bᵢ` over `taps`
/// products of `n`-bit unsigned operands (an FIR-filter-style kernel),
/// accumulated with ripple adders. `2n·taps` inputs and
/// `2n + ceil(log2(taps))` outputs; the AND count grows as `taps · n²`,
/// which is how the scale suite reaches 10k–100k nodes (see
/// [`crate::catalog::scale_benchmarks`]).
pub fn multiply_accumulate(n: usize, taps: usize) -> Aig {
    assert!(n >= 1 && taps >= 1, "degenerate MAC");
    let mut aig = Aig::new(format!("mac{n}x{taps}"));
    let extra = usize::BITS as usize - (taps - 1).leading_zeros() as usize;
    let width = 2 * n + extra;
    let mut acc: Vec<Lit> = vec![Lit::FALSE; width];
    for t in 0..taps {
        let a = aig.add_inputs(&format!("a{t}_"), n);
        let b = aig.add_inputs(&format!("b{t}_"), n);
        let mut product = words::array_multiply(&mut aig, &a, &b);
        product.resize(width, Lit::FALSE);
        let (sum, _overflow) = words::ripple_add(&mut aig, &acc, &product, Lit::FALSE);
        acc = sum;
    }
    for (i, &s) in acc.iter().enumerate() {
        aig.add_output(format!("y{i}"), s);
    }
    aig
}

/// Reference model for [`multiply_accumulate`]: `inputs[t]` is the
/// `(a, b)` operand pair of tap `t`.
pub fn multiply_accumulate_model(inputs: &[(u64, u64)]) -> u128 {
    inputs.iter().map(|&(a, b)| a as u128 * b as u128).sum()
}

#[cfg(test)]
mod mac_tests {
    use super::*;

    #[test]
    fn multiply_accumulate_matches_model() {
        let n = 3;
        let taps = 3;
        let aig = multiply_accumulate(n, taps);
        assert_eq!(aig.num_inputs(), 2 * n * taps);
        let mut rng = alsrac_rt::Rng::from_seed(5);
        for _ in 0..200 {
            let pairs: Vec<(u64, u64)> = (0..taps)
                .map(|_| (rng.gen_range(0..8) as u64, rng.gen_range(0..8) as u64))
                .collect();
            let mut bits = Vec::with_capacity(2 * n * taps);
            for &(a, b) in &pairs {
                bits.extend((0..n).map(|i| a >> i & 1 != 0));
                bits.extend((0..n).map(|i| b >> i & 1 != 0));
            }
            let got: u128 = aig
                .evaluate(&bits)
                .iter()
                .enumerate()
                .map(|(i, &v)| (v as u128) << i)
                .sum();
            assert_eq!(got, multiply_accumulate_model(&pairs), "pairs {pairs:?}");
        }
    }

    #[test]
    fn single_tap_mac_is_a_multiplier() {
        let aig = multiply_accumulate(2, 1);
        // 3 * 2 = 6.
        let out = aig.evaluate(&[true, true, false, true]);
        let got: u64 = out.iter().enumerate().map(|(i, &v)| (v as u64) << i).sum();
        assert_eq!(got, 6);
    }
}

#[cfg(test)]
mod hyp_tests {
    use super::*;

    #[test]
    fn hypotenuse_matches_model() {
        let n = 4;
        let aig = hypotenuse(n);
        assert_eq!(aig.num_outputs(), n + 1);
        for x in 0..16u64 {
            for y in 0..16u64 {
                let bits: Vec<bool> = (0..2 * n).map(|i| (x | y << n) >> i & 1 != 0).collect();
                let got: u64 = aig
                    .evaluate(&bits)
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| (v as u64) << i)
                    .sum();
                let want = ((x * x + y * y) as f64).sqrt().floor() as u64;
                assert_eq!(got, want, "x={x} y={y}");
            }
        }
    }

    #[test]
    fn hypotenuse_is_large() {
        // Substantial circuit: two squarers, an adder, and a rooter.
        assert!(hypotenuse(8).num_ands() > 500);
    }
}
