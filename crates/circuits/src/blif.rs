//! BLIF (Berkeley Logic Interchange Format) reading and writing.
//!
//! Supports the combinational subset: `.model`, `.inputs`, `.outputs`,
//! `.names` (with `-` don't-cares and 0/1 output covers), and `.end`, with
//! backslash line continuations. This is enough to round-trip every graph
//! in this workspace and to exchange circuits with ABC/SIS.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use alsrac_aig::{Aig, Lit, Node};

/// Errors produced by [`parse`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BlifError {
    /// A directive other than the supported subset was encountered.
    UnsupportedDirective {
        /// The directive (e.g. `.latch`).
        directive: String,
        /// 1-based source line.
        line: usize,
    },
    /// A `.names` cube row was malformed.
    MalformedCube {
        /// The offending row.
        row: String,
        /// 1-based source line.
        line: usize,
    },
    /// A signal is referenced but never defined as an input or `.names`
    /// output.
    UndefinedSignal {
        /// The signal name.
        name: String,
    },
    /// Signal definitions form a combinational cycle.
    CyclicDefinition {
        /// A signal on the cycle.
        name: String,
    },
    /// The file has no `.model` section.
    MissingModel,
}

impl fmt::Display for BlifError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlifError::UnsupportedDirective { directive, line } => {
                write!(f, "unsupported directive {directive} on line {line}")
            }
            BlifError::MalformedCube { row, line } => {
                write!(f, "malformed cube row {row:?} on line {line}")
            }
            BlifError::UndefinedSignal { name } => write!(f, "undefined signal {name}"),
            BlifError::CyclicDefinition { name } => {
                write!(f, "cyclic definition involving {name}")
            }
            BlifError::MissingModel => write!(f, "missing .model section"),
        }
    }
}

impl Error for BlifError {}

/// Serializes an [`Aig`] to BLIF text.
///
/// Internal nodes are named `n{index}`; each AND becomes a two-input
/// `.names` table, and each primary output gets a buffer/inverter table
/// from its driver.
pub fn write(aig: &Aig) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, ".model {}", sanitize(aig.name()));
    let input_names: Vec<String> = (0..aig.num_inputs())
        .map(|i| sanitize(aig.input_name(i)))
        .collect();
    let _ = writeln!(out, ".inputs {}", input_names.join(" "));
    let output_names: Vec<String> = aig.outputs().iter().map(|o| sanitize(&o.name)).collect();
    let _ = writeln!(out, ".outputs {}", output_names.join(" "));

    let signal = |lit_node: alsrac_aig::NodeId| -> String {
        match aig.node(lit_node) {
            Node::Const => "$const0".to_string(),
            Node::Input { index } => sanitize(aig.input_name(*index as usize)),
            Node::And { .. } => format!("n{}", lit_node.index()),
        }
    };

    // Constant-zero signal, emitted only if referenced.
    let uses_const = aig
        .outputs()
        .iter()
        .any(|o| o.lit.node() == alsrac_aig::NodeId::CONST)
        || aig.iter_ands().any(|id| {
            let [f0, f1] = aig.and_fanins(id);
            f0.node() == alsrac_aig::NodeId::CONST || f1.node() == alsrac_aig::NodeId::CONST
        });
    if uses_const {
        let _ = writeln!(out, ".names $const0");
    }

    for id in aig.iter_ands() {
        let [f0, f1] = aig.and_fanins(id);
        let _ = writeln!(
            out,
            ".names {} {} n{}",
            signal(f0.node()),
            signal(f1.node()),
            id.index()
        );
        let _ = writeln!(
            out,
            "{}{} 1",
            if f0.is_complement() { '0' } else { '1' },
            if f1.is_complement() { '0' } else { '1' },
        );
    }
    for output in aig.outputs() {
        let _ = writeln!(
            out,
            ".names {} {}",
            signal(output.lit.node()),
            sanitize(&output.name)
        );
        let _ = writeln!(
            out,
            "{} 1",
            if output.lit.is_complement() { '0' } else { '1' }
        );
    }
    out.push_str(".end\n");
    out
}

fn sanitize(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| if c.is_whitespace() { '_' } else { c })
        .collect();
    if cleaned.is_empty() {
        "_".to_string()
    } else {
        cleaned
    }
}

/// One parsed `.names` table.
struct NamesTable {
    inputs: Vec<String>,
    /// Rows of (input pattern chars, output char).
    rows: Vec<(Vec<u8>, u8)>,
}

/// Parses BLIF text into an [`Aig`].
///
/// # Errors
///
/// Returns a [`BlifError`] for unsupported directives (latches,
/// subcircuits), malformed cubes, undefined or cyclically defined signals,
/// or a missing `.model`.
pub fn parse(text: &str) -> Result<Aig, BlifError> {
    // Join continuation lines, strip comments.
    let mut logical_lines: Vec<(usize, String)> = Vec::new();
    let mut pending = String::new();
    let mut pending_start = 0usize;
    for (lineno, raw) in text.lines().enumerate() {
        let line = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        let trimmed = line.trim_end();
        if pending.is_empty() {
            pending_start = lineno + 1;
        }
        if let Some(stripped) = trimmed.strip_suffix('\\') {
            pending.push_str(stripped);
            pending.push(' ');
        } else {
            pending.push_str(trimmed);
            let full = std::mem::take(&mut pending);
            if !full.trim().is_empty() {
                logical_lines.push((pending_start, full));
            }
        }
    }

    let mut model_name = None;
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut tables: HashMap<String, NamesTable> = HashMap::new();
    let mut current: Option<(String, NamesTable)> = None;

    for (lineno, line) in &logical_lines {
        let tokens: Vec<&str> = line.split_whitespace().collect();
        if tokens.is_empty() {
            continue;
        }
        if tokens[0].starts_with('.') {
            if let Some((name, table)) = current.take() {
                tables.insert(name, table);
            }
            match tokens[0] {
                ".model" => model_name = Some(tokens.get(1).unwrap_or(&"top").to_string()),
                ".inputs" => inputs.extend(tokens[1..].iter().map(|s| s.to_string())),
                ".outputs" => outputs.extend(tokens[1..].iter().map(|s| s.to_string())),
                ".names" => {
                    let all: Vec<String> = tokens[1..].iter().map(|s| s.to_string()).collect();
                    let (target, ins) = all
                        .split_last()
                        .map(|(t, i)| (t.clone(), i.to_vec()))
                        .unwrap_or_default();
                    current = Some((
                        target,
                        NamesTable {
                            inputs: ins,
                            rows: Vec::new(),
                        },
                    ));
                }
                ".end" => break,
                ".exdc" => break, // ignore external-don't-care section
                other => {
                    return Err(BlifError::UnsupportedDirective {
                        directive: other.to_string(),
                        line: *lineno,
                    })
                }
            }
        } else if let Some((_, table)) = current.as_mut() {
            // Cube row: `<pattern> <out>` (or `<out>` alone for constants).
            let (pattern, out_char) = match tokens.len() {
                1 => (Vec::new(), tokens[0].as_bytes()),
                2 => (tokens[0].as_bytes().to_vec(), tokens[1].as_bytes()),
                _ => {
                    return Err(BlifError::MalformedCube {
                        row: line.clone(),
                        line: *lineno,
                    })
                }
            };
            if out_char.len() != 1
                || !matches!(out_char[0], b'0' | b'1')
                || pattern.len() != table.inputs.len()
                || pattern.iter().any(|c| !matches!(c, b'0' | b'1' | b'-'))
            {
                return Err(BlifError::MalformedCube {
                    row: line.clone(),
                    line: *lineno,
                });
            }
            table.rows.push((pattern, out_char[0]));
        } else {
            return Err(BlifError::MalformedCube {
                row: line.clone(),
                line: *lineno,
            });
        }
    }
    if let Some((name, table)) = current.take() {
        tables.insert(name, table);
    }
    let model_name = model_name.ok_or(BlifError::MissingModel)?;

    let mut aig = Aig::new(model_name);
    let mut signals: HashMap<String, Lit> = HashMap::new();
    for input in &inputs {
        let lit = aig.add_input(input.clone());
        signals.insert(input.clone(), lit);
    }

    // Resolve .names tables recursively (they may appear in any order).
    fn resolve(
        name: &str,
        aig: &mut Aig,
        signals: &mut HashMap<String, Lit>,
        tables: &HashMap<String, NamesTable>,
        visiting: &mut Vec<String>,
    ) -> Result<Lit, BlifError> {
        if let Some(&lit) = signals.get(name) {
            return Ok(lit);
        }
        if visiting.iter().any(|v| v == name) {
            return Err(BlifError::CyclicDefinition {
                name: name.to_string(),
            });
        }
        let table = tables.get(name).ok_or_else(|| BlifError::UndefinedSignal {
            name: name.to_string(),
        })?;
        visiting.push(name.to_string());
        let fanins: Vec<Lit> = table
            .inputs
            .iter()
            .map(|i| resolve(i, aig, signals, tables, visiting))
            .collect::<Result<_, _>>()?;
        visiting.pop();

        // SOP over ones-rows; BLIF requires a single output phase per table.
        let ones_rows = table.rows.iter().filter(|(_, o)| *o == b'1');
        let zeros_rows = table.rows.iter().filter(|(_, o)| *o == b'0');
        let build_sum = |aig: &mut Aig, rows: Vec<&(Vec<u8>, u8)>| -> Lit {
            let products: Vec<Lit> = rows
                .iter()
                .map(|(pattern, _)| {
                    let lits: Vec<Lit> = pattern
                        .iter()
                        .enumerate()
                        .filter(|(_, &c)| c != b'-')
                        .map(|(i, &c)| fanins[i].complement_if(c == b'0'))
                        .collect();
                    aig.and_all(&lits)
                })
                .collect();
            aig.or_all(&products)
        };
        let ones: Vec<_> = ones_rows.collect();
        let zeros: Vec<_> = zeros_rows.collect();
        let lit = if !ones.is_empty() {
            build_sum(aig, ones)
        } else if !zeros.is_empty() {
            !build_sum(aig, zeros)
        } else {
            Lit::FALSE
        };
        signals.insert(name.to_string(), lit);
        Ok(lit)
    }

    for output in &outputs {
        let mut visiting = Vec::new();
        let lit = resolve(output, &mut aig, &mut signals, &tables, &mut visiting)?;
        aig.add_output(output.clone(), lit);
    }
    Ok(aig.cleaned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith;

    #[test]
    fn round_trip_preserves_function() {
        let original = arith::ripple_carry_adder(3);
        let text = write(&original);
        let parsed = parse(&text).expect("parse back");
        assert_eq!(parsed.num_inputs(), original.num_inputs());
        assert_eq!(parsed.num_outputs(), original.num_outputs());
        for p in 0..64u64 {
            let bits: Vec<bool> = (0..6).map(|i| p >> i & 1 != 0).collect();
            assert_eq!(parsed.evaluate(&bits), original.evaluate(&bits), "p={p}");
        }
    }

    #[test]
    fn parses_multi_input_names_with_dont_cares() {
        let text = "\
.model t
.inputs a b c
.outputs y
.names a b c y
1-1 1
01- 1
.end
";
        let aig = parse(text).expect("parse");
        for p in 0..8u64 {
            let (a, b, c) = (p & 1 != 0, p & 2 != 0, p & 4 != 0);
            let want = (a && c) || (!a && b);
            assert_eq!(aig.evaluate(&[a, b, c]), vec![want], "p={p:b}");
        }
    }

    #[test]
    fn parses_zero_phase_cover() {
        let text = "\
.model t
.inputs a b
.outputs y
.names a b y
11 0
.end
";
        let aig = parse(text).expect("parse");
        assert_eq!(aig.evaluate(&[true, true]), vec![false]);
        assert_eq!(aig.evaluate(&[true, false]), vec![true]);
    }

    #[test]
    fn parses_constants() {
        let text = "\
.model t
.inputs a
.outputs one zero
.names one
1
.names zero
.end
";
        let aig = parse(text).expect("parse");
        assert_eq!(aig.evaluate(&[false]), vec![true, false]);
    }

    #[test]
    fn parses_out_of_order_definitions() {
        let text = "\
.model t
.inputs a b
.outputs y
.names mid b y
11 1
.names a mid
0 1
.end
";
        let aig = parse(text).expect("parse");
        assert_eq!(aig.evaluate(&[false, true]), vec![true]);
        assert_eq!(aig.evaluate(&[true, true]), vec![false]);
    }

    #[test]
    fn continuation_lines() {
        let text = ".model t\n.inputs a \\\nb\n.outputs y\n.names a b y\n11 1\n.end\n";
        let aig = parse(text).expect("parse");
        assert_eq!(aig.num_inputs(), 2);
        assert_eq!(aig.evaluate(&[true, true]), vec![true]);
    }

    #[test]
    fn rejects_latch() {
        let text = ".model t\n.inputs a\n.outputs y\n.latch a y re clk 0\n.end\n";
        let err = parse(text).expect_err("latch unsupported");
        assert!(matches!(err, BlifError::UnsupportedDirective { .. }));
    }

    #[test]
    fn rejects_undefined_signal() {
        let text = ".model t\n.inputs a\n.outputs y\n.end\n";
        let err = parse(text).expect_err("y undefined");
        assert_eq!(
            err,
            BlifError::UndefinedSignal {
                name: "y".to_string()
            }
        );
    }

    #[test]
    fn rejects_cycle() {
        let text = "\
.model t
.inputs a
.outputs y
.names y a y
11 1
.end
";
        let err = parse(text).expect_err("cycle");
        assert!(matches!(err, BlifError::CyclicDefinition { .. }));
    }

    #[test]
    fn rejects_malformed_cube() {
        let text = ".model t\n.inputs a\n.outputs y\n.names a y\n2 1\n.end\n";
        let err = parse(text).expect_err("bad cube");
        assert!(matches!(err, BlifError::MalformedCube { .. }));
    }

    #[test]
    fn write_mentions_const_only_when_used() {
        let adder = arith::ripple_carry_adder(2);
        assert!(!write(&adder).contains("$const0"));
        let mut aig = Aig::new("c");
        aig.add_input("a");
        aig.add_output("zero", Lit::FALSE);
        assert!(write(&aig).contains("$const0"));
        let parsed = parse(&write(&aig)).expect("parse");
        assert_eq!(parsed.evaluate(&[true]), vec![false]);
    }
}
