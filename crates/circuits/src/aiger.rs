//! AIGER format reading and writing (combinational subset).
//!
//! AIGER is the standard interchange format for AIGs (Biere, 2007). Both
//! the ASCII (`aag`) and binary (`aig`) variants are supported for
//! combinational circuits (no latches). Literal encoding matches
//! [`alsrac_aig::Lit`]: `2*var + complement`, variable 0 is constant
//! false.

use std::error::Error;
use std::fmt;

use alsrac_aig::{Aig, Lit};

/// Errors produced by the AIGER readers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AigerError {
    /// The header line is missing or malformed.
    BadHeader {
        /// Offending header text.
        line: String,
    },
    /// The file declares latches, which this reader does not support.
    HasLatches,
    /// A literal is out of range or malformed.
    BadLiteral {
        /// Description of the problem.
        detail: String,
    },
    /// The binary delta stream ended early or overflowed.
    BadBinaryStream,
}

impl fmt::Display for AigerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AigerError::BadHeader { line } => write!(f, "malformed aiger header {line:?}"),
            AigerError::HasLatches => write!(f, "latches are not supported"),
            AigerError::BadLiteral { detail } => write!(f, "bad literal: {detail}"),
            AigerError::BadBinaryStream => write!(f, "truncated or invalid binary stream"),
        }
    }
}

impl Error for AigerError {}

/// Renumbers an AIG into AIGER convention: inputs occupy variables
/// `1..=I`, AND nodes follow in topological order. Returns the mapping
/// from node index to AIGER variable.
fn aiger_variables(aig: &Aig) -> Vec<u32> {
    let mut vars = vec![0u32; aig.num_nodes()];
    let mut next = 1u32;
    for &input in aig.inputs() {
        vars[input.index()] = next;
        next += 1;
    }
    for id in aig.iter_ands() {
        vars[id.index()] = next;
        next += 1;
    }
    vars
}

fn aiger_lit(vars: &[u32], lit: Lit) -> u32 {
    vars[lit.node().index()] << 1 | lit.is_complement() as u32
}

/// Serializes an AIG in ASCII AIGER (`aag`) format.
pub fn write_ascii(aig: &Aig) -> String {
    use std::fmt::Write as _;
    let vars = aiger_variables(aig);
    let num_ands = aig.num_ands();
    let max_var = aig.num_inputs() + num_ands;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "aag {} {} 0 {} {}",
        max_var,
        aig.num_inputs(),
        aig.num_outputs(),
        num_ands
    );
    for &input in aig.inputs() {
        let _ = writeln!(out, "{}", vars[input.index()] << 1);
    }
    for output in aig.outputs() {
        let _ = writeln!(out, "{}", aiger_lit(&vars, output.lit));
    }
    for id in aig.iter_ands() {
        let [f0, f1] = aig.and_fanins(id);
        let _ = writeln!(
            out,
            "{} {} {}",
            vars[id.index()] << 1,
            aiger_lit(&vars, f0),
            aiger_lit(&vars, f1)
        );
    }
    // Symbol table and comment.
    for (i, _) in aig.inputs().iter().enumerate() {
        let _ = writeln!(out, "i{i} {}", aig.input_name(i));
    }
    for (i, output) in aig.outputs().iter().enumerate() {
        let _ = writeln!(out, "o{i} {}", output.name);
    }
    let _ = writeln!(out, "c\n{}", aig.name());
    out
}

/// Serializes an AIG in binary AIGER (`aig`) format.
///
/// In the binary format AND definitions are implicit (ascending variables)
/// and each gate stores two LEB128-style deltas `lhs - rhs0`, `rhs0 - rhs1`
/// with `lhs > rhs0 >= rhs1` — which AIGER guarantees by construction and
/// our normalized fanin order satisfies after swapping.
pub fn write_binary(aig: &Aig) -> Vec<u8> {
    let vars = aiger_variables(aig);
    let num_ands = aig.num_ands();
    let max_var = aig.num_inputs() + num_ands;
    let mut out = Vec::new();
    out.extend_from_slice(
        format!(
            "aig {} {} 0 {} {}\n",
            max_var,
            aig.num_inputs(),
            aig.num_outputs(),
            num_ands
        )
        .as_bytes(),
    );
    for output in aig.outputs() {
        out.extend_from_slice(format!("{}\n", aiger_lit(&vars, output.lit)).as_bytes());
    }
    for id in aig.iter_ands() {
        let [f0, f1] = aig.and_fanins(id);
        let lhs = vars[id.index()] << 1;
        let (mut rhs0, mut rhs1) = (aiger_lit(&vars, f0), aiger_lit(&vars, f1));
        if rhs0 < rhs1 {
            std::mem::swap(&mut rhs0, &mut rhs1);
        }
        debug_assert!(lhs > rhs0 && rhs0 >= rhs1);
        write_delta(&mut out, lhs - rhs0);
        write_delta(&mut out, rhs0 - rhs1);
    }
    out
}

fn write_delta(out: &mut Vec<u8>, mut delta: u32) {
    loop {
        let byte = (delta & 0x7F) as u8;
        delta >>= 7;
        if delta == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn read_delta(bytes: &[u8], pos: &mut usize) -> Result<u32, AigerError> {
    let mut value = 0u32;
    let mut shift = 0u32;
    loop {
        let &byte = bytes.get(*pos).ok_or(AigerError::BadBinaryStream)?;
        *pos += 1;
        if shift >= 32 {
            return Err(AigerError::BadBinaryStream);
        }
        value |= u32::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

struct Header {
    max_var: u32,
    inputs: u32,
    latches: u32,
    outputs: u32,
    ands: u32,
    binary: bool,
}

fn parse_header(line: &str) -> Result<Header, AigerError> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    let bad = || AigerError::BadHeader {
        line: line.to_string(),
    };
    if tokens.len() < 6 {
        return Err(bad());
    }
    let binary = match tokens[0] {
        "aig" => true,
        "aag" => false,
        _ => return Err(bad()),
    };
    let nums: Vec<u32> = tokens[1..6]
        .iter()
        .map(|t| t.parse().map_err(|_| bad()))
        .collect::<Result<_, _>>()?;
    Ok(Header {
        max_var: nums[0],
        inputs: nums[1],
        latches: nums[2],
        outputs: nums[3],
        ands: nums[4],
        binary,
    })
}

/// Parses ASCII AIGER (`aag`) text.
///
/// # Errors
///
/// Returns an [`AigerError`] for malformed headers/literals or latches.
pub fn parse_ascii(text: &str) -> Result<Aig, AigerError> {
    let mut lines = text.lines();
    let header = parse_header(lines.next().unwrap_or_default())?;
    if header.latches != 0 {
        return Err(AigerError::HasLatches);
    }
    if header.binary {
        return Err(AigerError::BadHeader {
            line: "binary header in ascii parser".to_string(),
        });
    }
    let parse_u32 = |s: &str| -> Result<u32, AigerError> {
        s.trim().parse().map_err(|_| AigerError::BadLiteral {
            detail: format!("not a number: {s:?}"),
        })
    };

    let mut input_lits = Vec::with_capacity(header.inputs as usize);
    for _ in 0..header.inputs {
        let lit = parse_u32(lines.next().unwrap_or_default())?;
        if lit & 1 != 0 {
            return Err(AigerError::BadLiteral {
                detail: format!("complemented input definition {lit}"),
            });
        }
        input_lits.push(lit);
    }
    let mut output_lits = Vec::with_capacity(header.outputs as usize);
    for _ in 0..header.outputs {
        output_lits.push(parse_u32(lines.next().unwrap_or_default())?);
    }
    let mut and_defs = Vec::with_capacity(header.ands as usize);
    for _ in 0..header.ands {
        let line = lines.next().unwrap_or_default();
        let nums: Vec<u32> = line
            .split_whitespace()
            .map(parse_u32)
            .collect::<Result<_, _>>()?;
        if nums.len() != 3 {
            return Err(AigerError::BadLiteral {
                detail: format!("and line {line:?}"),
            });
        }
        and_defs.push((nums[0], nums[1], nums[2]));
    }
    // Symbol table (optional).
    let mut input_names: Vec<Option<String>> = vec![None; header.inputs as usize];
    let mut output_names: Vec<Option<String>> = vec![None; header.outputs as usize];
    for line in lines {
        if line == "c" {
            break;
        }
        if let Some(rest) = line.strip_prefix('i') {
            if let Some((idx, name)) = rest.split_once(' ') {
                if let Ok(i) = idx.parse::<usize>() {
                    if i < input_names.len() {
                        input_names[i] = Some(name.to_string());
                    }
                }
            }
        } else if let Some(rest) = line.strip_prefix('o') {
            if let Some((idx, name)) = rest.split_once(' ') {
                if let Ok(i) = idx.parse::<usize>() {
                    if i < output_names.len() {
                        output_names[i] = Some(name.to_string());
                    }
                }
            }
        }
    }

    build(
        header,
        &input_lits,
        &output_lits,
        &and_defs,
        &input_names,
        &output_names,
    )
}

/// Parses binary AIGER (`aig`) bytes.
///
/// # Errors
///
/// Returns an [`AigerError`] for malformed input or latches.
pub fn parse_binary(bytes: &[u8]) -> Result<Aig, AigerError> {
    // Header and output lines are ASCII; find them line by line.
    let mut pos = 0usize;
    let next_line = |pos: &mut usize| -> Result<String, AigerError> {
        let start = *pos;
        while *pos < bytes.len() && bytes[*pos] != b'\n' {
            *pos += 1;
        }
        if *pos >= bytes.len() {
            return Err(AigerError::BadBinaryStream);
        }
        let line = String::from_utf8_lossy(&bytes[start..*pos]).into_owned();
        *pos += 1;
        Ok(line)
    };
    let header = parse_header(&next_line(&mut pos)?)?;
    if header.latches != 0 {
        return Err(AigerError::HasLatches);
    }
    if !header.binary {
        return Err(AigerError::BadHeader {
            line: "ascii header in binary parser".to_string(),
        });
    }
    let input_lits: Vec<u32> = (0..header.inputs).map(|i| (i + 1) << 1).collect();
    let mut output_lits = Vec::with_capacity(header.outputs as usize);
    for _ in 0..header.outputs {
        let line = next_line(&mut pos)?;
        output_lits.push(line.trim().parse().map_err(|_| AigerError::BadLiteral {
            detail: format!("output line {line:?}"),
        })?);
    }
    let mut and_defs = Vec::with_capacity(header.ands as usize);
    for i in 0..header.ands {
        let lhs = (header.inputs + 1 + i) << 1;
        let d0 = read_delta(bytes, &mut pos)?;
        let d1 = read_delta(bytes, &mut pos)?;
        let rhs0 = lhs.checked_sub(d0).ok_or(AigerError::BadBinaryStream)?;
        let rhs1 = rhs0.checked_sub(d1).ok_or(AigerError::BadBinaryStream)?;
        and_defs.push((lhs, rhs0, rhs1));
    }
    let input_names = vec![None; header.inputs as usize];
    let output_names = vec![None; header.outputs as usize];
    build(
        header,
        &input_lits,
        &output_lits,
        &and_defs,
        &input_names,
        &output_names,
    )
}

fn build(
    header: Header,
    input_lits: &[u32],
    output_lits: &[u32],
    and_defs: &[(u32, u32, u32)],
    input_names: &[Option<String>],
    output_names: &[Option<String>],
) -> Result<Aig, AigerError> {
    let mut aig = Aig::new("aiger");
    // map from aiger variable to our literal.
    let mut map: Vec<Option<Lit>> = vec![None; header.max_var as usize + 1];
    map[0] = Some(Lit::FALSE);
    for (i, &lit) in input_lits.iter().enumerate() {
        let var = (lit >> 1) as usize;
        if var >= map.len() {
            return Err(AigerError::BadLiteral {
                detail: format!("input variable {var} exceeds max"),
            });
        }
        let name = input_names[i].clone().unwrap_or_else(|| format!("i{i}"));
        map[var] = Some(aig.add_input(name));
    }
    let resolve = |map: &[Option<Lit>], lit: u32| -> Result<Lit, AigerError> {
        let var = (lit >> 1) as usize;
        let base = map
            .get(var)
            .copied()
            .flatten()
            .ok_or_else(|| AigerError::BadLiteral {
                detail: format!("literal {lit} references undefined variable"),
            })?;
        Ok(base.complement_if(lit & 1 != 0))
    };
    for &(lhs, rhs0, rhs1) in and_defs {
        let a = resolve(&map, rhs0)?;
        let b = resolve(&map, rhs1)?;
        let var = (lhs >> 1) as usize;
        if lhs & 1 != 0 || var >= map.len() {
            return Err(AigerError::BadLiteral {
                detail: format!("and lhs {lhs}"),
            });
        }
        map[var] = Some(aig.and(a, b));
    }
    for (i, &lit) in output_lits.iter().enumerate() {
        let resolved = resolve(&map, lit)?;
        let name = output_names[i].clone().unwrap_or_else(|| format!("o{i}"));
        aig.add_output(name, resolved);
    }
    Ok(aig)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith;

    fn check_equiv(a: &Aig, b: &Aig, n: usize) {
        for p in 0..1u64 << n {
            let bits: Vec<bool> = (0..n).map(|i| p >> i & 1 != 0).collect();
            assert_eq!(a.evaluate(&bits), b.evaluate(&bits), "pattern {p:b}");
        }
    }

    #[test]
    fn ascii_round_trip() {
        let original = arith::ripple_carry_adder(3);
        let text = write_ascii(&original);
        let parsed = parse_ascii(&text).expect("parse");
        assert_eq!(parsed.num_inputs(), 6);
        assert_eq!(parsed.num_outputs(), 4);
        check_equiv(&original, &parsed, 6);
        // Symbol table preserved.
        assert_eq!(parsed.input_name(0), "a0");
    }

    #[test]
    fn binary_round_trip() {
        let original = arith::wallace_multiplier(3);
        let bytes = write_binary(&original);
        let parsed = parse_binary(&bytes).expect("parse");
        check_equiv(&original, &parsed, 6);
    }

    #[test]
    fn binary_and_ascii_agree() {
        let original = arith::kogge_stone_adder(4);
        let from_ascii = parse_ascii(&write_ascii(&original)).expect("ascii");
        let from_binary = parse_binary(&write_binary(&original)).expect("binary");
        check_equiv(&from_ascii, &from_binary, 8);
    }

    #[test]
    fn constant_outputs_round_trip() {
        let mut aig = Aig::new("c");
        let a = aig.add_input("a");
        aig.add_output("one", Lit::TRUE);
        aig.add_output("wire", !a);
        let parsed = parse_ascii(&write_ascii(&aig)).expect("parse");
        assert_eq!(parsed.evaluate(&[false]), vec![true, true]);
        assert_eq!(parsed.evaluate(&[true]), vec![true, false]);
    }

    #[test]
    fn rejects_latches() {
        let text = "aag 1 0 1 0 0\n2 3\n";
        assert!(matches!(parse_ascii(text), Err(AigerError::HasLatches)));
    }

    #[test]
    fn rejects_bad_header() {
        assert!(matches!(
            parse_ascii("oops"),
            Err(AigerError::BadHeader { .. })
        ));
        assert!(matches!(
            parse_binary(b"aag 1 1 0 0 0\n2\n"),
            Err(AigerError::BadHeader { .. })
        ));
    }

    #[test]
    fn rejects_truncated_binary() {
        let original = arith::ripple_carry_adder(2);
        let mut bytes = write_binary(&original);
        bytes.truncate(bytes.len() - 1);
        assert!(matches!(
            parse_binary(&bytes),
            Err(AigerError::BadBinaryStream)
        ));
    }

    #[test]
    fn parses_known_aag_example() {
        // Half adder from the AIGER spec family: s = a^b, c = a&b.
        let text = "\
aag 4 2 0 2 2
2
4
6
9
6 2 4
8 3 5
";
        // o0 = and(a, b), o1 = !and(!a, !b)... decode: lit 6 = var3 = a&b;
        // lit 9 = !var4; var4 = !a & !b; so o1 = a | b.
        let aig = parse_ascii(text).expect("parse");
        assert_eq!(aig.evaluate(&[true, true]), vec![true, true]);
        assert_eq!(aig.evaluate(&[true, false]), vec![false, true]);
        assert_eq!(aig.evaluate(&[false, false]), vec![false, false]);
    }
}
