//! Checkpoint/resume for the ALSRAC flow: serialized loop state that
//! restarts an interrupted run bit-identically.
//!
//! When a [`crate::flow::run`] is interrupted (cancel token, deadline),
//! it returns a [`Checkpoint`] capturing everything the loop needs to
//! continue: the current circuit, the adaptive-round state, the accepted
//! history, and the iteration counter. Nothing else is required — every
//! random decision of the flow is a pure function of `(seed, stream,
//! iteration)` via [`alsrac_rt::derive_indexed`], so "RNG position" *is*
//! the iteration counter, and the carried incremental simulation is
//! rebuilt from scratch on resume (the incremental engine is exact, so a
//! fresh sweep is bit-identical to the carried state).
//!
//! The JSON encoding rides on [`alsrac_rt::json`], whose finite-`f64`
//! round trip is bit-exact (shortest `Display` + correctly rounded
//! parse); `u64` values that may exceed 2⁵³ (the seed) are encoded as
//! 16-digit hex strings because the parser stores numbers as `f64`.
//!
//! The AIG is stored as its input names, a flat array of AND fanin
//! literals (raw `u32` encoding, topological order), and the output
//! drivers. Deserialization *replays* the ANDs through [`Aig::and`] and
//! verifies each node lands on its original id — the graphs the flow
//! produces are strash-canonical with inputs first, so replay reproduces
//! them exactly, and any hand-edited or corrupted checkpoint fails
//! loudly instead of resuming from a silently different circuit.

use alsrac_aig::{Aig, Lit, NodeId};
use alsrac_metrics::ErrorMetric;
use alsrac_rt::json::{Arr, Json, Obj};

use crate::flow::IterationRecord;

/// Schema version of the checkpoint encoding.
pub const CHECKPOINT_VERSION: u64 = 1;

/// The complete mid-loop state of an interrupted ALSRAC run.
///
/// Produced by [`crate::flow::run`] on interruption; consumed by
/// [`crate::flow::resume`], which validates it against the (circuit,
/// config) pair before continuing the loop.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    /// RNG seed of the interrupted run ([`crate::flow::FlowConfig::seed`]).
    pub seed: u64,
    /// Constrained metric of the interrupted run.
    pub metric: ErrorMetric,
    /// Error threshold of the interrupted run.
    pub threshold: f64,
    /// Completed loop iterations (the resumed loop starts at the next
    /// one; partially executed iterations are rolled back, not stored).
    pub iterations: usize,
    /// Accepted LACs so far.
    pub applied: usize,
    /// Care-simulation rounds `N` in effect.
    pub rounds: usize,
    /// Consecutive empty-candidate iterations (shrink trigger).
    pub empty_streak: usize,
    /// Consecutive over-budget iterations (grow trigger).
    pub over_streak: usize,
    /// Consecutive fruitless iterations of either kind (stop trigger).
    pub stuck_streak: usize,
    /// Per-accepted-iteration history so far.
    pub history: Vec<IterationRecord>,
    /// The circuit as of the last completed iteration.
    pub current: Aig,
}

impl Checkpoint {
    /// Serializes the checkpoint to a single JSON object (one line, no
    /// trailing newline).
    pub fn to_json(&self) -> String {
        let mut history = Arr::new();
        for rec in &self.history {
            history = history.obj(
                Obj::new()
                    .f64("estimated_error", rec.estimated_error)
                    .u64("ands", rec.ands as u64)
                    .u64("rounds", rec.rounds as u64),
            );
        }
        Obj::new()
            .str("type", "alsrac_checkpoint")
            .u64("version", CHECKPOINT_VERSION)
            .str("seed", &format!("{:016x}", self.seed))
            .str("metric", &self.metric.to_string())
            .f64("threshold", self.threshold)
            .u64("iterations", self.iterations as u64)
            .u64("applied", self.applied as u64)
            .u64("rounds", self.rounds as u64)
            .u64("empty_streak", self.empty_streak as u64)
            .u64("over_streak", self.over_streak as u64)
            .u64("stuck_streak", self.stuck_streak as u64)
            .arr("history", history)
            .obj("aig", aig_to_obj(&self.current))
            .finish()
    }

    /// Parses and validates a checkpoint serialized by [`Checkpoint::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::FlowError::Checkpoint`] on malformed JSON, an
    /// unknown version, missing or out-of-range fields, or an AIG whose
    /// replay does not reproduce the stored node ids.
    pub fn parse(text: &str) -> Result<Checkpoint, crate::FlowError> {
        parse_impl(text).map_err(|reason| crate::FlowError::Checkpoint { reason })
    }
}

fn parse_impl(text: &str) -> Result<Checkpoint, String> {
    let v = Json::parse(text)?;
    if v.get("type").and_then(Json::as_str) != Some("alsrac_checkpoint") {
        return Err("not an alsrac_checkpoint object".to_string());
    }
    let version = field_u64(&v, "version")?;
    if version != CHECKPOINT_VERSION {
        return Err(format!(
            "unsupported checkpoint version {version} (expected {CHECKPOINT_VERSION})"
        ));
    }
    let seed_hex = v.get("seed").and_then(Json::as_str).ok_or("missing seed")?;
    let seed = u64::from_str_radix(seed_hex, 16).map_err(|e| format!("bad seed: {e}"))?;
    let metric = parse_metric(
        v.get("metric")
            .and_then(Json::as_str)
            .ok_or("missing metric")?,
    )?;
    let threshold = v
        .get("threshold")
        .and_then(Json::as_f64)
        .ok_or("missing threshold")?;
    let iterations = field_u64(&v, "iterations")? as usize;
    let applied = field_u64(&v, "applied")? as usize;
    let rounds = field_u64(&v, "rounds")? as usize;
    if rounds == 0 {
        return Err("rounds must be positive".to_string());
    }
    let empty_streak = field_u64(&v, "empty_streak")? as usize;
    let over_streak = field_u64(&v, "over_streak")? as usize;
    let stuck_streak = field_u64(&v, "stuck_streak")? as usize;

    let mut history = Vec::new();
    for (i, rec) in v
        .get("history")
        .and_then(Json::as_arr)
        .ok_or("missing history")?
        .iter()
        .enumerate()
    {
        history.push(IterationRecord {
            estimated_error: rec
                .get("estimated_error")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("history[{i}]: missing estimated_error"))?,
            ands: rec
                .get("ands")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("history[{i}]: missing ands"))? as usize,
            rounds: rec
                .get("rounds")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("history[{i}]: missing rounds"))?
                as usize,
        });
    }
    if history.len() != applied {
        return Err(format!(
            "history length {} disagrees with applied {applied}",
            history.len()
        ));
    }

    let current = aig_from_json(v.get("aig").ok_or("missing aig")?)?;
    Ok(Checkpoint {
        seed,
        metric,
        threshold,
        iterations,
        applied,
        rounds,
        empty_streak,
        over_streak,
        stuck_streak,
        history,
        current,
    })
}

fn field_u64(v: &Json, name: &str) -> Result<u64, String> {
    v.get(name)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer field {name:?}"))
}

fn parse_metric(s: &str) -> Result<ErrorMetric, String> {
    // Inverse of the `Display` impl in `alsrac-metrics`.
    match s {
        "ER" => Ok(ErrorMetric::ErrorRate),
        "NMED" => Ok(ErrorMetric::Nmed),
        "MRED" => Ok(ErrorMetric::Mred),
        "WCE" => Ok(ErrorMetric::Wce),
        other => Err(format!("unknown metric {other:?}")),
    }
}

/// Serializes an AIG whose nodes are laid out inputs-first (the only
/// layout the flow produces: `cleaned()` and the optimizer both rebuild
/// that way). Fanins are a flat array — `alsrac_rt::json` arrays don't
/// nest — with the k-th AND's pair at positions `2k`, `2k + 1`.
fn aig_to_obj(aig: &Aig) -> Obj {
    // The flat encoding implies the layout; a graph violating it (inputs
    // declared after ANDs) would serialize to a *different* circuit, so
    // refuse outright rather than write a wrong checkpoint.
    for (i, &id) in aig.inputs().iter().enumerate() {
        assert_eq!(
            id.index(),
            i + 1,
            "checkpoint serialization requires an inputs-first node layout"
        );
    }
    let mut inputs = Arr::new();
    for i in 0..aig.num_inputs() {
        inputs = inputs.str(aig.input_name(i));
    }
    let mut fanins = Arr::new();
    for id in aig.iter_ands() {
        // `iter_ands` over an inputs-first graph yields exactly the nodes
        // after the inputs; `aig_from_json` verifies this layout on replay.
        let (f0, f1) = match aig.node(id).fanins() {
            Some(pair) => pair,
            None => unreachable!("iter_ands yielded a non-AND node"),
        };
        fanins = fanins.u64(u64::from(f0.raw())).u64(u64::from(f1.raw()));
    }
    let mut outputs = Arr::new();
    for out in aig.outputs() {
        outputs = outputs.obj(
            Obj::new()
                .str("name", &out.name)
                .u64("lit", u64::from(out.lit.raw())),
        );
    }
    Obj::new()
        .str("name", aig.name())
        .arr("inputs", inputs)
        .arr("fanins", fanins)
        .arr("outputs", outputs)
}

fn aig_from_json(v: &Json) -> Result<Aig, String> {
    let name = v.get("name").and_then(Json::as_str).ok_or("aig: no name")?;
    let inputs = v
        .get("inputs")
        .and_then(Json::as_arr)
        .ok_or("aig: no inputs")?;
    let fanins = v
        .get("fanins")
        .and_then(Json::as_arr)
        .ok_or("aig: no fanins")?;
    if fanins.len() % 2 != 0 {
        return Err("aig: odd fanin array length".to_string());
    }
    let outputs = v
        .get("outputs")
        .and_then(Json::as_arr)
        .ok_or("aig: no outputs")?;

    let mut aig = Aig::new(name);
    for (i, input) in inputs.iter().enumerate() {
        aig.add_input(
            input
                .as_str()
                .ok_or_else(|| format!("aig: input {i} is not a string"))?,
        );
    }
    let num_inputs = inputs.len();
    for (k, pair) in fanins.chunks(2).enumerate() {
        let raw = |j: usize| -> Result<Lit, String> {
            let raw = pair[j]
                .as_u64()
                .ok_or_else(|| format!("aig: fanin {} is not an integer", 2 * k + j))?;
            let raw = u32::try_from(raw).map_err(|_| format!("aig: fanin {raw} out of range"))?;
            let lit = Lit::from_raw(raw);
            // Topological order: fanins only reference already-built nodes.
            if lit.node().index() > num_inputs + k {
                return Err(format!("aig: fanin {raw} references a later node"));
            }
            Ok(lit)
        };
        let produced = aig.and(raw(0)?, raw(1)?);
        // Replay verification: the k-th stored AND must land on the node
        // id it had when serialized (no fold, no strash hit, positive
        // polarity) — otherwise later raw literals would silently point
        // at different functions.
        let expected = NodeId::new(num_inputs + 1 + k).lit();
        if produced != expected {
            return Err(format!(
                "aig: AND {k} replayed to literal {} instead of {} — \
                 checkpoint graph is not strash-canonical",
                produced.raw(),
                expected.raw()
            ));
        }
    }
    let num_nodes = aig.num_nodes();
    for (i, out) in outputs.iter().enumerate() {
        let name = out
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("aig: output {i} has no name"))?;
        let raw = out
            .get("lit")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("aig: output {i} has no lit"))?;
        let raw = u32::try_from(raw).map_err(|_| format!("aig: output lit {raw} out of range"))?;
        let lit = Lit::from_raw(raw);
        if lit.node().index() >= num_nodes {
            return Err(format!("aig: output {i} drives dangling literal {raw}"));
        }
        aig.add_output(name, lit);
    }
    Ok(aig)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlowError;

    fn sample() -> Checkpoint {
        Checkpoint {
            seed: 0xDEAD_BEEF_0BAD_F00D, // above 2^53: exercises the hex path
            metric: ErrorMetric::ErrorRate,
            threshold: 0.05,
            iterations: 17,
            applied: 2,
            rounds: 24,
            empty_streak: 1,
            over_streak: 0,
            stuck_streak: 3,
            history: vec![
                IterationRecord {
                    estimated_error: 0.1f64 / 3.0, // not exactly representable in decimal
                    ands: 40,
                    rounds: 32,
                },
                IterationRecord {
                    estimated_error: 0.046875,
                    ands: 36,
                    rounds: 24,
                },
            ],
            current: alsrac_circuits::arith::ripple_carry_adder(3).cleaned(),
        }
    }

    fn assert_same_aig(a: &Aig, b: &Aig) {
        assert_eq!(a.name(), b.name());
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.num_inputs(), b.num_inputs());
        for i in 0..a.num_inputs() {
            assert_eq!(a.input_name(i), b.input_name(i));
        }
        for id in a.iter_nodes() {
            assert_eq!(a.node(id), b.node(id), "node {}", id.index());
        }
        assert_eq!(a.outputs(), b.outputs());
    }

    #[test]
    fn round_trips_bit_exactly() {
        let cp = sample();
        let text = cp.to_json();
        let back = Checkpoint::parse(&text).expect("parse");
        assert_eq!(back.seed, cp.seed);
        assert_eq!(back.metric, cp.metric);
        assert_eq!(back.threshold.to_bits(), cp.threshold.to_bits());
        assert_eq!(back.iterations, cp.iterations);
        assert_eq!(back.applied, cp.applied);
        assert_eq!(back.rounds, cp.rounds);
        assert_eq!(back.empty_streak, cp.empty_streak);
        assert_eq!(back.over_streak, cp.over_streak);
        assert_eq!(back.stuck_streak, cp.stuck_streak);
        assert_eq!(back.history.len(), cp.history.len());
        for (x, y) in back.history.iter().zip(&cp.history) {
            assert_eq!(x.estimated_error.to_bits(), y.estimated_error.to_bits());
            assert_eq!(x.ands, y.ands);
            assert_eq!(x.rounds, y.rounds);
        }
        assert_same_aig(&back.current, &cp.current);
        // And the text itself is stable: serialize → parse → serialize is
        // the identity.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn rejects_malformed_checkpoints() {
        let good = sample().to_json();
        for (label, bad) in [
            ("garbage", "not json".to_string()),
            ("wrong type", "{\"type\":\"something_else\"}".to_string()),
            (
                "future version",
                good.replace("\"version\":1", "\"version\":999"),
            ),
            ("zero rounds", good.replace("\"rounds\":24", "\"rounds\":0")),
            (
                "history/applied mismatch",
                good.replace("\"applied\":2", "\"applied\":5"),
            ),
        ] {
            let err = Checkpoint::parse(&bad).expect_err(label);
            assert!(matches!(err, FlowError::Checkpoint { .. }), "{label}");
        }
    }

    #[test]
    fn rejects_tampered_graphs() {
        // Duplicating an AND's fanin pair makes replay strash-hit an
        // earlier node, shifting every later id: must be rejected, not
        // silently resumed.
        let cp = sample();
        let text = cp.to_json();
        let marker = "\"fanins\":[";
        let start = text.find(marker).expect("fanins present") + marker.len();
        let rest = &text[start..];
        let end = start + rest.find(']').expect("closes");
        let fanins = &text[start..end];
        let first_pair: Vec<&str> = fanins.splitn(3, ',').take(2).collect();
        let tampered = format!(
            "{}{},{},{}{}",
            &text[..start],
            first_pair[0],
            first_pair[1],
            fanins,
            &text[end..]
        );
        let err = Checkpoint::parse(&tampered).expect_err("tampered graph");
        let FlowError::Checkpoint { reason } = err else {
            panic!("wrong variant");
        };
        assert!(reason.contains("replayed"), "{reason}");
    }

    #[test]
    fn rejects_dangling_references() {
        let cp = sample();
        let text = cp.to_json();
        // An output literal far past the node count.
        let tampered = {
            let marker = "\"outputs\":[{\"name\":";
            let start = text.find(marker).expect("outputs present");
            let lit_marker = "\"lit\":";
            let lit_at = start + text[start..].find(lit_marker).expect("lit") + lit_marker.len();
            let lit_end = lit_at + text[lit_at..].find('}').expect("closes");
            format!("{}99999{}", &text[..lit_at], &text[lit_end..])
        };
        let err = Checkpoint::parse(&tampered).expect_err("dangling output");
        let FlowError::Checkpoint { reason } = err else {
            panic!("wrong variant");
        };
        assert!(reason.contains("dangling"), "{reason}");
    }
}
