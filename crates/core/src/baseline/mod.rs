//! Reimplementations of the methods ALSRAC is compared against in §IV.
//!
//! * [`su`] — the deterministic substitute-and-simplify approach of
//!   Venkataramani et al. (SASIMI, DATE 2013) with the batch error
//!   estimation of Su et al. (DAC 2018): each LAC substitutes a node by a
//!   single similar signal (possibly complemented) or a constant. This is
//!   the "Su's method" column of Tables IV and V.
//! * [`liu`] — a stochastic ALS in the spirit of Liu and Zhang (ICCAD
//!   2017): Markov-chain Monte-Carlo acceptance over random local changes
//!   with statistical certification by simulation. This is the "Liu's
//!   method" column of Tables VI and VII (the paper quotes the published
//!   numbers; we rerun our reimplementation so both columns come from the
//!   same substrate).

pub mod liu;
pub mod su;
