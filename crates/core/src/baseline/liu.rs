//! Liu's method: stochastic approximate logic synthesis with statistical
//! certification (the ICCAD 2017 baseline of Tables VI and VII).
//!
//! The original work explores the design space with Markov-chain
//! Monte-Carlo: random local modifications are proposed, accepted with a
//! Metropolis criterion on the area objective subject to the error
//! constraint, and the final design is certified by simulation. This
//! reimplementation proposes random single-signal substitutions and random
//! approximate resubstitutions (drawn from the same LAC pool ALSRAC uses,
//! but *sampled* rather than greedily ranked), tracks the best circuit
//! seen, and certifies it at the end.

use alsrac_aig::Aig;
use alsrac_metrics::{measure, measure_auto, ErrorMetric};
use alsrac_rt::json::Obj;
use alsrac_rt::{derive_indexed, derive_seed, trace, Rng, Stream};
use alsrac_sim::{PatternBuffer, Simulation};

use crate::estimate::Estimator;
use crate::flow::{rejected_record, run_end_record, run_start_record, FlowResult, IterationRecord};
use crate::lac::{generate_lacs, LacConfig};
use crate::FlowError;

/// Parameters for [`run`].
#[derive(Clone, Debug)]
pub struct LiuConfig {
    /// The constrained error metric.
    pub metric: ErrorMetric,
    /// The error threshold.
    pub threshold: f64,
    /// MCMC proposal steps.
    pub steps: usize,
    /// Initial Metropolis temperature (in AND-node units).
    pub initial_temperature: f64,
    /// Multiplicative cooling per step.
    pub cooling: f64,
    /// Care-simulation rounds used when proposing resubstitution moves.
    pub proposal_rounds: usize,
    /// Patterns for error estimation (exhaustive under 14 inputs).
    pub est_rounds: usize,
    /// Patterns for the final certification measurement.
    pub measure_rounds: usize,
    /// RNG seed.
    pub seed: u64,
    /// Re-optimize with the traditional script every this many accepted
    /// moves.
    pub optimize_period: usize,
}

impl Default for LiuConfig {
    fn default() -> LiuConfig {
        LiuConfig {
            metric: ErrorMetric::ErrorRate,
            threshold: 0.01,
            steps: 300,
            initial_temperature: 4.0,
            cooling: 0.995,
            proposal_rounds: 16,
            est_rounds: 2048,
            measure_rounds: 50_000,
            seed: 1,
            optimize_period: 10,
        }
    }
}

/// Runs the stochastic baseline on `original`.
///
/// # Errors
///
/// Same contract as [`crate::flow::run`].
pub fn run(original: &Aig, config: &LiuConfig) -> Result<FlowResult, FlowError> {
    if original.num_inputs() == 0 || original.num_outputs() == 0 {
        return Err(FlowError::DegenerateCircuit {
            inputs: original.num_inputs(),
            outputs: original.num_outputs(),
        });
    }
    if config.metric != ErrorMetric::ErrorRate && original.num_outputs() > 63 {
        return Err(FlowError::MetricUnavailable {
            reason: format!(
                "{} needs integer-decodable outputs, circuit has {}",
                config.metric,
                original.num_outputs()
            ),
        });
    }
    let mut rng = Rng::for_stream(config.seed, Stream::Proposal);
    let est_patterns = if original.num_inputs() <= crate::flow::EXHAUSTIVE_ESTIMATION_LIMIT {
        PatternBuffer::exhaustive(original.num_inputs())
    } else {
        PatternBuffer::random(
            original.num_inputs(),
            config.est_rounds,
            derive_seed(config.seed, Stream::Estimation),
        )
    };

    let run_id = trace::next_run_id();
    let flow_span = trace::span("flow");
    if trace::is_enabled() {
        trace::emit(run_start_record(
            run_id,
            "liu",
            original,
            config.seed,
            config.metric,
            config.threshold,
        ));
    }

    let mut current = original.cleaned();
    let mut best = current.clone();
    let mut temperature = config.initial_temperature;
    let mut applied = 0usize;
    let mut history = Vec::new();

    for step in 0..config.steps {
        let iter = step + 1;
        let reject = |reason: &str, candidates: usize, phases: Obj| {
            if trace::is_enabled() {
                trace::emit(
                    rejected_record(run_id, iter, reason, candidates, config.proposal_rounds)
                        .obj("phase_ns", phases),
                );
            }
        };
        temperature *= config.cooling;
        // Propose: random LACs from a fresh small care simulation.
        let care_span = trace::span("care_sim");
        let care_patterns = PatternBuffer::random(
            current.num_inputs(),
            config.proposal_rounds.max(1),
            derive_indexed(config.seed, Stream::Care, step as u64),
        );
        let care_sim = Simulation::new(&current, &care_patterns);
        let care_ns = care_span.finish();
        let lac_span = trace::span("lac_gen");
        let fanouts = current.fanout_map();
        let pool = generate_lacs(
            &current,
            &care_sim,
            &care_patterns,
            &fanouts,
            &LacConfig::default(),
        );
        let lac_ns = lac_span.finish();
        let phases = || -> Obj { Obj::new().u64("care_sim", care_ns).u64("lac_gen", lac_ns) };
        if pool.is_empty() {
            reject("no_candidates", 0, phases());
            continue;
        }
        let proposal = &pool[rng.gen_range(0..pool.len())];

        // Constraint check by batch estimation against the original.
        let est_span = trace::span("estimate");
        let estimator = Estimator::new(original, &current, &est_patterns, &fanouts);
        let influence = alsrac_sim::FlipInfluence::compute(
            &current,
            estimator.simulation(),
            &fanouts,
            proposal.node.node(),
        );
        let m = estimator.estimate(proposal, &influence);
        let est_ns = est_span.finish();
        let Some(error) = m.value(config.metric) else {
            break;
        };
        if error > config.threshold {
            reject("over_budget", pool.len(), phases().u64("estimate", est_ns));
            continue; // constraint violated: reject outright
        }

        // Metropolis on the (estimated) area change.
        let delta = -(proposal.est_gain() as f64);
        let accept = delta <= 0.0 || {
            let p = (-delta / temperature.max(1e-9)).exp();
            rng.gen_bool(p.clamp(0.0, 1.0))
        };
        if !accept {
            reject(
                "metropolis_reject",
                pool.len(),
                phases().u64("estimate", est_ns),
            );
            continue;
        }
        let apply_span = trace::span("apply");
        current = match proposal.apply(&current) {
            Ok(aig) => aig,
            Err(_) => {
                apply_span.finish();
                reject("cycle", pool.len(), phases().u64("estimate", est_ns));
                continue; // cover hashed onto its own fanout: skip
            }
        };
        let apply_ns = apply_span.finish();
        applied += 1;
        let opt_span = trace::span("optimize");
        if config.optimize_period > 0 && applied.is_multiple_of(config.optimize_period) {
            current = alsrac_synth::optimize(&current);
        }
        history.push(IterationRecord {
            estimated_error: error,
            ands: current.num_ands(),
            rounds: config.proposal_rounds,
        });
        if current.num_ands() < best.num_ands() {
            best = alsrac_synth::optimize(&current);
        }
        let opt_ns = opt_span.finish();
        if trace::is_enabled() {
            trace::emit(
                Obj::new()
                    .str("type", "iteration")
                    .u64("run", run_id)
                    .u64("iter", iter as u64)
                    .bool("accepted", true)
                    .u64("candidates", pool.len() as u64)
                    .u64("rounds", config.proposal_rounds as u64)
                    .str("lac", &proposal.kind())
                    .f64("est_error", error)
                    .i64("gain", proposal.est_gain() as i64)
                    .u64("ands", current.num_ands() as u64)
                    .u64("depth", u64::from(current.depth()))
                    .obj(
                        "phase_ns",
                        phases()
                            .u64("estimate", est_ns)
                            .u64("apply", apply_ns)
                            .u64("optimize", opt_ns),
                    ),
            );
        }
    }
    let final_candidate = alsrac_synth::optimize(&current);
    if final_candidate.num_ands() < best.num_ands() {
        best = final_candidate;
    }

    // Statistical certification of the returned design.
    let measure_span = trace::span("measure");
    let measured = if original.num_inputs() <= alsrac_metrics::EXHAUSTIVE_INPUT_LIMIT {
        let patterns = PatternBuffer::exhaustive(original.num_inputs());
        measure(original, &best, &patterns)?
    } else {
        measure_auto(
            original,
            &best,
            config.measure_rounds,
            derive_seed(config.seed, Stream::Measurement),
        )?
    };
    let measure_ns = measure_span.finish();
    let wall_ns = flow_span.finish();
    if trace::is_enabled() {
        trace::emit(run_end_record(
            run_id,
            config.steps,
            applied,
            &best,
            wall_ns,
            measure_ns,
            &measured,
            None,
            &crate::flow::FlowOutcome::Completed,
            None,
        ));
    }
    Ok(FlowResult {
        approx: best,
        iterations: config.steps,
        applied,
        measured,
        certificate: None,
        history,
        outcome: crate::flow::FlowOutcome::Completed,
        checkpoint: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_error_threshold() {
        let exact = alsrac_circuits::arith::ripple_carry_adder(4);
        let config = LiuConfig {
            threshold: 0.05,
            steps: 120,
            ..LiuConfig::default()
        };
        let result = run(&exact, &config).expect("flow");
        assert!(
            result.measured.error_rate <= 0.05 + 1e-12,
            "measured {}",
            result.measured.error_rate
        );
        assert!(result.approx.num_ands() <= exact.num_ands());
    }

    #[test]
    fn different_seeds_can_differ() {
        // The defining property of a stochastic method (§I): runs vary.
        let exact = alsrac_circuits::arith::kogge_stone_adder(3);
        let sizes: Vec<usize> = (0..4)
            .map(|seed| {
                let config = LiuConfig {
                    threshold: 0.20,
                    steps: 80,
                    seed,
                    ..LiuConfig::default()
                };
                run(&exact, &config).expect("flow").approx.num_ands()
            })
            .collect();
        // Not a hard guarantee per-pair, but across four seeds at a loose
        // threshold at least two outcomes should differ.
        assert!(
            sizes.windows(2).any(|w| w[0] != w[1]),
            "all seeds identical: {sizes:?}"
        );
    }

    #[test]
    fn same_seed_is_reproducible() {
        let exact = alsrac_circuits::arith::ripple_carry_adder(3);
        let config = LiuConfig {
            threshold: 0.10,
            steps: 60,
            seed: 9,
            ..LiuConfig::default()
        };
        let a = run(&exact, &config).expect("flow");
        let b = run(&exact, &config).expect("flow");
        assert_eq!(a.approx.num_ands(), b.approx.num_ands());
        assert_eq!(a.measured.error_rate, b.measured.error_rate);
    }

    #[test]
    fn saves_area_at_loose_threshold() {
        let exact = alsrac_circuits::arith::kogge_stone_adder(4);
        let config = LiuConfig {
            threshold: 0.30,
            steps: 200,
            ..LiuConfig::default()
        };
        let result = run(&exact, &config).expect("flow");
        assert!(
            result.approx.num_ands() < exact.num_ands(),
            "{} -> {}",
            exact.num_ands(),
            result.approx.num_ands()
        );
    }
}
