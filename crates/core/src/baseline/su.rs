//! Su's method: SASIMI-style single-signal substitution with batch error
//! estimation (the DAC 2018 baseline of Tables IV and V).
//!
//! Each LAC substitutes a node `V` by another signal `s` (or `!s`, or a
//! constant) whose simulated behaviour is most similar to `V`'s. Candidate
//! errors are evaluated with the same batch estimation machinery as
//! ALSRAC; the least-error candidate is applied, the circuit re-optimized,
//! and the loop repeats until no candidate stays within the threshold.
//!
//! Compared to ALSRAC the expressive power per change is lower — a single
//! signal instead of a multi-input resubstitution function — which is
//! exactly the gap the paper quantifies.

use alsrac_aig::{Aig, NodeId};
use alsrac_metrics::{measure, measure_auto, ErrorMetric};
use alsrac_rt::json::Obj;
use alsrac_rt::trace;
use alsrac_sim::PatternBuffer;
use alsrac_truthtable::{Cube, Sop};

use crate::estimate::Estimator;
use crate::flow::{rejected_record, run_end_record, run_start_record, FlowResult, IterationRecord};
use crate::lac::Lac;
use crate::FlowError;

/// Parameters for [`run`].
#[derive(Clone, Debug)]
pub struct SuConfig {
    /// The constrained error metric.
    pub metric: ErrorMetric,
    /// The error threshold.
    pub threshold: f64,
    /// Similar signals considered per node (each in both polarities).
    pub candidates_per_node: usize,
    /// Patterns for batch error estimation (exhaustive under 14 inputs).
    pub est_rounds: usize,
    /// Patterns for the final measurement.
    pub measure_rounds: usize,
    /// RNG seed for the sampled pattern buffers.
    pub seed: u64,
    /// Hard iteration cap.
    pub max_iterations: usize,
    /// Re-optimize after each accepted substitution.
    pub optimize_after_apply: bool,
    /// Re-optimize only every this many accepted substitutions (1 = after
    /// each; larger trades area for speed). The final result is always
    /// optimized.
    pub optimize_period: usize,
}

impl Default for SuConfig {
    fn default() -> SuConfig {
        SuConfig {
            metric: ErrorMetric::ErrorRate,
            threshold: 0.01,
            candidates_per_node: 3,
            est_rounds: 2048,
            measure_rounds: 50_000,
            seed: 1,
            max_iterations: 10_000,
            optimize_after_apply: true,
            optimize_period: 1,
        }
    }
}

/// A substitution `V := s` as a [`Lac`]: one divisor, identity or
/// complement cover.
fn substitution_lac(node: NodeId, signal: NodeId, complement: bool, saved: usize) -> Lac {
    let cover = if complement {
        Sop::new(vec![Cube::TAUTOLOGY.with_neg(0)])
    } else {
        Sop::new(vec![Cube::TAUTOLOGY.with_pos(0)])
    };
    Lac {
        node: node.lit(),
        divisors: vec![signal.lit()],
        cover,
        est_cost: 0,
        est_saved: saved,
    }
}

/// A substitution `V := const` as a [`Lac`] (no divisors).
fn constant_lac(node: NodeId, one: bool, saved: usize) -> Lac {
    Lac {
        node: node.lit(),
        divisors: Vec::new(),
        cover: if one {
            Sop::new(vec![Cube::TAUTOLOGY])
        } else {
            Sop::zero()
        },
        est_cost: 0,
        est_saved: saved,
    }
}

/// Candidate-search window: each node is compared against this many
/// popcount-neighbouring signals per polarity. Signals with similar
/// simulated behaviour have similar on-counts, so sorting by signature
/// popcount brings likely substitution partners together and replaces the
/// quadratic all-pairs scan of plain SASIMI with an `O(n*W)` one.
const SIMILARITY_WINDOW: usize = 48;

/// Generates SASIMI candidates: for each node, its most similar non-TFO
/// signals (both polarities) plus the two constants.
fn generate_candidates(
    aig: &Aig,
    estimator: &Estimator<'_>,
    fanouts: &alsrac_aig::FanoutMap,
    per_node: usize,
) -> Vec<Lac> {
    let sim = estimator.simulation();
    let patterns = estimator.patterns();
    let masks = patterns.word_masks();
    let total_bits: u32 = masks.iter().map(|m| m.count_ones()).sum();
    let mut lacs = Vec::new();

    // Signatures sorted by popcount, once per call.
    let popcount = |id: NodeId| -> u32 {
        (0..sim.num_words())
            .map(|w| (sim.node_word(id, w) & masks[w]).count_ones())
            .sum()
    };
    let mut by_count: Vec<(u32, NodeId)> = aig
        .iter_nodes()
        .skip(1)
        .map(|id| (popcount(id), id))
        .collect();
    by_count.sort_unstable();
    let position: std::collections::HashMap<NodeId, usize> = by_count
        .iter()
        .enumerate()
        .map(|(i, &(_, id))| (id, i))
        .collect();

    let distance = |a: NodeId, b: NodeId| -> (u32, u32) {
        let mut diff = 0u32;
        for (w, &m) in masks.iter().enumerate().take(sim.num_words()) {
            diff += ((sim.node_word(a, w) ^ sim.node_word(b, w)) & m).count_ones();
        }
        (diff, total_bits - diff) // (positive polarity, complement)
    };

    for node in aig.iter_ands() {
        let tfo = aig.tfo_cone(node, fanouts);
        let saved = aig.mffc(node, fanouts).len();
        let mut ranked: Vec<(u32, NodeId, bool)> = Vec::new();
        let consider = |other: NodeId, ranked: &mut Vec<(u32, NodeId, bool)>| {
            if other == node || tfo.contains(other) {
                return;
            }
            let (diff, same) = distance(node, other);
            ranked.push((diff, other, false));
            ranked.push((same, other, true));
        };
        // Positive-polarity window around the node's own popcount, plus the
        // complement window mirrored around total - popcount.
        let center = position[&node];
        let lo = center.saturating_sub(SIMILARITY_WINDOW);
        let hi = (center + SIMILARITY_WINDOW).min(by_count.len());
        for &(_, other) in &by_count[lo..hi] {
            consider(other, &mut ranked);
        }
        let mirrored = total_bits - by_count[center].0;
        let mirror_center = by_count.partition_point(|&(c, _)| c < mirrored);
        let lo = mirror_center.saturating_sub(SIMILARITY_WINDOW);
        let hi = (mirror_center + SIMILARITY_WINDOW).min(by_count.len());
        for &(_, other) in &by_count[lo..hi] {
            consider(other, &mut ranked);
        }
        ranked.sort_unstable();
        ranked.dedup();
        for &(_d, signal, complement) in ranked.iter().take(per_node) {
            lacs.push(substitution_lac(node, signal, complement, saved));
        }
        // Constant candidates (Shin/Gupta-style, part of SASIMI's space).
        lacs.push(constant_lac(node, false, saved));
        lacs.push(constant_lac(node, true, saved));
    }
    lacs
}

/// Runs Su's method on `original`.
///
/// # Errors
///
/// Same contract as [`crate::flow::run`].
pub fn run(original: &Aig, config: &SuConfig) -> Result<FlowResult, FlowError> {
    if original.num_inputs() == 0 || original.num_outputs() == 0 {
        return Err(FlowError::DegenerateCircuit {
            inputs: original.num_inputs(),
            outputs: original.num_outputs(),
        });
    }
    if config.metric != ErrorMetric::ErrorRate && original.num_outputs() > 63 {
        return Err(FlowError::MetricUnavailable {
            reason: format!(
                "{} needs integer-decodable outputs, circuit has {}",
                config.metric,
                original.num_outputs()
            ),
        });
    }
    let est_patterns = if original.num_inputs() <= crate::flow::EXHAUSTIVE_ESTIMATION_LIMIT {
        PatternBuffer::exhaustive(original.num_inputs())
    } else {
        PatternBuffer::random(
            original.num_inputs(),
            config.est_rounds,
            config.seed ^ 0xE57,
        )
    };

    let run_id = trace::next_run_id();
    let flow_span = trace::span("flow");
    if trace::is_enabled() {
        trace::emit(run_start_record(
            run_id,
            "su",
            original,
            config.seed,
            config.metric,
            config.threshold,
        ));
    }

    let mut current = original.cleaned();
    let mut applied = 0usize;
    let mut iterations = 0usize;
    let mut history = Vec::new();

    while iterations < config.max_iterations {
        iterations += 1;
        let rounds = est_patterns.num_patterns();
        let est_span = trace::span("estimate");
        let fanouts = current.fanout_map();
        let estimator = Estimator::new(original, &current, &est_patterns, &fanouts);
        let mut est_ns = est_span.finish();
        let lac_span = trace::span("lac_gen");
        let lacs = generate_candidates(&current, &estimator, &fanouts, config.candidates_per_node);
        let lac_ns = lac_span.finish();
        if lacs.is_empty() {
            if trace::is_enabled() {
                trace::emit(
                    rejected_record(run_id, iterations, "no_candidates", 0, rounds).obj(
                        "phase_ns",
                        Obj::new().u64("estimate", est_ns).u64("lac_gen", lac_ns),
                    ),
                );
            }
            break;
        }
        let rank_span = trace::span("estimate");
        let best = estimator.best_candidate(&lacs, config.metric);
        est_ns += rank_span.finish();
        let Some((best_idx, best_m)) = best else {
            break;
        };
        let best_error = best_m.value(config.metric).expect("checked up front");
        if best_error > config.threshold {
            if trace::is_enabled() {
                trace::emit(
                    rejected_record(run_id, iterations, "over_budget", lacs.len(), rounds).obj(
                        "phase_ns",
                        Obj::new().u64("estimate", est_ns).u64("lac_gen", lac_ns),
                    ),
                );
            }
            break;
        }
        let apply_span = trace::span("apply");
        current = lacs[best_idx]
            .apply(&current)
            .expect("substitution targets are single non-TFO signals, so no cycle");
        let apply_ns = apply_span.finish();
        applied += 1;
        let opt_span = trace::span("optimize");
        if config.optimize_after_apply && applied.is_multiple_of(config.optimize_period.max(1)) {
            current = alsrac_synth::optimize(&current);
        }
        let opt_ns = opt_span.finish();
        history.push(IterationRecord {
            estimated_error: best_error,
            ands: current.num_ands(),
            rounds: est_patterns.num_patterns(),
        });
        if trace::is_enabled() {
            trace::emit(
                Obj::new()
                    .str("type", "iteration")
                    .u64("run", run_id)
                    .u64("iter", iterations as u64)
                    .bool("accepted", true)
                    .u64("candidates", lacs.len() as u64)
                    .u64("rounds", rounds as u64)
                    .str("lac", &lacs[best_idx].kind())
                    .f64("est_error", best_error)
                    .i64("gain", lacs[best_idx].est_gain() as i64)
                    .u64("ands", current.num_ands() as u64)
                    .u64("depth", u64::from(current.depth()))
                    .obj(
                        "phase_ns",
                        Obj::new()
                            .u64("estimate", est_ns)
                            .u64("lac_gen", lac_ns)
                            .u64("apply", apply_ns)
                            .u64("optimize", opt_ns),
                    ),
            );
        }
        if current.num_ands() == 0 {
            break;
        }
    }

    // Final optimize only when accepted substitutions are still
    // unoptimized (same guard as the ALSRAC flow).
    if config.optimize_after_apply
        && applied > 0
        && !applied.is_multiple_of(config.optimize_period.max(1))
    {
        current = alsrac_synth::optimize(&current);
    }
    let measure_span = trace::span("measure");
    let measured = if original.num_inputs() <= alsrac_metrics::EXHAUSTIVE_INPUT_LIMIT {
        let patterns = PatternBuffer::exhaustive(original.num_inputs());
        measure(original, &current, &patterns)?
    } else {
        measure_auto(
            original,
            &current,
            config.measure_rounds,
            config.seed ^ 0x3EA5,
        )?
    };
    let measure_ns = measure_span.finish();
    let wall_ns = flow_span.finish();
    if trace::is_enabled() {
        trace::emit(run_end_record(
            run_id,
            iterations,
            applied,
            &current,
            wall_ns,
            measure_ns,
            &measured,
            None,
            &crate::flow::FlowOutcome::Completed,
            None,
        ));
    }
    Ok(FlowResult {
        approx: current,
        iterations,
        applied,
        measured,
        certificate: None,
        history,
        outcome: crate::flow::FlowOutcome::Completed,
        checkpoint: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_error_threshold() {
        let exact = alsrac_circuits::arith::ripple_carry_adder(4);
        let config = SuConfig {
            threshold: 0.05,
            max_iterations: 100,
            ..SuConfig::default()
        };
        let result = run(&exact, &config).expect("flow");
        assert!(result.measured.error_rate <= 0.05 + 1e-12);
        assert!(result.approx.num_ands() <= exact.num_ands());
    }

    #[test]
    fn saves_area_at_loose_threshold() {
        let exact = alsrac_circuits::arith::kogge_stone_adder(4);
        let config = SuConfig {
            threshold: 0.30,
            max_iterations: 200,
            ..SuConfig::default()
        };
        let result = run(&exact, &config).expect("flow");
        assert!(result.approx.num_ands() < exact.num_ands());
        assert!(result.applied > 0);
    }

    #[test]
    fn substitution_lacs_apply_cleanly() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let x = aig.and(a, b);
        let y = aig.and(x, c);
        aig.add_output("y", y);
        // y := !x.
        let lac = substitution_lac(y.node(), x.node(), true, 1);
        let approx = lac.apply(&aig).expect("no cycle");
        assert_eq!(approx.evaluate(&[true, true, false]), vec![false]);
        assert_eq!(approx.evaluate(&[false, true, false]), vec![true]);
        // x := const1.
        let lac = constant_lac(x.node(), true, 1);
        let approx = lac.apply(&aig).expect("no cycle");
        assert_eq!(approx.evaluate(&[false, false, true]), vec![true]);
    }

    #[test]
    fn candidates_avoid_tfo_cycles() {
        let exact = alsrac_circuits::arith::ripple_carry_adder(3);
        let patterns = PatternBuffer::exhaustive(6);
        let fanouts = exact.fanout_map();
        let estimator = Estimator::new(&exact, &exact, &patterns, &fanouts);
        let lacs = generate_candidates(&exact, &estimator, &fanouts, 3);
        for lac in &lacs {
            for &d in &lac.divisors {
                let tfo = exact.tfo_cone(lac.node.node(), &fanouts);
                assert!(!tfo.contains(d.node()), "candidate uses TFO signal");
            }
            // Applying must never cycle.
            lac.apply(&exact).expect("no cycle");
        }
    }

    #[test]
    fn nmed_mode_respects_threshold() {
        let exact = alsrac_circuits::arith::ripple_carry_adder(3);
        let config = SuConfig {
            metric: ErrorMetric::Nmed,
            threshold: 0.03,
            max_iterations: 60,
            ..SuConfig::default()
        };
        let result = run(&exact, &config).expect("flow");
        assert!(result.measured.nmed.expect("decodable") <= 0.03 + 1e-12);
    }
}
