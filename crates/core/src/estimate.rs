//! Batch error estimation (§III-C, the scheme of Su et al. DAC 2018).
//!
//! Evaluating every LAC candidate by rebuilding and re-simulating the whole
//! circuit would dominate the runtime. Instead, one base simulation of the
//! current circuit plus one flip-influence computation per *node* suffices
//! to evaluate every candidate at that node exactly (on the sampled
//! patterns): a candidate changes the node's value on the lanes where its
//! new function disagrees with the current one, and each such lane flips
//! exactly the outputs the influence masks say it flips.

use std::borrow::Cow;
use std::collections::hash_map::Entry;
use std::collections::HashMap;

use alsrac_aig::{Aig, FanoutMap, NodeId};
use alsrac_metrics::{
    compare_flipped_error_rate, compare_flipped_output_words, compare_output_words, ErrorMetric,
    Measurement,
};
use alsrac_rt::{pool, trace};
use alsrac_sim::{
    FlipInfluence, InfluenceScratch, OutputIndex, OutputWords, PatternBuffer, Simulation,
};
use alsrac_truthtable::Sop;

use crate::lac::Lac;

/// Batch error estimator for LAC candidates on a fixed pattern set.
///
/// Holds the simulations of the *original* circuit (the error reference)
/// and the *current* circuit (the one being modified) on the same
/// patterns, plus the current circuit's fanout map (computed once per
/// graph snapshot by the caller — every flow already has it in hand for
/// LAC generation).
pub struct Estimator<'a> {
    current: &'a Aig,
    patterns: &'a PatternBuffer,
    fanouts: &'a FanoutMap,
    sim: Simulation,
    original_outputs: Cow<'a, OutputWords>,
    current_outputs: OutputWords,
    masks: Vec<u64>,
    /// Node → driven outputs, built once per snapshot so the fused
    /// influence pass can skip the per-candidate all-outputs scan.
    output_index: OutputIndex,
    full_influence: bool,
    /// Precomputed per-word base mismatch columns + total error-lane
    /// count, set by [`Estimator::for_metric`] when ranking by
    /// [`ErrorMetric::ErrorRate`]. Present → per-candidate comparisons
    /// take the sparse rate-only path
    /// ([`alsrac_metrics::compare_flipped_error_rate`]) that only pays
    /// for the words a candidate actually flips.
    rate_base: Option<(Vec<u64>, u64)>,
}

impl<'a> Estimator<'a> {
    /// Builds an estimator by simulating both circuits on `patterns`.
    ///
    /// `fanouts` must be the fanout map of `current` (the same snapshot —
    /// it is used to walk TFO cones during influence computation).
    ///
    /// The estimation patterns are fixed across flow iterations, so callers
    /// in a loop should simulate the original once and carry the current
    /// simulation forward incrementally via [`Estimator::with_state`] /
    /// [`Estimator::into_simulation`]; this constructor re-simulates both
    /// circuits from scratch.
    ///
    /// # Panics
    ///
    /// Panics if the circuits disagree in input or output arity.
    pub fn new(
        original: &Aig,
        current: &'a Aig,
        patterns: &'a PatternBuffer,
        fanouts: &'a FanoutMap,
    ) -> Estimator<'a> {
        assert_eq!(original.num_inputs(), current.num_inputs(), "input arity");
        assert_eq!(
            original.num_outputs(),
            current.num_outputs(),
            "output arity"
        );
        let original_sim = Simulation::new(original, patterns);
        let original_outputs = Cow::Owned(original_sim.output_words(original));
        let sim = Simulation::new(current, patterns);
        Estimator::assemble(original_outputs, sim, current, patterns, fanouts)
    }

    /// Builds an estimator from precomputed state: the original circuit's
    /// output words (simulated once per run — the reference never changes)
    /// and an existing simulation of `current` (typically carried across
    /// iterations via [`Simulation::update`]).
    ///
    /// # Panics
    ///
    /// Panics if `sim` does not cover `current` or the shapes disagree.
    pub fn with_state(
        original_outputs: &'a OutputWords,
        sim: Simulation,
        current: &'a Aig,
        patterns: &'a PatternBuffer,
        fanouts: &'a FanoutMap,
    ) -> Estimator<'a> {
        assert_eq!(
            original_outputs.num_outputs(),
            current.num_outputs(),
            "output arity"
        );
        assert_eq!(sim.num_words(), patterns.num_words(), "pattern shape");
        Estimator::assemble(
            Cow::Borrowed(original_outputs),
            sim,
            current,
            patterns,
            fanouts,
        )
    }

    fn assemble(
        original_outputs: Cow<'a, OutputWords>,
        sim: Simulation,
        current: &'a Aig,
        patterns: &'a PatternBuffer,
        fanouts: &'a FanoutMap,
    ) -> Estimator<'a> {
        let current_outputs = sim.output_words(current);
        let masks = patterns.word_masks();
        let output_index = OutputIndex::new(current);
        Estimator {
            current,
            patterns,
            fanouts,
            sim,
            original_outputs,
            current_outputs,
            masks,
            output_index,
            full_influence: false,
            rate_base: None,
        }
    }

    /// Switches influence computation to the full-TFO-cone baseline
    /// algorithm (no event-driven early exit). Results are bit-identical
    /// either way; this exists so `bench_sim` and the determinism tests can
    /// compare the two engines' work counters.
    pub fn with_full_influence(mut self) -> Estimator<'a> {
        self.full_influence = true;
        self
    }

    /// Tailors per-candidate comparisons to the metric being ranked:
    /// [`ErrorMetric::ErrorRate`] never reads the distance metrics, so
    /// the default engine switches to a sparse rate-only compare — the
    /// base mismatch columns are precomputed once per snapshot
    /// (`O(outputs × words)`) and each candidate then costs
    /// `O(words + outputs × dirty_words)`, where dirty words are those
    /// its flips actually reach. `error_rate` stays bit-identical; the
    /// unread distance metrics come back as `None`. Distance metrics keep
    /// the full fused decode, and the full-influence baseline always
    /// keeps the historical materialize-then-compare shape.
    pub fn for_metric(mut self, metric: ErrorMetric) -> Estimator<'a> {
        self.rate_base = if metric.needs_distance() {
            None
        } else {
            Some(alsrac_metrics::base_diff_columns(
                &self.original_outputs,
                &self.current_outputs,
                &self.masks,
            ))
        };
        self
    }

    /// The base simulation of the current circuit (used by the SASIMI
    /// baseline to rank signal similarity).
    pub fn simulation(&self) -> &Simulation {
        &self.sim
    }

    /// Consumes the estimator, handing back the current circuit's
    /// simulation for incremental reuse in the next iteration.
    pub fn into_simulation(self) -> Simulation {
        self.sim
    }

    /// The pattern buffer both circuits were simulated on.
    pub fn patterns(&self) -> &PatternBuffer {
        self.patterns
    }

    /// The error of the *current* circuit against the original (no LAC).
    pub fn baseline(&self) -> Measurement {
        compare_output_words(
            &self.original_outputs,
            &self.current_outputs,
            &self.masks,
            self.patterns.num_patterns(),
        )
    }

    /// Evaluates the cover of a LAC on the divisor simulation words.
    fn change_mask(&self, lac: &Lac) -> Vec<u64> {
        let words = self.sim.num_words();
        let mut new_value = vec![0u64; words];
        sop_eval_words(&lac.cover, &lac.divisors, &self.sim, &mut new_value);
        // The cover reproduces the signal lac.node; lanes where it
        // disagrees with that signal are exactly the lanes where the
        // underlying node flips (polarity cancels in the XOR).
        (0..words)
            .map(|w| new_value[w] ^ self.sim.lit_word(lac.node, w))
            .collect()
    }

    /// Estimates the full error measurement of applying one LAC to the
    /// current circuit, relative to the original circuit.
    ///
    /// The default engine compares through the fused single-pass kernel
    /// ([`compare_flipped_output_words`]); the full-influence baseline
    /// keeps the historical materialize-then-compare shape so `bench_sim`
    /// measures the old engine as it was. Both produce bit-identical
    /// measurements.
    pub fn estimate(&self, lac: &Lac, influence: &FlipInfluence) -> Measurement {
        debug_assert_eq!(
            influence.node(),
            lac.node.node(),
            "influence/LAC node mismatch"
        );
        let change = self.change_mask(lac);
        if self.full_influence {
            let candidate_outputs = influence.apply(&self.current_outputs, &change);
            return compare_output_words(
                &self.original_outputs,
                &candidate_outputs,
                &self.masks,
                self.patterns.num_patterns(),
            );
        }
        if let Some((base_diff, base_lanes)) = &self.rate_base {
            return compare_flipped_error_rate(
                &self.original_outputs,
                &self.current_outputs,
                influence,
                &change,
                &self.masks,
                self.patterns.num_patterns(),
                base_diff,
                *base_lanes,
            );
        }
        compare_flipped_output_words(
            &self.original_outputs,
            &self.current_outputs,
            influence,
            &change,
            &self.masks,
            self.patterns.num_patterns(),
        )
    }

    /// Estimates all candidates, computing each node's influence once.
    ///
    /// Returns the per-candidate measurements, aligned with `lacs`.
    ///
    /// Both stages — one [`FlipInfluence`] per distinct candidate node,
    /// then one [`Measurement`] per candidate — run on the
    /// [`alsrac_rt::pool`] executor. Every work item is a pure function of
    /// the shared read-only simulations, so the result is bit-identical to
    /// the serial loop at any thread count.
    pub fn estimate_all(&self, lacs: &[Lac]) -> Vec<Measurement> {
        // Distinct candidate nodes in first-appearance order (LACs are
        // grouped by node, so this also keeps the dispatch cache-friendly).
        let mut nodes: Vec<NodeId> = Vec::new();
        let mut slot: HashMap<NodeId, usize> = HashMap::new();
        for lac in lacs {
            if let Entry::Vacant(e) = slot.entry(lac.node.node()) {
                e.insert(nodes.len());
                nodes.push(lac.node.node());
            }
        }
        // Telemetry: every candidate beyond the first at a node reuses
        // that node's influence — the cache hit the two-stage split buys.
        trace::add("lacs_scored", lacs.len() as u64);
        trace::add("influences_computed", nodes.len() as u64);
        trace::add("influence_cache_hits", (lacs.len() - nodes.len()) as u64);
        let influences = if self.full_influence {
            pool::par_map(&nodes, |&node| {
                FlipInfluence::compute_full(self.current, &self.sim, self.fanouts, node)
            })
        } else {
            // One scratch arena per worker: allocation-free propagation in
            // steady state, and since each influence is a pure function of
            // the shared simulation, placement by index keeps the result
            // bit-identical at any thread count. Touched outputs are
            // discovered during the propagation walk itself (fused).
            pool::par_map_init(&nodes, InfluenceScratch::new, |scratch, &node| {
                FlipInfluence::compute_fused(
                    self.current,
                    &self.sim,
                    self.fanouts,
                    &self.output_index,
                    node,
                    scratch,
                )
            })
        };
        pool::par_map(lacs, |lac| {
            self.estimate(lac, &influences[slot[&lac.node.node()]])
        })
    }

    /// Picks the index of the candidate with the smallest error under
    /// `metric`, tie-breaking by the largest estimated node gain.
    ///
    /// Returns `None` when `lacs` is empty or the metric is unavailable
    /// (distance metric on a >63-output circuit).
    pub fn best_candidate(
        &self,
        lacs: &[Lac],
        metric: ErrorMetric,
    ) -> Option<(usize, Measurement)> {
        self.ranked_candidates(lacs, metric)
            .map(|ranked| ranked.into_iter().next())?
    }

    /// Ranks all candidates by (error, then largest estimated gain),
    /// best first. Candidates whose metric value is NaN are excluded —
    /// a NaN compares as "greater than everything" under a naive sort
    /// recovery and must never outrank a real measurement.
    ///
    /// Returns `None` when the metric is unavailable (distance metric on a
    /// >63-output circuit).
    pub fn ranked_candidates(
        &self,
        lacs: &[Lac],
        metric: ErrorMetric,
    ) -> Option<Vec<(usize, Measurement)>> {
        let measurements = self.estimate_all(lacs);
        let mut indexed: Vec<(usize, f64, isize)> = Vec::with_capacity(lacs.len());
        for (i, m) in measurements.iter().enumerate() {
            let value = m.value(metric)?;
            indexed.push((i, value, lacs[i].est_gain()));
        }
        Some(
            rank_entries(indexed)
                .into_iter()
                .map(|i| (i, measurements[i]))
                .collect(),
        )
    }
}

/// Orders `(index, error, gain)` entries best-first: ascending error
/// (total order — no NaN surprises), ties broken by descending gain. NaN
/// errors are dropped entirely rather than ranked arbitrarily.
fn rank_entries(entries: Vec<(usize, f64, isize)>) -> Vec<usize> {
    let before = entries.len();
    let mut ranked: Vec<(usize, f64, isize)> = entries
        .into_iter()
        .filter(|&(_, value, _)| !value.is_nan())
        .collect();
    trace::add("nan_filtered", (before - ranked.len()) as u64);
    ranked.sort_by(|a, b| a.1.total_cmp(&b.1).then(b.2.cmp(&a.2)));
    ranked.into_iter().map(|(i, ..)| i).collect()
}

/// Evaluates a cover bitwise over the simulated divisor signal words.
fn sop_eval_words(cover: &Sop, divisors: &[alsrac_aig::Lit], sim: &Simulation, out: &mut [u64]) {
    out.fill(0);
    for cube in cover.cubes() {
        for (w, slot) in out.iter_mut().enumerate() {
            let mut term = u64::MAX;
            for (i, &d) in divisors.iter().enumerate() {
                let value = sim.lit_word(d, w);
                if cube.pos >> i & 1 != 0 {
                    term &= value;
                } else if cube.neg >> i & 1 != 0 {
                    term &= !value;
                }
            }
            *slot |= term;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lac::{generate_lacs, LacConfig};

    /// Estimated error must equal the exact error of actually applying the
    /// LAC and re-measuring — the headline property of batch estimation.
    #[test]
    fn estimation_matches_direct_application() {
        let aig = alsrac_circuits::arith::ripple_carry_adder(3);
        let care_patterns = PatternBuffer::random(6, 4, 5);
        let care_sim = Simulation::new(&aig, &care_patterns);
        let fanouts = aig.fanout_map();
        let lacs = generate_lacs(
            &aig,
            &care_sim,
            &care_patterns,
            &fanouts,
            &LacConfig {
                lac_limit: 2,
                ..LacConfig::default()
            },
        );
        assert!(!lacs.is_empty());

        let est_patterns = PatternBuffer::exhaustive(6);
        let estimator = Estimator::new(&aig, &aig, &est_patterns, &fanouts);
        let estimates = estimator.estimate_all(&lacs);
        for (lac, est) in lacs.iter().zip(&estimates) {
            let applied = lac.apply(&aig).expect("no cycle");
            let direct =
                alsrac_metrics::measure(&aig, &applied, &est_patterns).expect("same arity");
            assert!(
                (est.error_rate - direct.error_rate).abs() < 1e-12,
                "ER mismatch for {lac:?}: est {} direct {}",
                est.error_rate,
                direct.error_rate
            );
            assert_eq!(est.nmed, direct.nmed, "NMED mismatch for {lac:?}");
            assert_eq!(est.mred, direct.mred, "MRED mismatch for {lac:?}");
        }
    }

    #[test]
    fn estimation_accounts_for_accumulated_error() {
        // Current circuit already differs from the original; estimates are
        // relative to the ORIGINAL.
        let original = alsrac_circuits::arith::ripple_carry_adder(2);
        let mut current = original.clone();
        current.set_output_lit(2, alsrac_aig::Lit::FALSE); // stuck carry
        let patterns = PatternBuffer::exhaustive(4);
        let fanouts = current.fanout_map();
        let estimator = Estimator::new(&original, &current, &patterns, &fanouts);
        let baseline = estimator.baseline();
        assert!(baseline.error_rate > 0.0);
    }

    #[test]
    fn best_candidate_prefers_smaller_error() {
        let aig = alsrac_circuits::arith::kogge_stone_adder(3);
        let care_patterns = PatternBuffer::random(6, 4, 11);
        let care_sim = Simulation::new(&aig, &care_patterns);
        let fanouts = aig.fanout_map();
        let lacs = generate_lacs(
            &aig,
            &care_sim,
            &care_patterns,
            &fanouts,
            &LacConfig {
                lac_limit: 3,
                ..LacConfig::default()
            },
        );
        assert!(lacs.len() >= 2);
        let est_patterns = PatternBuffer::exhaustive(6);
        let estimator = Estimator::new(&aig, &aig, &est_patterns, &fanouts);
        let (best_idx, best_m) = estimator
            .best_candidate(&lacs, ErrorMetric::ErrorRate)
            .expect("candidates exist");
        let all = estimator.estimate_all(&lacs);
        for m in &all {
            assert!(best_m.error_rate <= m.error_rate + 1e-12);
        }
        assert!(best_idx < lacs.len());
    }

    #[test]
    fn estimate_all_is_bit_identical_across_thread_counts() {
        let aig = alsrac_circuits::arith::wallace_multiplier(3);
        let care_patterns = PatternBuffer::random(6, 8, 17);
        let care_sim = Simulation::new(&aig, &care_patterns);
        let fanouts = aig.fanout_map();
        let lacs = generate_lacs(
            &aig,
            &care_sim,
            &care_patterns,
            &fanouts,
            &LacConfig {
                lac_limit: 3,
                ..LacConfig::default()
            },
        );
        assert!(lacs.len() >= 2, "need a few candidates");
        let est_patterns = PatternBuffer::exhaustive(6);
        let estimator = Estimator::new(&aig, &aig, &est_patterns, &fanouts);
        let serial = alsrac_rt::pool::with_threads(1, || estimator.estimate_all(&lacs));
        for threads in [2, 5] {
            let parallel = alsrac_rt::pool::with_threads(threads, || estimator.estimate_all(&lacs));
            assert_eq!(serial.len(), parallel.len());
            for (s, p) in serial.iter().zip(&parallel) {
                assert_eq!(s.num_patterns, p.num_patterns);
                assert_eq!(s.error_rate.to_bits(), p.error_rate.to_bits());
                assert_eq!(s.nmed.map(f64::to_bits), p.nmed.map(f64::to_bits));
                assert_eq!(s.mred.map(f64::to_bits), p.mred.map(f64::to_bits));
                assert_eq!(s.max_error_distance, p.max_error_distance);
            }
        }
    }

    #[test]
    fn nan_entries_never_outrank_real_candidates() {
        // A NaN error with a huge gain must be dropped, not sorted first.
        let entries = vec![(0, f64::NAN, 1000), (1, 0.5, 0), (2, 0.1, 0)];
        assert_eq!(rank_entries(entries), vec![2, 1]);
        // All-NaN input ranks nothing.
        assert!(rank_entries(vec![(0, f64::NAN, 0)]).is_empty());
    }

    #[test]
    fn rank_breaks_error_ties_by_largest_gain() {
        let entries = vec![(0, 0.2, 1), (1, 0.2, 5), (2, 0.3, 9)];
        assert_eq!(rank_entries(entries), vec![1, 0, 2]);
    }

    #[test]
    fn sop_eval_words_matches_eval() {
        use alsrac_truthtable::Cube;
        let mut aig = alsrac_aig::Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let x = aig.and(a, b); // keep some logic alive
        aig.add_output("y", x);
        let patterns = PatternBuffer::exhaustive(3);
        let sim = Simulation::new(&aig, &patterns);
        let cover = Sop::new(vec![
            Cube::TAUTOLOGY.with_pos(0).with_neg(1),
            Cube::TAUTOLOGY.with_pos(2),
        ]);
        let divisors = vec![a, b, c];
        let mut out = vec![0u64; sim.num_words()];
        sop_eval_words(&cover, &divisors, &sim, &mut out);
        for p in 0..8 {
            let pattern = (sim.lit_bit(a, p) as usize)
                | (sim.lit_bit(b, p) as usize) << 1
                | (sim.lit_bit(c, p) as usize) << 2;
            assert_eq!(out[0] >> p & 1 != 0, cover.eval(pattern), "p={p}");
        }
    }
}
