//! SAT-backed error certification: exact guarantees for flow results.
//!
//! The flow's measurements are statistical (Monte-Carlo sampling with
//! Wilson bounds); a shippable approximate circuit needs a *certificate*.
//! This module glues `alsrac-sat`'s miter + model-counting machinery to
//! the metric types: [`certify_error_rate`] counts the differing-input
//! set of the original-vs-approximate miter (exact by enumeration, or
//! (ε, δ)-approximate by XOR-hash counting on wide-input circuits), and
//! [`certify_wce`] binary-searches the maximum error distance with
//! comparator clauses. Both return an
//! [`alsrac_metrics::CertifiedMeasurement`].
//!
//! [`wce_within`] / [`wce_gate`] are the accept-side gate of the
//! WCE-constrained flow: a single `distance > bound` SAT query replacing
//! the sampled estimate in the acceptance decision.
//!
//! **Budgets and degradation.** Every entry point has a `_budgeted`
//! variant threading an [`alsrac_rt::budget::Budget`] into the solver.
//! When a SAT cap cuts a query short the certificate comes back with
//! [`CertStatus::Degraded`] (deterministic — caps count solver events,
//! so the same run always degrades the same way); when the budget's
//! cancel token or deadline interrupts, the gate reports
//! [`WceGate::Interrupted`] and the flow aborts the iteration without
//! letting the nondeterministic answer steer any decision.
//!
//! Telemetry: `cert_miters_built`, `cert_sat_queries`,
//! `cert_wce_searches`, `cert_candidate_rejects`, and `cert_degraded`
//! counters plus a `certify` span, all inert when tracing is disabled.

use alsrac_aig::Aig;
use alsrac_metrics::{CertStatus, CertifiedMeasurement, ErrorMetric};
use alsrac_rt::budget::Budget;
use alsrac_rt::trace;
use alsrac_sat::count;
use alsrac_sat::miter::Miter;
use alsrac_sat::SatResult;

/// Certifies the error rate of `approx` against `original` by model
/// counting over the miter inputs.
///
/// Exact (complete enumeration) for input counts up to
/// [`count::ENUMERATION_INPUT_LIMIT`] — and whenever the differing-input
/// set turns out small — otherwise an XOR-hash estimate at
/// ([`count::DEFAULT_EPSILON`], [`count::DEFAULT_DELTA`]). `seed` only
/// influences the hash randomness.
///
/// # Panics
///
/// Panics if the circuits disagree in input or output counts.
pub fn certify_error_rate(original: &Aig, approx: &Aig, seed: u64) -> CertifiedMeasurement {
    certify_error_rate_budgeted(original, approx, seed, &Budget::unlimited())
}

/// [`certify_error_rate`] under a [`Budget`]: the miter solver runs with
/// the budget's SAT caps, cancel token, and deadline attached.
///
/// When any of those cuts the model count short, the certificate comes
/// back with [`CertStatus::Degraded`] and `exact == false`: its `value`
/// is a *proven lower bound* on the error rate (the differing inputs
/// enumerated before the cut), not a guarantee. Callers on the
/// certified path should fall back to their sampled measurement.
///
/// # Panics
///
/// Panics if the circuits disagree in input or output counts.
pub fn certify_error_rate_budgeted(
    original: &Aig,
    approx: &Aig,
    seed: u64,
    budget: &Budget,
) -> CertifiedMeasurement {
    let span = trace::span("certify");
    let mut miter = Miter::new(original, approx);
    miter.solver.set_budget(budget.clone());
    trace::add("cert_miters_built", 1);
    let counted = count::count_errors(&mut miter, seed);
    trace::add("cert_sat_queries", counted.sat_queries);
    let status = if counted.complete {
        CertStatus::Certified
    } else {
        trace::add("cert_degraded", 1);
        CertStatus::Degraded {
            reason: "SAT budget exhausted during error-rate model counting".to_string(),
        }
    };
    span.finish();
    CertifiedMeasurement {
        metric: ErrorMetric::ErrorRate,
        value: counted.rate(),
        exact: counted.exact,
        epsilon: counted.epsilon,
        delta: counted.delta,
        sat_queries: counted.sat_queries,
        status,
    }
}

/// Certifies the exact maximum error distance (WCE) of `approx` against
/// `original` by binary search over `distance > t` comparator queries.
///
/// # Panics
///
/// Panics if the circuits disagree in arity or have more than 63 outputs
/// (error distances are undecodable, as in `alsrac-metrics`).
pub fn certify_wce(original: &Aig, approx: &Aig) -> CertifiedMeasurement {
    certify_wce_budgeted(original, approx, &Budget::unlimited())
}

/// [`certify_wce`] under a [`Budget`]: the miter solver runs with the
/// budget's SAT caps, cancel token, and deadline attached.
///
/// When the binary search is cut short the certificate comes back with
/// [`CertStatus::Degraded`] and `exact == false`: its `value` is still a
/// *sound upper bound* on the maximum error distance (every `Unsat`
/// answer that tightened the bound is a hard fact), just not proven
/// tight.
///
/// # Panics
///
/// Panics if the circuits disagree in arity or have more than 63 outputs.
pub fn certify_wce_budgeted(original: &Aig, approx: &Aig, budget: &Budget) -> CertifiedMeasurement {
    let span = trace::span("certify");
    let mut miter = Miter::new(original, approx);
    miter.solver.set_budget(budget.clone());
    trace::add("cert_miters_built", 1);
    let cert = miter.certify_max_distance();
    trace::add("cert_sat_queries", cert.queries);
    trace::add("cert_wce_searches", 1);
    let status = if cert.complete {
        CertStatus::Certified
    } else {
        trace::add("cert_degraded", 1);
        CertStatus::Degraded {
            reason: "SAT budget exhausted during WCE binary search".to_string(),
        }
    };
    span.finish();
    CertifiedMeasurement {
        metric: ErrorMetric::Wce,
        value: cert.max_distance as f64,
        exact: cert.complete,
        epsilon: 0.0,
        delta: 0.0,
        sat_queries: cert.queries,
        status,
    }
}

/// Outcome of the budgeted WCE accept gate ([`wce_gate`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WceGate {
    /// Proven: max error distance ≤ bound. Safe to accept.
    Within,
    /// Proven: some input exceeds the bound. Must reject.
    Exceeds,
    /// A SAT cap cut the query short. Deterministic (caps count solver
    /// events), so the flow may fall back to its sampled estimate
    /// without breaking reproducibility — the certificate is degraded.
    Degraded,
    /// The budget's cancel token or deadline fired mid-query. This is
    /// wall-clock nondeterminism: the answer must not steer any
    /// decision, so the flow aborts the iteration instead.
    Interrupted,
}

/// The budgeted WCE accept gate: is the maximum error distance of
/// `approx` against `original` at most `bound`, certified by a single
/// `distance > bound` SAT query under `budget`?
///
/// An `Unknown` solver answer is classified [`WceGate::Interrupted`]
/// when the budget's cancel token or deadline has fired (nondeterministic
/// cut — the caller must abort, not decide) and [`WceGate::Degraded`]
/// otherwise (a deterministic SAT cap — the caller may fall back to its
/// sampled estimate).
///
/// # Panics
///
/// Panics if the circuits disagree in arity or have more than 63 outputs.
pub fn wce_gate(original: &Aig, approx: &Aig, bound: u64, budget: &Budget) -> WceGate {
    let span = trace::span("certify");
    let mut miter = Miter::new(original, approx);
    miter.solver.set_budget(budget.clone());
    trace::add("cert_miters_built", 1);
    trace::add("cert_sat_queries", 1);
    let gate = match miter.distance_exceeds(bound) {
        SatResult::Unsat => WceGate::Within,
        SatResult::Sat => WceGate::Exceeds,
        SatResult::Unknown => {
            if budget.interrupted().is_some() {
                WceGate::Interrupted
            } else {
                trace::add("cert_degraded", 1);
                WceGate::Degraded
            }
        }
    };
    span.finish();
    gate
}

/// The WCE accept gate: is the maximum error distance of `approx` against
/// `original` at most `bound`, certified by a single SAT query?
///
/// Unlimited-budget form of [`wce_gate`]; never degrades.
///
/// # Panics
///
/// Panics if the circuits disagree in arity or have more than 63 outputs.
pub fn wce_within(original: &Aig, approx: &Aig, bound: u64) -> bool {
    wce_gate(original, approx, bound, &Budget::unlimited()) == WceGate::Within
}

#[cfg(test)]
mod tests {
    use super::*;
    use alsrac_aig::Lit;
    use alsrac_circuits::catalog::{epfl_arith, epfl_control, iscas_and_arith, Benchmark, Scale};

    /// Flips output `position` of `original` on the input patterns where
    /// the first `n - 6` inputs are all 1 — at most 64 differing patterns
    /// on any circuit, so exact enumeration stays cheap in the sweeps.
    fn corrupted(original: &Aig, position: usize) -> Aig {
        let mut approx = original.clone();
        let keep = original.num_inputs().saturating_sub(6);
        let gate_inputs: Vec<Lit> = approx.inputs()[..keep].iter().map(|id| id.lit()).collect();
        let gate = approx.and_all(&gate_inputs);
        let flipped = approx.xor(approx.output_lits()[position], gate);
        approx.set_output_lit(position, flipped);
        approx
    }

    fn bundled(scale: Scale) -> impl Iterator<Item = Benchmark> {
        iscas_and_arith(scale)
            .into_iter()
            .chain(epfl_control(scale))
            .chain(epfl_arith(scale))
    }

    #[test]
    fn certified_error_rate_matches_exhaustive_on_all_bundled_circuits() {
        let mut swept = 0;
        for bench in bundled(Scale::Test) {
            if bench.aig.num_inputs() > alsrac_metrics::EXHAUSTIVE_INPUT_LIMIT {
                continue;
            }
            let approx = corrupted(&bench.aig, 0);
            let patterns = alsrac_sim::PatternBuffer::exhaustive(bench.aig.num_inputs());
            let measured =
                alsrac_metrics::measure(&bench.aig, &approx, &patterns).expect("measure");
            let cert = certify_error_rate(&bench.aig, &approx, 7);
            assert!(
                cert.exact,
                "{}: certificate must be exact",
                bench.paper_name
            );
            assert!(
                measured.error_rate > 0.0,
                "{}: corruption inert",
                bench.paper_name
            );
            assert_eq!(
                cert.value, measured.error_rate,
                "{}: model count disagrees with exhaustive simulation",
                bench.paper_name
            );
            swept += 1;
        }
        assert!(swept >= 9, "only {swept} circuits swept");
    }

    #[test]
    fn certified_wce_matches_exhaustive_on_bundled_circuits() {
        let mut swept = 0;
        for bench in bundled(Scale::Test) {
            if bench.aig.num_inputs() > alsrac_metrics::EXHAUSTIVE_INPUT_LIMIT
                || bench.aig.num_outputs() > 63
            {
                continue;
            }
            let approx = corrupted(&bench.aig, bench.aig.num_outputs() - 1);
            let patterns = alsrac_sim::PatternBuffer::exhaustive(bench.aig.num_inputs());
            let measured =
                alsrac_metrics::measure(&bench.aig, &approx, &patterns).expect("measure");
            let expected = measured.max_error_distance.expect("decodable");
            let cert = certify_wce(&bench.aig, &approx);
            assert!(
                cert.exact,
                "{}: WCE certificates are exact",
                bench.paper_name
            );
            assert_eq!(
                cert.value, expected as f64,
                "{}: binary search disagrees with exhaustive simulation",
                bench.paper_name
            );
            assert!(
                wce_within(&bench.aig, &approx, expected),
                "{}",
                bench.paper_name
            );
            assert!(
                expected == 0 || !wce_within(&bench.aig, &approx, expected - 1),
                "{}: bound below the maximum must fail",
                bench.paper_name
            );
            swept += 1;
        }
        assert!(swept >= 9, "only {swept} circuits swept");
    }

    #[test]
    fn identical_circuits_certify_zero() {
        let a = alsrac_circuits::arith::ripple_carry_adder(3);
        let er = certify_error_rate(&a, &a.clone(), 1);
        assert!(er.exact);
        assert_eq!(er.value, 0.0);
        let wce = certify_wce(&a, &a.clone());
        assert_eq!(wce.value, 0.0);
        assert!(wce_within(&a, &a.clone(), 0));
    }

    #[test]
    fn budget_starved_certificates_degrade_instead_of_hanging() {
        // Propagation cap 0 makes every solver query answer Unknown
        // deterministically: both certifiers must come back Degraded
        // with sound (lower/upper bound) values, never panic or hang.
        let original = alsrac_circuits::arith::ripple_carry_adder(3);
        let approx = corrupted(&original, 0);
        let starved = Budget::unlimited().with_sat_propagations(0);

        let er = certify_error_rate_budgeted(&original, &approx, 7, &starved);
        assert!(!er.status.is_certified(), "{:?}", er.status);
        assert!(!er.exact);
        let full = certify_error_rate(&original, &approx, 7);
        assert!(full.status.is_certified());
        assert!(
            er.value <= full.value,
            "degraded rate must be a lower bound"
        );

        let wce = certify_wce_budgeted(&original, &approx, &starved);
        assert!(!wce.status.is_certified(), "{:?}", wce.status);
        assert!(!wce.exact);
        let full_wce = certify_wce(&original, &approx);
        assert!(full_wce.status.is_certified());
        assert!(full_wce.exact);
        assert!(
            wce.value >= full_wce.value,
            "degraded WCE must stay a sound upper bound"
        );
    }

    #[test]
    fn wce_gate_classifies_unknown_by_interrupt_kind() {
        let original = alsrac_circuits::arith::ripple_carry_adder(3);
        let approx = corrupted(&original, 0);
        let bound = certify_wce(&original, &approx).value as u64;

        // Unlimited budget: hard answers on both sides of the bound.
        let unlimited = Budget::unlimited();
        assert_eq!(
            wce_gate(&original, &approx, bound, &unlimited),
            WceGate::Within
        );
        assert!(bound > 0, "corruption inert");
        assert_eq!(
            wce_gate(&original, &approx, bound - 1, &unlimited),
            WceGate::Exceeds
        );

        // Deterministic SAT cap: Unknown classifies as Degraded.
        let starved = Budget::unlimited().with_sat_propagations(0);
        assert_eq!(
            wce_gate(&original, &approx, bound - 1, &starved),
            WceGate::Degraded
        );

        // Tripped cancel token: Unknown classifies as Interrupted.
        let token = alsrac_rt::budget::CancelToken::new();
        token.trip();
        let cancelled = Budget::unlimited()
            .with_cancel(token)
            .with_sat_propagations(0);
        assert_eq!(
            wce_gate(&original, &approx, bound - 1, &cancelled),
            WceGate::Interrupted
        );
    }

    #[test]
    fn certified_rate_matches_exhaustive_measurement() {
        let original = alsrac_circuits::arith::ripple_carry_adder(3);
        let mut approx = original.clone();
        approx.set_output_lit(1, Lit::FALSE);
        let patterns = alsrac_sim::PatternBuffer::exhaustive(original.num_inputs());
        let measured = alsrac_metrics::measure(&original, &approx, &patterns).expect("measure");
        let cert = certify_error_rate(&original, &approx, 1);
        assert!(cert.exact);
        assert_eq!(cert.value, measured.error_rate);
    }

    #[test]
    fn certified_wce_matches_exhaustive_measurement() {
        let original = alsrac_circuits::arith::ripple_carry_adder(3);
        let mut approx = original.clone();
        let last = approx.num_outputs() - 1;
        approx.set_output_lit(last, Lit::FALSE);
        let patterns = alsrac_sim::PatternBuffer::exhaustive(original.num_inputs());
        let measured = alsrac_metrics::measure(&original, &approx, &patterns).expect("measure");
        let cert = certify_wce(&original, &approx);
        assert_eq!(
            cert.value,
            measured.max_error_distance.expect("decodable") as f64
        );
        let bound = cert.value as u64;
        assert!(wce_within(&original, &approx, bound));
        assert!(!wce_within(&original, &approx, bound - 1));
    }
}
