//! The ALSRAC flow (Algorithm 3 of the paper).

use alsrac_aig::Aig;
use alsrac_metrics::{measure, measure_auto, CertifiedMeasurement, ErrorMetric, Measurement};
use alsrac_rt::budget::{Budget, Interrupt};
use alsrac_rt::json::Obj;
use alsrac_rt::{derive_indexed, derive_seed, trace, Stream};
use alsrac_sim::{PatternBuffer, Simulation};

use crate::certify::{self, WceGate};
use crate::checkpoint::Checkpoint;
use crate::estimate::Estimator;
use crate::lac::{generate_lacs_with, LacConfig};
use crate::window::WindowConfig;
use crate::FlowError;

/// Parameters of the ALSRAC flow. Defaults follow the paper's §IV-A
/// experimental setup (`N = 32`, `L = 1`, `t = 5`, `r = 0.9`), with
/// CI-friendly estimation/measurement sample counts (the paper uses 10⁷
/// measurement rounds on a desktop; raise `measure_rounds` to match).
#[derive(Clone, Debug)]
pub struct FlowConfig {
    /// The constrained error metric.
    pub metric: ErrorMetric,
    /// The error threshold `E_t`.
    pub threshold: f64,
    /// Initial care-simulation rounds `N`.
    pub initial_rounds: usize,
    /// Maximum LACs per node `L`.
    pub lac_limit: usize,
    /// Consecutive empty-candidate iterations before `N` shrinks (`t`).
    pub patience: usize,
    /// Shrink factor for `N` (`r`, in `(0, 1)`).
    pub shrink: f64,
    /// Patterns used for batch error estimation of candidates (exhaustive
    /// simulation is used instead when the circuit has at most
    /// [`EXHAUSTIVE_ESTIMATION_LIMIT`] inputs).
    pub est_rounds: usize,
    /// Patterns used for the final accuracy measurement (exhaustive when
    /// the input count permits).
    pub measure_rounds: usize,
    /// RNG seed; every random decision derives from it. Care simulation,
    /// candidate estimation, and the final measurement each draw from
    /// their own [`alsrac_rt::Stream`] sub-stream of this seed.
    pub seed: u64,
    /// Per-input probability of being 1. `None` means uniform (the paper's
    /// experimental setting); `Some` exercises §III-A's "user-specified
    /// distribution" generality. Care patterns, estimation patterns, and
    /// the final measurement all follow the distribution.
    pub input_bias: Option<Vec<f64>>,
    /// Hard iteration cap (safety net; the paper's loop is unbounded).
    pub max_iterations: usize,
    /// Run the traditional optimizer (`sweep; resyn2`) after accepted
    /// LACs, as in Algorithm 3 line 9. Disabling trades area for speed.
    pub optimize_after_apply: bool,
    /// Re-optimize only every this many accepted LACs (1 = after each, the
    /// paper's behaviour; larger values trade area for speed on big
    /// circuits). The final result is always optimized.
    pub optimize_period: usize,
    /// Disable the incremental estimation engine: re-simulate both circuits
    /// from scratch every iteration and compute flip influences over full
    /// TFO cones. Results are bit-identical either way (both engines are
    /// exact); this exists as the measured baseline for `bench_sim` and the
    /// incremental-vs-full determinism tests.
    pub full_resim: bool,
    /// Produce a SAT certificate of the final error
    /// ([`FlowResult::certificate`]): exact model counting of the miter
    /// for [`ErrorMetric::ErrorRate`] (XOR-hash (ε, δ) counting beyond
    /// [`alsrac_sat::count::ENUMERATION_INPUT_LIMIT`] inputs). Implied —
    /// always on — for [`ErrorMetric::Wce`], whose accept decision is
    /// SAT-backed to begin with. Ignored (no certificate) for the
    /// distance-mean metrics NMED/MRED, which model counting does not
    /// cover.
    pub certify: bool,
    /// Execution budget: cooperative cancellation, a wall-clock deadline,
    /// and SAT caps. Checked at iteration boundaries and threaded into
    /// every certification solver. Cancellation and deadline expiry
    /// interrupt the run ([`FlowOutcome::Interrupted`], with a
    /// [`Checkpoint`] to resume from); SAT caps instead *degrade* —
    /// certificates come back with
    /// [`alsrac_metrics::CertStatus::Degraded`] and the WCE accept gate
    /// falls back to the sampled estimate — because caps count
    /// deterministic solver events and therefore keep runs reproducible.
    /// Defaults to unlimited (no behaviour change).
    pub budget: Budget,
    /// LAC generation options (divisor selection etc.).
    pub lac: LacConfig,
    /// Window-local resubstitution options. Enabled by default; window
    /// bounds at or above every pivot's TFI size (as on the bundled small
    /// circuits) keep results bit-identical to `WindowConfig::disabled()`.
    pub window: WindowConfig,
}

/// Input count at or below which candidate estimation uses exhaustive
/// patterns (making the flow deterministic given the seed).
pub const EXHAUSTIVE_ESTIMATION_LIMIT: usize = 14;

impl Default for FlowConfig {
    fn default() -> FlowConfig {
        FlowConfig {
            metric: ErrorMetric::ErrorRate,
            threshold: 0.01,
            initial_rounds: 32,
            lac_limit: 1,
            patience: 5,
            shrink: 0.9,
            est_rounds: 2048,
            measure_rounds: 50_000,
            seed: 1,
            input_bias: None,
            max_iterations: 10_000,
            optimize_after_apply: true,
            optimize_period: 1,
            full_resim: false,
            certify: false,
            budget: Budget::unlimited(),
            lac: LacConfig::default(),
            window: WindowConfig::default(),
        }
    }
}

impl FlowConfig {
    fn validate(&self) -> Result<(), FlowError> {
        if self.threshold.is_nan() || self.threshold <= 0.0 {
            return Err(FlowError::InvalidConfig {
                parameter: "threshold",
                reason: "must be positive".to_string(),
            });
        }
        if !(self.shrink > 0.0 && self.shrink < 1.0) {
            return Err(FlowError::InvalidConfig {
                parameter: "shrink",
                reason: format!("must be in (0, 1), got {}", self.shrink),
            });
        }
        if self.initial_rounds == 0 {
            return Err(FlowError::InvalidConfig {
                parameter: "initial_rounds",
                reason: "must be positive".to_string(),
            });
        }
        if self.patience == 0 {
            return Err(FlowError::InvalidConfig {
                parameter: "patience",
                reason: "must be positive".to_string(),
            });
        }
        // Zero-pattern estimation/measurement buffers make every comparison
        // vacuous (0 error lanes over 0 patterns), so every candidate would
        // silently pass the threshold check. Reject up front.
        if self.est_rounds == 0 {
            return Err(FlowError::InvalidConfig {
                parameter: "est_rounds",
                reason: "must be positive".to_string(),
            });
        }
        if self.measure_rounds == 0 {
            return Err(FlowError::InvalidConfig {
                parameter: "measure_rounds",
                reason: "must be positive".to_string(),
            });
        }
        if let Some(bias) = &self.input_bias {
            if bias.iter().any(|p| !(0.0..=1.0).contains(p)) {
                return Err(FlowError::InvalidConfig {
                    parameter: "input_bias",
                    reason: "probabilities must be in [0, 1]".to_string(),
                });
            }
        }
        Ok(())
    }
}

/// One accepted iteration of the flow.
#[derive(Clone, Copy, Debug)]
pub struct IterationRecord {
    /// Estimated error after applying the iteration's LAC.
    pub estimated_error: f64,
    /// AND count after applying and re-optimizing.
    pub ands: usize,
    /// Care-simulation rounds `N` in effect.
    pub rounds: usize,
}

/// How an ALSRAC run ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FlowOutcome {
    /// The loop ran to its natural end (threshold saturated, candidates
    /// exhausted, or the iteration cap).
    Completed,
    /// The budget's cancel token or deadline fired. The result still
    /// carries the best-so-far circuit with a real measurement, plus a
    /// [`Checkpoint`] that [`resume`] continues bit-identically.
    Interrupted {
        /// What fired ([`Interrupt`]'s `Display` form).
        reason: String,
    },
}

impl FlowOutcome {
    /// Returns `true` for [`FlowOutcome::Completed`].
    pub fn is_completed(&self) -> bool {
        matches!(self, FlowOutcome::Completed)
    }
}

/// The result of an ALSRAC run.
#[derive(Clone, Debug)]
pub struct FlowResult {
    /// The approximate circuit (optimized, not yet technology-mapped).
    pub approx: Aig,
    /// Total loop iterations (including candidate-less ones).
    pub iterations: usize,
    /// Accepted LACs.
    pub applied: usize,
    /// Final accuracy measurement against the original circuit.
    pub measured: Measurement,
    /// SAT certificate of the final error: present for
    /// [`ErrorMetric::Wce`] (exact maximum error distance when the
    /// certificate's status is `Certified`), present for
    /// [`ErrorMetric::ErrorRate`] when [`FlowConfig::certify`] is set,
    /// absent otherwise and on interrupted runs (an exhausted budget has
    /// no headroom for certification; the sampled `measured` stands in).
    /// A `Degraded` certificate's `value` is the sampled measurement —
    /// the SAT budget ran out before the proof finished.
    pub certificate: Option<CertifiedMeasurement>,
    /// Per-accepted-iteration trace.
    pub history: Vec<IterationRecord>,
    /// Whether the run completed or was interrupted by its budget.
    pub outcome: FlowOutcome,
    /// Resume state, present exactly when `outcome` is
    /// [`FlowOutcome::Interrupted`].
    pub checkpoint: Option<Checkpoint>,
}

/// Runs ALSRAC on `original` (Algorithm 3).
///
/// The loop: simulate `N` random patterns, generate LAC candidates from
/// the approximate care sets, estimate every candidate's whole-circuit
/// error with batch estimation, apply the least-error candidate if it
/// stays within the threshold, and re-optimize with the traditional
/// synthesis script. When no candidate exists for `t` consecutive
/// iterations, `N` is scaled by `r`, shrinking the care sets.
///
/// # Errors
///
/// * [`FlowError::DegenerateCircuit`] for circuits without inputs or
///   outputs;
/// * [`FlowError::InvalidConfig`] for out-of-range parameters;
/// * [`FlowError::MetricUnavailable`] when a distance metric is requested
///   on a circuit with more than 63 outputs.
pub fn run(original: &Aig, config: &FlowConfig) -> Result<FlowResult, FlowError> {
    preflight(original, config)?;
    run_from(original, config, None, None)
}

/// [`run`] with a caller-provided exhaustive estimation-pattern buffer.
///
/// Multi-tenant drivers (`alsrac::serve`) run many flows over the same
/// small circuits; the exhaustive estimation buffer for an `n`-input
/// circuit is identical for every such flow, so they build it once and
/// share it via `Arc`. The buffer is used only when this run would build
/// the identical buffer itself (uniform input distribution, `n ≤`
/// [`EXHAUSTIVE_ESTIMATION_LIMIT`], matching input/pattern counts) —
/// otherwise it is ignored and the flow draws its own patterns, so the
/// result is bit-identical to [`run`] in every case. `shared_est` must be
/// `PatternBuffer::exhaustive(original.num_inputs())`; passing any other
/// buffer of the same shape violates the determinism contract.
///
/// # Errors
///
/// Exactly [`run`]'s errors.
pub fn run_shared(
    original: &Aig,
    config: &FlowConfig,
    shared_est: Option<&PatternBuffer>,
) -> Result<FlowResult, FlowError> {
    preflight(original, config)?;
    run_from(original, config, None, shared_est)
}

/// Continues an interrupted run from its [`Checkpoint`].
///
/// Because every random decision of the flow is a pure function of
/// `(seed, stream, iteration)`, a resumed run replays the remaining
/// iterations exactly as the uninterrupted run would have executed them:
/// the final [`FlowResult`] is bit-identical (circuit structure, history
/// floats, measurement) to a never-interrupted run of the same config —
/// at any worker-thread count.
///
/// # Errors
///
/// All of [`run`]'s errors, plus [`FlowError::Checkpoint`] when the
/// checkpoint does not belong to this `(original, config)` pair (seed,
/// metric, or threshold mismatch; arity mismatch; iteration count beyond
/// the config's cap).
pub fn resume(
    original: &Aig,
    config: &FlowConfig,
    checkpoint: Checkpoint,
) -> Result<FlowResult, FlowError> {
    preflight(original, config)?;
    let mismatch = |reason: String| Err(FlowError::Checkpoint { reason });
    if checkpoint.seed != config.seed {
        return mismatch(format!(
            "seed mismatch: checkpoint {}, config {}",
            checkpoint.seed, config.seed
        ));
    }
    if checkpoint.metric != config.metric {
        return mismatch(format!(
            "metric mismatch: checkpoint {}, config {}",
            checkpoint.metric, config.metric
        ));
    }
    if checkpoint.threshold.to_bits() != config.threshold.to_bits() {
        return mismatch(format!(
            "threshold mismatch: checkpoint {}, config {}",
            checkpoint.threshold, config.threshold
        ));
    }
    if checkpoint.iterations > config.max_iterations {
        return mismatch(format!(
            "checkpoint is {} iterations in, config caps at {}",
            checkpoint.iterations, config.max_iterations
        ));
    }
    if checkpoint.current.num_inputs() != original.num_inputs()
        || checkpoint.current.num_outputs() != original.num_outputs()
    {
        return mismatch(format!(
            "arity mismatch: checkpoint circuit is {}x{}, original is {}x{}",
            checkpoint.current.num_inputs(),
            checkpoint.current.num_outputs(),
            original.num_inputs(),
            original.num_outputs()
        ));
    }
    run_from(original, config, Some(checkpoint), None)
}

/// Shared validation of [`run`] and [`resume`].
fn preflight(original: &Aig, config: &FlowConfig) -> Result<(), FlowError> {
    config.validate()?;
    if original.num_inputs() == 0 || original.num_outputs() == 0 {
        return Err(FlowError::DegenerateCircuit {
            inputs: original.num_inputs(),
            outputs: original.num_outputs(),
        });
    }
    if config.metric != ErrorMetric::ErrorRate && original.num_outputs() > 63 {
        return Err(FlowError::MetricUnavailable {
            reason: format!(
                "{} needs integer-decodable outputs, circuit has {}",
                config.metric,
                original.num_outputs()
            ),
        });
    }
    Ok(())
}

/// The loop body shared by [`run`] (fresh state) and [`resume`]
/// (checkpointed state).
fn run_from(
    original: &Aig,
    config: &FlowConfig,
    checkpoint: Option<Checkpoint>,
    shared_est: Option<&PatternBuffer>,
) -> Result<FlowResult, FlowError> {
    // Telemetry: every record of this run is stamped with a process-unique
    // id so concurrently running flows (pool workers in the table
    // binaries) stay separable in the shared JSONL sink. All span/record
    // work below is inert when no sink is installed.
    let run_id = trace::next_run_id();
    let flow_span = trace::span("flow");
    if trace::is_enabled() {
        trace::emit(run_start_record(
            run_id,
            "alsrac",
            original,
            config.seed,
            config.metric,
            config.threshold,
        ));
    }

    // Fresh state or the checkpointed loop state. The carried estimation
    // simulation is deliberately NOT part of a checkpoint: the incremental
    // engine is exact, so rebuilding it from scratch below is
    // bit-identical to the state the interrupted run carried.
    let resumed_from = checkpoint.as_ref().map(|cp| cp.iterations as u64);
    let (mut current, mut rounds, mut empty_streak, mut over_streak, mut stuck_streak);
    let (mut applied, mut history, mut iterations);
    match checkpoint {
        Some(cp) => {
            current = cp.current;
            rounds = cp.rounds;
            empty_streak = cp.empty_streak;
            over_streak = cp.over_streak;
            stuck_streak = cp.stuck_streak;
            applied = cp.applied;
            history = cp.history;
            iterations = cp.iterations;
        }
        None => {
            current = original.cleaned();
            rounds = config.initial_rounds;
            empty_streak = 0;
            over_streak = 0;
            stuck_streak = 0;
            applied = 0;
            history = Vec::new();
            iterations = 0;
        }
    }
    let max_rounds = config.initial_rounds * 4;
    // Set when the budget's cancel token or deadline fires: the loop
    // stops, the partial iteration (if any) is rolled back, and the run
    // returns best-so-far with a checkpoint instead of an error.
    let mut interrupt: Option<Interrupt> = None;

    let draw = |n: usize, rounds: usize, seed: u64| -> PatternBuffer {
        match &config.input_bias {
            Some(bias) => PatternBuffer::biased(n, rounds, bias, seed),
            None => PatternBuffer::random(n, rounds, seed),
        }
    };
    // Exhaustive estimation is only unbiased under the uniform
    // distribution; biased flows always sample. A shared buffer is
    // accepted only when it matches the exhaustive buffer this run would
    // build itself, so sharing can never change a result.
    let exhaustive_est =
        config.input_bias.is_none() && original.num_inputs() <= EXHAUSTIVE_ESTIMATION_LIMIT;
    let shared_est = shared_est.filter(|p| {
        exhaustive_est
            && p.num_inputs() == original.num_inputs()
            && p.num_patterns() == 1usize << original.num_inputs()
    });
    let owned_est;
    let est_patterns: &PatternBuffer = match shared_est {
        Some(shared) => shared,
        None => {
            owned_est = if exhaustive_est {
                PatternBuffer::exhaustive(original.num_inputs())
            } else {
                draw(
                    original.num_inputs(),
                    config.est_rounds,
                    derive_seed(config.seed, Stream::Estimation),
                )
            };
            &owned_est
        }
    };

    // The fanout map is a pure function of `current`: build it once and
    // rebuild only after a LAC is actually applied, not on the retry paths
    // (empty candidate set / over budget) where the graph is unchanged.
    let mut fanouts = current.fanout_map();
    // The estimation patterns are fixed for the whole run and the original
    // circuit never changes, so its reference output words are simulated
    // exactly once. The current circuit's estimation simulation is carried
    // across iterations and updated cone-locally on accepted LACs
    // (`full_resim` restores the old sweep-everything behaviour).
    let original_est_outputs = (!config.full_resim)
        .then(|| Simulation::new(original, est_patterns).output_words(original));
    let mut est_sim: Option<Simulation> = None;
    // WCE mode: the threshold is an absolute maximum error distance, and
    // every acceptance is gated by a SAT query instead of trusting the
    // sampled estimate (which can only *under*-estimate a maximum).
    let wce_bound =
        (config.metric == ErrorMetric::Wce).then(|| config.threshold.min(u64::MAX as f64) as u64);

    while iterations < config.max_iterations {
        // Iteration-granular interrupt point: the cheapest place to stop,
        // with nothing to roll back.
        if let Some(cause) = config.budget.interrupted() {
            interrupt = Some(cause);
            break;
        }
        iterations += 1;
        // Fresh care patterns every iteration (Algorithm 3 line 3): the
        // care simulation is always a full sweep — new patterns mean no
        // previous values to reuse.
        let care_span = trace::span("care_sim");
        let care_patterns = draw(
            current.num_inputs(),
            rounds,
            derive_indexed(config.seed, Stream::Care, iterations as u64),
        );
        let care_sim = Simulation::new(&current, &care_patterns);
        let care_ns = care_span.finish();
        let lac_span = trace::span("lac_gen");
        let lacs = generate_lacs_with(
            &current,
            &care_sim,
            &care_patterns,
            &fanouts,
            &config.lac,
            &config.window,
        );
        let lac_ns = lac_span.finish();
        // Window-granular interrupt point: care simulation + windowed LAC
        // generation dominate an iteration's wall clock, so checking right
        // after them bounds interrupt latency without instrumenting inner
        // loops. The half-done iteration is rolled back — its patterns are
        // a pure function of the iteration index, so the resumed run
        // redoes it bit-identically.
        if let Some(cause) = config.budget.interrupted() {
            iterations -= 1;
            interrupt = Some(cause);
            break;
        }

        if lacs.is_empty() {
            if trace::is_enabled() {
                trace::emit(
                    rejected_record(run_id, iterations, "no_candidates", 0, rounds).obj(
                        "phase_ns",
                        Obj::new().u64("care_sim", care_ns).u64("lac_gen", lac_ns),
                    ),
                );
            }
            // Empty candidate set: the care set is too large — retry with
            // fresh patterns, shrinking N after `t` consecutive failures
            // (Algorithm 3 lines 3/10).
            empty_streak += 1;
            stuck_streak += 1;
            if empty_streak >= config.patience {
                let shrunk = ((rounds as f64) * config.shrink) as usize;
                rounds = shrunk.clamp(1, rounds.saturating_sub(1).max(1));
                empty_streak = 0;
            }
            // Give up once N has hit its floor and fresh pattern draws
            // keep coming up empty — or after a long fruitless stretch
            // regardless (shrink/grow ping-pong must not loop forever).
            if (rounds == 1 && stuck_streak >= config.patience * 6)
                || stuck_streak >= config.patience * 20
            {
                break;
            }
            continue;
        }
        empty_streak = 0;

        let est_span = trace::span("estimate");
        let estimator = match &original_est_outputs {
            // Incremental engine: reuse the carried estimation simulation of
            // `current` (or sweep once after an optimize pass invalidated it)
            // and the once-simulated reference outputs.
            Some(reference) => Estimator::with_state(
                reference,
                est_sim
                    .take()
                    .unwrap_or_else(|| Simulation::new(&current, est_patterns)),
                &current,
                est_patterns,
                &fanouts,
            )
            .for_metric(config.metric),
            // Baseline engine: full re-simulation of both circuits and
            // full-TFO-cone influence masks, every iteration.
            None => {
                Estimator::new(original, &current, est_patterns, &fanouts).with_full_influence()
            }
        };
        let Some(ranked) = estimator.ranked_candidates(&lacs, config.metric) else {
            break; // metric not evaluable — cannot happen after the arity check
        };
        let est_ns = est_span.finish();
        let apply_span = trace::span("apply");
        // Set when the WCE accept gate is interrupted mid-query: the
        // solver's answer is wall-clock-nondeterministic, so it must not
        // influence the accept decision — the iteration is rolled back
        // below instead.
        let mut gate_interrupt: Option<Interrupt> = None;
        let choice = ranked
            .iter()
            .find_map(|&(idx, m)| {
                // `ranked_candidates` returned Some, which it only does
                // when the metric is evaluable on this circuit (the arity
                // preflight guarantees it); a per-candidate None here is
                // impossible, but skipping the candidate is strictly safer
                // than panicking mid-flow.
                let error = m.value(config.metric)?;
                if error > config.threshold {
                    return Some(None); // best remaining over budget
                }
                // Skip size-increasing candidates: an area-minimization flow
                // has nothing to gain from them, and on wide datapaths they
                // can accumulate into net growth.
                if lacs[idx].est_gain() < 0 {
                    return None;
                }
                // Skip the rare candidate whose materialized cover hashes onto
                // its own fanout (would create a cycle).
                let candidate = if config.full_resim {
                    lacs[idx].apply(&current).ok().map(|aig| (aig, None))
                } else {
                    lacs[idx]
                        .apply_with_delta(&current, &fanouts)
                        .ok()
                        .map(|(aig, delta)| (aig, Some(delta)))
                };
                let (aig, delta) = candidate?;
                // The SAT accept gate of the WCE-constrained mode: a
                // sampled max can miss the worst-case input, so a
                // candidate only passes if `distance > bound` is UNSAT.
                if let Some(bound) = wce_bound {
                    match certify::wce_gate(original, &aig, bound, &config.budget) {
                        WceGate::Within => {}
                        WceGate::Exceeds => {
                            trace::add("cert_candidate_rejects", 1);
                            return None; // certified over budget: try the next
                        }
                        // A deterministic SAT cap cut the proof short:
                        // degrade to the sampled-measurement path. The
                        // sampled `error` already passed the threshold
                        // check above, so accept on it — same decision on
                        // every machine, just without the SAT guarantee
                        // (the final certificate records the degradation).
                        WceGate::Degraded => {}
                        // Nondeterministic cut (cancel/deadline): stop
                        // scanning without letting the answer steer the
                        // accept decision.
                        WceGate::Interrupted => {
                            gate_interrupt = config.budget.interrupted();
                            return Some(None);
                        }
                    }
                }
                Some(Some((idx, error, aig, delta)))
            })
            .flatten();
        let apply_ns = apply_span.finish();
        if let Some(cause) = gate_interrupt {
            // Same rollback as the post-lac-gen interrupt point: the
            // resumed run redoes this iteration from its own patterns.
            iterations -= 1;
            interrupt = Some(cause);
            break;
        }
        let Some((best_idx, best_error, applied_aig, delta)) = choice else {
            // Nothing applied: `current` is unchanged, so its estimation
            // simulation is still valid for the next iteration.
            if !config.full_resim {
                est_sim = Some(estimator.into_simulation());
            }
            if trace::is_enabled() {
                trace::emit(
                    rejected_record(run_id, iterations, "over_budget", lacs.len(), rounds).obj(
                        "phase_ns",
                        Obj::new()
                            .u64("care_sim", care_ns)
                            .u64("lac_gen", lac_ns)
                            .u64("estimate", est_ns)
                            .u64("apply", apply_ns),
                    ),
                );
            }
            // The literal Algorithm 3 breaks here (line 7). On wide-input
            // circuits the first feasible candidates can be poor while a
            // different pattern draw — or a *larger* care set — still has
            // in-budget candidates, so we retry instead, growing N after
            // `t` consecutive over-budget rounds (deviation D1, DESIGN.md)
            // and stopping only after sustained failure.
            over_streak += 1;
            stuck_streak += 1;
            if over_streak >= config.patience {
                rounds = (rounds * 2).min(max_rounds);
                over_streak = 0;
            }
            // Give up once N has hit its ceiling and candidates are still
            // over budget — or after a long fruitless stretch regardless.
            if (rounds >= max_rounds && stuck_streak >= config.patience * 6)
                || stuck_streak >= config.patience * 20
            {
                break;
            }
            continue;
        };
        // Cone-local resimulation: only nodes in the substitution's TFO are
        // re-evaluated; everything else is copied from the carried
        // simulation. This must happen before `current` is replaced because
        // the estimator borrows it until consumed. The span is part of the
        // incremental engine's cost (zero-work under `full_resim`), so
        // engine benchmarks charge it alongside `estimate`.
        let sim_update_span = trace::span("sim_update");
        let new_sim = delta.map(|delta| {
            estimator
                .into_simulation()
                .update(&applied_aig, &delta, est_patterns)
        });
        let sim_update_ns = sim_update_span.finish();
        current = applied_aig;
        fanouts = current.fanout_map();
        over_streak = 0;
        stuck_streak = 0;
        applied += 1;
        let opt_span = trace::span("optimize");
        let optimized_now =
            config.optimize_after_apply && applied.is_multiple_of(config.optimize_period.max(1));
        if optimized_now {
            current = alsrac_synth::optimize(&current);
            // The optimizer restructures the graph arbitrarily: the carried
            // simulation and fanout map are both stale.
            fanouts = current.fanout_map();
        }
        est_sim = if optimized_now { None } else { new_sim };
        let opt_ns = opt_span.finish();
        history.push(IterationRecord {
            estimated_error: best_error,
            ands: current.num_ands(),
            rounds,
        });
        if trace::is_enabled() {
            // `est_error` is the same f64 as the history entry above, so the
            // JSONL value round-trips bit-for-bit against `FlowResult`.
            trace::emit(
                Obj::new()
                    .str("type", "iteration")
                    .u64("run", run_id)
                    .u64("iter", iterations as u64)
                    .bool("accepted", true)
                    .u64("candidates", lacs.len() as u64)
                    .u64("rounds", rounds as u64)
                    .str("lac", &lacs[best_idx].kind())
                    .f64("est_error", best_error)
                    .i64("gain", lacs[best_idx].est_gain() as i64)
                    .u64("ands", current.num_ands() as u64)
                    .u64("depth", u64::from(current.depth()))
                    .obj(
                        "phase_ns",
                        Obj::new()
                            .u64("care_sim", care_ns)
                            .u64("lac_gen", lac_ns)
                            .u64("estimate", est_ns)
                            .u64("apply", apply_ns)
                            .u64("sim_update", sim_update_ns)
                            .u64("optimize", opt_ns),
                    ),
            );
        }
    }

    // On interruption, snapshot the loop state *before* any further
    // transformation: the checkpoint must be exactly what the next loop
    // iteration would have seen.
    let checkpoint_out = interrupt.as_ref().map(|_| {
        trace::add("flow_interrupts", 1);
        trace::add("checkpoints_written", 1);
        Checkpoint {
            seed: config.seed,
            metric: config.metric,
            threshold: config.threshold,
            iterations,
            applied,
            rounds,
            empty_streak,
            over_streak,
            stuck_streak,
            history: history.clone(),
            current: current.clone(),
        }
    });

    // Final optimize only when some accepted LACs are still unoptimized:
    // an untouched circuit (applied == 0) or a loop that ended exactly on
    // an optimize_period boundary has nothing left to clean up. Skipped on
    // interruption — hand back promptly; the resumed run optimizes at its
    // own natural end.
    if interrupt.is_none()
        && config.optimize_after_apply
        && applied > 0
        && !applied.is_multiple_of(config.optimize_period.max(1))
    {
        current = alsrac_synth::optimize(&current);
    }
    let measure_span = trace::span("measure");
    let measured = if let Some(bias) = &config.input_bias {
        let patterns = PatternBuffer::biased(
            original.num_inputs(),
            config.measure_rounds,
            bias,
            derive_seed(config.seed, Stream::Measurement),
        );
        measure(original, &current, &patterns)?
    } else if original.num_inputs() <= alsrac_metrics::EXHAUSTIVE_INPUT_LIMIT {
        let patterns = PatternBuffer::exhaustive(original.num_inputs());
        measure(original, &current, &patterns)?
    } else {
        measure_auto(
            original,
            &current,
            config.measure_rounds,
            derive_seed(config.seed, Stream::Measurement),
        )?
    };
    let measure_ns = measure_span.finish();
    // The certificate replaces trust in sampling: exact WCE for the
    // constrained mode, (possibly (ε, δ)-approximate) exact error rate on
    // request. NMED/MRED have no counting-based certificate. Interrupted
    // runs skip certification entirely — the budget that fired would cut
    // every query short anyway — and runs whose SAT caps starve the proof
    // get a `Degraded` certificate whose value degrades to the sampled
    // measurement.
    let certificate = if interrupt.is_some() {
        None
    } else {
        match config.metric {
            ErrorMetric::Wce => Some(certify::certify_wce_budgeted(
                original,
                &current,
                &config.budget,
            )),
            ErrorMetric::ErrorRate if config.certify => Some(certify::certify_error_rate_budgeted(
                original,
                &current,
                derive_seed(config.seed, Stream::Hashing),
                &config.budget,
            )),
            _ => None,
        }
    };
    let certificate = certificate.map(|mut cert| {
        if !cert.status.is_certified() {
            if let Some(sampled) = measured.value(config.metric) {
                cert.value = sampled;
            }
        }
        cert
    });
    let outcome = match &interrupt {
        Some(cause) => FlowOutcome::Interrupted {
            reason: cause.to_string(),
        },
        None => FlowOutcome::Completed,
    };
    let wall_ns = flow_span.finish();
    if trace::is_enabled() {
        trace::emit(run_end_record(
            run_id,
            iterations,
            applied,
            &current,
            wall_ns,
            measure_ns,
            &measured,
            certificate.as_ref(),
            &outcome,
            resumed_from,
        ));
    }
    Ok(FlowResult {
        approx: current,
        iterations,
        applied,
        measured,
        certificate,
        history,
        outcome,
        checkpoint: checkpoint_out,
    })
}

/// The `run_start` telemetry record: run identity plus the exact circuit
/// and constraint the flow starts from. Shared with the baseline flows so
/// every JSONL sink speaks one schema (DESIGN.md "Telemetry").
pub(crate) fn run_start_record(
    run: u64,
    flow: &str,
    original: &Aig,
    seed: u64,
    metric: ErrorMetric,
    threshold: f64,
) -> Obj {
    Obj::new()
        .str("type", "run_start")
        .u64("run", run)
        .str("flow", flow)
        .str("circuit", original.name())
        .u64("seed", seed)
        .str("metric", &metric.to_string())
        .f64("threshold", threshold)
        .u64("inputs", original.num_inputs() as u64)
        .u64("outputs", original.num_outputs() as u64)
        .u64("ands", original.num_ands() as u64)
        .u64("depth", u64::from(original.depth()))
}

/// The `run_end` telemetry record. The `measured` sub-object carries the
/// same f64s the caller gets back in [`FlowResult::measured`], so the JSONL
/// values round-trip bit-for-bit against the in-process result; the
/// optional `certified` sub-object does the same for
/// [`FlowResult::certificate`]. Interrupted runs additionally carry
/// `outcome: "interrupted"` and an `interrupt_reason`; resumed runs carry
/// `resumed_from` (the checkpoint's iteration count).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_end_record(
    run: u64,
    iterations: usize,
    applied: usize,
    current: &Aig,
    wall_ns: u64,
    measure_ns: u64,
    measured: &Measurement,
    certificate: Option<&CertifiedMeasurement>,
    outcome: &FlowOutcome,
    resumed_from: Option<u64>,
) -> Obj {
    let mut record = Obj::new()
        .str("type", "run_end")
        .u64("run", run)
        .u64("iterations", iterations as u64)
        .u64("applied", applied as u64)
        .u64("ands", current.num_ands() as u64)
        .u64("depth", u64::from(current.depth()))
        .u64("wall_ns", wall_ns)
        .obj("phase_ns", Obj::new().u64("measure", measure_ns))
        .obj(
            "measured",
            Obj::new()
                .u64("num_patterns", measured.num_patterns as u64)
                .f64("error_rate", measured.error_rate)
                .opt_f64("nmed", measured.nmed)
                .opt_f64("mred", measured.mred)
                .opt_u64("max_error_distance", measured.max_error_distance),
        );
    match outcome {
        FlowOutcome::Completed => record = record.str("outcome", "completed"),
        FlowOutcome::Interrupted { reason } => {
            record = record
                .str("outcome", "interrupted")
                .str("interrupt_reason", reason);
        }
    }
    if let Some(at) = resumed_from {
        record = record.u64("resumed_from", at);
    }
    if let Some(cert) = certificate {
        record = record.obj("certified", certified_record(cert));
    }
    record
}

/// The flat JSON form of a certificate, shared between the `run_end`
/// telemetry record and `bench_cert`'s committed `BENCH_cert.json`.
/// Degraded certificates (SAT budget ran out mid-proof) carry
/// `status: "degraded"` plus the reason; certified ones carry
/// `status: "certified"`.
pub fn certified_record(cert: &CertifiedMeasurement) -> Obj {
    let record = Obj::new()
        .str("metric", &cert.metric.to_string())
        .f64("value", cert.value)
        .bool("exact", cert.exact)
        .f64("epsilon", cert.epsilon)
        .f64("delta", cert.delta)
        .u64("sat_queries", cert.sat_queries);
    match &cert.status {
        alsrac_metrics::CertStatus::Certified => record.str("status", "certified"),
        alsrac_metrics::CertStatus::Degraded { reason } => record
            .str("status", "degraded")
            .str("status_reason", reason),
    }
}

/// Common fields of a rejected-iteration telemetry record; the caller
/// attaches the `phase_ns` object for the phases that actually ran. Shared
/// with the baseline flows so every JSONL sink speaks one schema.
pub(crate) fn rejected_record(
    run: u64,
    iter: usize,
    reason: &str,
    candidates: usize,
    rounds: usize,
) -> Obj {
    Obj::new()
        .str("type", "iteration")
        .u64("run", run)
        .u64("iter", iter as u64)
        .bool("accepted", false)
        .str("reason", reason)
        .u64("candidates", candidates as u64)
        .u64("rounds", rounds as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_error_rate_threshold() {
        let exact = alsrac_circuits::arith::ripple_carry_adder(4);
        let config = FlowConfig {
            metric: ErrorMetric::ErrorRate,
            threshold: 0.05,
            max_iterations: 300,
            ..FlowConfig::default()
        };
        let result = run(&exact, &config).expect("flow");
        assert!(
            result.measured.error_rate <= 0.05 + 1e-12,
            "measured {} > threshold",
            result.measured.error_rate
        );
        assert!(result.approx.num_ands() <= exact.num_ands());
    }

    #[test]
    fn saves_area_at_loose_threshold() {
        let exact = alsrac_circuits::arith::kogge_stone_adder(4);
        let config = FlowConfig {
            metric: ErrorMetric::ErrorRate,
            threshold: 0.30,
            max_iterations: 400,
            ..FlowConfig::default()
        };
        let result = run(&exact, &config).expect("flow");
        assert!(
            result.approx.num_ands() < exact.num_ands(),
            "no savings: {} -> {}",
            exact.num_ands(),
            result.approx.num_ands()
        );
        assert!(result.applied > 0);
    }

    #[test]
    fn nmed_constraint_is_respected() {
        let exact = alsrac_circuits::arith::ripple_carry_adder(4);
        let config = FlowConfig {
            metric: ErrorMetric::Nmed,
            threshold: 0.02,
            max_iterations: 300,
            ..FlowConfig::default()
        };
        let result = run(&exact, &config).expect("flow");
        assert!(result.measured.nmed.expect("decodable") <= 0.02 + 1e-12);
    }

    #[test]
    fn tighter_thresholds_keep_more_area() {
        let exact = alsrac_circuits::arith::wallace_multiplier(3);
        let area_at = |threshold: f64| {
            let config = FlowConfig {
                metric: ErrorMetric::ErrorRate,
                threshold,
                max_iterations: 250,
                ..FlowConfig::default()
            };
            run(&exact, &config).expect("flow").approx.num_ands()
        };
        let tight = area_at(0.005);
        let loose = area_at(0.25);
        assert!(
            loose <= tight,
            "loose threshold produced a larger circuit: {loose} > {tight}"
        );
    }

    #[test]
    fn history_errors_are_monotone_enough() {
        // Estimated error of accepted LACs never exceeds the threshold.
        let exact = alsrac_circuits::arith::ripple_carry_adder(3);
        let config = FlowConfig {
            metric: ErrorMetric::ErrorRate,
            threshold: 0.10,
            max_iterations: 200,
            ..FlowConfig::default()
        };
        let result = run(&exact, &config).expect("flow");
        for rec in &result.history {
            assert!(rec.estimated_error <= 0.10 + 1e-12);
        }
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let exact = alsrac_circuits::arith::kogge_stone_adder(3);
        let config = FlowConfig {
            metric: ErrorMetric::ErrorRate,
            threshold: 0.08,
            max_iterations: 150,
            seed: 42,
            ..FlowConfig::default()
        };
        let a = run(&exact, &config).expect("flow");
        let b = run(&exact, &config).expect("flow");
        assert_eq!(a.approx.num_ands(), b.approx.num_ands());
        assert_eq!(a.applied, b.applied);
        assert_eq!(a.measured.error_rate, b.measured.error_rate);
    }

    #[test]
    fn wce_flow_respects_certified_bound() {
        let exact = alsrac_circuits::arith::ripple_carry_adder(4);
        let bound = 3u64;
        let config = FlowConfig {
            metric: ErrorMetric::Wce,
            threshold: bound as f64,
            max_iterations: 200,
            ..FlowConfig::default()
        };
        let result = run(&exact, &config).expect("flow");
        let cert = result.certificate.expect("WCE mode always certifies");
        assert_eq!(cert.metric, ErrorMetric::Wce);
        assert!(cert.exact);
        assert!(
            cert.value <= bound as f64,
            "certified WCE {} exceeds bound {bound}",
            cert.value
        );
        // The certificate must agree with exhaustive simulation.
        let patterns = PatternBuffer::exhaustive(exact.num_inputs());
        let measured = measure(&exact, &result.approx, &patterns).expect("measure");
        assert_eq!(
            cert.value,
            measured.max_error_distance.expect("decodable") as f64
        );
    }

    #[test]
    fn certify_flag_produces_exact_error_rate_certificate() {
        let exact = alsrac_circuits::arith::kogge_stone_adder(3);
        let config = FlowConfig {
            metric: ErrorMetric::ErrorRate,
            threshold: 0.10,
            max_iterations: 150,
            certify: true,
            ..FlowConfig::default()
        };
        let result = run(&exact, &config).expect("flow");
        let cert = result.certificate.expect("certify requested");
        assert_eq!(cert.metric, ErrorMetric::ErrorRate);
        assert!(cert.exact, "6 inputs: enumeration must complete");
        // Exhaustive measurement is the ground truth at 6 inputs.
        let patterns = PatternBuffer::exhaustive(exact.num_inputs());
        let measured = measure(&exact, &result.approx, &patterns).expect("measure");
        assert_eq!(cert.value, measured.error_rate);
    }

    #[test]
    fn rejects_degenerate_circuits() {
        let aig = Aig::new("empty");
        let err = run(&aig, &FlowConfig::default()).expect_err("degenerate");
        assert!(matches!(err, FlowError::DegenerateCircuit { .. }));
    }

    #[test]
    fn biased_inputs_shift_acceptable_changes() {
        // With inputs almost always 0, errors that only show under 1s are
        // nearly free: the flow should cut deeper than under uniform
        // inputs for the same budget — and the (biased) measured error
        // must still honour the threshold.
        let exact = alsrac_circuits::arith::wallace_multiplier(3);
        let base = FlowConfig {
            metric: ErrorMetric::ErrorRate,
            threshold: 0.02,
            max_iterations: 250,
            ..FlowConfig::default()
        };
        let uniform = run(&exact, &base).expect("flow");
        let biased_cfg = FlowConfig {
            input_bias: Some(vec![0.05; 6]),
            ..base
        };
        let biased = run(&exact, &biased_cfg).expect("flow");
        assert!(biased.measured.error_rate <= 0.02 * 1.2 + 1e-12);
        assert!(
            biased.approx.num_ands() <= uniform.approx.num_ands(),
            "biased {} vs uniform {}",
            biased.approx.num_ands(),
            uniform.approx.num_ands()
        );
    }

    #[test]
    fn rejects_invalid_bias() {
        let exact = alsrac_circuits::arith::ripple_carry_adder(2);
        let cfg = FlowConfig {
            input_bias: Some(vec![1.5; 4]),
            ..FlowConfig::default()
        };
        let err = run(&exact, &cfg).expect_err("bad bias");
        assert!(matches!(
            err,
            FlowError::InvalidConfig {
                parameter: "input_bias",
                ..
            }
        ));
    }

    #[test]
    fn rejects_bad_config() {
        let exact = alsrac_circuits::arith::ripple_carry_adder(2);
        for (cfg, param) in [
            (
                FlowConfig {
                    threshold: 0.0,
                    ..FlowConfig::default()
                },
                "threshold",
            ),
            (
                FlowConfig {
                    shrink: 1.5,
                    ..FlowConfig::default()
                },
                "shrink",
            ),
            (
                FlowConfig {
                    initial_rounds: 0,
                    ..FlowConfig::default()
                },
                "initial_rounds",
            ),
            (
                FlowConfig {
                    est_rounds: 0,
                    ..FlowConfig::default()
                },
                "est_rounds",
            ),
            (
                FlowConfig {
                    measure_rounds: 0,
                    ..FlowConfig::default()
                },
                "measure_rounds",
            ),
        ] {
            let err = run(&exact, &cfg).expect_err(param);
            assert!(
                matches!(err, FlowError::InvalidConfig { parameter, .. } if parameter == param)
            );
        }
    }

    #[test]
    fn rejects_distance_metric_on_wide_circuits() {
        let mut aig = Aig::new("wide");
        let a = aig.add_input("a");
        for i in 0..70 {
            aig.add_output(format!("y{i}"), a.complement_if(i % 2 == 0));
        }
        let config = FlowConfig {
            metric: ErrorMetric::Nmed,
            ..FlowConfig::default()
        };
        let err = run(&aig, &config).expect_err("too wide");
        assert!(matches!(err, FlowError::MetricUnavailable { .. }));
    }
}
