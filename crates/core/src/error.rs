//! Error type for the synthesis flows.

use std::error::Error as StdError;
use std::fmt;

use alsrac_metrics::MetricsError;

/// Errors produced by the ALSRAC and baseline flows.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FlowError {
    /// The circuit has no inputs or no outputs.
    DegenerateCircuit {
        /// Input count.
        inputs: usize,
        /// Output count.
        outputs: usize,
    },
    /// The requested error metric cannot be evaluated on this circuit
    /// (distance metrics need at most 63 outputs).
    MetricUnavailable {
        /// Human-readable reason.
        reason: String,
    },
    /// A configuration parameter is out of range.
    InvalidConfig {
        /// Which parameter.
        parameter: &'static str,
        /// Why it is invalid.
        reason: String,
    },
    /// A checkpoint could not be parsed, failed validation, or does not
    /// belong to the (circuit, config) pair it was resumed with.
    Checkpoint {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::DegenerateCircuit { inputs, outputs } => {
                write!(
                    f,
                    "degenerate circuit with {inputs} inputs, {outputs} outputs"
                )
            }
            FlowError::MetricUnavailable { reason } => {
                write!(f, "error metric unavailable: {reason}")
            }
            FlowError::InvalidConfig { parameter, reason } => {
                write!(f, "invalid configuration for {parameter}: {reason}")
            }
            FlowError::Checkpoint { reason } => {
                write!(f, "invalid checkpoint: {reason}")
            }
        }
    }
}

impl StdError for FlowError {}

impl From<MetricsError> for FlowError {
    fn from(e: MetricsError) -> FlowError {
        FlowError::MetricUnavailable {
            reason: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = FlowError::InvalidConfig {
            parameter: "threshold",
            reason: "must be positive".to_string(),
        };
        assert!(e.to_string().contains("threshold"));
    }

    #[test]
    fn converts_metrics_errors() {
        let m = MetricsError::TooManyOutputs { outputs: 70 };
        let f: FlowError = m.into();
        assert!(matches!(f, FlowError::MetricUnavailable { .. }));
    }
}
