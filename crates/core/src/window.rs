//! Windowed resubstitution configuration and the signature-based
//! feasibility pre-screen.
//!
//! Windowing bounds the per-pivot work of LAC generation: instead of
//! walking the pivot's whole transitive fanin for divisor candidates, a
//! [`alsrac_aig::Window`] of at most [`WindowConfig::max_tfi`] nodes is
//! extracted and the divisor pool is drawn from it. On circuits whose TFI
//! cones fit inside the bound the pool — and therefore the whole flow — is
//! bit-identical to the unwindowed path; on larger circuits the bound is
//! what keeps LAC generation near-linear.
//!
//! The second half of this module is [`provably_infeasible`]: an exact
//! O(|divisors|) certificate, computed from signature equivalence classes,
//! that [`crate::care::ApproximateCareSet::harvest`] would reject a divisor
//! set. Exactness is what lets the flow skip the harvest without changing
//! any result:
//!
//! * Every divisor's signature is, up to complement, either constant or
//!   equal to its class representative. If the divisors span **zero**
//!   non-constant classes, every care pattern presents the same divisor
//!   row, so the target must be constant on the care patterns; otherwise
//!   two patterns conflict and harvest returns `None`.
//! * If they span exactly **one** non-constant class `c`, the divisor row
//!   is a function of that class's representative bit alone, so the target
//!   must itself be constant or in class `c`; any other target takes both
//!   values on two patterns with equal divisor rows.
//! * With **two or more** classes the certificate is silent (returns
//!   `false`) and the harvest runs as before.

use alsrac_aig::{NodeId, WindowParams};
use alsrac_sim::Signatures;

/// Windowing knobs threaded through [`crate::flow::FlowConfig`].
#[derive(Clone, Debug)]
pub struct WindowConfig {
    /// Master switch. `false` reproduces the pre-windowing code path
    /// exactly (whole-TFI divisor pools, no signature pre-screen).
    pub enabled: bool,
    /// Maximum TFI-side window size in nodes (`0` = unbounded). Bounds at
    /// or above a pivot's TFI size leave the divisor pool unchanged.
    pub max_tfi: usize,
    /// Fanout levels included above the pivot. Divisor selection only uses
    /// the TFI side, so the flow default is 0.
    pub tfo_depth: u32,
}

impl Default for WindowConfig {
    fn default() -> WindowConfig {
        WindowConfig {
            enabled: true,
            max_tfi: 1000,
            tfo_depth: 0,
        }
    }
}

impl WindowConfig {
    /// A configuration with windowing switched off (the determinism
    /// suite's reference behavior).
    pub fn disabled() -> WindowConfig {
        WindowConfig {
            enabled: false,
            ..WindowConfig::default()
        }
    }

    /// The extraction parameters for [`alsrac_aig::WindowExtractor`].
    pub fn params(&self) -> WindowParams {
        WindowParams {
            max_tfi: self.max_tfi,
            tfo_depth: self.tfo_depth,
        }
    }
}

/// Returns `true` iff the signature classes *prove* that harvesting
/// `divisors` for `target` must fail (conflicting target demands on equal
/// divisor rows). A `false` return is silent — the harvest must still run.
///
/// Exact with respect to
/// [`harvest`](crate::care::ApproximateCareSet::harvest) on the same
/// simulation/patterns the signature table was built from, so skipping
/// certified sets never changes the generated LAC list.
pub fn provably_infeasible(signatures: &Signatures, target: NodeId, divisors: &[NodeId]) -> bool {
    let target_class = signatures.class(target);
    // The target's demanded values are constant per divisor row whenever
    // the target is constant, no matter the divisors.
    if target_class == 0 {
        return false;
    }
    // Collect the distinct non-constant classes among the divisors. Only
    // counts 0, 1, and "many" matter.
    let mut first: Option<u32> = None;
    for &d in divisors {
        let class = signatures.class(d);
        if class == 0 {
            continue;
        }
        match first {
            None => first = Some(class),
            Some(c) if c == class => {}
            Some(_) => return false, // >= 2 classes: no certificate
        }
    }
    match first {
        // All-constant divisor rows but a non-constant target: conflict.
        None => true,
        // One class: feasible only if the target follows that class.
        Some(c) => target_class != c,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::care::ApproximateCareSet;
    use alsrac_aig::Aig;
    use alsrac_sim::{PatternBuffer, Simulation};

    /// Exhaustively cross-checks the certificate against harvest on every
    /// (target, divisor-pair) combination of a small circuit: whenever the
    /// certificate fires, harvest must reject.
    #[test]
    fn certificate_is_sound_against_harvest() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let ab = aig.and(a, b);
        let ab_or_c = aig.or(ab, c);
        let x = aig.xor(a, b);
        let dead = aig.and(a, !a);
        aig.add_output("y", ab_or_c);
        aig.add_output("x", x);
        aig.add_output("d", dead);
        let patterns = PatternBuffer::exhaustive(3);
        let sim = Simulation::new(&aig, &patterns);
        let sigs = Signatures::build(&aig, &sim, &patterns);

        let nodes: Vec<NodeId> = aig.iter_nodes().collect();
        let mut fired = 0u32;
        for &target in &nodes {
            for &d0 in &nodes {
                for &d1 in &nodes {
                    if d0 == d1 || d0 == target || d1 == target {
                        continue;
                    }
                    let infeasible = provably_infeasible(&sigs, target, &[d0, d1]);
                    if infeasible {
                        fired += 1;
                        let harvested = ApproximateCareSet::harvest(
                            &sim,
                            &patterns,
                            target.lit(),
                            &[d0.lit(), d1.lit()],
                        );
                        assert!(
                            harvested.is_none(),
                            "certificate wrongly rejected target {target} over ({d0}, {d1})"
                        );
                    }
                }
            }
        }
        assert!(fired > 0, "certificate never fired on the sample circuit");
    }

    #[test]
    fn constant_target_is_never_certified_infeasible() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let dead = aig.and(a, !a);
        aig.add_output("d", dead);
        let patterns = PatternBuffer::exhaustive(1);
        let sim = Simulation::new(&aig, &patterns);
        let sigs = Signatures::build(&aig, &sim, &patterns);
        assert!(!provably_infeasible(&sigs, dead.node(), &[a.node()]));
    }

    #[test]
    fn disabled_config_reports_disabled() {
        let config = WindowConfig::disabled();
        assert!(!config.enabled);
        let params = WindowConfig::default().params();
        assert_eq!(params.max_tfi, 1000);
        assert_eq!(params.tfo_depth, 0);
    }
}
