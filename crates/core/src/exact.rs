//! Exact (zero-error) resubstitution — the [14]/[18] machinery ALSRAC
//! approximates.
//!
//! Before ALSRAC, resubstitution used *complete* care sets: a divisor set
//! is usable only if it can express the node on **every** input pattern,
//! checked with SAT or BDDs. This module implements that exact flow on top
//! of `alsrac-sat`, both as a correctness baseline for tests (exact
//! resubstitution must never change the function) and as the runtime
//! contrast the paper's §I motivates ("unscalable for large circuits").
//!
//! The check itself is [`alsrac_sat::cec::exact_resub_feasible`]; this
//! module adds the surrounding optimization pass: scan nodes, find a
//! cheaper exact resubstitution over Algorithm-1 divisor sets, apply it.

use std::collections::HashMap;

use alsrac_aig::{Aig, Lit, NodeId};
use alsrac_sat::cec::exact_resub_function;
use alsrac_truthtable::{isop, minimize, sop_to_aig, Sop, Tt};

use crate::divisors::{select_divisor_sets, DivisorConfig};

/// Configuration for [`exact_resub_pass`].
#[derive(Clone, Debug)]
pub struct ExactResubConfig {
    /// Divisor-set selection options (Algorithm 1, same as the approximate
    /// flow).
    pub divisors: DivisorConfig,
    /// Try at most this many feasible divisor sets per node.
    pub attempts_per_node: usize,
    /// Only consider nodes whose MFFC has at least this many nodes (a
    /// 1-node MFFC can at best break even).
    pub min_mffc: usize,
}

impl Default for ExactResubConfig {
    fn default() -> ExactResubConfig {
        ExactResubConfig {
            divisors: DivisorConfig::default(),
            attempts_per_node: 4,
            min_mffc: 2,
        }
    }
}

/// Statistics from one [`exact_resub_pass`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExactResubStats {
    /// Nodes examined.
    pub examined: usize,
    /// SAT feasibility/function queries issued.
    pub sat_queries: usize,
    /// Substitutions applied.
    pub applied: usize,
}

/// One pass of exact resubstitution over all AND nodes.
///
/// For each node (largest MFFC first), Algorithm-1 divisor sets are tried;
/// the exact function of the node over a divisor set — when one exists for
/// all reachable patterns — is derived with SAT queries, minimized, and
/// substituted if it costs fewer nodes than the node's MFFC frees. The
/// returned circuit is **functionally equivalent** to the input (verified
/// by property tests and CEC in the test suite).
pub fn exact_resub_pass(aig: &Aig, config: &ExactResubConfig) -> (Aig, ExactResubStats) {
    let mut stats = ExactResubStats::default();
    let work = aig.cleaned();
    let fanouts = work.fanout_map();
    let mut substitutions: HashMap<NodeId, Lit> = HashMap::new();
    let mut claimed = vec![false; work.num_nodes()];
    let mut appended = work.clone();

    // Largest savings first.
    let mut nodes: Vec<(usize, NodeId)> = work
        .iter_ands()
        .map(|id| (work.mffc(id, &fanouts).len(), id))
        .filter(|&(m, _)| m >= config.min_mffc)
        .collect();
    nodes.sort_by_key(|&(m, id)| (std::cmp::Reverse(m), id));

    for &(mffc_size, node) in &nodes {
        if claimed[node.index()] {
            continue;
        }
        stats.examined += 1;
        for divisors in select_divisor_sets(&work, node, &config.divisors)
            .into_iter()
            .take(config.attempts_per_node)
        {
            stats.sat_queries += 1;
            let divisor_lits: Vec<Lit> = divisors.iter().map(|&d| d.lit()).collect();
            let Ok(table) = exact_resub_function(&work, node.lit(), &divisor_lits) else {
                continue; // infeasible
            };
            // Build on/dc sets from the derived (possibly partial) table.
            let k = divisors.len();
            let mut on = Tt::zero(k);
            let mut dc = Tt::zero(k);
            for (pattern, entry) in table.iter().enumerate() {
                match entry {
                    Some(true) => on.set(pattern, true),
                    Some(false) => {}
                    None => dc.set(pattern, true),
                }
            }
            let cover = minimize(&isop(&on, &on.or(&dc)), &on, &dc);
            // Standalone cost must beat the freed MFFC.
            let cost = alsrac_truthtable::factored_aig_cost(&cover, k);
            if cost >= mffc_size {
                continue;
            }
            let replacement = materialize(&mut appended, &cover, &divisor_lits);
            let mffc = work.mffc(node, &fanouts);
            for n in mffc {
                claimed[n.index()] = true;
            }
            substitutions.insert(node, replacement);
            stats.applied += 1;
            break;
        }
    }

    if substitutions.is_empty() {
        return (work, stats);
    }
    match appended.rebuilt_with_substitutions(&substitutions) {
        Ok(rebuilt) => (rebuilt, stats),
        // Strash collision onto a fanout node (see Lac::apply): extremely
        // rare; fall back to the unmodified circuit rather than panic.
        Err(_) => (work, stats),
    }
}

fn materialize(aig: &mut Aig, cover: &Sop, divisors: &[Lit]) -> Lit {
    sop_to_aig(aig, cover, divisors)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_equivalent(a: &Aig, b: &Aig) {
        let n = a.num_inputs();
        assert!(n <= 12);
        for p in 0..1u64 << n {
            let bits: Vec<bool> = (0..n).map(|i| p >> i & 1 != 0).collect();
            assert_eq!(a.evaluate(&bits), b.evaluate(&bits), "pattern {p:b}");
        }
    }

    #[test]
    fn removes_planted_redundancy() {
        // f = (a & b) | (a & !b & c) | (a & b & c) — collapses to a & (b | c).
        let mut aig = Aig::new("redundant");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let t1 = aig.and(a, b);
        let nb = !b;
        let t2a = aig.and(a, nb);
        let t2 = aig.and(t2a, c);
        let t3a = aig.and(a, b);
        let t3 = aig.and(t3a, c);
        let o1 = aig.or(t1, t2);
        let f = aig.or(o1, t3);
        aig.add_output("f", f);
        let before = aig.num_ands();
        let (after, stats) = exact_resub_pass(&aig, &ExactResubConfig::default());
        assert_equivalent(&aig, &after);
        assert!(stats.examined > 0);
        assert!(
            after.num_ands() <= before,
            "{before} -> {}",
            after.num_ands()
        );
    }

    #[test]
    fn preserves_function_on_benchmarks() {
        for aig in [
            alsrac_circuits::arith::carry_lookahead_adder(4),
            alsrac_circuits::arith::alu(3),
            alsrac_circuits::catalog::ecc_network(6, 2),
        ] {
            let (after, _) = exact_resub_pass(&aig, &ExactResubConfig::default());
            assert_equivalent(&aig, &after);
        }
    }

    #[test]
    fn preserves_function_on_random_networks() {
        for seed in 0..4 {
            let aig = alsrac_circuits::random_logic::random_network(
                &alsrac_circuits::random_logic::RandomNetworkConfig {
                    num_inputs: 8,
                    num_outputs: 3,
                    num_gates: 60,
                    locality: 16,
                    seed: seed + 400,
                },
            );
            let (after, _) = exact_resub_pass(&aig, &ExactResubConfig::default());
            assert_equivalent(&aig, &after);
        }
    }

    #[test]
    fn sat_equivalence_check_confirms_a_larger_case() {
        use alsrac_sat::cec::{equivalent, CecResult};
        let aig = alsrac_circuits::arith::wallace_multiplier(4);
        let (after, stats) = exact_resub_pass(&aig, &ExactResubConfig::default());
        assert_eq!(equivalent(&aig, &after), CecResult::Equivalent);
        assert!(stats.sat_queries > 0);
    }

    #[test]
    fn stats_track_work() {
        let aig = alsrac_circuits::arith::ripple_carry_adder(3);
        let (_, stats) = exact_resub_pass(&aig, &ExactResubConfig::default());
        assert!(stats.sat_queries >= stats.applied);
        assert!(stats.examined >= stats.applied);
    }
}
