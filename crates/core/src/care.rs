//! Approximate care sets at divisor signals (§III-A, §III-B2).
//!
//! Simulating the circuit on `N` sampled input patterns and recording the
//! patterns that appear at a chosen divisor set yields the *approximate
//! cares of the node at the divisors*. Expressing cares at divisors rather
//! than at the primary inputs is the paper's scalability argument: a few
//! divisor patterns stand for many PI patterns.
//!
//! The same observation powers the feasibility check: a divisor set can
//! express the node (Theorem 1, restricted to the sampled patterns) exactly
//! when no observed divisor pattern demands both output values.

use alsrac_aig::Lit;
use alsrac_sim::{PatternBuffer, Simulation};
use alsrac_truthtable::Tt;

/// The approximate care set of one node at one divisor set: the observed
/// divisor patterns and the node value each demands.
///
/// Construction fails (returns `None`) when the divisors are *infeasible*:
/// some observed pattern appeared with both node values, so no function of
/// the divisors can reproduce the node on the sampled patterns.
#[derive(Clone, Debug)]
pub struct ApproximateCareSet {
    num_divisors: usize,
    /// On-set: care patterns whose node value is 1.
    on: Tt,
    /// All observed care patterns.
    care: Tt,
}

impl ApproximateCareSet {
    /// Harvests the care patterns of the signal `node` at the divisor
    /// signals `divisors` from a simulation, checking feasibility on the
    /// fly. Divisors and the target are *literals*: a complemented edge is
    /// a distinct signal, exactly as in the paper's examples.
    ///
    /// Only the first `patterns.num_patterns()` lanes are read. Returns
    /// `None` if the divisor set is infeasible (Example 2 of the paper) —
    /// the common, cheap rejection path of Algorithm 2, line 8.
    ///
    /// # Panics
    ///
    /// Panics if `divisors` is empty or longer than
    /// [`MAX_VARS`](alsrac_truthtable::MAX_VARS).
    pub fn harvest(
        sim: &Simulation,
        patterns: &PatternBuffer,
        node: Lit,
        divisors: &[Lit],
    ) -> Option<ApproximateCareSet> {
        assert!(!divisors.is_empty(), "at least one divisor required");
        let k = divisors.len();
        let mut on = Tt::zero(k);
        let mut care = Tt::zero(k);
        for p in 0..patterns.num_patterns() {
            let mut pattern = 0usize;
            for (i, &d) in divisors.iter().enumerate() {
                if sim.lit_bit(d, p) {
                    pattern |= 1 << i;
                }
            }
            let value = sim.lit_bit(node, p);
            if care.get(pattern) {
                if on.get(pattern) != value {
                    return None; // conflicting demand: infeasible divisors
                }
            } else {
                care.set(pattern, true);
                if value {
                    on.set(pattern, true);
                }
            }
        }
        Some(ApproximateCareSet {
            num_divisors: k,
            on,
            care,
        })
    }

    /// Number of divisor variables.
    pub fn num_divisors(&self) -> usize {
        self.num_divisors
    }

    /// The on-set over the divisor variables (care patterns demanding 1).
    pub fn on_set(&self) -> &Tt {
        &self.on
    }

    /// All observed care patterns.
    pub fn care_set(&self) -> &Tt {
        &self.care
    }

    /// The don't-care set: divisor patterns never observed.
    pub fn dont_care_set(&self) -> Tt {
        self.care.not()
    }

    /// Number of distinct care patterns observed.
    pub fn num_care_patterns(&self) -> u32 {
        self.care.count_ones()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alsrac_aig::Aig;

    /// The paper's Fig. 1a circuit. Returns (aig, nodes...) with the same
    /// signal names: inputs a,b,c,d; x = !a & !c; y = c & (a|b)... the
    /// paper defines structure loosely; we reproduce the *node value table*
    /// (Table I) exactly:
    ///   x = !a & !b & !c? — from Table I: x=1 for abcd in {0000,0001,0010,
    ///   0011}: x = !a & !b.
    ///   y = 1 for {0110,0111,1110,1111}: y = b & c.
    ///   u = 1 whenever... from the table: u = 0 at {0000,0100,1000,1100}
    ///   i.e. u = c | d.
    ///   z = 1 at {0100,0101,1000,1001,1010,1011,1100,1101}:
    ///   z = (a & !b) | (b & !c).
    ///   w = 1 at {0000,0001,0100,0101,1000,1001,1100,1101}: w = !c.
    ///   v = z ^ w (the paper says so).
    fn fig1() -> (Aig, Lit, Lit, Lit) {
        let mut aig = Aig::new("fig1");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let d = aig.add_input("d");
        let _x = aig.and(!a, !b);
        let _y = aig.and(b, c);
        let u = aig.or(c, d);
        let anb = aig.and(a, !b);
        let bnc = aig.and(b, !c);
        let z = aig.or(anb, bnc);
        let w = !c;
        let v = aig.xor(z, w);
        aig.add_output("v", v);
        (aig, u, z, v)
    }

    /// The 5 shaded PI patterns of Example 1: abcd in {0000, 0010, 0011,
    /// 0100, 1000} (a is the MSB in the paper's "abcd" notation).
    fn example1_patterns() -> PatternBuffer {
        let rows = vec![
            vec![false, false, false, false], // 0000
            vec![false, false, true, false],  // 0010
            vec![false, false, true, true],   // 0011
            vec![false, true, false, false],  // 0100
            vec![true, false, false, false],  // 1000
        ];
        PatternBuffer::from_rows(4, &rows)
    }

    #[test]
    fn paper_example_1_care_patterns() {
        let (aig, u, z, v) = fig1();
        let patterns = example1_patterns();
        let sim = Simulation::new(&aig, &patterns);
        let care = ApproximateCareSet::harvest(&sim, &patterns, v, &[u, z])
            .expect("feasible per Example 3");
        // Approximate cares at {u, z}: {00, 01, 10} (Example 1).
        assert_eq!(care.num_care_patterns(), 3);
        assert!(care.care_set().get(0b00));
        assert!(care.care_set().get(0b01));
        assert!(care.care_set().get(0b10));
        assert!(!care.care_set().get(0b11));
        // v's demanded values: 00 -> 1, 01 -> 0, 10 -> 0 (Example 3;
        // pattern bits are (u, z) with u = bit 0).
        assert!(care.on_set().get(0b00));
        assert!(!care.on_set().get(0b01));
        assert!(!care.on_set().get(0b10));
    }

    #[test]
    fn paper_example_2_infeasible_on_all_patterns() {
        // Under ALL 16 patterns, {u, z} cannot express v (Example 2).
        let (aig, u, z, v) = fig1();
        let patterns = PatternBuffer::exhaustive(4);
        let sim = Simulation::new(&aig, &patterns);
        assert!(ApproximateCareSet::harvest(&sim, &patterns, v, &[u, z]).is_none());
    }

    #[test]
    fn fig1_node_table_matches_paper() {
        // Sanity: our reconstruction reproduces Table I for v.
        let (aig, _, _, v) = fig1();
        let patterns = PatternBuffer::exhaustive(4);
        let sim = Simulation::new(&aig, &patterns);
        // v = 1 at abcd in {0000, 0001, 1010, 1011} (Table I).
        let v_is_one = [
            (0b0000usize, true),
            (0b0001, true),
            (0b0010, false),
            (0b0100, false),
            (0b1010, true),
            (0b1011, true),
            (0b1111, false),
        ];
        for (abcd, want) in v_is_one {
            // abcd in paper order: a = MSB. Input i of the buffer is bit i
            // of the exhaustive pattern index, and our inputs are (a,b,c,d)
            // in order, so pattern index p has a = bit 0.
            let p = ((abcd >> 3) & 1)
                | ((abcd >> 2) & 1) << 1
                | ((abcd >> 1) & 1) << 2
                | (abcd & 1) << 3;
            assert_eq!(sim.lit_bit(v, p), want, "abcd={abcd:04b}");
        }
    }

    #[test]
    fn feasible_when_divisors_include_support() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let x = aig.xor(a, b);
        aig.add_output("y", x);
        let patterns = PatternBuffer::exhaustive(2);
        let sim = Simulation::new(&aig, &patterns);
        let care = ApproximateCareSet::harvest(&sim, &patterns, x, &[a, b])
            .expect("inputs always express the node");
        assert_eq!(care.num_care_patterns(), 4);
        assert!(care.dont_care_set().is_const0());
    }

    #[test]
    fn fewer_patterns_mean_more_dont_cares() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let ab = aig.and(a, b);
        let x = aig.or(ab, c);
        aig.add_output("y", x);
        let few = PatternBuffer::random(3, 2, 42);
        let sim = Simulation::new(&aig, &few);
        let care = ApproximateCareSet::harvest(&sim, &few, x, &[a, b, c]).expect("feasible");
        assert!(care.num_care_patterns() <= 2);
        assert!(care.dont_care_set().count_ones() >= 6);
    }
}
