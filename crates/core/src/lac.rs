//! Local approximate changes (LACs) by approximate resubstitution
//! (§III-B3, Algorithm 2).
//!
//! A LAC candidate replaces one node's function with a new function of a
//! feasible divisor set, derived as an irredundant sum-of-products over the
//! approximate care patterns (with every unobserved divisor pattern a
//! don't-care).

use std::collections::HashMap;

use alsrac_aig::{Aig, FanoutMap, Lit, MffcScratch, RebuildError, WindowExtractor};
use alsrac_sim::{PatternBuffer, Signatures, SimDelta, Simulation};
use alsrac_truthtable::{factored_aig_cost, isop, minimize, sop_to_aig, Sop};

use crate::care::ApproximateCareSet;
use crate::divisors::{select_divisor_sets_with, DivisorConfig};
use crate::window::{provably_infeasible, WindowConfig};

/// One candidate local approximate change.
#[derive(Clone, Debug)]
pub struct Lac {
    /// The signal whose function is replaced (the cover reproduces this
    /// literal's value; the underlying node is substituted accordingly).
    pub node: Lit,
    /// The divisor signals the new function reads (variable `i` of the
    /// cover is `divisors[i]`).
    pub divisors: Vec<Lit>,
    /// The approximate resubstitution function.
    pub cover: Sop,
    /// Standalone AND-node cost of materializing the cover.
    pub est_cost: usize,
    /// Nodes freed if the LAC is applied (MFFC size of the node).
    pub est_saved: usize,
}

impl Lac {
    /// Appends the replacement logic to `aig` and returns the literal whose
    /// value equals the cover over the divisors.
    pub fn materialize(&self, aig: &mut Aig) -> Lit {
        sop_to_aig(aig, &self.cover, &self.divisors)
    }

    /// Applies the LAC: materializes the cover and rebuilds the graph with
    /// the target node substituted. The result is swept and re-hashed.
    ///
    /// # Errors
    ///
    /// Returns [`RebuildError::Cycle`] in the rare case where structural
    /// hashing maps the materialized cover onto an *existing* node in the
    /// target's transitive fanout (the cover's logic already exists above
    /// the node); substituting would then create a combinational cycle.
    /// Callers skip such candidates.
    pub fn apply(&self, aig: &Aig) -> Result<Aig, RebuildError> {
        let mut work = aig.clone();
        // The cover reproduces the *signal* self.node; the substitution map
        // is keyed by node, so compensate the polarity.
        let replacement = self
            .materialize(&mut work)
            .complement_if(self.node.is_complement());
        work.rebuilt_with_substitutions(&HashMap::from([(self.node.node(), replacement)]))
    }

    /// Like [`Lac::apply`], additionally returning the structural
    /// [`SimDelta`] between `aig` and the rebuilt graph.
    ///
    /// Only nodes inside the target's transitive fanout (plus the freshly
    /// materialized cover logic) change function; every other node of the
    /// rebuilt graph is marked as a value copy from its pre-apply
    /// counterpart, which lets [`alsrac_sim::Simulation::update`] resweep
    /// just the changed cone. `fanouts` must be the fanout map of `aig`
    /// (the same snapshot the flow already holds for LAC generation).
    ///
    /// # Errors
    ///
    /// Same contract as [`Lac::apply`].
    pub fn apply_with_delta(
        &self,
        aig: &Aig,
        fanouts: &FanoutMap,
    ) -> Result<(Aig, SimDelta), RebuildError> {
        let mut work = aig.clone();
        let replacement = self
            .materialize(&mut work)
            .complement_if(self.node.is_complement());
        let (rebuilt, map) = work
            .rebuilt_with_substitutions_mapped(&HashMap::from([(self.node.node(), replacement)]))?;
        // A node's function survives the substitution iff the target is not
        // in its fanin cone, i.e. the node is outside the target's TFO. The
        // materialized cover nodes (ids past the pre-apply count) have no
        // simulated values to donate, and `tfo_cone` on the *pre-apply*
        // graph never covers them, so the index bound excludes them too.
        let tfo = aig.tfo_cone(self.node.node(), fanouts);
        let delta = SimDelta::from_rebuild_map(rebuilt.num_nodes(), &map, |old| {
            old.index() < aig.num_nodes() && !tfo.contains(old)
        });
        Ok((rebuilt, delta))
    }

    /// Estimated net node saving (may be negative for size-increasing
    /// candidates, which the flow deprioritizes).
    pub fn est_gain(&self) -> isize {
        self.est_saved as isize - self.est_cost as isize
    }

    /// Short classification of the change, for run telemetry: `"const0"` /
    /// `"const1"` for constant substitutions (the cover reads no divisor)
    /// and `"resub<k>"` for a `k`-divisor resubstitution.
    pub fn kind(&self) -> String {
        if self.divisors.is_empty() {
            if self.cover.cubes().is_empty() {
                "const0".to_string()
            } else {
                "const1".to_string()
            }
        } else {
            format!("resub{}", self.divisors.len())
        }
    }
}

/// Configuration for [`generate_lacs`] (Algorithm 2).
#[derive(Clone, Debug)]
pub struct LacConfig {
    /// Maximum LACs per node (the paper's `L`, default 1).
    pub lac_limit: usize,
    /// Divisor-set selection options.
    pub divisors: DivisorConfig,
}

impl Default for LacConfig {
    fn default() -> LacConfig {
        LacConfig {
            lac_limit: 1,
            divisors: DivisorConfig::default(),
        }
    }
}

/// Generates LAC candidates for every AND node of `aig` from one care-set
/// simulation (Algorithm 2).
///
/// `sim` must be a simulation of `aig` on `patterns` (the `N`-round care
/// simulation of the flow). For each node, divisor sets are tried in
/// Algorithm 1 order; each feasible set contributes one candidate (ISOP of
/// its approximate care truth table, improved by the Espresso-style
/// minimizer) until the per-node limit is reached.
pub fn generate_lacs(
    aig: &Aig,
    sim: &Simulation,
    patterns: &PatternBuffer,
    fanouts: &FanoutMap,
    config: &LacConfig,
) -> Vec<Lac> {
    generate_lacs_with(
        aig,
        sim,
        patterns,
        fanouts,
        config,
        &WindowConfig::disabled(),
    )
}

/// [`generate_lacs`] with explicit windowing control (the flow's entry
/// point; plain `generate_lacs` runs with windowing off).
///
/// With windowing enabled, each pivot's divisor pool comes from a bounded
/// [`alsrac_aig::Window`] instead of its full TFI cone, and divisor sets
/// that the signature classes *prove* infeasible are skipped without
/// harvesting. The pre-screen is exact (see
/// [`provably_infeasible`]), and a window bound covering a pivot's whole
/// TFI leaves its pool unchanged, so on circuits inside the bound the
/// windowed LAC list is bit-identical to the unwindowed one.
///
/// Emits `window_extracted` / `window_nodes` /
/// `divisors_filtered_by_signature` trace counters when windowing is on.
pub fn generate_lacs_with(
    aig: &Aig,
    sim: &Simulation,
    patterns: &PatternBuffer,
    fanouts: &FanoutMap,
    config: &LacConfig,
    window: &WindowConfig,
) -> Vec<Lac> {
    // Shared structural data, hoisted once per call (= once per flow
    // iteration) instead of once per node.
    let levels = fanouts.levels();
    let signatures = window
        .enabled
        .then(|| Signatures::build(aig, sim, patterns));
    let params = window.params();
    let mut extractor = WindowExtractor::new();
    let mut mffc_scratch = MffcScratch::new();

    let mut lacs = Vec::new();
    for node in aig.iter_ands() {
        let mffc_size = aig.mffc_with(node, fanouts, &mut mffc_scratch).len();
        let extracted = signatures.is_some().then(|| {
            let w = extractor.extract(aig, fanouts, node, &params);
            alsrac_rt::trace::add("window_extracted", 1);
            alsrac_rt::trace::add("window_nodes", w.num_nodes() as u64);
            w
        });
        let sets =
            select_divisor_sets_with(aig, node, levels, extracted.as_ref(), &config.divisors);
        let mut count = 0usize;
        for divisors in sets {
            if count >= config.lac_limit {
                break;
            }
            if let Some(sigs) = &signatures {
                if provably_infeasible(sigs, node, &divisors) {
                    // Exactly the sets harvest would reject: skipping them
                    // keeps the LAC list bit-identical while saving the
                    // per-pattern harvest walk.
                    alsrac_rt::trace::add("divisors_filtered_by_signature", 1);
                    continue;
                }
            }
            let divisors: Vec<Lit> = divisors.iter().map(|&d| d.lit()).collect();
            let Some(care) = ApproximateCareSet::harvest(sim, patterns, node.lit(), &divisors)
            else {
                continue; // infeasible divisor set
            };
            let on = care.on_set();
            let upper = on.or(&care.dont_care_set());
            let cover = minimize(&isop(on, &upper), on, &care.dont_care_set());
            let est_cost = factored_aig_cost(&cover, divisors.len());
            lacs.push(Lac {
                node: node.lit(),
                divisors,
                cover,
                est_cost,
                est_saved: mffc_size,
            });
            count += 1;
        }
    }
    lacs
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Fig. 1a circuit of the paper (see `care::tests` for the
    /// derivation of the node functions from Table I).
    fn fig1() -> (Aig, Lit, Lit, Lit) {
        let mut aig = Aig::new("fig1");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let d = aig.add_input("d");
        let _x = aig.and(!a, !b);
        let _y = aig.and(b, c);
        let u = aig.or(c, d);
        let anb = aig.and(a, !b);
        let bnc = aig.and(b, !c);
        let z = aig.or(anb, bnc);
        let w = !c;
        let v = aig.xor(z, w);
        aig.add_output("v", v);
        aig.add_output("u", u); // keep u alive
        (aig, u, z, v)
    }

    #[test]
    fn paper_example_4_nor_resubstitution() {
        // With the 5 patterns of Example 1, divisors {u, z} for node v give
        // the ISOP !u & !z (Table II), i.e. a NOR gate.
        let (aig, u, z, v) = fig1();
        let rows = vec![
            vec![false, false, false, false],
            vec![false, false, true, false],
            vec![false, false, true, true],
            vec![false, true, false, false],
            vec![true, false, false, false],
        ];
        let patterns = PatternBuffer::from_rows(4, &rows);
        let sim = Simulation::new(&aig, &patterns);
        let care = ApproximateCareSet::harvest(&sim, &patterns, v, &[u, z])
            .expect("feasible per Example 3");
        let on = care.on_set();
        let cover = minimize(
            &isop(on, &on.or(&care.dont_care_set())),
            on,
            &care.dont_care_set(),
        );
        assert_eq!(cover.num_cubes(), 1);
        assert_eq!(
            cover.cubes()[0],
            alsrac_truthtable::Cube::TAUTOLOGY.with_neg(0).with_neg(1),
            "expected !u & !z"
        );

        // Applying it gives the paper's 18.75% error rate at node v under
        // uniform inputs (3 of 16 patterns wrong): we check at the output,
        // which equals v here.
        let lac = Lac {
            node: v,
            divisors: vec![u, z],
            cover,
            est_cost: 1,
            est_saved: 0,
        };
        let approx = lac.apply(&aig).expect("no cycle");
        let exhaustive = PatternBuffer::exhaustive(4);
        let m = alsrac_metrics::measure(&aig, &approx, &exhaustive).expect("same arity");
        // Output "u" unchanged; only v differs. The v output polarity makes
        // node error = output error.
        assert!(
            (m.error_rate - 3.0 / 16.0).abs() < 1e-12,
            "expected 18.75% error rate, got {}",
            m.error_rate
        );
    }

    #[test]
    fn generate_respects_lac_limit() {
        let aig = alsrac_circuits::arith::ripple_carry_adder(3);
        let patterns = PatternBuffer::random(6, 8, 3);
        let sim = Simulation::new(&aig, &patterns);
        let fanouts = aig.fanout_map();
        let one = generate_lacs(&aig, &sim, &patterns, &fanouts, &LacConfig::default());
        let many = generate_lacs(
            &aig,
            &sim,
            &patterns,
            &fanouts,
            &LacConfig {
                lac_limit: 4,
                ..LacConfig::default()
            },
        );
        let count_for = |lacs: &[Lac], n: alsrac_aig::NodeId| {
            lacs.iter().filter(|l| l.node.node() == n).count()
        };
        for id in aig.iter_ands() {
            assert!(count_for(&one, id) <= 1);
            assert!(count_for(&many, id) <= 4);
        }
        assert!(many.len() >= one.len());
    }

    #[test]
    fn windowed_generation_is_bit_identical_when_windows_cover_tfis() {
        let aig = alsrac_circuits::arith::kogge_stone_adder(4);
        let patterns = PatternBuffer::random(8, 6, 11);
        let sim = Simulation::new(&aig, &patterns);
        let fanouts = aig.fanout_map();
        let config = LacConfig {
            lac_limit: 4,
            ..LacConfig::default()
        };
        let plain = generate_lacs(&aig, &sim, &patterns, &fanouts, &config);
        let windowed = generate_lacs_with(
            &aig,
            &sim,
            &patterns,
            &fanouts,
            &config,
            &WindowConfig::default(),
        );
        assert_eq!(plain.len(), windowed.len());
        for (a, b) in plain.iter().zip(&windowed) {
            assert_eq!(a.node, b.node);
            assert_eq!(a.divisors, b.divisors);
            assert_eq!(a.cover, b.cover);
            assert_eq!(a.est_cost, b.est_cost);
            assert_eq!(a.est_saved, b.est_saved);
        }
        // A tight window bound still yields a well-formed (possibly
        // different) candidate list.
        let bounded = generate_lacs_with(
            &aig,
            &sim,
            &patterns,
            &fanouts,
            &config,
            &WindowConfig {
                max_tfi: 4,
                ..WindowConfig::default()
            },
        );
        for lac in &bounded {
            assert!(!lac.divisors.is_empty() || lac.cover.num_cubes() <= 1);
        }
    }

    #[test]
    fn fewer_patterns_generate_more_lacs() {
        let aig = alsrac_circuits::arith::kogge_stone_adder(4);
        let fanouts = aig.fanout_map();
        let count_with = |rounds: usize| {
            let patterns = PatternBuffer::random(8, rounds, 7);
            let sim = Simulation::new(&aig, &patterns);
            generate_lacs(&aig, &sim, &patterns, &fanouts, &LacConfig::default()).len()
        };
        // The paper's premise: shrinking the care set (fewer rounds) makes
        // feasibility easier, so more LACs appear.
        assert!(
            count_with(2) >= count_with(200),
            "more patterns, fewer LACs"
        );
    }

    #[test]
    fn applying_a_lac_preserves_arity() {
        let aig = alsrac_circuits::arith::ripple_carry_adder(3);
        let patterns = PatternBuffer::random(6, 4, 9);
        let sim = Simulation::new(&aig, &patterns);
        let fanouts = aig.fanout_map();
        let lacs = generate_lacs(&aig, &sim, &patterns, &fanouts, &LacConfig::default());
        assert!(!lacs.is_empty());
        for lac in lacs.iter().take(5) {
            let approx = lac.apply(&aig).expect("no cycle");
            assert_eq!(approx.num_inputs(), aig.num_inputs());
            assert_eq!(approx.num_outputs(), aig.num_outputs());
        }
    }

    #[test]
    fn apply_with_delta_matches_apply_and_full_resimulation() {
        let aig = alsrac_circuits::arith::ripple_carry_adder(3);
        let care_patterns = PatternBuffer::random(6, 4, 9);
        let care_sim = Simulation::new(&aig, &care_patterns);
        let fanouts = aig.fanout_map();
        let lacs = generate_lacs(
            &aig,
            &care_sim,
            &care_patterns,
            &fanouts,
            &LacConfig::default(),
        );
        assert!(!lacs.is_empty());
        let patterns = PatternBuffer::random(6, 100, 21);
        let sim = Simulation::new(&aig, &patterns);
        for lac in lacs.iter().take(8) {
            let (applied, delta) = lac.apply_with_delta(&aig, &fanouts).expect("no cycle");
            let plain = lac.apply(&aig).expect("no cycle");
            assert_eq!(applied.num_ands(), plain.num_ands());
            let incremental = sim.update(&applied, &delta, &patterns);
            let full = Simulation::new(&applied, &patterns);
            for id in applied.iter_nodes() {
                assert_eq!(incremental.node_words(id), full.node_words(id), "node {id}");
            }
            assert!(
                delta.num_compute() < applied.num_nodes(),
                "delta recomputes everything"
            );
        }
    }

    #[test]
    fn lac_on_exhaustive_patterns_is_exact() {
        // With ALL patterns as cares, a feasible LAC is an *exact*
        // resubstitution: applying it must not change the function.
        let aig = alsrac_circuits::arith::ripple_carry_adder(2);
        let patterns = PatternBuffer::exhaustive(4);
        let sim = Simulation::new(&aig, &patterns);
        let fanouts = aig.fanout_map();
        let lacs = generate_lacs(&aig, &sim, &patterns, &fanouts, &LacConfig::default());
        for lac in &lacs {
            let approx = lac.apply(&aig).expect("no cycle");
            let m = alsrac_metrics::measure(&aig, &approx, &patterns).expect("arity");
            assert_eq!(
                m.error_rate, 0.0,
                "exact resubstitution changed the function: {lac:?}"
            );
        }
    }

    #[test]
    fn est_gain_combines_cost_and_savings() {
        let lac = Lac {
            node: alsrac_aig::NodeId::new(5).lit(),
            divisors: vec![alsrac_aig::NodeId::new(1).lit()],
            cover: Sop::zero(),
            est_cost: 2,
            est_saved: 5,
        };
        assert_eq!(lac.est_gain(), 3);
    }

    #[test]
    fn kind_classifies_constants_and_resubs() {
        let mk = |divisors: Vec<alsrac_aig::Lit>, cover: Sop| Lac {
            node: alsrac_aig::NodeId::new(5).lit(),
            divisors,
            cover,
            est_cost: 0,
            est_saved: 0,
        };
        assert_eq!(mk(Vec::new(), Sop::zero()).kind(), "const0");
        assert_eq!(
            mk(
                Vec::new(),
                Sop::new(vec![alsrac_truthtable::Cube::TAUTOLOGY])
            )
            .kind(),
            "const1"
        );
        let d = alsrac_aig::NodeId::new(1).lit();
        assert_eq!(mk(vec![d, d], Sop::zero()).kind(), "resub2");
    }
}
