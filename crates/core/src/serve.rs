//! Service mode: a multi-tenant JSONL job protocol driving many
//! concurrent ALSRAC flows over a shared immutable catalog.
//!
//! The daemon reads one JSON request per line (`submit`, `cancel`,
//! `status`, `shutdown`) and writes one JSON record per line: protocol
//! responses plus the per-iteration streaming records every flow already
//! emits through [`alsrac_rt::trace`] — the trace JSONL schema *is* the
//! wire format, with each job's records tagged `job_id` via
//! [`trace::set_job_tag`]. A priority queue feeds `workers` long-lived
//! threads; each worker runs one flow at a time under
//! [`pool::become_worker`], so a job's inner loops stay inline and the
//! machine is never oversubscribed by nested fan-out.
//!
//! # Determinism contract
//!
//! A job's result is bit-identical to a direct [`flow::run`] of the same
//! `(circuit, config)`: job randomness is a pure function of
//! `(seed, stream, iteration)`, each flow runs single-threaded inside its
//! worker, and shared estimation patterns are only substituted when they
//! equal the buffer the flow would build itself (see
//! [`flow::run_shared`]). Worker count and submission interleaving affect
//! only scheduling order, never any job's payload.
//!
//! # Job lifecycle
//!
//! `queued → running → done(completed | interrupted | failed)`, with a
//! shortcut `queued → done(cancelled)` when a job is cancelled before a
//! worker picks it up. Cancelling a *running* job trips its
//! [`CancelToken`]; the flow stops at the next iteration boundary and the
//! terminal `job_done` record carries a serialized [`Checkpoint`] that
//! [`flow::resume`] continues bit-identically.
//!
//! # Shutdown
//!
//! `{"op":"shutdown"}` (or EOF on the request stream) drains the queue;
//! `{"op":"shutdown","mode":"cancel"}` (or the external stop token — the
//! CLI wires SIGINT to it) checkpoints running jobs and cancels queued
//! ones. Either way every in-flight stream ends with its `run_end` and
//! `job_done` records before the final `shutdown` record — lines are
//! written whole under one lock, never dropped mid-line.
//!
//! [`Checkpoint`]: crate::checkpoint::Checkpoint

use std::collections::{BTreeMap, BinaryHeap};
use std::io::{BufRead, Read, Write};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use alsrac_aig::Aig;
use alsrac_metrics::ErrorMetric;
use alsrac_rt::budget::{Budget, CancelToken};
use alsrac_rt::json::{Json, Obj};
use alsrac_rt::{faults, pool, trace};
use alsrac_sim::PatternBuffer;

use crate::flow::{self, FlowConfig, FlowOutcome, EXHAUSTIVE_ESTIMATION_LIMIT};

/// Where a job's circuit comes from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CircuitSource {
    /// A bundled benchmark, resolved by name at the configured scale
    /// (`"test"` or `"paper"`).
    Named {
        /// Benchmark name (e.g. `rca32`).
        name: String,
        /// Catalog scale: `"test"` or `"paper"`.
        scale: String,
    },
    /// Inline BLIF text.
    Blif(String),
    /// Inline ASCII AIGER text.
    Aag(String),
}

impl CircuitSource {
    /// A short human-readable label (benchmark name or a placeholder).
    pub fn label(&self) -> &str {
        match self {
            CircuitSource::Named { name, .. } => name,
            CircuitSource::Blif(_) => "<inline blif>",
            CircuitSource::Aag(_) => "<inline aag>",
        }
    }
}

/// Resolves a [`CircuitSource`] to a circuit. The core crate has no
/// circuit catalog or format parsers of its own, so the embedding binary
/// injects this (CLI and bench both resolve names via
/// `alsrac_circuits::catalog` and inline text via the BLIF/AIGER
/// parsers).
pub type Resolver = dyn Fn(&CircuitSource) -> Result<Aig, String> + Send + Sync;

/// Shared immutable data reused across jobs: resolved circuits (keyed by
/// name and scale) and exhaustive estimation-pattern buffers (keyed by
/// input count), both behind `Arc` so concurrent jobs share one copy.
pub struct Catalog {
    resolver: Box<Resolver>,
    circuits: Mutex<BTreeMap<(String, String), Arc<Aig>>>,
    patterns: Mutex<BTreeMap<usize, Arc<PatternBuffer>>>,
}

impl Catalog {
    /// Wraps a resolver in a caching catalog.
    pub fn new(resolver: Box<Resolver>) -> Catalog {
        Catalog {
            resolver,
            circuits: Mutex::new(BTreeMap::new()),
            patterns: Mutex::new(BTreeMap::new()),
        }
    }

    /// The circuit for `source`. Named circuits are resolved once and
    /// cached; inline sources are parsed per call (they are job-specific).
    ///
    /// # Errors
    ///
    /// Propagates the resolver's message (unknown name, parse error).
    pub fn circuit(&self, source: &CircuitSource) -> Result<Arc<Aig>, String> {
        let key = match source {
            CircuitSource::Named { name, scale } => (name.clone(), scale.clone()),
            _ => return (self.resolver)(source).map(Arc::new),
        };
        if let Some(hit) = self.circuits.lock().expect("catalog").get(&key) {
            return Ok(Arc::clone(hit));
        }
        // Resolve outside the lock; concurrent misses duplicate work but
        // never block each other on a slow generator.
        let aig = Arc::new((self.resolver)(source)?);
        let mut cache = self.circuits.lock().expect("catalog");
        Ok(Arc::clone(cache.entry(key).or_insert(aig)))
    }

    /// The shared exhaustive estimation buffer for `num_inputs`-input
    /// circuits, or `None` when the flow would sample instead
    /// (`num_inputs > `[`EXHAUSTIVE_ESTIMATION_LIMIT`]).
    pub fn estimation_patterns(&self, num_inputs: usize) -> Option<Arc<PatternBuffer>> {
        if num_inputs > EXHAUSTIVE_ESTIMATION_LIMIT {
            return None;
        }
        let mut cache = self.patterns.lock().expect("catalog");
        Some(Arc::clone(cache.entry(num_inputs).or_insert_with(|| {
            Arc::new(PatternBuffer::exhaustive(num_inputs))
        })))
    }
}

/// A `submit` request: the circuit, the error budget, and optional flow
/// overrides. Fields not carried here keep their [`FlowConfig`] defaults,
/// so a daemon job is comparable 1:1 with a direct [`flow::run`].
#[derive(Clone, Debug, PartialEq)]
pub struct SubmitRequest {
    /// The circuit to approximate.
    pub source: CircuitSource,
    /// Constrained error metric (default `er`).
    pub metric: ErrorMetric,
    /// Error threshold `E_t` (default 0.01).
    pub threshold: f64,
    /// RNG seed (default 1).
    pub seed: u64,
    /// Scheduling priority; higher runs first, FIFO within a priority
    /// (default 0).
    pub priority: u64,
    /// Override for [`FlowConfig::max_iterations`].
    pub max_iterations: Option<usize>,
    /// Override for [`FlowConfig::measure_rounds`].
    pub measure_rounds: Option<usize>,
    /// SAT-certify the final error (default false).
    pub certify: bool,
    /// Override for [`crate::window::WindowConfig::enabled`].
    pub window: Option<bool>,
    /// Override for [`crate::window::WindowConfig::max_tfi`].
    pub window_max_tfi: Option<usize>,
    /// Wall-clock deadline for the job, in seconds.
    pub deadline_secs: Option<f64>,
    /// Per-SAT-query conflict cap.
    pub sat_conflicts: Option<u64>,
    /// Per-SAT-query propagation cap.
    pub sat_propagations: Option<u64>,
}

impl SubmitRequest {
    /// A request for a named circuit with every option at its default.
    pub fn named(name: &str, scale: &str) -> SubmitRequest {
        SubmitRequest {
            source: CircuitSource::Named {
                name: name.to_string(),
                scale: scale.to_string(),
            },
            metric: ErrorMetric::ErrorRate,
            threshold: 0.01,
            seed: 1,
            priority: 0,
            max_iterations: None,
            measure_rounds: None,
            certify: false,
            window: None,
            window_max_tfi: None,
            deadline_secs: None,
            sat_conflicts: None,
            sat_propagations: None,
        }
    }

    /// The [`FlowConfig`] this job runs with, *without* the execution
    /// budget (the daemon attaches the per-job cancel token and the
    /// deadline/SAT caps at dispatch). Comparing a daemon job against
    /// `flow::run(circuit, &request.flow_config())` is therefore exact.
    pub fn flow_config(&self) -> FlowConfig {
        let mut config = FlowConfig {
            metric: self.metric,
            threshold: self.threshold,
            seed: self.seed,
            certify: self.certify,
            ..FlowConfig::default()
        };
        if let Some(n) = self.max_iterations {
            config.max_iterations = n;
        }
        if let Some(n) = self.measure_rounds {
            config.measure_rounds = n;
        }
        if let Some(enabled) = self.window {
            config.window.enabled = enabled;
        }
        if let Some(max_tfi) = self.window_max_tfi {
            config.window.max_tfi = max_tfi;
        }
        config
    }

    /// The job's execution budget around `token` (deadline and SAT caps
    /// from the request).
    fn budget(&self, token: CancelToken) -> Budget {
        let mut budget = Budget::unlimited().with_cancel(token);
        if let Some(secs) = self.deadline_secs {
            budget = budget.with_deadline_after(Duration::from_secs_f64(secs));
        }
        if let Some(cap) = self.sat_conflicts {
            budget = budget.with_sat_conflicts(cap);
        }
        if let Some(cap) = self.sat_propagations {
            budget = budget.with_sat_propagations(cap);
        }
        budget
    }
}

/// One parsed request line.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Enqueue a job.
    Submit(SubmitRequest),
    /// Cancel a queued or running job.
    Cancel {
        /// The id returned by the submit response.
        job_id: u64,
    },
    /// Report queue/running/done counts.
    Status,
    /// End the session: drain the queue (default) or cancel it.
    Shutdown {
        /// `true` for `"mode":"cancel"`: checkpoint running jobs and
        /// cancel queued ones instead of draining.
        cancel: bool,
    },
}

fn metric_from_wire(name: &str) -> Result<ErrorMetric, String> {
    match name {
        "er" => Ok(ErrorMetric::ErrorRate),
        "nmed" => Ok(ErrorMetric::Nmed),
        "mred" => Ok(ErrorMetric::Mred),
        "wce" => Ok(ErrorMetric::Wce),
        other => Err(format!("unknown metric {other:?} (er|nmed|mred|wce)")),
    }
}

fn metric_to_wire(metric: ErrorMetric) -> &'static str {
    match metric {
        ErrorMetric::ErrorRate => "er",
        ErrorMetric::Nmed => "nmed",
        ErrorMetric::Mred => "mred",
        ErrorMetric::Wce => "wce",
    }
}

type Fields<'a> = &'a BTreeMap<String, Json>;

fn reject_unknown_keys(map: Fields, allowed: &[&str]) -> Result<(), String> {
    for key in map.keys() {
        if !allowed.contains(&key.as_str()) {
            return Err(format!("unknown key {key:?}"));
        }
    }
    Ok(())
}

fn field_str<'a>(map: Fields<'a>, key: &str) -> Result<Option<&'a str>, String> {
    match map.get(key) {
        None => Ok(None),
        Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_str()
            .map(Some)
            .ok_or_else(|| format!("{key:?} must be a string")),
    }
}

fn field_u64(map: Fields, key: &str) -> Result<Option<u64>, String> {
    match map.get(key) {
        None => Ok(None),
        Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("{key:?} must be a non-negative integer")),
    }
}

fn field_f64(map: Fields, key: &str) -> Result<Option<f64>, String> {
    match map.get(key) {
        None => Ok(None),
        Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_f64()
            .map(Some)
            .ok_or_else(|| format!("{key:?} must be a number")),
    }
}

fn field_bool(map: Fields, key: &str) -> Result<Option<bool>, String> {
    match map.get(key) {
        None => Ok(None),
        Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_bool()
            .map(Some)
            .ok_or_else(|| format!("{key:?} must be a boolean")),
    }
}

impl Request {
    /// Parses one request line. Unknown ops, unknown keys, and
    /// wrongly-typed fields are rejected with a message suitable for the
    /// structured `error` response (the daemon pairs it with the 1-based
    /// line number).
    ///
    /// # Errors
    ///
    /// A human-readable description of the first problem found.
    pub fn parse(line: &str) -> Result<Request, String> {
        let json = Json::parse(line)?;
        let map = json
            .as_obj()
            .ok_or_else(|| "request must be a JSON object".to_string())?;
        let op = field_str(map, "op")?.ok_or_else(|| "missing \"op\"".to_string())?;
        match op {
            "submit" => Request::parse_submit(map),
            "cancel" => {
                reject_unknown_keys(map, &["op", "job_id"])?;
                let job_id =
                    field_u64(map, "job_id")?.ok_or_else(|| "missing \"job_id\"".to_string())?;
                Ok(Request::Cancel { job_id })
            }
            "status" => {
                reject_unknown_keys(map, &["op"])?;
                Ok(Request::Status)
            }
            "shutdown" => {
                reject_unknown_keys(map, &["op", "mode"])?;
                let cancel = match field_str(map, "mode")? {
                    None | Some("drain") => false,
                    Some("cancel") => true,
                    Some(other) => {
                        return Err(format!("unknown shutdown mode {other:?} (drain|cancel)"))
                    }
                };
                Ok(Request::Shutdown { cancel })
            }
            other => Err(format!(
                "unknown op {other:?} (submit|cancel|status|shutdown)"
            )),
        }
    }

    fn parse_submit(map: Fields) -> Result<Request, String> {
        reject_unknown_keys(
            map,
            &[
                "op",
                "circuit",
                "scale",
                "blif",
                "aag",
                "metric",
                "threshold",
                "seed",
                "priority",
                "max_iterations",
                "measure_rounds",
                "certify",
                "window",
                "window_max_tfi",
                "deadline_secs",
                "sat_conflicts",
                "sat_propagations",
            ],
        )?;
        let circuit = field_str(map, "circuit")?;
        let blif = field_str(map, "blif")?;
        let aag = field_str(map, "aag")?;
        let scale = field_str(map, "scale")?;
        let source = match (circuit, blif, aag) {
            (Some(name), None, None) => CircuitSource::Named {
                name: name.to_string(),
                scale: match scale {
                    None | Some("test") => "test".to_string(),
                    Some("paper") => "paper".to_string(),
                    Some(other) => return Err(format!("unknown scale {other:?} (test|paper)")),
                },
            },
            (None, Some(text), None) => CircuitSource::Blif(text.to_string()),
            (None, None, Some(text)) => CircuitSource::Aag(text.to_string()),
            (None, None, None) => {
                return Err(
                    "missing circuit source (one of \"circuit\", \"blif\", \"aag\")".to_string(),
                )
            }
            _ => {
                return Err(
                    "conflicting circuit sources (give exactly one of \"circuit\", \"blif\", \
                     \"aag\")"
                        .to_string(),
                )
            }
        };
        if scale.is_some() && !matches!(source, CircuitSource::Named { .. }) {
            return Err("\"scale\" only applies to named circuits".to_string());
        }
        let defaults = SubmitRequest::named("", "test");
        Ok(Request::Submit(SubmitRequest {
            source,
            metric: match field_str(map, "metric")? {
                Some(name) => metric_from_wire(name)?,
                None => ErrorMetric::ErrorRate,
            },
            threshold: field_f64(map, "threshold")?.unwrap_or(defaults.threshold),
            seed: field_u64(map, "seed")?.unwrap_or(defaults.seed),
            priority: field_u64(map, "priority")?.unwrap_or(0),
            max_iterations: field_u64(map, "max_iterations")?.map(|n| n as usize),
            measure_rounds: field_u64(map, "measure_rounds")?.map(|n| n as usize),
            certify: field_bool(map, "certify")?.unwrap_or(false),
            window: field_bool(map, "window")?,
            window_max_tfi: field_u64(map, "window_max_tfi")?.map(|n| n as usize),
            deadline_secs: field_f64(map, "deadline_secs")?,
            sat_conflicts: field_u64(map, "sat_conflicts")?,
            sat_propagations: field_u64(map, "sat_propagations")?,
        }))
    }

    /// Serializes the request to one wire line (no trailing newline).
    /// `Request::parse(&request.to_json())` round-trips exactly.
    pub fn to_json(&self) -> String {
        match self {
            Request::Submit(spec) => {
                let mut obj = Obj::new().str("op", "submit");
                obj = match &spec.source {
                    CircuitSource::Named { name, scale } => {
                        obj.str("circuit", name).str("scale", scale)
                    }
                    CircuitSource::Blif(text) => obj.str("blif", text),
                    CircuitSource::Aag(text) => obj.str("aag", text),
                };
                obj = obj
                    .str("metric", metric_to_wire(spec.metric))
                    .f64("threshold", spec.threshold)
                    .u64("seed", spec.seed)
                    .u64("priority", spec.priority)
                    .bool("certify", spec.certify);
                obj = obj.opt_u64("max_iterations", spec.max_iterations.map(|n| n as u64));
                obj = obj.opt_u64("measure_rounds", spec.measure_rounds.map(|n| n as u64));
                if let Some(enabled) = spec.window {
                    obj = obj.bool("window", enabled);
                }
                obj = obj.opt_u64("window_max_tfi", spec.window_max_tfi.map(|n| n as u64));
                obj = obj.opt_f64("deadline_secs", spec.deadline_secs);
                obj = obj.opt_u64("sat_conflicts", spec.sat_conflicts);
                obj = obj.opt_u64("sat_propagations", spec.sat_propagations);
                obj.finish()
            }
            Request::Cancel { job_id } => Obj::new()
                .str("op", "cancel")
                .u64("job_id", *job_id)
                .finish(),
            Request::Status => Obj::new().str("op", "status").finish(),
            Request::Shutdown { cancel } => Obj::new()
                .str("op", "shutdown")
                .str("mode", if *cancel { "cancel" } else { "drain" })
                .finish(),
        }
    }
}

/// What happened to a cancel request's target.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CancelState {
    /// The job was still queued; it is terminally cancelled (its
    /// `job_done` record follows).
    Cancelled,
    /// The job was running; its token is tripped and it will end with an
    /// interrupted `run_end` + `job_done` carrying a checkpoint.
    Cancelling,
    /// The job had already finished; the cancel was a no-op.
    AlreadyDone,
}

impl CancelState {
    fn to_wire(self) -> &'static str {
        match self {
            CancelState::Cancelled => "cancelled",
            CancelState::Cancelling => "cancelling",
            CancelState::AlreadyDone => "done",
        }
    }

    fn from_wire(name: &str) -> Result<CancelState, String> {
        match name {
            "cancelled" => Ok(CancelState::Cancelled),
            "cancelling" => Ok(CancelState::Cancelling),
            "done" => Ok(CancelState::AlreadyDone),
            other => Err(format!("unknown cancel state {other:?}")),
        }
    }
}

/// How a finished job ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobOutcome {
    /// The flow ran to its natural end.
    Completed,
    /// The job's budget fired (cancel of a running job, or its deadline);
    /// the `job_done` record carries a resumable checkpoint.
    Interrupted {
        /// The [`alsrac_rt::budget::Interrupt`] display form.
        reason: String,
    },
    /// Cancelled while still queued; the flow never started.
    Cancelled,
    /// The job errored (unresolvable circuit, invalid config, panic). The
    /// queue keeps draining: a poisoned job never wedges the daemon.
    Failed {
        /// What went wrong.
        error: String,
    },
}

impl JobOutcome {
    fn to_wire(&self) -> &'static str {
        match self {
            JobOutcome::Completed => "completed",
            JobOutcome::Interrupted { .. } => "interrupted",
            JobOutcome::Cancelled => "cancelled",
            JobOutcome::Failed { .. } => "failed",
        }
    }
}

/// The terminal per-job record, written after the job's final flow record.
#[derive(Clone, Debug, PartialEq)]
pub struct JobDone {
    /// The job.
    pub job_id: u64,
    /// How it ended.
    pub outcome: JobOutcome,
    /// Nanoseconds spent queued (submit → dispatch).
    pub queue_ns: u64,
    /// Nanoseconds spent executing (dispatch → done; 0 when cancelled in
    /// the queue).
    pub run_ns: u64,
    /// Jobs still queued at the moment this one was dispatched.
    pub queue_depth: u64,
    /// Flow iterations executed (0 unless the flow ran).
    pub iterations: u64,
    /// Accepted LACs.
    pub applied: u64,
    /// Final AND count of the approximate circuit.
    pub ands: u64,
    /// Serialized [`crate::checkpoint::Checkpoint`] (one JSON object as an
    /// opaque string, so the hex-encoded seed round-trips byte-exactly).
    /// Present exactly when the outcome is interrupted.
    pub checkpoint: Option<String>,
    /// True when this record replays a previously completed job with the
    /// same `(circuit, canonical config)` key instead of re-running the
    /// flow. Replayed records carry the original run's results but their
    /// own `job_id`/`queue_ns` (and `run_ns` 0). Omitted from the wire
    /// when false.
    pub cache_hit: bool,
}

/// Session totals, written as the final `shutdown` record and returned
/// from [`serve`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SessionTotals {
    /// Jobs accepted.
    pub submitted: u64,
    /// Jobs that ran to completion.
    pub completed: u64,
    /// Jobs interrupted mid-run (checkpointed).
    pub interrupted: u64,
    /// Jobs cancelled while queued.
    pub cancelled: u64,
    /// Jobs that errored.
    pub failed: u64,
    /// Malformed request lines rejected.
    pub rejected_lines: u64,
}

/// One response/record line the daemon writes.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Submit accepted.
    Submitted {
        /// The assigned job id (1-based, in submission order).
        job_id: u64,
    },
    /// Cancel acknowledged.
    CancelAck {
        /// The cancelled job.
        job_id: u64,
        /// What the cancel did.
        state: CancelState,
    },
    /// A well-formed request the daemon refused (e.g. unknown job id).
    Rejected {
        /// The request's op.
        op: String,
        /// Why it was refused.
        error: String,
    },
    /// Reply to `status`.
    Status {
        /// Jobs waiting in the queue.
        queued: u64,
        /// Jobs currently executing.
        running: u64,
        /// Jobs finished (any outcome).
        done: u64,
    },
    /// Terminal record of one job.
    JobDone(JobDone),
    /// A request line that failed to parse, with its 1-based line number
    /// (the same diagnostic style `report` uses for trace files).
    LineError {
        /// 1-based input line number.
        line: u64,
        /// The parse error.
        message: String,
    },
    /// The final record of the session.
    Shutdown {
        /// Why the session ended: `"shutdown_request"`, `"input_closed"`,
        /// or `"stop_requested"`.
        reason: String,
        /// Session totals.
        totals: SessionTotals,
    },
}

impl Response {
    /// The wire record for this response.
    pub fn to_record(&self) -> Obj {
        match self {
            Response::Submitted { job_id } => Obj::new()
                .str("type", "response")
                .str("op", "submit")
                .bool("ok", true)
                .u64("job_id", *job_id),
            Response::CancelAck { job_id, state } => Obj::new()
                .str("type", "response")
                .str("op", "cancel")
                .bool("ok", true)
                .u64("job_id", *job_id)
                .str("state", state.to_wire()),
            Response::Rejected { op, error } => Obj::new()
                .str("type", "response")
                .str("op", op)
                .bool("ok", false)
                .str("error", error),
            Response::Status {
                queued,
                running,
                done,
            } => Obj::new()
                .str("type", "status")
                .u64("queued", *queued)
                .u64("running", *running)
                .u64("done", *done),
            Response::JobDone(done) => {
                let mut obj = Obj::new()
                    .str("type", "job_done")
                    .u64("job_id", done.job_id)
                    .str("outcome", done.outcome.to_wire());
                match &done.outcome {
                    JobOutcome::Interrupted { reason } => {
                        obj = obj.str("interrupt_reason", reason);
                    }
                    JobOutcome::Failed { error } => {
                        obj = obj.str("error", error);
                    }
                    JobOutcome::Completed | JobOutcome::Cancelled => {}
                }
                obj = obj
                    .u64("queue_ns", done.queue_ns)
                    .u64("run_ns", done.run_ns)
                    .u64("queue_depth", done.queue_depth)
                    .u64("iterations", done.iterations)
                    .u64("applied", done.applied)
                    .u64("ands", done.ands);
                if let Some(checkpoint) = &done.checkpoint {
                    obj = obj.str("checkpoint", checkpoint);
                }
                if done.cache_hit {
                    obj = obj.bool("cache_hit", true);
                }
                obj
            }
            Response::LineError { line, message } => Obj::new()
                .str("type", "error")
                .u64("line", *line)
                .str("message", message),
            Response::Shutdown { reason, totals } => Obj::new()
                .str("type", "shutdown")
                .str("reason", reason)
                .u64("submitted", totals.submitted)
                .u64("completed", totals.completed)
                .u64("interrupted", totals.interrupted)
                .u64("cancelled", totals.cancelled)
                .u64("failed", totals.failed)
                .u64("rejected_lines", totals.rejected_lines),
        }
    }

    /// Serializes to one wire line (no trailing newline).
    pub fn to_json(&self) -> String {
        self.to_record().finish()
    }

    /// Parses a wire line back into a response (clients and the protocol
    /// round-trip tests).
    ///
    /// # Errors
    ///
    /// A description of the first schema violation.
    pub fn parse(line: &str) -> Result<Response, String> {
        let json = Json::parse(line)?;
        let map = json
            .as_obj()
            .ok_or_else(|| "response must be a JSON object".to_string())?;
        let require_u64 =
            |key: &str| field_u64(map, key)?.ok_or_else(|| format!("missing {key:?}"));
        let require_str =
            |key: &str| field_str(map, key)?.ok_or_else(|| format!("missing {key:?}"));
        match require_str("type")? {
            "response" => {
                let op = require_str("op")?;
                let ok = field_bool(map, "ok")?.ok_or_else(|| "missing \"ok\"".to_string())?;
                if !ok {
                    return Ok(Response::Rejected {
                        op: op.to_string(),
                        error: require_str("error")?.to_string(),
                    });
                }
                match op {
                    "submit" => Ok(Response::Submitted {
                        job_id: require_u64("job_id")?,
                    }),
                    "cancel" => Ok(Response::CancelAck {
                        job_id: require_u64("job_id")?,
                        state: CancelState::from_wire(require_str("state")?)?,
                    }),
                    other => Err(format!("unknown response op {other:?}")),
                }
            }
            "status" => Ok(Response::Status {
                queued: require_u64("queued")?,
                running: require_u64("running")?,
                done: require_u64("done")?,
            }),
            "job_done" => {
                let outcome = match require_str("outcome")? {
                    "completed" => JobOutcome::Completed,
                    "interrupted" => JobOutcome::Interrupted {
                        reason: require_str("interrupt_reason")?.to_string(),
                    },
                    "cancelled" => JobOutcome::Cancelled,
                    "failed" => JobOutcome::Failed {
                        error: require_str("error")?.to_string(),
                    },
                    other => return Err(format!("unknown job outcome {other:?}")),
                };
                Ok(Response::JobDone(JobDone {
                    job_id: require_u64("job_id")?,
                    outcome,
                    queue_ns: require_u64("queue_ns")?,
                    run_ns: require_u64("run_ns")?,
                    queue_depth: require_u64("queue_depth")?,
                    iterations: require_u64("iterations")?,
                    applied: require_u64("applied")?,
                    ands: require_u64("ands")?,
                    checkpoint: field_str(map, "checkpoint")?.map(str::to_string),
                    cache_hit: field_bool(map, "cache_hit")?.unwrap_or(false),
                }))
            }
            "error" => Ok(Response::LineError {
                line: require_u64("line")?,
                message: require_str("message")?.to_string(),
            }),
            "shutdown" => Ok(Response::Shutdown {
                reason: require_str("reason")?.to_string(),
                totals: SessionTotals {
                    submitted: require_u64("submitted")?,
                    completed: require_u64("completed")?,
                    interrupted: require_u64("interrupted")?,
                    cancelled: require_u64("cancelled")?,
                    failed: require_u64("failed")?,
                    rejected_lines: require_u64("rejected_lines")?,
                },
            }),
            other => Err(format!("unknown record type {other:?}")),
        }
    }
}

/// Daemon tuning.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Concurrent job workers (each runs one flow inline). Defaults to
    /// the pool's effective thread count.
    pub workers: usize,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            workers: pool::current_threads(),
        }
    }
}

/// Why [`serve`] returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExitReason {
    /// A `shutdown` request was processed.
    ShutdownRequest,
    /// The request stream hit EOF (queue drained before exit).
    InputClosed,
    /// The external stop token tripped (the CLI wires SIGINT here);
    /// running jobs were checkpointed, queued jobs cancelled.
    StopRequested,
}

impl ExitReason {
    fn to_wire(self) -> &'static str {
        match self {
            ExitReason::ShutdownRequest => "shutdown_request",
            ExitReason::InputClosed => "input_closed",
            ExitReason::StopRequested => "stop_requested",
        }
    }
}

/// What a finished session did, returned by [`serve`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeSummary {
    /// Why the session ended.
    pub reason: ExitReason,
    /// Session totals (mirrors the final `shutdown` record).
    pub totals: SessionTotals,
}

// ---------------------------------------------------------------------
// Output plumbing: every line — protocol responses written directly and
// flow records arriving through the global trace sink — funnels into one
// mutex-protected writer, so concurrent jobs interleave whole lines.

struct Output<W: Write> {
    writer: Mutex<W>,
}

impl<W: Write> Output<W> {
    fn raw(&self, bytes: &[u8]) {
        let mut writer = self.writer.lock().expect("serve output");
        // Like the trace sink: a broken client pipe must not kill the
        // daemon, so write errors are ignored.
        let _ = writer.write_all(bytes);
        let _ = writer.flush();
    }

    fn respond(&self, response: &Response) {
        let mut line = response.to_json();
        line.push('\n');
        self.raw(line.as_bytes());
    }
}

/// Adapter installed as the global trace sink: buffers the record bytes
/// `trace::emit` writes and forwards each completed line (emit flushes
/// once per record) to the shared output as one atomic write.
struct TraceTap<W: Write + Send> {
    out: Arc<Output<W>>,
    buf: Vec<u8>,
}

impl<W: Write + Send> Write for TraceTap<W> {
    fn write(&mut self, bytes: &[u8]) -> std::io::Result<usize> {
        self.buf.extend_from_slice(bytes);
        Ok(bytes.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        if !self.buf.is_empty() {
            self.out.raw(&self.buf);
            self.buf.clear();
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Scheduler state.

struct QueueEntry {
    priority: u64,
    job_id: u64,
    spec: SubmitRequest,
}

impl PartialEq for QueueEntry {
    fn eq(&self, other: &QueueEntry) -> bool {
        self.job_id == other.job_id
    }
}
impl Eq for QueueEntry {}
impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &QueueEntry) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueueEntry {
    fn cmp(&self, other: &QueueEntry) -> std::cmp::Ordering {
        // Max-heap: higher priority first, then FIFO by job id.
        self.priority
            .cmp(&other.priority)
            .then_with(|| other.job_id.cmp(&self.job_id))
    }
}

struct JobMeta {
    enqueued: Instant,
    cancelled_in_queue: bool,
    finished: bool,
}

#[derive(Default)]
struct State {
    queue: BinaryHeap<QueueEntry>,
    meta: BTreeMap<u64, JobMeta>,
    running: BTreeMap<u64, CancelToken>,
    queued: u64,
    done: u64,
    totals: SessionTotals,
    /// Terminal records of *completed* jobs, keyed by
    /// `(circuit identity, canonical config)`: a repeat submit replays the
    /// stored record instead of re-running the flow. Only completions are
    /// cached — interrupted/failed/cancelled outcomes depend on budgets
    /// and timing, so a retry must actually retry.
    cache: BTreeMap<String, JobDone>,
    /// No more jobs will arrive; workers exit once the queue is empty.
    stopping: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signalled on enqueue and on `stopping`.
    ready: Condvar,
    /// Signalled when a worker finishes a job (drain waits on it).
    idle: Condvar,
}

/// Runs a daemon session: requests from `reader`, responses and job
/// record streams to `writer`, until shutdown/EOF/`stop`. Returns after
/// every worker has exited and the final `shutdown` record is written.
///
/// Installs the process-global trace sink for the session's duration
/// (streaming progress is the trace format), replacing any sink
/// `ALSRAC_TRACE` installed, and disables it again before returning.
///
/// # Panics
///
/// Panics if `options.workers == 0`.
pub fn serve<R, W>(
    reader: R,
    writer: W,
    catalog: Arc<Catalog>,
    options: &ServeOptions,
    stop: Option<CancelToken>,
) -> ServeSummary
where
    R: BufRead + Send + 'static,
    W: Write + Send + 'static,
{
    assert!(options.workers > 0, "worker count must be positive");
    let output = Arc::new(Output {
        writer: Mutex::new(writer),
    });
    trace::reset();
    trace::enable_writer(Box::new(TraceTap {
        out: Arc::clone(&output),
        buf: Vec::new(),
    }));

    // The reader thread is detached on purpose: a blocked `read_line`
    // (e.g. on an idle stdin after a `shutdown` request) cannot be
    // joined. It dies on EOF or on the first send after serve returns.
    let (line_tx, line_rx) = mpsc::channel::<(u64, String)>();
    std::thread::spawn(move || {
        let mut reader = reader;
        let mut line_no = 0u64;
        loop {
            let mut line = String::new();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => break,
                Ok(_) => {
                    line_no += 1;
                    if line_tx.send((line_no, line)).is_err() {
                        break;
                    }
                }
            }
        }
    });

    let shared = Shared {
        state: Mutex::new(State::default()),
        ready: Condvar::new(),
        idle: Condvar::new(),
    };

    let reason = std::thread::scope(|scope| {
        for _ in 0..options.workers {
            scope.spawn(|| worker_loop(&shared, catalog.as_ref(), output.as_ref()));
        }
        let (mut reason, cancel_mode) =
            dispatch_loop(&shared, &line_rx, output.as_ref(), stop.as_ref());
        // Cancel-mode shutdown empties the queue and trips running jobs;
        // drain mode lets workers finish everything already queued.
        begin_shutdown(&shared, output.as_ref(), cancel_mode);
        if !cancel_mode {
            // A drain can still be interrupted by a late stop signal
            // (SIGINT while the queue empties).
            let mut state = shared.state.lock().expect("serve state");
            loop {
                if state.queued == 0 && state.running.is_empty() {
                    break;
                }
                if stop.as_ref().is_some_and(CancelToken::is_tripped) {
                    drop(state);
                    begin_shutdown(&shared, output.as_ref(), true);
                    reason = ExitReason::StopRequested;
                    break;
                }
                let (next, _) = shared
                    .idle
                    .wait_timeout(state, Duration::from_millis(50))
                    .expect("serve state");
                state = next;
            }
        }
        reason
        // Scope exit joins the workers: every job has emitted its final
        // records before the shutdown record below.
    });

    let totals = shared.state.lock().expect("serve state").totals.clone();
    trace::emit_totals();
    trace::disable();
    output.respond(&Response::Shutdown {
        reason: reason.to_wire().to_string(),
        totals: totals.clone(),
    });
    ServeSummary { reason, totals }
}

/// Processes request lines until shutdown/EOF/stop. Returns the exit
/// reason and whether the shutdown should cancel (vs drain) the queue.
fn dispatch_loop<W: Write>(
    shared: &Shared,
    lines: &mpsc::Receiver<(u64, String)>,
    output: &Output<W>,
    stop: Option<&CancelToken>,
) -> (ExitReason, bool) {
    loop {
        if stop.is_some_and(CancelToken::is_tripped) {
            return (ExitReason::StopRequested, true);
        }
        let (line_no, line) = match lines.recv_timeout(Duration::from_millis(25)) {
            Ok(item) => item,
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => return (ExitReason::InputClosed, false),
        };
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        match Request::parse(trimmed) {
            Err(message) => {
                let mut state = shared.state.lock().expect("serve state");
                state.totals.rejected_lines += 1;
                drop(state);
                trace::add("serve_lines_rejected", 1);
                output.respond(&Response::LineError {
                    line: line_no,
                    message,
                });
            }
            Ok(Request::Submit(spec)) => {
                let job_id = {
                    let mut state = shared.state.lock().expect("serve state");
                    state.totals.submitted += 1;
                    let job_id = state.totals.submitted;
                    state.meta.insert(
                        job_id,
                        JobMeta {
                            enqueued: Instant::now(),
                            cancelled_in_queue: false,
                            finished: false,
                        },
                    );
                    state.queue.push(QueueEntry {
                        priority: spec.priority,
                        job_id,
                        spec,
                    });
                    state.queued += 1;
                    job_id
                };
                trace::add("serve_jobs_submitted", 1);
                shared.ready.notify_one();
                output.respond(&Response::Submitted { job_id });
            }
            Ok(Request::Cancel { job_id }) => {
                // `None` means the job was cancelled out of the queue and
                // needs its terminal record emitted below (outside the
                // lock, but from this single dispatch thread, so the ack
                // always precedes the job_done).
                let mut dequeued_ns = None;
                let response = {
                    let mut state = shared.state.lock().expect("serve state");
                    if let Some(token) = state.running.get(&job_id) {
                        token.trip();
                        Response::CancelAck {
                            job_id,
                            state: CancelState::Cancelling,
                        }
                    } else {
                        match state.meta.get_mut(&job_id) {
                            Some(meta) if meta.finished || meta.cancelled_in_queue => {
                                Response::CancelAck {
                                    job_id,
                                    state: CancelState::AlreadyDone,
                                }
                            }
                            Some(meta) => {
                                meta.cancelled_in_queue = true;
                                dequeued_ns = Some(elapsed_ns(meta.enqueued));
                                state.queued -= 1;
                                state.done += 1;
                                state.totals.cancelled += 1;
                                Response::CancelAck {
                                    job_id,
                                    state: CancelState::Cancelled,
                                }
                            }
                            None => Response::Rejected {
                                op: "cancel".to_string(),
                                error: format!("unknown job id {job_id}"),
                            },
                        }
                    }
                };
                output.respond(&response);
                if let Some(queue_ns) = dequeued_ns {
                    trace::add("serve_jobs_cancelled", 1);
                    output.respond(&Response::JobDone(cancelled_job(job_id, queue_ns)));
                }
            }
            Ok(Request::Status) => {
                let response = {
                    let state = shared.state.lock().expect("serve state");
                    Response::Status {
                        queued: state.queued,
                        running: state.running.len() as u64,
                        done: state.done,
                    }
                };
                output.respond(&response);
            }
            Ok(Request::Shutdown { cancel }) => {
                return (ExitReason::ShutdownRequest, cancel);
            }
        }
    }
}

fn cancelled_job(job_id: u64, queue_ns: u64) -> JobDone {
    JobDone {
        job_id,
        outcome: JobOutcome::Cancelled,
        queue_ns,
        run_ns: 0,
        queue_depth: 0,
        iterations: 0,
        applied: 0,
        ands: 0,
        checkpoint: None,
        cache_hit: false,
    }
}

/// FNV-1a 64 over a byte string (inline circuit texts are keyed by hash so
/// the cache map does not hold a second copy of every submitted netlist).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The result-cache key of a submit: circuit identity plus every
/// result-relevant config field. `priority` is deliberately excluded — it
/// affects *when* a job runs, never what it computes. Thresholds and
/// deadlines are keyed by their exact bit patterns so no two distinct
/// configs ever collide.
fn cache_key(spec: &SubmitRequest) -> String {
    let source = match &spec.source {
        CircuitSource::Named { name, scale } => format!("named/{scale}/{name}"),
        CircuitSource::Blif(text) => format!("blif/{:016x}", fnv1a(text.as_bytes())),
        CircuitSource::Aag(text) => format!("aag/{:016x}", fnv1a(text.as_bytes())),
    };
    format!(
        "{source}|{}|{:016x}|{}|{:?}|{:?}|{}|{:?}|{:?}|{:?}|{:?}|{:?}",
        metric_to_wire(spec.metric),
        spec.threshold.to_bits(),
        spec.seed,
        spec.max_iterations,
        spec.measure_rounds,
        spec.certify,
        spec.window,
        spec.window_max_tfi,
        spec.deadline_secs.map(f64::to_bits),
        spec.sat_conflicts,
        spec.sat_propagations,
    )
}

fn elapsed_ns(since: Instant) -> u64 {
    since.elapsed().as_nanos().min(u64::MAX as u128) as u64
}

/// Transitions the scheduler into shutdown. In cancel mode, queued jobs
/// are terminally cancelled (each gets its `job_done`) and running jobs'
/// tokens are tripped; in drain mode workers simply finish the queue.
fn begin_shutdown<W: Write>(shared: &Shared, output: &Output<W>, cancel_mode: bool) {
    let mut cancelled: Vec<(u64, u64)> = Vec::new();
    {
        let mut state = shared.state.lock().expect("serve state");
        state.stopping = true;
        if cancel_mode {
            let entries = std::mem::take(&mut state.queue);
            for entry in entries.into_sorted_vec() {
                let meta = state.meta.get_mut(&entry.job_id).expect("job meta");
                if meta.cancelled_in_queue {
                    continue;
                }
                meta.cancelled_in_queue = true;
                let queue_ns = elapsed_ns(meta.enqueued);
                state.queued -= 1;
                state.done += 1;
                state.totals.cancelled += 1;
                cancelled.push((entry.job_id, queue_ns));
            }
            for token in state.running.values() {
                token.trip();
            }
        }
    }
    shared.ready.notify_all();
    for (job_id, queue_ns) in cancelled {
        trace::add("serve_jobs_cancelled", 1);
        output.respond(&Response::JobDone(cancelled_job(job_id, queue_ns)));
    }
}

fn worker_loop<W: Write>(shared: &Shared, catalog: &Catalog, output: &Output<W>) {
    // Nested parallel primitives inside a job run inline: one flow, one
    // thread — concurrency comes from running many jobs at once.
    let _inline = pool::become_worker();
    loop {
        let (entry, enqueued, depth, token) = {
            let mut state = shared.state.lock().expect("serve state");
            let claimed = loop {
                if let Some(entry) = state.queue.pop() {
                    let meta = state.meta.get_mut(&entry.job_id).expect("job meta");
                    if meta.cancelled_in_queue {
                        // Tombstone: its job_done was already emitted.
                        continue;
                    }
                    let enqueued = meta.enqueued;
                    state.queued -= 1;
                    let token = CancelToken::new();
                    state.running.insert(entry.job_id, token.clone());
                    break Some((entry, enqueued, state.queued, token));
                }
                if state.stopping {
                    break None;
                }
                state = shared.ready.wait(state).expect("serve state");
            };
            match claimed {
                Some(job) => job,
                None => return,
            }
        };
        let job_id = entry.job_id;
        // Cache lookup happens *after* the claim so the job went through
        // normal queue accounting (priority order, cancel-in-queue
        // tombstones, queue_ns) whether or not it replays.
        let key = cache_key(&entry.spec);
        let cached = {
            let state = shared.state.lock().expect("serve state");
            state.cache.get(&key).cloned()
        };
        let done = match cached {
            Some(hit) => {
                trace::add("serve_cache_hits", 1);
                JobDone {
                    job_id,
                    queue_ns: elapsed_ns(enqueued),
                    run_ns: 0,
                    queue_depth: depth,
                    cache_hit: true,
                    ..hit
                }
            }
            None => {
                let done = execute_job(&entry, enqueued, depth, token, catalog);
                if done.outcome == JobOutcome::Completed {
                    let mut state = shared.state.lock().expect("serve state");
                    state.cache.insert(key, done.clone());
                }
                done
            }
        };
        {
            let mut state = shared.state.lock().expect("serve state");
            state.running.remove(&job_id);
            let meta = state.meta.get_mut(&job_id).expect("job meta");
            meta.finished = true;
            state.done += 1;
            match &done.outcome {
                JobOutcome::Completed => state.totals.completed += 1,
                JobOutcome::Interrupted { .. } => state.totals.interrupted += 1,
                JobOutcome::Cancelled => state.totals.cancelled += 1,
                JobOutcome::Failed { .. } => state.totals.failed += 1,
            }
        }
        match &done.outcome {
            JobOutcome::Completed => trace::add("serve_jobs_completed", 1),
            JobOutcome::Interrupted { .. } => trace::add("serve_jobs_interrupted", 1),
            JobOutcome::Cancelled => trace::add("serve_jobs_cancelled", 1),
            JobOutcome::Failed { .. } => trace::add("serve_jobs_failed", 1),
        }
        output.respond(&Response::JobDone(done));
        shared.idle.notify_all();
    }
}

/// Runs one job to its terminal record. Never panics out: resolver
/// errors, flow errors, and panics inside the flow all become a `failed`
/// outcome, so a poisoned job cannot wedge the queue.
fn execute_job(
    entry: &QueueEntry,
    enqueued: Instant,
    depth: u64,
    token: CancelToken,
    catalog: &Catalog,
) -> JobDone {
    let started = Instant::now();
    let queue_ns = (started - enqueued).as_nanos().min(u64::MAX as u128) as u64;
    trace::set_job_tag(Some(entry.job_id));
    // Register the job's token with the fault harness so an armed
    // `FaultAction::Cancel` interrupts this job (and only this job).
    faults::set_cancel_token(Some(token.clone()));
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let aig = catalog.circuit(&entry.spec.source)?;
        let mut config = entry.spec.flow_config();
        config.budget = entry.spec.budget(token.clone());
        let shared_est = if config.input_bias.is_none() {
            catalog.estimation_patterns(aig.num_inputs())
        } else {
            None
        };
        flow::run_shared(&aig, &config, shared_est.as_deref()).map_err(|e| e.to_string())
    }))
    .unwrap_or_else(|panic| Err(format!("job panicked: {}", panic_message(panic.as_ref()))));
    faults::set_cancel_token(None);
    trace::set_job_tag(None);
    let run_ns = elapsed_ns(started);
    match outcome {
        Ok(result) => {
            let checkpoint = result.checkpoint.as_ref().map(|cp| cp.to_json());
            let outcome = match result.outcome {
                FlowOutcome::Completed => JobOutcome::Completed,
                FlowOutcome::Interrupted { reason } => JobOutcome::Interrupted { reason },
            };
            JobDone {
                job_id: entry.job_id,
                outcome,
                queue_ns,
                run_ns,
                queue_depth: depth,
                iterations: result.iterations as u64,
                applied: result.applied as u64,
                ands: result.approx.num_ands() as u64,
                checkpoint,
                cache_hit: false,
            }
        }
        Err(error) => JobDone {
            job_id: entry.job_id,
            outcome: JobOutcome::Failed { error },
            queue_ns,
            run_ns,
            queue_depth: depth,
            iterations: 0,
            applied: 0,
            ands: 0,
            checkpoint: None,
            cache_hit: false,
        },
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = panic.downcast_ref::<&str>() {
        s
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s
    } else {
        "<non-string panic payload>"
    }
}

// ---------------------------------------------------------------------
// In-process client plumbing: a channel-backed request pipe and a
// line-splitting collector, so tests and `bench_serve` can drive a
// session and observe its stream live without any OS pipes.

/// The sending half of an in-process request pipe; dropping it is EOF.
pub struct RequestPipe {
    tx: mpsc::Sender<String>,
}

impl RequestPipe {
    /// Sends one raw request line (malformed-line tests use this).
    pub fn send_line(&self, line: &str) {
        let _ = self.tx.send(line.to_string());
    }

    /// Sends a request.
    pub fn request(&self, request: &Request) {
        self.send_line(&request.to_json());
    }
}

/// The reading half of an in-process request pipe ([`BufRead`] for
/// [`serve`]).
pub struct PipeReader {
    rx: mpsc::Receiver<String>,
    buf: Vec<u8>,
    pos: usize,
}

/// Creates an in-process request pipe.
pub fn request_pipe() -> (RequestPipe, PipeReader) {
    let (tx, rx) = mpsc::channel();
    (
        RequestPipe { tx },
        PipeReader {
            rx,
            buf: Vec::new(),
            pos: 0,
        },
    )
}

impl Read for PipeReader {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        let available = self.fill_buf()?;
        let n = available.len().min(out.len());
        out[..n].copy_from_slice(&available[..n]);
        self.consume(n);
        Ok(n)
    }
}

impl BufRead for PipeReader {
    fn fill_buf(&mut self) -> std::io::Result<&[u8]> {
        if self.pos == self.buf.len() {
            match self.rx.recv() {
                Ok(line) => {
                    self.buf.clear();
                    self.buf.extend_from_slice(line.as_bytes());
                    self.buf.push(b'\n');
                    self.pos = 0;
                }
                Err(_) => return Ok(&[]), // senders gone: EOF
            }
        }
        Ok(&self.buf[self.pos..])
    }

    fn consume(&mut self, amount: usize) {
        self.pos = (self.pos + amount).min(self.buf.len());
    }
}

/// A `Write` that splits the daemon's output into lines, keeps them all,
/// and forwards each to any registered watcher as it completes. Clones
/// share state, so the caller keeps a handle while [`serve`] owns one.
#[derive(Clone, Default)]
pub struct LineCollector {
    inner: Arc<Mutex<CollectorInner>>,
}

#[derive(Default)]
struct CollectorInner {
    partial: Vec<u8>,
    lines: Vec<String>,
    watchers: Vec<mpsc::Sender<String>>,
}

impl LineCollector {
    /// A fresh, empty collector.
    pub fn new() -> LineCollector {
        LineCollector::default()
    }

    /// Every complete line collected so far.
    pub fn lines(&self) -> Vec<String> {
        self.inner.lock().expect("collector").lines.clone()
    }

    /// Registers a live watcher. Lines already collected are replayed
    /// into the channel first, so no record can be missed to a race.
    pub fn watch(&self) -> mpsc::Receiver<String> {
        let (tx, rx) = mpsc::channel();
        let mut inner = self.inner.lock().expect("collector");
        for line in &inner.lines {
            let _ = tx.send(line.clone());
        }
        inner.watchers.push(tx);
        rx
    }
}

impl Write for LineCollector {
    fn write(&mut self, bytes: &[u8]) -> std::io::Result<usize> {
        let mut inner = self.inner.lock().expect("collector");
        inner.partial.extend_from_slice(bytes);
        while let Some(newline) = inner.partial.iter().position(|&b| b == b'\n') {
            let rest = inner.partial.split_off(newline + 1);
            let mut line_bytes = std::mem::replace(&mut inner.partial, rest);
            line_bytes.pop(); // the newline
            let line = String::from_utf8_lossy(&line_bytes).into_owned();
            inner.watchers.retain(|tx| tx.send(line.clone()).is_ok());
            inner.lines.push(line);
        }
        Ok(bytes.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Blocks until a watched line satisfies `pred` (applied to the parsed
/// record), returning it, or `None` after `timeout` with no match.
pub fn wait_for_record(
    rx: &mpsc::Receiver<String>,
    timeout: Duration,
    pred: impl Fn(&Json) -> bool,
) -> Option<Json> {
    let deadline = Instant::now() + timeout;
    loop {
        let remaining = deadline.saturating_duration_since(Instant::now());
        match rx.recv_timeout(remaining) {
            Ok(line) => {
                if let Ok(record) = Json::parse(&line) {
                    if pred(&record) {
                        return Some(record);
                    }
                }
            }
            Err(_) => return None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_submit() -> SubmitRequest {
        SubmitRequest {
            source: CircuitSource::Named {
                name: "rca32".to_string(),
                scale: "paper".to_string(),
            },
            metric: ErrorMetric::Wce,
            threshold: 12.0,
            seed: 99,
            priority: 3,
            max_iterations: Some(40),
            measure_rounds: Some(10_000),
            certify: true,
            window: Some(false),
            window_max_tfi: Some(500),
            deadline_secs: Some(1.5),
            sat_conflicts: Some(100_000),
            sat_propagations: Some(2_000_000),
        }
    }

    #[test]
    fn every_request_variant_round_trips() {
        let requests = vec![
            Request::Submit(SubmitRequest::named("cla32", "test")),
            Request::Submit(full_submit()),
            Request::Submit(SubmitRequest {
                source: CircuitSource::Blif(".model m\n.inputs a\n.outputs y\n.end\n".to_string()),
                metric: ErrorMetric::Nmed,
                ..SubmitRequest::named("", "test")
            }),
            Request::Submit(SubmitRequest {
                source: CircuitSource::Aag("aag 1 1 0 1 0\n2\n2\n".to_string()),
                metric: ErrorMetric::Mred,
                ..SubmitRequest::named("", "test")
            }),
            Request::Cancel { job_id: 17 },
            Request::Status,
            Request::Shutdown { cancel: false },
            Request::Shutdown { cancel: true },
        ];
        for request in requests {
            let line = request.to_json();
            let back = Request::parse(&line).expect("round trip parses");
            assert_eq!(back, request, "wire line: {line}");
        }
    }

    #[test]
    fn every_response_variant_round_trips() {
        let responses = vec![
            Response::Submitted { job_id: 1 },
            Response::CancelAck {
                job_id: 2,
                state: CancelState::Cancelled,
            },
            Response::CancelAck {
                job_id: 3,
                state: CancelState::Cancelling,
            },
            Response::CancelAck {
                job_id: 4,
                state: CancelState::AlreadyDone,
            },
            Response::Rejected {
                op: "cancel".to_string(),
                error: "unknown job id 9".to_string(),
            },
            Response::Status {
                queued: 5,
                running: 2,
                done: 11,
            },
            Response::JobDone(JobDone {
                job_id: 6,
                outcome: JobOutcome::Completed,
                queue_ns: 1_000,
                run_ns: 2_000,
                queue_depth: 4,
                iterations: 12,
                applied: 7,
                ands: 33,
                checkpoint: None,
                cache_hit: false,
            }),
            Response::JobDone(JobDone {
                job_id: 10,
                outcome: JobOutcome::Completed,
                queue_ns: 500,
                run_ns: 0,
                queue_depth: 1,
                iterations: 12,
                applied: 7,
                ands: 33,
                checkpoint: None,
                cache_hit: true,
            }),
            Response::JobDone(JobDone {
                job_id: 7,
                outcome: JobOutcome::Interrupted {
                    reason: "cancelled".to_string(),
                },
                queue_ns: 10,
                run_ns: 20,
                queue_depth: 0,
                iterations: 3,
                applied: 1,
                ands: 40,
                checkpoint: Some("{\"version\": 1}".to_string()),
                cache_hit: false,
            }),
            Response::JobDone(cancelled_job(8, 55)),
            Response::JobDone(JobDone {
                job_id: 9,
                outcome: JobOutcome::Failed {
                    error: "unknown circuit \"nope\"".to_string(),
                },
                queue_ns: 1,
                run_ns: 2,
                queue_depth: 0,
                iterations: 0,
                applied: 0,
                ands: 0,
                checkpoint: None,
                cache_hit: false,
            }),
            Response::LineError {
                line: 4,
                message: "unknown key \"bogus\"".to_string(),
            },
            Response::Shutdown {
                reason: "input_closed".to_string(),
                totals: SessionTotals {
                    submitted: 9,
                    completed: 5,
                    interrupted: 1,
                    cancelled: 2,
                    failed: 1,
                    rejected_lines: 3,
                },
            },
        ];
        for response in responses {
            let line = response.to_json();
            let back = Response::parse(&line).expect("round trip parses");
            assert_eq!(back, response, "wire line: {line}");
        }
    }

    #[test]
    fn submit_defaults_match_flow_config_defaults() {
        let Request::Submit(spec) =
            Request::parse(r#"{"op":"submit","circuit":"rca32"}"#).expect("minimal submit parses")
        else {
            panic!("not a submit");
        };
        let config = spec.flow_config();
        let defaults = FlowConfig::default();
        assert_eq!(config.metric, defaults.metric);
        assert_eq!(config.threshold.to_bits(), defaults.threshold.to_bits());
        assert_eq!(config.seed, defaults.seed);
        assert_eq!(config.max_iterations, defaults.max_iterations);
        assert_eq!(config.measure_rounds, defaults.measure_rounds);
        assert_eq!(config.certify, defaults.certify);
        assert_eq!(config.window.enabled, defaults.window.enabled);
        assert_eq!(config.window.max_tfi, defaults.window.max_tfi);
    }

    #[test]
    fn malformed_requests_are_rejected_with_reasons() {
        let cases: Vec<(&str, &str)> = vec![
            ("not json at all", "expected"),
            ("[1, 2]", "must be a JSON object"),
            (r#"{"circuit":"rca32"}"#, "missing \"op\""),
            (r#"{"op":"explode"}"#, "unknown op"),
            (r#"{"op":"submit"}"#, "missing circuit source"),
            (
                r#"{"op":"submit","circuit":"a","blif":"b"}"#,
                "conflicting circuit sources",
            ),
            (
                r#"{"op":"submit","circuit":"a","metric":"epsilon"}"#,
                "unknown metric",
            ),
            (
                r#"{"op":"submit","circuit":"a","scale":"huge"}"#,
                "unknown scale",
            ),
            (
                r#"{"op":"submit","blif":".model m",  "scale":"test"}"#,
                "only applies to named circuits",
            ),
            (
                r#"{"op":"submit","circuit":"a","bogus":1}"#,
                "unknown key \"bogus\"",
            ),
            (r#"{"op":"submit","circuit":"a","seed":-1}"#, "non-negative"),
            (
                r#"{"op":"submit","circuit":"a","threshold":"big"}"#,
                "must be a number",
            ),
            (r#"{"op":"cancel"}"#, "missing \"job_id\""),
            (r#"{"op":"status","extra":true}"#, "unknown key"),
            (
                r#"{"op":"shutdown","mode":"explode"}"#,
                "unknown shutdown mode",
            ),
        ];
        for (line, needle) in cases {
            let err = Request::parse(line).expect_err(line);
            assert!(
                err.contains(needle),
                "error for {line:?} should mention {needle:?}, got: {err}"
            );
        }
    }

    #[test]
    fn queue_orders_by_priority_then_fifo() {
        let mut heap = BinaryHeap::new();
        for (job_id, priority) in [(1, 0), (2, 5), (3, 0), (4, 5)] {
            heap.push(QueueEntry {
                priority,
                job_id,
                spec: SubmitRequest::named("x", "test"),
            });
        }
        let order: Vec<u64> = std::iter::from_fn(|| heap.pop().map(|e| e.job_id)).collect();
        assert_eq!(order, vec![2, 4, 1, 3]);
    }

    #[test]
    fn line_collector_splits_lines_and_replays_to_watchers() {
        let collector = LineCollector::new();
        let mut sink = collector.clone();
        sink.write_all(b"first\nsec").expect("write");
        let watcher = collector.watch();
        assert_eq!(
            watcher
                .recv_timeout(Duration::from_secs(1))
                .expect("replay"),
            "first"
        );
        sink.write_all(b"ond\n").expect("write");
        assert_eq!(
            watcher.recv_timeout(Duration::from_secs(1)).expect("live"),
            "second"
        );
        assert_eq!(collector.lines(), vec!["first", "second"]);
    }

    #[test]
    fn request_pipe_delivers_lines_and_eof_on_drop() {
        let (tx, mut reader) = request_pipe();
        tx.request(&Request::Status);
        drop(tx);
        let mut first = String::new();
        reader.read_line(&mut first).expect("read line");
        assert_eq!(first, "{\"op\":\"status\"}\n");
        let mut rest = String::new();
        assert_eq!(reader.read_line(&mut rest).expect("eof"), 0);
    }
}
