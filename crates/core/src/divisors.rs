//! Divisor-set selection (Algorithm 1 of the paper).
//!
//! For a node `V`, candidate divisor sets are produced by two edits of its
//! fanin set:
//!
//! 1. **remove** a fanin `n` — the set `fanins(V) \ {n}`;
//! 2. **replace** a fanin `n` with another node `u` from `V`'s TFI cone —
//!    the set `fanins(V) \ {n} ∪ {u}`.
//!
//! Only TFI-cone nodes are considered because `V`'s function most likely
//! depends on them. TFI nodes are visited in ascending logic level, as in
//! the paper's pseudocode.
//!
//! Two performance layers sit on top of Algorithm 1. Logic levels are
//! *hoisted*: [`select_divisor_sets_with`] takes the per-node level slice
//! (available from the flow's [`alsrac_aig::FanoutMap`]) instead of
//! recomputing `Aig::levels` per call, which the old path did once per
//! node per iteration. And the candidate pool can be drawn from a bounded
//! [`Window`] instead of the full TFI cone; because the pool is re-sorted
//! by `(level, index)` — a total order — a window that covers the whole
//! TFI yields a bit-identical pool, which is what keeps the windowed flow
//! bit-identical on small circuits.

use alsrac_aig::{Aig, Node, NodeId, Window};

/// Configuration for [`select_divisor_sets`].
#[derive(Clone, Debug)]
pub struct DivisorConfig {
    /// Upper bound on the number of candidate sets returned per node (keeps
    /// huge TFI cones tractable).
    pub max_sets: usize,
    /// Also offer the *fanin set itself* extended by one TFI node
    /// (a mild generalization of the paper; disabled by default to match
    /// Algorithm 1 exactly).
    pub include_extensions: bool,
}

impl Default for DivisorConfig {
    fn default() -> DivisorConfig {
        DivisorConfig {
            max_sets: 64,
            include_extensions: false,
        }
    }
}

/// Computes candidate divisor sets for `node`, in Algorithm 1's order:
/// per removed fanin, first the bare removal, then each TFI replacement in
/// ascending level order.
///
/// The node itself, its fanins (for the replacement slot), and the constant
/// node are excluded from the replacement pool. Returns an empty list for
/// inputs and the constant.
///
/// Convenience wrapper over [`select_divisor_sets_with`] that recomputes
/// levels and walks the full TFI cone; per-iteration callers (the flow)
/// should hoist both.
pub fn select_divisor_sets(aig: &Aig, node: NodeId, config: &DivisorConfig) -> Vec<Vec<NodeId>> {
    select_divisor_sets_with(aig, node, &aig.levels(), None, config)
}

/// [`select_divisor_sets`] with hoisted structural data: `levels` is the
/// per-node logic-level slice (e.g. [`alsrac_aig::FanoutMap::levels`]) and
/// `window`, when present, restricts the replacement pool to the window's
/// TFI-side nodes ([`Window::tfi_nodes`]) instead of the full TFI cone.
pub fn select_divisor_sets_with(
    aig: &Aig,
    node: NodeId,
    levels: &[u32],
    window: Option<&Window>,
    config: &DivisorConfig,
) -> Vec<Vec<NodeId>> {
    let Node::And { f0, f1 } = *aig.node(node) else {
        return Vec::new();
    };
    let fanins = [f0.node(), f1.node()];

    // TFI candidates sorted by ascending level (Algorithm 1, line 2). The
    // `(level, index)` key is a total order, so the pool is independent of
    // the candidate source's own ordering.
    let cone;
    let candidates: &[NodeId] = match window {
        Some(w) => w.tfi_nodes(),
        None => {
            cone = aig.tfi_cone(node);
            cone.members()
        }
    };
    let mut pool: Vec<NodeId> = candidates
        .iter()
        .copied()
        .filter(|&n| n != node && n != NodeId::CONST && !fanins.contains(&n))
        .collect();
    pool.sort_by_key(|n| (levels[n.index()], n.index()));

    let mut sets: Vec<Vec<NodeId>> = Vec::new();
    for &removed in &fanins {
        let kept: Vec<NodeId> = fanins.iter().copied().filter(|&n| n != removed).collect();
        if kept.is_empty() || kept.len() == fanins.len() {
            continue; // duplicated fanin node: removal degenerates
        }
        // Removal set (Algorithm 1, lines 5-6).
        if sets.len() >= config.max_sets {
            return sets;
        }
        if !sets.contains(&kept) {
            sets.push(kept.clone());
        }
        // Replacement sets (lines 7-9).
        for &u in &pool {
            if sets.len() >= config.max_sets {
                return sets;
            }
            let mut set = kept.clone();
            if set.contains(&u) {
                continue;
            }
            set.push(u);
            set.sort_unstable();
            if !sets.contains(&set) {
                sets.push(set);
            }
        }
    }
    if config.include_extensions {
        for &u in &pool {
            if sets.len() >= config.max_sets {
                break;
            }
            let mut set = fanins.to_vec();
            set.push(u);
            set.sort_unstable();
            set.dedup();
            if set.len() == 3 && !sets.contains(&set) {
                sets.push(set);
            }
        }
    }
    sets
}

#[cfg(test)]
mod tests {
    use super::*;

    /// v = (a & b) & (c | d) with some depth below.
    fn sample() -> (Aig, NodeId, Vec<NodeId>) {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let d = aig.add_input("d");
        let ab = aig.and(a, b);
        let cd = aig.or(c, d);
        let v = aig.and(ab, cd);
        aig.add_output("v", v);
        (
            aig,
            v.node(),
            vec![a.node(), b.node(), c.node(), d.node(), ab.node(), cd.node()],
        )
    }

    #[test]
    fn removal_sets_come_first() {
        let (aig, v, _) = sample();
        let sets = select_divisor_sets(&aig, v, &DivisorConfig::default());
        // First set: one of the fanins alone.
        assert_eq!(sets[0].len(), 1);
        let [f0, f1] = aig.and_fanins(v);
        assert!(sets[0][0] == f0.node() || sets[0][0] == f1.node());
    }

    #[test]
    fn replacement_sets_draw_from_tfi() {
        let (aig, v, tfi_members) = sample();
        let sets = select_divisor_sets(&aig, v, &DivisorConfig::default());
        for set in &sets {
            assert!(!set.contains(&v), "node must not be its own divisor");
            for n in set {
                assert!(tfi_members.contains(n), "{n} outside TFI");
            }
        }
        // Pairs {fanin, replacement} must appear.
        assert!(sets.iter().any(|s| s.len() == 2));
    }

    #[test]
    fn no_duplicate_sets() {
        let (aig, v, _) = sample();
        let sets = select_divisor_sets(&aig, v, &DivisorConfig::default());
        for (i, s) in sets.iter().enumerate() {
            for t in &sets[i + 1..] {
                assert_ne!(s, t, "duplicate divisor set");
            }
        }
    }

    #[test]
    fn max_sets_is_respected() {
        let (aig, v, _) = sample();
        let config = DivisorConfig {
            max_sets: 3,
            ..DivisorConfig::default()
        };
        let sets = select_divisor_sets(&aig, v, &config);
        assert!(sets.len() <= 3);
    }

    #[test]
    fn inputs_have_no_divisor_sets() {
        let (aig, _, tfi) = sample();
        assert!(select_divisor_sets(&aig, tfi[0], &DivisorConfig::default()).is_empty());
        assert!(select_divisor_sets(&aig, NodeId::CONST, &DivisorConfig::default()).is_empty());
    }

    #[test]
    fn extension_sets_add_a_third_divisor() {
        let (aig, v, _) = sample();
        let config = DivisorConfig {
            include_extensions: true,
            max_sets: 1000,
        };
        let sets = select_divisor_sets(&aig, v, &config);
        assert!(sets.iter().any(|s| s.len() == 3));
    }

    #[test]
    fn full_window_pool_matches_whole_circuit_pool() {
        use alsrac_aig::{WindowExtractor, WindowParams};
        let (aig, v, _) = sample();
        let fanouts = aig.fanout_map();
        let mut ex = WindowExtractor::new();
        for id in aig.iter_ands() {
            let w = ex.extract(&aig, &fanouts, id, &WindowParams::default());
            let windowed = select_divisor_sets_with(
                &aig,
                id,
                fanouts.levels(),
                Some(&w),
                &DivisorConfig::default(),
            );
            let plain = select_divisor_sets(&aig, id, &DivisorConfig::default());
            assert_eq!(windowed, plain, "node {id}");
        }
        // A truncated window shrinks the pool but stays well-formed.
        let w = ex.extract(
            &aig,
            &fanouts,
            v,
            &WindowParams {
                max_tfi: 3,
                tfo_depth: 0,
            },
        );
        let truncated = select_divisor_sets_with(
            &aig,
            v,
            fanouts.levels(),
            Some(&w),
            &DivisorConfig::default(),
        );
        for set in &truncated {
            for n in set {
                assert!(w.contains(*n) || aig.and_fanins(v).iter().any(|f| f.node() == *n));
            }
        }
    }

    #[test]
    fn replacement_pool_is_level_ordered() {
        let (aig, v, _) = sample();
        let sets = select_divisor_sets(&aig, v, &DivisorConfig::default());
        let levels = aig.levels();
        // Among the 2-element sets sharing the same kept fanin, the added
        // divisor's level must be non-decreasing.
        let [f0, _f1] = aig.and_fanins(v);
        let added: Vec<u32> = sets
            .iter()
            .filter(|s| s.len() == 2 && s.contains(&f0.node()))
            .map(|s| {
                let other = s.iter().find(|&&n| n != f0.node()).expect("pair");
                levels[other.index()]
            })
            .collect();
        for w in added.windows(2) {
            assert!(w[0] <= w[1], "levels not ascending: {added:?}");
        }
    }
}
