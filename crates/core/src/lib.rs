//! ALSRAC: Approximate Logic Synthesis by Resubstitution with Approximate
//! Care Set — a Rust reproduction of the DAC 2020 paper by Meng, Qian, and
//! Mishchenko.
//!
//! # What the method does
//!
//! Given an exact circuit and an error budget (error rate, NMED, or MRED),
//! ALSRAC repeatedly applies the *local approximate change* (LAC) with the
//! least induced error until the budget is exhausted. Its LAC is an
//! **approximate resubstitution**: a node's function is re-expressed as a
//! small function of *divisor* signals elsewhere in the circuit, where the
//! function is derived not from exact don't-cares (SAT/BDD) but from an
//! **approximate care set** — the divisor patterns actually observed when
//! simulating a handful of random input patterns (§III-A). Fewer simulated
//! patterns shrink the care set, licensing more aggressive approximations;
//! the flow adapts the simulation count `N` downward when no candidate
//! exists (§III-C).
//!
//! # Crate layout
//!
//! * [`care`] — approximate care sets over divisor signals and the
//!   simulation-based feasibility check (Theorem 1 restricted to sampled
//!   patterns);
//! * [`divisors`] — divisor-set selection (Algorithm 1);
//! * [`lac`] — LAC candidate generation via ISOP on the approximate care
//!   truth table (Algorithm 2);
//! * [`estimate`] — batch error estimation of all candidates from one base
//!   simulation (the Su et al. DAC'18 scheme the paper adopts);
//! * [`window`] — bounded-window configuration and the signature-class
//!   feasibility pre-screen for window-local resubstitution;
//! * [`flow`] — the complete ALSRAC loop (Algorithm 3) with dynamic
//!   simulation-round control, budget-aware interruption, and
//!   checkpoint/resume;
//! * [`checkpoint`] — the serialized loop state an interrupted run leaves
//!   behind and a resumed run restarts from, bit-identically;
//! * [`serve`] — the multi-tenant service mode: a JSONL job protocol and
//!   a priority-scheduled worker pool running many flows concurrently
//!   over a shared immutable catalog;
//! * [`baseline`] — reimplementations of the paper's comparison methods:
//!   Su's SASIMI-style substitute-and-simplify and Liu's stochastic ALS;
//! * [`exact`] — zero-error SAT-based resubstitution (the [14]/[18]
//!   machinery ALSRAC's approximate care set replaces).
//!
//! # Example
//!
//! ```
//! use alsrac::flow::{run, FlowConfig};
//! use alsrac_circuits::arith;
//! use alsrac_metrics::ErrorMetric;
//!
//! # fn main() -> Result<(), alsrac::FlowError> {
//! let exact = arith::ripple_carry_adder(4);
//! let config = FlowConfig {
//!     metric: ErrorMetric::ErrorRate,
//!     threshold: 0.05,
//!     ..FlowConfig::default()
//! };
//! let result = run(&exact, &config)?;
//! assert!(result.measured.error_rate <= 0.05);
//! assert!(result.approx.num_ands() <= exact.num_ands());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod care;
pub mod certify;
pub mod checkpoint;
pub mod divisors;
pub mod estimate;
pub mod exact;
pub mod flow;
pub mod lac;
pub mod serve;
pub mod window;

mod error;

pub use error::FlowError;
