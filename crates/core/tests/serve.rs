//! Integration suite for the daemon (`alsrac::serve`).
//!
//! The contract under test (DESIGN.md "Service mode"):
//!
//! 1. **Worker-count determinism.** The same job mix, submitted with the
//!    same interleaving, produces per-job `run_end` records identical at
//!    1, 3, and 7 workers once the legitimately volatile fields (run
//!    ids, wall-clock timings) are stripped: every job runs its flow
//!    single-threaded from its own seed, so scheduling cannot leak into
//!    results.
//! 2. **Fault-cancelled jobs checkpoint and resume bit-identically.** A
//!    seeded cancel fault fired inside a daemon job interrupts it; the
//!    checkpoint from its terminal record resumes — via the public
//!    `flow::resume` — to the exact result of an uninterrupted direct
//!    run.
//! 3. **Poisoned jobs degrade to error responses without wedging the
//!    queue.** An unresolvable circuit and a panicking resolver both
//!    yield `failed` terminal records, and jobs submitted after them
//!    still complete; a SAT-starved certification job completes with a
//!    degraded certificate instead of hanging its worker.
//!
//! The daemon owns the process-global trace sink and the fault plan is
//! process-global too, so every test holds [`lock`] for its duration.

use std::sync::{mpsc, Arc, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

use alsrac::checkpoint::Checkpoint;
use alsrac::flow;
use alsrac::serve::{
    self, request_pipe, wait_for_record, Catalog, CircuitSource, LineCollector, Request,
    RequestPipe, ServeOptions, ServeSummary, SubmitRequest,
};
use alsrac_aig::Aig;
use alsrac_circuits::{aiger, arith};
use alsrac_metrics::ErrorMetric;
use alsrac_rt::faults::{self, FaultAction, FaultPlan};
use alsrac_rt::json::Json;

/// Serializes tests: the trace sink and the fault plan are process-global.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Test resolver over the arithmetic generators, plus two poisoned names
/// and inline ASCII-AIGER support.
fn resolver() -> Box<serve::Resolver> {
    Box::new(|source: &CircuitSource| match source {
        CircuitSource::Named { name, .. } => match name.as_str() {
            "rca4" => Ok(arith::ripple_carry_adder(4)),
            "ksa4" => Ok(arith::kogge_stone_adder(4)),
            "mtp4" => Ok(arith::array_multiplier(4)),
            "panicky" => panic!("resolver blew up on purpose"),
            other => Err(format!("unknown benchmark {other:?}")),
        },
        CircuitSource::Aag(text) => aiger::parse_ascii(text).map_err(|e| e.to_string()),
        CircuitSource::Blif(_) => Err("no BLIF in this test resolver".to_string()),
    })
}

fn resolve(source: &CircuitSource) -> Aig {
    resolver()(source).expect("test circuit resolves")
}

struct Session {
    pipe: RequestPipe,
    out: LineCollector,
    handle: JoinHandle<ServeSummary>,
}

fn start(workers: usize) -> Session {
    let catalog = Arc::new(Catalog::new(resolver()));
    let (pipe, reader) = request_pipe();
    let out = LineCollector::new();
    let sink = out.clone();
    let handle = std::thread::spawn(move || {
        serve::serve(reader, sink, catalog, &ServeOptions { workers }, None)
    });
    Session { pipe, out, handle }
}

impl Session {
    fn submit(&self, spec: &SubmitRequest) {
        self.pipe.request(&Request::Submit(spec.clone()));
    }

    fn shut_down(self) -> (ServeSummary, Vec<Json>) {
        self.pipe.request(&Request::Shutdown { cancel: false });
        drop(self.pipe);
        let summary = self.handle.join().expect("serve thread");
        let records = self
            .out
            .lines()
            .iter()
            .map(|l| Json::parse(l).expect("daemon emits valid JSON"))
            .collect();
        (summary, records)
    }
}

fn job(name: &str, seed: u64, metric: ErrorMetric, threshold: f64) -> SubmitRequest {
    let mut spec = SubmitRequest::named(name, "test");
    spec.metric = metric;
    spec.threshold = threshold;
    spec.seed = seed;
    spec.max_iterations = Some(20);
    spec.measure_rounds = Some(5_000);
    spec
}

fn record_type(record: &Json) -> &str {
    record.get("type").and_then(Json::as_str).unwrap_or("")
}

fn job_id(record: &Json) -> Option<u64> {
    record.get("job_id").and_then(Json::as_u64)
}

fn wait(rx: &mpsc::Receiver<String>, what: &str, pred: impl Fn(&Json) -> bool) -> Json {
    wait_for_record(rx, Duration::from_secs(120), pred)
        .unwrap_or_else(|| panic!("timed out waiting for {what}"))
}

/// The volatile fields of a flow record: everything else must be
/// identical between daemon runs at different worker counts.
fn stripped(record: &Json) -> Json {
    match record {
        Json::Obj(map) => {
            let mut map = map.clone();
            for key in ["run", "wall_ns", "phase_ns", "job_id"] {
                map.remove(key);
            }
            Json::Obj(map)
        }
        other => panic!("flow record is not an object: {other:?}"),
    }
}

// -----------------------------------------------------------------------
// 1. Worker-count determinism

fn job_mix() -> Vec<SubmitRequest> {
    let inline = aiger::write_ascii(&arith::ripple_carry_adder(4));
    let mut inline_job = job("rca4", 3, ErrorMetric::Nmed, 0.02);
    inline_job.source = CircuitSource::Aag(inline);
    vec![
        job("rca4", 11, ErrorMetric::ErrorRate, 0.15),
        job("ksa4", 7, ErrorMetric::ErrorRate, 0.15),
        inline_job,
        job("mtp4", 5, ErrorMetric::ErrorRate, 0.10),
    ]
}

/// Runs the mix with the same interleaving (two jobs up front, two more
/// once the first is already running) and returns each job's stripped
/// `run_end`, in job-id order.
fn run_mix(workers: usize) -> Vec<Json> {
    let jobs = job_mix();
    let session = start(workers);
    let watch = session.out.watch();
    session.submit(&jobs[0]);
    session.submit(&jobs[1]);
    wait(&watch, "run_start of job 1", |r| {
        record_type(r) == "run_start" && job_id(r) == Some(1)
    });
    session.submit(&jobs[2]);
    session.submit(&jobs[3]);
    let (summary, records) = session.shut_down();
    assert_eq!(summary.totals.submitted, jobs.len() as u64);
    assert_eq!(summary.totals.completed, jobs.len() as u64);

    (1..=jobs.len() as u64)
        .map(|id| {
            let matching: Vec<&Json> = records
                .iter()
                .filter(|r| record_type(r) == "run_end" && job_id(r) == Some(id))
                .collect();
            assert_eq!(matching.len(), 1, "job {id}: exactly one run_end");
            stripped(matching[0])
        })
        .collect()
}

#[test]
fn same_job_mix_is_bit_identical_at_1_3_and_7_workers() {
    let _guard = lock();
    let reference = run_mix(1);
    for workers in [3, 7] {
        assert_eq!(
            run_mix(workers),
            reference,
            "run_end records differ between 1 and {workers} workers"
        );
    }
}

// -----------------------------------------------------------------------
// 2. Fault-cancelled job → checkpoint → resume equals the direct run

#[test]
fn fault_cancelled_job_resumes_bit_identically_to_a_direct_run() {
    let _guard = lock();
    let spec = job("rca4", 11, ErrorMetric::ErrorRate, 0.15);
    let aig = resolve(&spec.source);
    let config = spec.flow_config();
    let reference = flow::run(&aig, &config).expect("direct reference run");
    assert!(
        reference.applied > 0,
        "reference applied nothing — the equality check would be vacuous"
    );

    // Fire a cancel fault a few spans into the job: the daemon wires each
    // job's cancel token into the fault layer, so the armed plan trips
    // THIS job, which must interrupt at its next budget poll.
    faults::arm(FaultPlan {
        fire_at_span: 3,
        action: FaultAction::Cancel,
    });
    let session = start(1);
    let watch = session.out.watch();
    session.submit(&spec);
    let done = wait(&watch, "terminal record of the faulted job", |r| {
        record_type(r) == "job_done" && job_id(r) == Some(1)
    });
    faults::disarm();
    let (summary, _) = session.shut_down();

    assert_eq!(
        done.get("outcome").and_then(Json::as_str),
        Some("interrupted"),
        "the fault must interrupt the job"
    );
    assert_eq!(summary.totals.interrupted, 1);
    let text = done
        .get("checkpoint")
        .and_then(Json::as_str)
        .expect("interrupted job carries its checkpoint");
    let checkpoint = Checkpoint::parse(text).expect("checkpoint parses");

    let resumed = flow::resume(&aig, &config, checkpoint).expect("resume");
    assert_eq!(resumed.iterations, reference.iterations);
    assert_eq!(resumed.applied, reference.applied);
    assert_eq!(resumed.outcome, reference.outcome);
    assert_eq!(
        resumed.measured.error_rate.to_bits(),
        reference.measured.error_rate.to_bits()
    );
    assert_eq!(
        aiger::write_ascii(&resumed.approx),
        aiger::write_ascii(&reference.approx),
        "resumed circuit differs structurally from the direct run"
    );
}

// -----------------------------------------------------------------------
// 3. Poisoned jobs fail cleanly; the queue keeps draining

#[test]
fn poisoned_jobs_fail_without_wedging_the_queue() {
    let _guard = lock();
    let session = start(1);
    let watch = session.out.watch();

    // Job 1: unresolvable circuit. Job 2: resolver panic (caught at the
    // job boundary). Job 3: healthy, must still complete.
    session.submit(&job("no_such_circuit", 1, ErrorMetric::ErrorRate, 0.1));
    session.submit(&job("panicky", 1, ErrorMetric::ErrorRate, 0.1));
    session.submit(&job("rca4", 11, ErrorMetric::ErrorRate, 0.15));

    let failed = wait(&watch, "job 1 terminal record", |r| {
        record_type(r) == "job_done" && job_id(r) == Some(1)
    });
    assert_eq!(failed.get("outcome").and_then(Json::as_str), Some("failed"));
    let error = failed.get("error").and_then(Json::as_str).unwrap_or("");
    assert!(
        error.contains("unknown benchmark"),
        "failed record must carry the resolver error, got {error:?}"
    );

    let panicked = wait(&watch, "job 2 terminal record", |r| {
        record_type(r) == "job_done" && job_id(r) == Some(2)
    });
    assert_eq!(
        panicked.get("outcome").and_then(Json::as_str),
        Some("failed")
    );
    let error = panicked.get("error").and_then(Json::as_str).unwrap_or("");
    assert!(
        error.contains("panicked") && error.contains("on purpose"),
        "panic must be caught and reported, got {error:?}"
    );

    let healthy = wait(&watch, "job 3 terminal record", |r| {
        record_type(r) == "job_done" && job_id(r) == Some(3)
    });
    assert_eq!(
        healthy.get("outcome").and_then(Json::as_str),
        Some("completed"),
        "a healthy job after two poisoned ones must still complete"
    );

    let (summary, _) = session.shut_down();
    assert_eq!(summary.totals.failed, 2);
    assert_eq!(summary.totals.completed, 1);
}

#[test]
fn sat_starved_certification_job_degrades_instead_of_hanging() {
    let _guard = lock();
    let mut spec = job("rca4", 11, ErrorMetric::ErrorRate, 0.15);
    spec.certify = true;

    // Exhaust the SAT budget immediately: every certification query is
    // starved, so the job must complete with a degraded certificate.
    faults::arm(FaultPlan {
        fire_at_span: 1,
        action: FaultAction::ExhaustSatBudget,
    });
    let session = start(1);
    let watch = session.out.watch();
    session.submit(&spec);
    // The flow's run_end streams out before the daemon's terminal record,
    // and `watch` is a single consuming receiver — take them in order.
    let end = wait(&watch, "run_end of the starved job", |r| {
        record_type(r) == "run_end" && job_id(r) == Some(1)
    });
    let done = wait(&watch, "terminal record of the starved job", |r| {
        record_type(r) == "job_done" && job_id(r) == Some(1)
    });
    faults::disarm();
    let (summary, _) = session.shut_down();

    assert_eq!(
        done.get("outcome").and_then(Json::as_str),
        Some("completed"),
        "SAT starvation must degrade the certificate, not fail the job"
    );
    assert_eq!(summary.totals.completed, 1);
    let status = end
        .get("certified")
        .and_then(|c| c.get("status"))
        .and_then(Json::as_str);
    assert_eq!(
        status,
        Some("degraded"),
        "the streamed run_end must carry the degraded certificate"
    );
}

// -----------------------------------------------------------------------
// 4. Result cache: a repeat submit replays the stored terminal record

#[test]
fn repeat_submit_replays_the_cached_terminal_record() {
    let _guard = lock();
    let spec = job("rca4", 11, ErrorMetric::ErrorRate, 0.15);
    let session = start(1);
    let watch = session.out.watch();

    session.submit(&spec);
    let first = wait(&watch, "job 1 terminal record", |r| {
        record_type(r) == "job_done" && job_id(r) == Some(1)
    });
    // Identical spec again: must replay from the cache without re-running.
    session.submit(&spec);
    let second = wait(&watch, "job 2 terminal record", |r| {
        record_type(r) == "job_done" && job_id(r) == Some(2)
    });
    // Same circuit, different seed: a distinct config must re-run.
    let mut reseeded = spec.clone();
    reseeded.seed = 12;
    session.submit(&reseeded);
    let third = wait(&watch, "job 3 terminal record", |r| {
        record_type(r) == "job_done" && job_id(r) == Some(3)
    });
    let (summary, records) = session.shut_down();

    assert_eq!(
        first.get("cache_hit"),
        None,
        "the first run is a miss; cache_hit is omitted from the wire when false"
    );
    assert_eq!(
        second.get("cache_hit").and_then(Json::as_bool),
        Some(true),
        "the repeat submit must be served from the cache"
    );
    assert_eq!(
        second.get("run_ns").and_then(Json::as_u64),
        Some(0),
        "a replayed job reports zero run time"
    );
    for key in ["outcome", "iterations", "applied", "ands"] {
        assert_eq!(second.get(key), first.get(key), "replayed field {key:?}");
    }
    assert_eq!(
        third.get("cache_hit"),
        None,
        "a reseeded config must re-run"
    );

    // The replayed job never entered the flow: three completed jobs but
    // only two run_end records.
    let run_ends = records
        .iter()
        .filter(|r| record_type(r) == "run_end")
        .count();
    assert_eq!(run_ends, 2, "cache hits must not re-run the flow");
    assert_eq!(summary.totals.completed, 3);

    let totals = records
        .iter()
        .find(|r| record_type(r) == "totals")
        .expect("daemon emits a totals record at shutdown");
    assert_eq!(
        totals
            .get("counters")
            .and_then(|c| c.get("serve_cache_hits"))
            .and_then(Json::as_u64),
        Some(1),
        "exactly one cache hit must be counted"
    );
}

#[test]
fn failed_jobs_are_not_cached() {
    let _guard = lock();
    let spec = job("no_such_circuit", 1, ErrorMetric::ErrorRate, 0.1);
    let session = start(1);
    let watch = session.out.watch();
    session.submit(&spec);
    session.submit(&spec);
    let mut outcomes = Vec::new();
    for id in [1, 2] {
        let done = wait(&watch, "terminal record", |r| {
            record_type(r) == "job_done" && job_id(r) == Some(id)
        });
        assert_eq!(
            done.get("cache_hit"),
            None,
            "job {id}: only completed jobs populate the cache"
        );
        outcomes.push(
            done.get("outcome")
                .and_then(Json::as_str)
                .map(str::to_owned),
        );
    }
    let (summary, _) = session.shut_down();
    assert_eq!(outcomes, vec![Some("failed".into()), Some("failed".into())]);
    assert_eq!(summary.totals.failed, 2);
}
