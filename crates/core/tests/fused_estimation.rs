//! Property suite for the fused estimation pass.
//!
//! [`Estimator::estimate_all`] evaluates every LAC candidate through the
//! fused single-pass kernel: influence rows are built during the flip
//! propagation walk and compared against the reference outputs without
//! materializing candidate output words. The pre-fusion engine — full-TFO
//! influence plus materialize-then-compare — survives behind
//! [`Estimator::with_full_influence`] as the baseline `bench_sim` measures
//! against. The two must produce **bit-identical** `f64` measurements:
//! the flow's apply/stop decisions compare estimates against thresholds,
//! so even one ULP of drift could change which LAC lands.
//!
//! This test pins that equivalence on an evolving circuit: it repeatedly
//! generates candidates, cross-checks both engines at 1, 3, and 7 worker
//! threads, then actually applies a LAC and re-checks on the rebuilt graph
//! (estimates are always relative to the *original* circuit, so later
//! rounds also exercise non-zero accumulated baseline error).

use alsrac::estimate::Estimator;
use alsrac::lac::{generate_lacs, LacConfig};
use alsrac_circuits::arith;
use alsrac_metrics::{ErrorMetric, Measurement};
use alsrac_rt::pool;
use alsrac_sim::{PatternBuffer, Simulation};

fn assert_bit_identical(a: &Measurement, b: &Measurement, what: &str) {
    assert_eq!(a.num_patterns, b.num_patterns, "{what}: num_patterns");
    assert_eq!(
        a.error_rate.to_bits(),
        b.error_rate.to_bits(),
        "{what}: error_rate {} vs {}",
        a.error_rate,
        b.error_rate
    );
    assert_eq!(
        a.nmed.map(f64::to_bits),
        b.nmed.map(f64::to_bits),
        "{what}: nmed"
    );
    assert_eq!(
        a.mred.map(f64::to_bits),
        b.mred.map(f64::to_bits),
        "{what}: mred"
    );
    assert_eq!(
        a.max_error_distance, b.max_error_distance,
        "{what}: max_error_distance"
    );
}

#[test]
fn fused_estimates_match_the_full_influence_baseline_across_lac_applies_and_threads() {
    let original = arith::ripple_carry_adder(3);
    let mut current = original.clone();
    // 200 patterns -> 4 words: a full batch for the kernel plus a masked
    // partial final word for the compare loops.
    let est_patterns = PatternBuffer::random(original.num_inputs(), 200, 23);

    let mut rounds_checked = 0usize;
    for round in 0..3u64 {
        let fanouts = current.fanout_map();
        let care_patterns = PatternBuffer::random(current.num_inputs(), 8, 5 + round);
        let care_sim = Simulation::new(&current, &care_patterns);
        let lacs = generate_lacs(
            &current,
            &care_sim,
            &care_patterns,
            &fanouts,
            &LacConfig {
                lac_limit: 3,
                ..LacConfig::default()
            },
        );
        if lacs.is_empty() {
            break;
        }

        let fused = Estimator::new(&original, &current, &est_patterns, &fanouts);
        let baseline =
            Estimator::new(&original, &current, &est_patterns, &fanouts).with_full_influence();
        // The flow's production ErrorRate engine: sparse rate-only compare
        // against precomputed base mismatch columns.
        let rate = Estimator::new(&original, &current, &est_patterns, &fanouts)
            .for_metric(ErrorMetric::ErrorRate);
        let reference = pool::with_threads(1, || baseline.estimate_all(&lacs));
        for threads in [1usize, 3, 7] {
            let got = pool::with_threads(threads, || fused.estimate_all(&lacs));
            assert_eq!(got.len(), reference.len());
            for (i, (g, r)) in got.iter().zip(&reference).enumerate() {
                let what = format!("round {round}, {threads} threads, lac {i}");
                assert_bit_identical(g, r, &what);
            }
            // The baseline engine must itself be thread-count invariant.
            let base_again = pool::with_threads(threads, || baseline.estimate_all(&lacs));
            for (i, (g, r)) in base_again.iter().zip(&reference).enumerate() {
                let what = format!("baseline round {round}, {threads} threads, lac {i}");
                assert_bit_identical(g, r, &what);
            }
            // Rate-only engine: bit-identical error_rate, distance metrics
            // deliberately unpopulated (ErrorRate ranking never reads them).
            let rate_got = pool::with_threads(threads, || rate.estimate_all(&lacs));
            assert_eq!(rate_got.len(), reference.len());
            for (i, (g, r)) in rate_got.iter().zip(&reference).enumerate() {
                let what = format!("rate round {round}, {threads} threads, lac {i}");
                assert_eq!(g.num_patterns, r.num_patterns, "{what}: num_patterns");
                assert_eq!(
                    g.error_rate.to_bits(),
                    r.error_rate.to_bits(),
                    "{what}: error_rate {} vs {}",
                    g.error_rate,
                    r.error_rate
                );
                assert_eq!(g.nmed, None, "{what}: nmed must be skipped");
                assert_eq!(g.mred, None, "{what}: mred must be skipped");
                assert_eq!(
                    g.max_error_distance, None,
                    "{what}: max_error_distance must be skipped"
                );
            }
        }
        rounds_checked += 1;

        // Apply a real LAC so the next round estimates on a structurally
        // changed circuit with accumulated error against the original.
        current = lacs[0].apply(&current).expect("LAC applies without cycle");
    }
    assert!(
        rounds_checked >= 2,
        "only {rounds_checked} rounds produced candidates — the apply loop is vacuous"
    );
}
