//! Deterministic fault-injection property suite for the budgeted flow.
//!
//! The contract under test (DESIGN.md "Budgets, cancellation, and
//! degradation"):
//!
//! 1. **Interrupt anywhere, resume bit-identically.** A cancel fault
//!    injected at *any* trace-span ordinal either leaves the run
//!    untouched (fired after the last poll) or interrupts it with a
//!    checkpoint from which `flow::resume` reproduces the uninterrupted
//!    run bit for bit — circuit structure, history floats, measurement —
//!    at worker-thread counts 1, 3, and 7, on two bundled circuits.
//! 2. **SAT starvation degrades, never hangs.** A WCE flow whose every
//!    SAT query is budget-starved still completes, returning a
//!    `Degraded` certificate instead of blocking on the solver.
//! 3. **Trace-sink failure is invisible.** A sink that starts failing
//!    mid-run changes nothing about the `FlowResult`.
//!
//! Fault state is process-global, so every test that arms a plan holds
//! [`lock`] for its duration.

use std::sync::{Mutex, MutexGuard, OnceLock};

use alsrac::flow::{self, run, FlowConfig, FlowOutcome, FlowResult};
use alsrac_aig::Aig;
use alsrac_circuits::{aiger, arith};
use alsrac_metrics::{CertStatus, ErrorMetric};
use alsrac_rt::budget::{Budget, CancelToken};
use alsrac_rt::faults::{self, FaultAction, FaultPlan, FlakySink};
use alsrac_rt::pool::with_threads;
use alsrac_rt::trace;

/// Serializes tests that touch the process-global fault plan.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The two bundled circuits the CI fault-smoke gate runs on.
fn circuits() -> Vec<(&'static str, Aig)> {
    vec![
        ("rca3", arith::ripple_carry_adder(3)),
        ("ksa3", arith::kogge_stone_adder(3)),
    ]
}

fn er_config(budget: Budget) -> FlowConfig {
    FlowConfig {
        metric: ErrorMetric::ErrorRate,
        threshold: 0.15,
        seed: 11,
        max_iterations: 24,
        budget,
        ..FlowConfig::default()
    }
}

/// Full structural identity: the ASCII AIGER text pins every node,
/// literal, and name.
fn structure(aig: &Aig) -> String {
    aiger::write_ascii(aig)
}

/// Asserts two flow results are bit-identical (the resume contract).
fn assert_bit_identical(label: &str, got: &FlowResult, want: &FlowResult) {
    assert_eq!(got.iterations, want.iterations, "{label}: iterations");
    assert_eq!(got.applied, want.applied, "{label}: applied");
    assert_eq!(
        got.history.len(),
        want.history.len(),
        "{label}: history length"
    );
    for (i, (g, w)) in got.history.iter().zip(&want.history).enumerate() {
        assert_eq!(
            g.estimated_error.to_bits(),
            w.estimated_error.to_bits(),
            "{label}: history[{i}].estimated_error"
        );
        assert_eq!(g.ands, w.ands, "{label}: history[{i}].ands");
        assert_eq!(g.rounds, w.rounds, "{label}: history[{i}].rounds");
    }
    assert_eq!(
        got.measured.error_rate.to_bits(),
        want.measured.error_rate.to_bits(),
        "{label}: measured.error_rate"
    );
    assert_eq!(
        got.measured.nmed.map(f64::to_bits),
        want.measured.nmed.map(f64::to_bits),
        "{label}: measured.nmed"
    );
    assert_eq!(
        got.measured.mred.map(f64::to_bits),
        want.measured.mred.map(f64::to_bits),
        "{label}: measured.mred"
    );
    assert_eq!(
        got.measured.num_patterns, want.measured.num_patterns,
        "{label}: measured.num_patterns"
    );
    assert_eq!(
        structure(&got.approx),
        structure(&want.approx),
        "{label}: approx structure"
    );
    assert_eq!(got.outcome, want.outcome, "{label}: outcome");
}

/// Counts the trace spans a clean run of `config` opens (the injection
/// horizon), using a never-firing armed plan as the span counter.
fn span_horizon(original: &Aig, config: &FlowConfig) -> u64 {
    faults::arm(FaultPlan {
        fire_at_span: u64::MAX,
        action: FaultAction::Cancel,
    });
    run(original, config).expect("horizon run");
    let horizon = faults::spans_seen();
    faults::disarm();
    assert!(horizon > 0, "flow opened no spans — horizon is empty");
    horizon
}

/// The core property: sweep seeded cancel-fault injection points over the
/// whole span horizon; every interrupted run must checkpoint and resume
/// to the uninterrupted result, bit for bit. Returns how many of the
/// sweep's runs were actually interrupted.
fn cancel_resume_property(name: &str, original: &Aig, fault_seeds: u64) -> u64 {
    let reference = run(original, &er_config(Budget::unlimited())).expect("reference run");
    assert_eq!(reference.outcome, FlowOutcome::Completed);
    assert!(
        reference.applied > 0,
        "{name}: reference applied nothing — the sweep would be vacuous"
    );
    let horizon = span_horizon(original, &er_config(Budget::unlimited()));

    let mut interrupted = 0;
    for fault_seed in 0..fault_seeds {
        let plan = FaultPlan::seeded(fault_seed, horizon, FaultAction::Cancel);
        let token = CancelToken::new();
        faults::set_cancel_token(Some(token.clone()));
        faults::arm(plan);
        let result =
            run(original, &er_config(Budget::unlimited().with_cancel(token))).expect("faulted run");
        faults::disarm();
        faults::set_cancel_token(None);

        let label = format!("{name} fault_seed={fault_seed} span={}", plan.fire_at_span);
        match &result.outcome {
            FlowOutcome::Completed => {
                // Fired after the last poll (or never): the token must not
                // have steered anything.
                assert_bit_identical(&label, &result, &reference);
                assert!(result.checkpoint.is_none(), "{label}: spurious checkpoint");
            }
            FlowOutcome::Interrupted { reason } => {
                interrupted += 1;
                assert_eq!(reason, "cancelled", "{label}");
                assert!(
                    result.certificate.is_none(),
                    "{label}: interrupted runs must not certify"
                );
                assert!(
                    result.applied <= reference.applied,
                    "{label}: interrupted run applied more than the reference"
                );
                let checkpoint = result
                    .checkpoint
                    .clone()
                    .expect("interrupted run must checkpoint");
                // The checkpoint must survive its serialized form — the
                // CLI writes JSON and a later process parses it back.
                let parsed = alsrac::checkpoint::Checkpoint::parse(&checkpoint.to_json())
                    .expect("flow-produced checkpoint must round-trip");
                assert_eq!(
                    parsed.to_json(),
                    checkpoint.to_json(),
                    "{label}: round-trip"
                );
                let resumed = flow::resume(original, &er_config(Budget::unlimited()), parsed)
                    .expect("resume");
                assert_bit_identical(&format!("{label} resumed"), &resumed, &reference);
            }
        }
    }
    interrupted
}

#[test]
fn cancel_faults_resume_bit_identically_on_both_circuits() {
    let _guard = lock();
    for (name, original) in circuits() {
        let interrupted = cancel_resume_property(name, &original, 12);
        assert!(
            interrupted > 0,
            "{name}: no injection point interrupted the run — sweep is vacuous"
        );
    }
}

#[test]
fn resume_is_bit_identical_across_thread_counts() {
    let _guard = lock();
    let original = arith::kogge_stone_adder(3);
    let mut per_thread_reference: Vec<FlowResult> = Vec::new();
    for threads in [1usize, 3, 7] {
        let reference = with_threads(threads, || {
            let interrupted = cancel_resume_property(&format!("ksa3@{threads}t"), &original, 6);
            assert!(interrupted > 0, "{threads} threads: vacuous sweep");
            run(&original, &er_config(Budget::unlimited())).expect("reference")
        });
        per_thread_reference.push(reference);
    }
    // The uninterrupted result itself is thread-count invariant, so the
    // three sweeps above all proved resumption onto the same bits.
    let (first, rest) = per_thread_reference.split_first().expect("three runs");
    for (i, other) in rest.iter().enumerate() {
        assert_bit_identical(&format!("threads[{}] vs threads[0]", i + 1), other, first);
    }
}

#[test]
fn wce_flow_with_starved_sat_budget_completes_degraded() {
    let _guard = lock();
    faults::disarm();
    let original = arith::ripple_carry_adder(3);
    let config = FlowConfig {
        metric: ErrorMetric::Wce,
        threshold: 2.0,
        seed: 5,
        max_iterations: 16,
        budget: Budget::unlimited().with_sat_propagations(0),
        ..FlowConfig::default()
    };
    let result = run(&original, &config).expect("starved WCE flow");
    assert_eq!(result.outcome, FlowOutcome::Completed);
    assert!(result.checkpoint.is_none());
    let cert = result.certificate.expect("WCE flows always certify");
    match &cert.status {
        CertStatus::Degraded { reason } => {
            assert!(
                reason.contains("SAT budget"),
                "unexpected degradation reason: {reason}"
            );
        }
        CertStatus::Certified => panic!("a zero-propagation budget cannot certify"),
    }
    assert!(!cert.exact);
    // The degraded value is the sampled measurement, not a proven bound.
    assert_eq!(
        Some(cert.value.to_bits()),
        result.measured.value(ErrorMetric::Wce).map(f64::to_bits)
    );

    // The same flow with an unlimited budget certifies for real.
    let unlimited = FlowConfig {
        budget: Budget::unlimited(),
        ..config
    };
    let clean = run(&original, &unlimited).expect("unlimited WCE flow");
    let clean_cert = clean.certificate.expect("certificate");
    assert_eq!(clean_cert.status, CertStatus::Certified);
    assert!(clean_cert.exact);
    assert!(clean_cert.value <= 2.0, "certified WCE exceeds the bound");
}

#[test]
fn exhaust_sat_budget_fault_degrades_instead_of_panicking() {
    let _guard = lock();
    let original = arith::ripple_carry_adder(3);
    faults::set_cancel_token(None);
    faults::arm(FaultPlan {
        fire_at_span: 0,
        action: FaultAction::ExhaustSatBudget,
    });
    let config = FlowConfig {
        metric: ErrorMetric::Wce,
        threshold: 2.0,
        seed: 5,
        max_iterations: 16,
        ..FlowConfig::default()
    };
    let result = run(&original, &config).expect("faulted WCE flow");
    assert!(faults::injected(), "the fault never fired");
    faults::disarm();
    assert_eq!(result.outcome, FlowOutcome::Completed);
    let cert = result.certificate.expect("WCE flows always certify");
    assert!(
        matches!(cert.status, CertStatus::Degraded { .. }),
        "exhausted SAT budget must degrade the certificate"
    );
}

#[test]
fn failing_trace_sink_leaves_the_result_untouched() {
    let _guard = lock();
    faults::disarm();
    let original = arith::kogge_stone_adder(3);
    let reference = run(&original, &er_config(Budget::unlimited())).expect("reference");

    trace::enable_writer(Box::new(FlakySink::new(std::io::sink())));
    faults::arm(FaultPlan {
        fire_at_span: 5,
        action: FaultAction::FailSink,
    });
    let result = run(&original, &er_config(Budget::unlimited())).expect("flaky-sink run");
    assert!(faults::injected(), "the sink fault never fired");
    faults::disarm();
    trace::disable();
    trace::reset();

    assert_bit_identical("flaky sink", &result, &reference);
}
