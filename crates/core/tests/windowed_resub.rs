//! Property tests for the windowed resubstitution path.
//!
//! Three families, matching the windowing contract (DESIGN.md):
//!
//! 1. **Splice round-trip** — extracting any window, materializing it with
//!    `from_window`, and splicing it back unchanged must be a functional
//!    no-op for every pivot, window bound, and TFO depth.
//! 2. **Signature classes** — two nodes share a signature class (up to the
//!    tracked complement flag) exactly when their simulation words agree
//!    (up to complement) on every valid pattern bit.
//! 3. **Flow bit-identity** — the windowed flow equals the whole-circuit
//!    flow bit for bit on every bundled Test-scale circuit, at worker
//!    counts 1, 3, and 7.

use alsrac::flow::{run, FlowConfig, FlowResult};
use alsrac::window::WindowConfig;
use alsrac_aig::{Aig, WindowExtractor, WindowParams};
use alsrac_circuits::catalog::{iscas_and_arith, Scale};
use alsrac_circuits::random_logic::{random_network, RandomNetworkConfig};
use alsrac_metrics::ErrorMetric;
use alsrac_rt::pool::with_threads;
use alsrac_sim::{PatternBuffer, Signatures, Simulation};

fn random_circuit(seed: u64, num_gates: usize) -> Aig {
    random_network(&RandomNetworkConfig {
        num_inputs: 8,
        num_outputs: 4,
        num_gates,
        locality: 16,
        seed,
    })
}

/// The outputs of `a` and `b` agree on every pattern in `patterns`.
fn outputs_agree(a: &Aig, b: &Aig, patterns: &PatternBuffer) {
    assert_eq!(a.num_outputs(), b.num_outputs());
    let sim_a = Simulation::new(a, patterns);
    let sim_b = Simulation::new(b, patterns);
    let masks = patterns.word_masks();
    for po in 0..a.num_outputs() {
        for (w, &mask) in masks.iter().enumerate() {
            assert_eq!(
                sim_a.output_word(a, po, w) & mask,
                sim_b.output_word(b, po, w) & mask,
                "output {po} word {w} diverged"
            );
        }
    }
}

#[test]
fn splice_round_trip_is_a_functional_no_op() {
    let params = [
        WindowParams::default(),
        WindowParams {
            max_tfi: 6,
            tfo_depth: 0,
        },
        WindowParams {
            max_tfi: 10,
            tfo_depth: 2,
        },
    ];
    for seed in 1..=5u64 {
        let aig = random_circuit(seed, 80);
        let patterns = PatternBuffer::random(aig.num_inputs(), 256, seed ^ 0xA5);
        let fanouts = aig.fanout_map();
        let mut extractor = WindowExtractor::new();
        for p in &params {
            for pivot in aig.iter_ands() {
                let window = extractor.extract(&aig, &fanouts, pivot, p);
                let sub = aig.from_window(&window);
                let (spliced, _) = aig
                    .splice_window(&window, &sub)
                    .expect("identity splice cannot cycle");
                outputs_agree(&aig, &spliced, &patterns);
                // An unmodified splice must not grow the graph: strashing
                // maps every materialized node back onto the original.
                assert!(
                    spliced.num_ands() <= aig.num_ands(),
                    "seed {seed} pivot {pivot}: splice grew {} -> {}",
                    aig.num_ands(),
                    spliced.num_ands()
                );
            }
        }
    }
}

#[test]
fn signature_classes_match_pairwise_simulation_equality() {
    for seed in 1..=4u64 {
        let aig = random_circuit(seed, 100);
        let patterns = PatternBuffer::random(aig.num_inputs(), 100 + seed as usize, seed);
        let sim = Simulation::new(&aig, &patterns);
        let signatures = Signatures::build(&aig, &sim, &patterns);
        let masks = patterns.word_masks();
        let nodes: Vec<_> = aig.iter_nodes().collect();
        for (i, &a) in nodes.iter().enumerate() {
            for &b in &nodes[i + 1..] {
                let mut equal = true;
                let mut complement = true;
                for (w, &mask) in masks.iter().enumerate() {
                    let wa = sim.node_word(a, w) & mask;
                    let wb = sim.node_word(b, w) & mask;
                    equal &= wa == wb;
                    complement &= wa == !wb & mask;
                }
                let same_polarity = signatures.is_complemented(a) == signatures.is_complemented(b);
                let same_class = signatures.same_class(a, b);
                assert_eq!(
                    same_class && same_polarity,
                    equal,
                    "seed {seed}: nodes {a},{b}: class equality vs sim equality"
                );
                assert_eq!(
                    same_class && !same_polarity,
                    complement && !equal,
                    "seed {seed}: nodes {a},{b}: complement-class vs sim complement"
                );
            }
        }
    }
}

fn flow_config(window: WindowConfig) -> FlowConfig {
    FlowConfig {
        metric: ErrorMetric::ErrorRate,
        threshold: 0.10,
        max_iterations: 3,
        seed: 42,
        window,
        ..FlowConfig::default()
    }
}

fn assert_flows_identical(name: &str, threads: usize, reference: &FlowResult, got: &FlowResult) {
    assert_eq!(
        reference.iterations, got.iterations,
        "{name}@{threads}: iterations"
    );
    assert_eq!(reference.applied, got.applied, "{name}@{threads}: applied");
    assert_eq!(
        reference.approx.num_ands(),
        got.approx.num_ands(),
        "{name}@{threads}: final size"
    );
    assert_eq!(
        reference.history.len(),
        got.history.len(),
        "{name}@{threads}: history length"
    );
    for (i, (a, b)) in reference.history.iter().zip(&got.history).enumerate() {
        assert_eq!(
            a.estimated_error.to_bits(),
            b.estimated_error.to_bits(),
            "{name}@{threads}: accept {i} estimated error"
        );
        assert_eq!(a.ands, b.ands, "{name}@{threads}: accept {i} size");
    }
    assert_eq!(
        reference.measured.error_rate.to_bits(),
        got.measured.error_rate.to_bits(),
        "{name}@{threads}: measured error rate"
    );
}

#[test]
fn windowed_flow_is_bit_identical_on_all_bundled_circuits() {
    for bench in &iscas_and_arith(Scale::Test) {
        // Whole-circuit reference at one worker; windowed runs must match
        // it at every worker count (worker count must never leak into
        // results — see the flow's determinism contract).
        let reference = with_threads(1, || {
            run(&bench.aig, &flow_config(WindowConfig::disabled())).expect("flow")
        });
        for threads in [1usize, 3, 7] {
            let windowed = with_threads(threads, || {
                run(&bench.aig, &flow_config(WindowConfig::default())).expect("flow")
            });
            assert_flows_identical(bench.paper_name, threads, &reference, &windowed);
        }
    }
}
