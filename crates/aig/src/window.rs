//! Bounded windows around a pivot node for window-local resubstitution.
//!
//! Whole-circuit resubstitution walks the pivot's full transitive fanin
//! per candidate node, which is `O(n)` per pivot and `O(n²)` per flow
//! iteration. A [`Window`] bounds that walk: it collects at most
//! [`WindowParams::max_tfi`] TFI-side nodes (plus, optionally, a few
//! levels of TFO with their side inputs) and presents them behind a
//! stable cut interface:
//!
//! * **leaves** — boundary nodes treated as free inputs of the window;
//! * **interior** — AND nodes whose fanins are all inside the window;
//! * **roots** — interior nodes observable from outside the window
//!   (referenced by outside nodes or primary outputs), always including
//!   the pivot.
//!
//! [`Aig::from_window`] materializes the window as a standalone AIG
//! (inputs = leaves, outputs = roots) and [`Aig::splice_window`] puts a
//! modified window back, composing with
//! [`Aig::rebuilt_with_substitutions_mapped`] so the usual sweep /
//! re-strash / cycle-check guarantees apply. Splicing an *unmodified*
//! window is a no-op: structural hashing maps every materialized node
//! back onto its original, the substitutions degenerate to identities
//! (which are dropped), and the rebuild equals [`Aig::cleaned`].
//!
//! When `max_tfi` is at least the pivot's full TFI size, the collected
//! window is *exactly* the TFI cone — the property the flow's
//! bit-identity gate on small circuits rests on.

use crate::{Aig, FanoutMap, Lit, Node, NodeId, RebuildError};
use std::collections::HashMap;

/// Size bounds for [`WindowExtractor::extract`].
#[derive(Clone, Debug)]
pub struct WindowParams {
    /// Maximum number of TFI-side nodes collected (pivot, interior, and
    /// leaves together). `0` means unbounded. When the bound is at least
    /// the pivot's TFI size, the window covers the entire TFI cone.
    pub max_tfi: usize,
    /// Fanout levels above the pivot to include (breadth-first over fanout
    /// edges). Side fanins of included TFO nodes become extra leaves. `0`
    /// keeps the window TFI-only, which is what divisor selection needs.
    pub tfo_depth: u32,
}

impl Default for WindowParams {
    fn default() -> WindowParams {
        WindowParams {
            max_tfi: 1000,
            tfo_depth: 0,
        }
    }
}

/// A bounded window around one pivot node. See the [module docs](self)
/// for the leaf/interior/root contract.
#[derive(Clone, Debug)]
pub struct Window {
    pivot: NodeId,
    leaves: Vec<NodeId>,
    interior: Vec<NodeId>,
    roots: Vec<NodeId>,
    tfi_members: Vec<NodeId>,
}

impl Window {
    /// The node the window was extracted around.
    pub fn pivot(&self) -> NodeId {
        self.pivot
    }

    /// Boundary nodes treated as free window inputs, ascending. A leaf is
    /// a primary input, the constant, or an AND node whose fanin cone was
    /// truncated by the size bound.
    pub fn leaves(&self) -> &[NodeId] {
        &self.leaves
    }

    /// AND nodes fully inside the window, ascending (= topological: every
    /// fanin of an interior node is itself interior or a leaf).
    pub fn interior(&self) -> &[NodeId] {
        &self.interior
    }

    /// Interior nodes visible outside the window (referenced by an
    /// outside node or a primary output), ascending; the pivot is always
    /// included.
    pub fn roots(&self) -> &[NodeId] {
        &self.roots
    }

    /// Window nodes lying in the pivot's (bounded) TFI, ascending —
    /// the divisor candidate pool. With `tfo_depth = 0` this is every
    /// window node; TFO nodes and their side leaves are excluded.
    pub fn tfi_nodes(&self) -> &[NodeId] {
        &self.tfi_members
    }

    /// Total number of window nodes (leaves plus interior).
    pub fn num_nodes(&self) -> usize {
        self.leaves.len() + self.interior.len()
    }

    /// Returns `true` if `id` is a window node (leaf or interior).
    pub fn contains(&self, id: NodeId) -> bool {
        self.leaves.binary_search(&id).is_ok() || self.interior.binary_search(&id).is_ok()
    }
}

/// Reusable extractor arena: epoch-stamped visit marks sized to the graph,
/// so per-pivot extraction costs `O(window)` rather than `O(n)`. Per-node
/// loops should hold one extractor and reuse it across pivots.
#[derive(Clone, Debug, Default)]
pub struct WindowExtractor {
    /// Visit stamp: node is a window member this epoch.
    mark: Vec<u32>,
    /// Expansion stamp: the node's fanins were pushed (interior candidate).
    expanded: Vec<u32>,
    epoch: u32,
    stack: Vec<NodeId>,
    members: Vec<NodeId>,
}

impl WindowExtractor {
    /// An empty extractor; buffers are sized lazily on first use.
    pub fn new() -> WindowExtractor {
        WindowExtractor::default()
    }

    fn begin(&mut self, num_nodes: usize) {
        if self.mark.len() < num_nodes {
            self.mark.clear();
            self.mark.resize(num_nodes, 0);
            self.expanded.clear();
            self.expanded.resize(num_nodes, 0);
            self.epoch = 0;
        }
        if self.epoch == u32::MAX {
            self.mark.fill(0);
            self.expanded.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.stack.clear();
        self.members.clear();
    }

    #[inline]
    fn visit(&mut self, id: NodeId) -> bool {
        if self.mark[id.index()] == self.epoch {
            return false;
        }
        self.mark[id.index()] = self.epoch;
        self.members.push(id);
        true
    }

    /// Extracts the window around `pivot` under `params`.
    ///
    /// The TFI walk mirrors [`Aig::tfi_cone`]'s traversal order and stops
    /// *expanding* once `max_tfi` nodes are collected — already-reached
    /// fanins stay in the window as leaves. The pivot itself is always
    /// expanded, so an AND pivot is always interior. `fanouts` must be the
    /// fanout map of `aig` (same snapshot).
    pub fn extract(
        &mut self,
        aig: &Aig,
        fanouts: &FanoutMap,
        pivot: NodeId,
        params: &WindowParams,
    ) -> Window {
        self.begin(aig.num_nodes());
        let epoch = self.epoch;

        // Phase 1: bounded TFI walk (same DFS order as `tfi_cone`).
        self.visit(pivot);
        if aig.node(pivot).is_and() {
            self.expanded[pivot.index()] = epoch;
            let [f0, f1] = aig.and_fanins(pivot);
            self.stack.push(f0.node());
            self.stack.push(f1.node());
        }
        while let Some(id) = self.stack.pop() {
            if !self.visit(id) {
                continue;
            }
            let within_budget = params.max_tfi == 0 || self.members.len() < params.max_tfi;
            if within_budget && aig.node(id).is_and() {
                self.expanded[id.index()] = epoch;
                let [f0, f1] = aig.and_fanins(id);
                self.stack.push(f0.node());
                self.stack.push(f1.node());
            }
        }
        let mut tfi_members = self.members.clone();
        tfi_members.sort_unstable();

        // Phase 2: depth-limited TFO over fanout edges, then close the
        // window by pulling each TFO node's side fanins in as leaves.
        if params.tfo_depth > 0 {
            let mut frontier = vec![pivot];
            for _ in 0..params.tfo_depth {
                let mut next = Vec::new();
                for &id in &frontier {
                    for &f in fanouts.fanouts(id) {
                        if self.visit(f) {
                            self.expanded[f.index()] = epoch;
                            next.push(f);
                        } else if self.expanded[f.index()] != epoch && aig.node(f).is_and() {
                            // Reached a truncated TFI leaf from below: its
                            // fanins must now be pulled in for closure.
                            self.expanded[f.index()] = epoch;
                            next.push(f);
                        }
                    }
                }
                if next.is_empty() {
                    break;
                }
                frontier = next;
            }
            // Closure: side fanins of expanded TFO nodes become leaves.
            // `members` can grow while iterating, hence the index loop.
            let mut i = 0;
            while i < self.members.len() {
                let id = self.members[i];
                i += 1;
                if self.expanded[id.index()] == epoch && aig.node(id).is_and() {
                    let [f0, f1] = aig.and_fanins(id);
                    self.visit(f0.node());
                    self.visit(f1.node());
                }
            }
        }

        // Classify members. Interior = expanded AND nodes (their fanins
        // are all members by construction); everything else is a leaf.
        let mut leaves = Vec::new();
        let mut interior = Vec::new();
        for &id in &self.members {
            if self.expanded[id.index()] == epoch && aig.node(id).is_and() {
                interior.push(id);
            } else {
                leaves.push(id);
            }
        }
        leaves.sort_unstable();
        interior.sort_unstable();

        // Roots: interior nodes with references from outside the window
        // (fanin references from non-interior nodes, or primary outputs),
        // plus the pivot unconditionally.
        let mut inside_refs: HashMap<NodeId, u32> = HashMap::new();
        for &id in &interior {
            let [f0, f1] = aig.and_fanins(id);
            *inside_refs.entry(f0.node()).or_insert(0) += 1;
            *inside_refs.entry(f1.node()).or_insert(0) += 1;
        }
        let mut roots: Vec<NodeId> = interior
            .iter()
            .copied()
            .filter(|&id| {
                id == pivot || fanouts.ref_count(id) > inside_refs.get(&id).copied().unwrap_or(0)
            })
            .collect();
        roots.sort_unstable();

        Window {
            pivot,
            leaves,
            interior,
            roots,
            tfi_members,
        }
    }
}

impl Aig {
    /// Materializes a window as a standalone AIG: one input per leaf
    /// (named `w<parent-id>`), one output per root (named `r<parent-id>`),
    /// with the interior logic rebuilt in between. Input order matches
    /// [`Window::leaves`] and output order matches [`Window::roots`] —
    /// the binding contract [`Aig::splice_window`] relies on.
    pub fn from_window(&self, window: &Window) -> Aig {
        let mut sub = Aig::new(format!("{}_w{}", self.name(), window.pivot()));
        let mut map: HashMap<NodeId, Lit> = HashMap::new();
        map.insert(NodeId::CONST, Lit::FALSE);
        for &leaf in window.leaves() {
            let lit = sub.add_input(format!("w{leaf}"));
            map.insert(leaf, lit);
        }
        for &id in window.interior() {
            let [f0, f1] = self.and_fanins(id);
            let a = map[&f0.node()].complement_if(f0.is_complement());
            let b = map[&f1.node()].complement_if(f1.is_complement());
            let lit = sub.and(a, b);
            map.insert(id, lit);
        }
        for &root in window.roots() {
            sub.add_output(format!("r{root}"), map[&root]);
        }
        sub
    }

    /// Splices a (possibly modified) window implementation back into the
    /// parent graph: `replacement`'s inputs bind to the window's leaves
    /// and its outputs substitute the window's roots, then the graph is
    /// rebuilt (swept, re-strashed, cycle-checked) via
    /// [`Aig::rebuilt_with_substitutions_mapped`].
    ///
    /// Substitutions that resolve to a root's own literal (the unmodified
    /// case — structural hashing maps the materialized copy back onto the
    /// original node) are dropped as no-ops, so splicing an unmodified
    /// window equals [`Aig::cleaned`].
    ///
    /// # Errors
    ///
    /// [`RebuildError::Cycle`] if a replacement output depends, through
    /// outside-the-window logic, on a root it substitutes.
    ///
    /// # Panics
    ///
    /// Panics if `replacement`'s input/output arity does not match the
    /// window's leaf/root counts.
    pub fn splice_window(
        &self,
        window: &Window,
        replacement: &Aig,
    ) -> Result<(Aig, Vec<Option<Lit>>), RebuildError> {
        assert_eq!(
            replacement.num_inputs(),
            window.leaves().len(),
            "replacement inputs must match window leaves"
        );
        assert_eq!(
            replacement.num_outputs(),
            window.roots().len(),
            "replacement outputs must match window roots"
        );
        let mut work = self.clone();
        // Rebuild the replacement's logic inside the parent, leaves bound
        // positionally. Structural hashing dedups anything that already
        // exists.
        let mut map: Vec<Lit> = Vec::with_capacity(replacement.num_nodes());
        for id in replacement.iter_nodes() {
            let lit = match *replacement.node(id) {
                Node::Const => Lit::FALSE,
                Node::Input { index } => window.leaves()[index as usize].lit(),
                Node::And { f0, f1 } => {
                    let a = map[f0.node().index()].complement_if(f0.is_complement());
                    let b = map[f1.node().index()].complement_if(f1.is_complement());
                    work.and(a, b)
                }
            };
            map.push(lit);
        }
        let mut subs: HashMap<NodeId, Lit> = HashMap::new();
        for (&root, output) in window.roots().iter().zip(replacement.outputs()) {
            let lit = map[output.lit.node().index()].complement_if(output.lit.is_complement());
            if lit != root.lit() {
                subs.insert(root, lit);
            }
        }
        work.rebuilt_with_substitutions_mapped(&subs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// v = (a & b) & (c | d), plus a second output on (a & b).
    fn sample() -> (Aig, NodeId) {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let d = aig.add_input("d");
        let ab = aig.and(a, b);
        let cd = aig.or(c, d);
        let v = aig.and(ab, cd);
        aig.add_output("v", v);
        aig.add_output("ab", ab);
        (aig, v.node())
    }

    #[test]
    fn unbounded_window_covers_the_tfi() {
        let (aig, pivot) = sample();
        let fanouts = aig.fanout_map();
        let mut ex = WindowExtractor::new();
        let w = ex.extract(&aig, &fanouts, pivot, &WindowParams::default());
        let tfi = aig.tfi_cone(pivot);
        assert_eq!(w.num_nodes(), tfi.len());
        for &id in tfi.members() {
            assert!(w.contains(id), "{id} missing from window");
        }
        assert_eq!(w.tfi_nodes(), tfi.members());
        // All four inputs are leaves; the three ANDs are interior.
        assert_eq!(w.leaves().len(), 4);
        assert_eq!(w.interior().len(), 3);
        assert!(w.roots().contains(&pivot));
    }

    #[test]
    fn truncated_window_respects_the_bound_and_stays_closed() {
        let (aig, pivot) = sample();
        let fanouts = aig.fanout_map();
        let mut ex = WindowExtractor::new();
        let w = ex.extract(
            &aig,
            &fanouts,
            pivot,
            &WindowParams {
                max_tfi: 3,
                tfo_depth: 0,
            },
        );
        assert!(w.num_nodes() <= 5, "window too large: {}", w.num_nodes());
        // Closure: every interior fanin is a window member.
        for &id in w.interior() {
            let [f0, f1] = aig.and_fanins(id);
            assert!(w.contains(f0.node()));
            assert!(w.contains(f1.node()));
        }
        // Pivot is always interior for an AND pivot.
        assert!(w.interior().contains(&pivot));
    }

    #[test]
    fn shared_interior_node_becomes_a_root() {
        let (aig, pivot) = sample();
        let fanouts = aig.fanout_map();
        let mut ex = WindowExtractor::new();
        let w = ex.extract(&aig, &fanouts, pivot, &WindowParams::default());
        // `ab` drives a primary output, so it must be a root besides the
        // pivot; `cd` is only referenced by the pivot, so it must not.
        let ab = aig.outputs()[1].lit.node();
        assert!(w.roots().contains(&ab));
        assert_eq!(w.roots().len(), 2);
    }

    #[test]
    fn tfo_windows_pull_in_side_inputs() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let ab = aig.and(a, b);
        let top = aig.and(ab, c); // c is a side input of the TFO node
        aig.add_output("y", top);
        let fanouts = aig.fanout_map();
        let mut ex = WindowExtractor::new();
        let w = ex.extract(
            &aig,
            &fanouts,
            ab.node(),
            &WindowParams {
                max_tfi: 0,
                tfo_depth: 1,
            },
        );
        assert!(w.contains(top.node()));
        assert!(w.leaves().contains(&c.node()), "side input missing");
        assert!(w.interior().contains(&top.node()));
        // The TFI pool excludes TFO nodes and their side inputs.
        assert!(!w.tfi_nodes().contains(&top.node()));
        assert!(!w.tfi_nodes().contains(&c.node()));
    }

    #[test]
    fn from_window_reproduces_the_window_function() {
        let (aig, pivot) = sample();
        let fanouts = aig.fanout_map();
        let mut ex = WindowExtractor::new();
        let w = ex.extract(&aig, &fanouts, pivot, &WindowParams::default());
        let sub = aig.from_window(&w);
        assert_eq!(sub.num_inputs(), w.leaves().len());
        assert_eq!(sub.num_outputs(), w.roots().len());
        // Leaves are the 4 PIs here, so evaluating the sub-AIG on an
        // assignment must match the parent's internal node values.
        for bits in 0..16u32 {
            let inputs: Vec<bool> = (0..4).map(|i| bits >> i & 1 != 0).collect();
            let sub_out = sub.evaluate(&inputs);
            let parent_values = aig.evaluate(&inputs);
            // Parent output 0 is v (the pivot), output 1 is ab.
            let want_pivot = parent_values[0];
            let want_ab = parent_values[1];
            let pivot_pos = w.roots().iter().position(|&r| r == pivot).unwrap();
            assert_eq!(sub_out[pivot_pos], want_pivot, "bits {bits:04b}");
            let ab_pos = 1 - pivot_pos;
            assert_eq!(sub_out[ab_pos], want_ab, "bits {bits:04b}");
        }
    }

    #[test]
    fn splice_of_unmodified_window_is_a_no_op() {
        let (aig, pivot) = sample();
        let fanouts = aig.fanout_map();
        let mut ex = WindowExtractor::new();
        for params in [
            WindowParams::default(),
            WindowParams {
                max_tfi: 3,
                tfo_depth: 0,
            },
            WindowParams {
                max_tfi: 0,
                tfo_depth: 2,
            },
        ] {
            let w = ex.extract(&aig, &fanouts, pivot, &params);
            let sub = aig.from_window(&w);
            let (spliced, _) = aig.splice_window(&w, &sub).expect("no cycle");
            let clean = aig.cleaned();
            assert_eq!(spliced.num_ands(), clean.num_ands());
            for bits in 0..16u32 {
                let inputs: Vec<bool> = (0..4).map(|i| bits >> i & 1 != 0).collect();
                assert_eq!(spliced.evaluate(&inputs), clean.evaluate(&inputs));
            }
        }
    }

    #[test]
    fn splice_applies_a_modified_window() {
        let (aig, pivot) = sample();
        let fanouts = aig.fanout_map();
        let mut ex = WindowExtractor::new();
        let w = ex.extract(&aig, &fanouts, pivot, &WindowParams::default());
        let mut sub = aig.from_window(&w);
        // Replace the pivot's function with constant 0 in the window copy.
        let pivot_pos = w.roots().iter().position(|&r| r == pivot).unwrap();
        sub.set_output_lit(pivot_pos, Lit::FALSE);
        let (spliced, _) = aig.splice_window(&w, &sub).expect("no cycle");
        for bits in 0..16u32 {
            let inputs: Vec<bool> = (0..4).map(|i| bits >> i & 1 != 0).collect();
            let out = spliced.evaluate(&inputs);
            assert!(!out[0], "pivot output forced to 0, bits {bits:04b}");
            // The ab output is untouched.
            assert_eq!(out[1], aig.evaluate(&inputs)[1]);
        }
    }

    #[test]
    fn extractor_reuse_is_deterministic() {
        let (aig, pivot) = sample();
        let fanouts = aig.fanout_map();
        let mut ex = WindowExtractor::new();
        let first = ex.extract(&aig, &fanouts, pivot, &WindowParams::default());
        for id in aig.iter_ands() {
            let _ = ex.extract(&aig, &fanouts, id, &WindowParams::default());
        }
        let again = ex.extract(&aig, &fanouts, pivot, &WindowParams::default());
        assert_eq!(first.leaves(), again.leaves());
        assert_eq!(first.interior(), again.interior());
        assert_eq!(first.roots(), again.roots());
        assert_eq!(first.tfi_nodes(), again.tfi_nodes());
    }
}
