//! K-feasible cut enumeration.
//!
//! A *cut* of a node is a set of nodes (leaves) such that every path from
//! the primary inputs to the node passes through a leaf; a cut is
//! k-feasible when it has at most k leaves. Cuts are the working unit of
//! both rewriting (4-feasible cuts re-synthesized from their truth table)
//! and technology mapping (6-feasible cuts become LUTs; 4-feasible cuts are
//! matched against standard cells).
//!
//! The enumeration is the standard bottom-up merge with per-node priority
//! pruning: each node keeps its trivial cut `{node}` plus up to
//! `max_cuts` smallest merged cuts, with dominated cuts (supersets of
//! another kept cut) filtered out.

use crate::{Aig, Node, NodeId};

/// A sorted set of leaf nodes forming a cut.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cut {
    leaves: Vec<NodeId>,
}

impl Cut {
    /// The trivial cut of a node: the node itself.
    pub fn trivial(node: NodeId) -> Cut {
        Cut { leaves: vec![node] }
    }

    /// The leaves in ascending id order.
    pub fn leaves(&self) -> &[NodeId] {
        &self.leaves
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.leaves.len()
    }

    /// `true` for the (never-produced) empty cut.
    pub fn is_empty(&self) -> bool {
        self.leaves.is_empty()
    }

    /// Merges two sorted leaf sets; `None` if the union exceeds `k`.
    fn merge(a: &Cut, b: &Cut, k: usize) -> Option<Cut> {
        let mut leaves = Vec::with_capacity(k);
        let (mut i, mut j) = (0, 0);
        while i < a.leaves.len() || j < b.leaves.len() {
            let next = match (a.leaves.get(i), b.leaves.get(j)) {
                (Some(&x), Some(&y)) if x == y => {
                    i += 1;
                    j += 1;
                    x
                }
                (Some(&x), Some(&y)) if x < y => {
                    i += 1;
                    x
                }
                (Some(_), Some(&y)) => {
                    j += 1;
                    y
                }
                (Some(&x), None) => {
                    i += 1;
                    x
                }
                (None, Some(&y)) => {
                    j += 1;
                    y
                }
                (None, None) => unreachable!(),
            };
            if leaves.len() == k {
                return None;
            }
            leaves.push(next);
        }
        Some(Cut { leaves })
    }

    /// `true` if `self`'s leaves are a subset of `other`'s (so `self`
    /// dominates `other`).
    fn dominates(&self, other: &Cut) -> bool {
        if self.leaves.len() > other.leaves.len() {
            return false;
        }
        let mut j = 0;
        for &leaf in &self.leaves {
            while j < other.leaves.len() && other.leaves[j] < leaf {
                j += 1;
            }
            if j == other.leaves.len() || other.leaves[j] != leaf {
                return false;
            }
            j += 1;
        }
        true
    }
}

/// All kept cuts of one node. The trivial cut is always `cuts()[0]`.
#[derive(Clone, Debug, Default)]
pub struct CutSet {
    cuts: Vec<Cut>,
}

impl CutSet {
    /// The kept cuts, trivial first.
    pub fn cuts(&self) -> &[Cut] {
        &self.cuts
    }

    /// The non-trivial cuts.
    pub fn nontrivial(&self) -> &[Cut] {
        &self.cuts[1.min(self.cuts.len())..]
    }
}

impl Aig {
    /// Enumerates up to `max_cuts` k-feasible cuts per node.
    ///
    /// Returns one [`CutSet`] per node id. The constant node gets only its
    /// trivial cut; inputs get their trivial cut; AND nodes get the trivial
    /// cut plus merged, dominance-filtered cuts preferring fewer leaves.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` or `max_cuts == 0`.
    pub fn enumerate_cuts(&self, k: usize, max_cuts: usize) -> Vec<CutSet> {
        assert!(k >= 2, "cut size must be at least 2");
        assert!(max_cuts > 0, "must keep at least one cut");
        let mut sets: Vec<CutSet> = Vec::with_capacity(self.num_nodes());
        for id in self.iter_nodes() {
            let set = match *self.node(id) {
                Node::Const | Node::Input { .. } => CutSet {
                    cuts: vec![Cut::trivial(id)],
                },
                Node::And { f0, f1 } => {
                    let mut merged: Vec<Cut> = Vec::new();
                    let set0 = &sets[f0.node().index()];
                    let set1 = &sets[f1.node().index()];
                    for c0 in &set0.cuts {
                        for c1 in &set1.cuts {
                            let Some(cut) = Cut::merge(c0, c1, k) else {
                                continue;
                            };
                            if merged.iter().any(|m| m.dominates(&cut)) {
                                continue;
                            }
                            merged.retain(|m| !cut.dominates(m));
                            merged.push(cut);
                        }
                    }
                    merged.sort_by_key(Cut::len);
                    merged.truncate(max_cuts.saturating_sub(1));
                    let mut cuts = vec![Cut::trivial(id)];
                    cuts.extend(merged);
                    CutSet { cuts }
                }
            };
            sets.push(set);
        }
        sets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Aig, crate::Lit, crate::Lit, crate::Lit, crate::Lit) {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let x = aig.and(a, b);
        let y = aig.and(x, c);
        aig.add_output("y", y);
        (aig, a, b, c, y)
    }

    #[test]
    fn trivial_cut_comes_first() {
        let (aig, ..) = sample();
        let sets = aig.enumerate_cuts(4, 8);
        for id in aig.iter_nodes() {
            let set = &sets[id.index()];
            assert_eq!(set.cuts()[0], Cut::trivial(id));
        }
    }

    #[test]
    fn top_node_sees_input_cut() {
        let (aig, a, b, c, y) = sample();
        let sets = aig.enumerate_cuts(4, 8);
        let top = &sets[y.node().index()];
        let expect = vec![a.node(), b.node(), c.node()];
        assert!(
            top.cuts()
                .iter()
                .any(|cut| cut.leaves() == expect.as_slice()),
            "missing {expect:?} in {top:?}"
        );
    }

    #[test]
    fn cuts_are_cuts() {
        // Every enumerated cut must be a valid cut (cone_interior succeeds).
        let (aig, ..) = sample();
        let sets = aig.enumerate_cuts(4, 8);
        for id in aig.iter_ands() {
            for cut in sets[id.index()].nontrivial() {
                assert!(
                    aig.cone_interior(id, cut.leaves()).is_some(),
                    "cut {cut:?} of {id} is not a cut"
                );
            }
        }
    }

    #[test]
    fn k_limit_is_respected() {
        let mut aig = Aig::new("wide");
        let xs = aig.add_inputs("x", 8);
        let root = aig.and_all(&xs);
        aig.add_output("y", root);
        for k in [2, 3, 4, 6] {
            let sets = aig.enumerate_cuts(k, 32);
            for id in aig.iter_ands() {
                for cut in sets[id.index()].cuts() {
                    assert!(cut.len() <= k.max(1), "k={k}, cut {cut:?}");
                }
            }
        }
    }

    #[test]
    fn dominated_cuts_are_removed() {
        let (aig, _a, _b, c, y) = sample();
        let sets = aig.enumerate_cuts(4, 16);
        // {x, c} is dominated by nothing, but any cut that is a superset of
        // another kept cut must not appear.
        let top = &sets[y.node().index()];
        for (i, ci) in top.cuts().iter().enumerate() {
            for (j, cj) in top.cuts().iter().enumerate() {
                if i != j {
                    assert!(
                        !(ci.dominates(cj) && cj.len() > ci.len()),
                        "cut {cj:?} dominated by {ci:?}"
                    );
                }
            }
        }
        let _ = c;
    }

    #[test]
    fn max_cuts_bounds_set_size() {
        let mut aig = Aig::new("wide");
        let xs = aig.add_inputs("x", 10);
        let root = aig.and_all(&xs);
        aig.add_output("y", root);
        let sets = aig.enumerate_cuts(4, 3);
        for id in aig.iter_nodes() {
            assert!(sets[id.index()].cuts().len() <= 3);
        }
    }

    #[test]
    fn merge_deduplicates_shared_leaves() {
        let a = Cut {
            leaves: vec![NodeId::new(1), NodeId::new(2)],
        };
        let b = Cut {
            leaves: vec![NodeId::new(2), NodeId::new(3)],
        };
        let m = Cut::merge(&a, &b, 4).expect("fits");
        assert_eq!(m.leaves().len(), 3);
        assert!(Cut::merge(&a, &b, 2).is_none());
    }
}
