//! Summary statistics and DOT export for reports and debugging.

use std::fmt;

use crate::{Aig, Node};

/// A snapshot of the headline metrics of an [`Aig`].
///
/// ```
/// use alsrac_aig::Aig;
///
/// let mut aig = Aig::new("t");
/// let a = aig.add_input("a");
/// let b = aig.add_input("b");
/// let x = aig.xor(a, b);
/// aig.add_output("y", x);
/// let stats = aig.stats();
/// assert_eq!(stats.ands, 3);
/// assert_eq!(stats.depth, 2);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AigStats {
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Number of AND nodes (AIG size).
    pub ands: usize,
    /// Maximum logic level over the outputs (AIG depth).
    pub depth: u32,
    /// Number of complemented edges (including output drivers).
    pub complemented_edges: usize,
}

impl fmt::Display for AigStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "i/o = {}/{}  and = {}  lev = {}",
            self.inputs, self.outputs, self.ands, self.depth
        )
    }
}

impl Aig {
    /// Computes summary statistics for this graph.
    pub fn stats(&self) -> AigStats {
        let mut complemented_edges = 0;
        for id in self.iter_ands() {
            let [f0, f1] = self.and_fanins(id);
            complemented_edges += f0.is_complement() as usize + f1.is_complement() as usize;
        }
        complemented_edges += self
            .outputs()
            .iter()
            .filter(|o| o.lit.is_complement())
            .count();
        AigStats {
            inputs: self.num_inputs(),
            outputs: self.num_outputs(),
            ands: self.num_ands(),
            depth: self.depth(),
            complemented_edges,
        }
    }

    /// Renders the graph in Graphviz DOT format (dashed edges are
    /// complemented).
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut dot = String::new();
        let _ = writeln!(dot, "digraph \"{}\" {{", self.name());
        let _ = writeln!(dot, "  rankdir=BT;");
        for id in self.iter_nodes() {
            match self.node(id) {
                Node::Const => {
                    let _ = writeln!(dot, "  n0 [label=\"0\", shape=box];");
                }
                Node::Input { index } => {
                    let _ = writeln!(
                        dot,
                        "  n{} [label=\"{}\", shape=triangle];",
                        id.index(),
                        self.input_name(*index as usize)
                    );
                }
                Node::And { f0, f1 } => {
                    let _ = writeln!(dot, "  n{} [label=\"and\"];", id.index());
                    for f in [f0, f1] {
                        let style = if f.is_complement() {
                            " [style=dashed]"
                        } else {
                            ""
                        };
                        let _ =
                            writeln!(dot, "  n{} -> n{}{};", f.node().index(), id.index(), style);
                    }
                }
            }
        }
        for (i, output) in self.outputs().iter().enumerate() {
            let style = if output.lit.is_complement() {
                " [style=dashed]"
            } else {
                ""
            };
            let _ = writeln!(
                dot,
                "  o{i} [label=\"{}\", shape=invtriangle];",
                output.name
            );
            let _ = writeln!(dot, "  n{} -> o{i}{};", output.lit.node().index(), style);
        }
        dot.push_str("}\n");
        dot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_display_is_compact() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        aig.add_output("y", !a);
        let s = aig.stats();
        assert_eq!(s.to_string(), "i/o = 1/1  and = 0  lev = 0");
        assert_eq!(s.complemented_edges, 1);
    }

    #[test]
    fn dot_mentions_all_nodes() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let x = aig.and(a, !b);
        aig.add_output("y", x);
        let dot = aig.to_dot();
        assert!(dot.contains("digraph"));
        assert!(dot.contains("triangle"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("and"));
    }
}
