//! Error types for AIG construction and rebuilding.

use std::error::Error;
use std::fmt;

use crate::NodeId;

/// Errors produced while validating or transforming an [`Aig`](crate::Aig).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AigError {
    /// An operation referenced a node outside the node table.
    NodeOutOfBounds {
        /// The offending node.
        node: NodeId,
        /// Size of the node table.
        num_nodes: usize,
    },
    /// An input-count mismatch between a pattern source and the graph.
    InputArityMismatch {
        /// Inputs the graph declares.
        expected: usize,
        /// Inputs that were supplied.
        got: usize,
    },
}

impl fmt::Display for AigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AigError::NodeOutOfBounds { node, num_nodes } => {
                write!(f, "node {node} out of bounds for table of {num_nodes}")
            }
            AigError::InputArityMismatch { expected, got } => {
                write!(f, "expected {expected} inputs, got {got}")
            }
        }
    }
}

impl Error for AigError {}

/// Errors produced by [`Aig::rebuilt_with_substitutions`](crate::Aig::rebuilt_with_substitutions).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RebuildError {
    /// A substitution created a combinational cycle: the replacement logic of
    /// a node transitively depends on the node itself.
    Cycle {
        /// The node at which the cycle was detected.
        node: NodeId,
    },
    /// A substitution target literal referenced a node outside the graph.
    SubstitutionOutOfBounds {
        /// The substituted node.
        node: NodeId,
    },
}

impl fmt::Display for RebuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RebuildError::Cycle { node } => {
                write!(f, "substitution creates a combinational cycle at {node}")
            }
            RebuildError::SubstitutionOutOfBounds { node } => {
                write!(
                    f,
                    "substitution for {node} references an out-of-bounds literal"
                )
            }
        }
    }
}

impl Error for RebuildError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let e = AigError::InputArityMismatch {
            expected: 3,
            got: 2,
        };
        assert_eq!(e.to_string(), "expected 3 inputs, got 2");
        let e = RebuildError::Cycle {
            node: NodeId::new(4),
        };
        assert!(e.to_string().contains("cycle"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AigError>();
        assert_send_sync::<RebuildError>();
    }
}
