//! Literals and node identifiers.

use std::fmt;

/// Index of a node in an [`Aig`](crate::Aig) node table.
///
/// Node 0 is always the constant-false node. Indices are dense and assigned
/// in topological order: the fanins of an AND node always have smaller
/// indices than the node itself.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// The constant node (index 0).
    pub const CONST: NodeId = NodeId(0);

    /// Creates a node id from a raw index.
    #[inline]
    pub fn new(index: usize) -> NodeId {
        NodeId(u32::try_from(index).expect("node index exceeds u32 range"))
    }

    /// Returns the raw index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the positive (non-complemented) literal of this node.
    #[inline]
    pub fn lit(self) -> Lit {
        Lit::new(self, false)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A literal: a reference to an AIG node together with a complement flag.
///
/// The representation packs `node_index << 1 | complement` into a `u32`,
/// mirroring the encoding used by ABC and the AIGER format. Two literals are
/// equal iff they refer to the same node with the same polarity.
///
/// ```
/// use alsrac_aig::{Lit, NodeId};
///
/// let x = NodeId::new(3).lit();
/// assert_eq!(!x, Lit::new(NodeId::new(3), true));
/// assert_eq!(!!x, x);
/// assert_eq!(Lit::FALSE, !Lit::TRUE);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(u32);

impl Lit {
    /// The constant-false literal (node 0, no complement).
    pub const FALSE: Lit = Lit(0);
    /// The constant-true literal (node 0, complemented).
    pub const TRUE: Lit = Lit(1);

    /// Creates a literal from a node and a complement flag.
    #[inline]
    pub fn new(node: NodeId, complement: bool) -> Lit {
        Lit(node.0 << 1 | complement as u32)
    }

    /// Creates a literal from its raw packed encoding (`node << 1 | compl`).
    #[inline]
    pub fn from_raw(raw: u32) -> Lit {
        Lit(raw)
    }

    /// Returns the raw packed encoding.
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Returns the node this literal refers to.
    #[inline]
    pub fn node(self) -> NodeId {
        NodeId(self.0 >> 1)
    }

    /// Returns `true` if the literal carries a complement marker.
    #[inline]
    pub fn is_complement(self) -> bool {
        self.0 & 1 != 0
    }

    /// Returns this literal with the complement flag set to `complement`.
    #[inline]
    pub fn with_complement(self, complement: bool) -> Lit {
        Lit(self.0 & !1 | complement as u32)
    }

    /// Returns this literal complemented iff `condition` holds.
    ///
    /// This is the common "xor polarity" operation when propagating
    /// complement markers through a rebuild.
    #[inline]
    pub fn complement_if(self, condition: bool) -> Lit {
        Lit(self.0 ^ condition as u32)
    }

    /// Returns `true` if this is one of the two constant literals.
    #[inline]
    pub fn is_const(self) -> bool {
        self.0 <= 1
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;

    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl From<NodeId> for Lit {
    #[inline]
    fn from(node: NodeId) -> Lit {
        node.lit()
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_complement() {
            write!(f, "!n{}", self.0 >> 1)
        } else {
            write!(f, "n{}", self.0 >> 1)
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_node_zero() {
        assert_eq!(Lit::FALSE.node(), NodeId::CONST);
        assert_eq!(Lit::TRUE.node(), NodeId::CONST);
        assert!(!Lit::FALSE.is_complement());
        assert!(Lit::TRUE.is_complement());
        assert!(Lit::FALSE.is_const());
        assert!(Lit::TRUE.is_const());
        assert!(!NodeId::new(1).lit().is_const());
    }

    #[test]
    fn not_toggles_complement() {
        let a = NodeId::new(7).lit();
        assert!(!a.is_complement());
        assert!((!a).is_complement());
        assert_eq!(!!a, a);
        assert_eq!((!a).node(), a.node());
    }

    #[test]
    fn complement_if_matches_not() {
        let a = NodeId::new(5).lit();
        assert_eq!(a.complement_if(false), a);
        assert_eq!(a.complement_if(true), !a);
    }

    #[test]
    fn with_complement_sets_polarity() {
        let a = NodeId::new(9).lit();
        assert_eq!(a.with_complement(true), !a);
        assert_eq!((!a).with_complement(false), a);
        assert_eq!(a.with_complement(false), a);
    }

    #[test]
    fn raw_round_trip() {
        for raw in [0u32, 1, 2, 3, 100, 101] {
            assert_eq!(Lit::from_raw(raw).raw(), raw);
        }
    }

    #[test]
    fn ordering_groups_polarities_of_same_node() {
        let a = NodeId::new(2).lit();
        let b = NodeId::new(3).lit();
        assert!(a < !a);
        assert!(!a < b);
    }

    #[test]
    fn debug_format_is_informative() {
        let a = NodeId::new(4).lit();
        assert_eq!(format!("{a:?}"), "n4");
        assert_eq!(format!("{:?}", !a), "!n4");
        assert_eq!(format!("{}", NodeId::new(4)), "n4");
    }
}
