//! Transitive fanin/fanout cones, fanout maps, and MFFC computation.

use crate::{Aig, Lit, Node, NodeId};

/// A set of nodes forming a cone, stored as a sorted list of node ids plus a
/// membership bitmap for O(1) queries.
///
/// Produced by [`Aig::tfi_cone`] and [`Aig::tfo_cone`].
#[derive(Clone, Debug)]
pub struct Cone {
    members: Vec<NodeId>,
    bitmap: Vec<bool>,
}

impl Cone {
    fn from_bitmap(bitmap: Vec<bool>) -> Cone {
        let members = bitmap
            .iter()
            .enumerate()
            .filter(|(_, &m)| m)
            .map(|(i, _)| NodeId::new(i))
            .collect();
        Cone { members, bitmap }
    }

    /// Nodes in the cone in ascending (= topological) order.
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// Returns `true` if `id` belongs to the cone.
    pub fn contains(&self, id: NodeId) -> bool {
        self.bitmap.get(id.index()).copied().unwrap_or(false)
    }

    /// Number of nodes in the cone.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` if the cone is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// Fanout information for every node of an [`Aig`].
///
/// The AIG itself only stores fanins; algorithms that walk "downstream"
/// (observability, TFO re-simulation, MFFC) build this map once per graph
/// snapshot via [`Aig::fanout_map`].
#[derive(Clone, Debug)]
pub struct FanoutMap {
    /// `fanouts[n]` lists the AND nodes that reference node `n` as a fanin.
    fanouts: Vec<Vec<NodeId>>,
    /// Number of references to each node, counting primary outputs.
    ref_counts: Vec<u32>,
}

impl FanoutMap {
    /// Returns the fanout nodes of `id` (AND nodes only; primary-output
    /// references are reflected in [`FanoutMap::ref_count`] instead).
    pub fn fanouts(&self, id: NodeId) -> &[NodeId] {
        &self.fanouts[id.index()]
    }

    /// Returns the total reference count of `id` (fanin references plus
    /// primary-output references).
    pub fn ref_count(&self, id: NodeId) -> u32 {
        self.ref_counts[id.index()]
    }

    /// Returns `true` if the node drives nothing (no fanouts, no outputs).
    pub fn is_dangling(&self, id: NodeId) -> bool {
        self.ref_counts[id.index()] == 0
    }
}

impl Aig {
    /// Builds the fanout map for the current graph.
    pub fn fanout_map(&self) -> FanoutMap {
        let n = self.num_nodes();
        let mut fanouts = vec![Vec::new(); n];
        let mut ref_counts = vec![0u32; n];
        for id in self.iter_nodes() {
            if let Node::And { f0, f1 } = *self.node(id) {
                fanouts[f0.node().index()].push(id);
                ref_counts[f0.node().index()] += 1;
                if f1.node() != f0.node() {
                    fanouts[f1.node().index()].push(id);
                }
                ref_counts[f1.node().index()] += 1;
            }
        }
        for output in self.outputs() {
            ref_counts[output.lit.node().index()] += 1;
        }
        FanoutMap {
            fanouts,
            ref_counts,
        }
    }

    /// Computes the transitive-fanin cone of `root`, **including** `root`
    /// itself (the paper's §II-A definition).
    pub fn tfi_cone(&self, root: NodeId) -> Cone {
        let mut bitmap = vec![false; self.num_nodes()];
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if std::mem::replace(&mut bitmap[id.index()], true) {
                continue;
            }
            if let Node::And { f0, f1 } = *self.node(id) {
                stack.push(f0.node());
                stack.push(f1.node());
            }
        }
        Cone::from_bitmap(bitmap)
    }

    /// Computes the transitive-fanout cone of `root`, **including** `root`.
    ///
    /// Requires a prebuilt [`FanoutMap`] for the current graph snapshot.
    pub fn tfo_cone(&self, root: NodeId, fanouts: &FanoutMap) -> Cone {
        let mut bitmap = vec![false; self.num_nodes()];
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if std::mem::replace(&mut bitmap[id.index()], true) {
                continue;
            }
            stack.extend_from_slice(fanouts.fanouts(id));
        }
        Cone::from_bitmap(bitmap)
    }

    /// Computes the maximum fanout-free cone (MFFC) of `root`: the set of AND
    /// nodes that would become dangling if `root` were removed.
    ///
    /// The returned list contains `root` first (if it is an AND node) and is
    /// the conventional measure of how many nodes a resubstitution of `root`
    /// can save.
    pub fn mffc(&self, root: NodeId, fanouts: &FanoutMap) -> Vec<NodeId> {
        if !self.node(root).is_and() {
            return Vec::new();
        }
        // Simulate dereferencing root: counts of nodes whose refs all come
        // from inside the dereferenced cone drop to zero.
        let mut counts: Vec<u32> = (0..self.num_nodes())
            .map(|i| fanouts.ref_count(NodeId::new(i)))
            .collect();
        let mut mffc = Vec::new();
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            mffc.push(id);
            if let Node::And { f0, f1 } = *self.node(id) {
                for fanin in [f0.node(), f1.node()] {
                    let c = &mut counts[fanin.index()];
                    debug_assert!(*c > 0, "fanin reference count underflow");
                    *c -= 1;
                    if *c == 0 && self.node(fanin).is_and() {
                        stack.push(fanin);
                    }
                }
            }
        }
        mffc
    }

    /// Collects the leaves (non-complemented node references) of the cone of
    /// `root` bounded by the cut `leaves`: all paths from `root` towards the
    /// inputs stop at nodes in `leaves`. Returns the interior AND nodes in
    /// topological order.
    ///
    /// Returns `None` if the cone escapes past an input or the constant that
    /// is not listed as a leaf (i.e. `leaves` is not a valid cut of `root`).
    pub fn cone_interior(&self, root: NodeId, leaves: &[NodeId]) -> Option<Vec<NodeId>> {
        let mut is_leaf = vec![false; self.num_nodes()];
        for &l in leaves {
            is_leaf[l.index()] = true;
        }
        let mut seen = vec![false; self.num_nodes()];
        let mut interior = Vec::new();
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if is_leaf[id.index()] || std::mem::replace(&mut seen[id.index()], true) {
                continue;
            }
            match *self.node(id) {
                Node::And { f0, f1 } => {
                    interior.push(id);
                    stack.push(f0.node());
                    stack.push(f1.node());
                }
                // Hit an input or the constant that is not a leaf: not a cut.
                _ => return None,
            }
        }
        interior.sort_unstable();
        Some(interior)
    }

    /// Returns the literal-level fanins of an AND node as an array, panicking
    /// on non-AND nodes. Convenience for cone walkers.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an AND node.
    pub fn and_fanins(&self, id: NodeId) -> [Lit; 2] {
        match *self.node(id) {
            Node::And { f0, f1 } => [f0, f1],
            ref other => panic!("{id} is not an AND node: {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// y = (a & b) | (b & c); extra dangling node d = a & c.
    fn sample() -> (Aig, Lit, Lit, Lit, Lit, Lit, Lit) {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let ab = aig.and(a, b);
        let bc = aig.and(b, c);
        let y = aig.or(ab, bc);
        let dangling = aig.and(a, c);
        aig.add_output("y", y);
        (aig, a, b, c, ab, bc, dangling)
    }

    #[test]
    fn tfi_includes_root_and_supports() {
        let (aig, a, b, _c, ab, _bc, _d) = sample();
        let cone = aig.tfi_cone(ab.node());
        assert!(cone.contains(ab.node()));
        assert!(cone.contains(a.node()));
        assert!(cone.contains(b.node()));
        assert_eq!(cone.len(), 3);
    }

    #[test]
    fn tfo_reaches_outputs() {
        let (aig, a, _b, _c, ab, _bc, d) = sample();
        let fanouts = aig.fanout_map();
        let tfo = aig.tfo_cone(a.node(), &fanouts);
        assert!(tfo.contains(ab.node()));
        assert!(tfo.contains(d.node()));
        // The OR node (output driver) is in a's TFO.
        let y_node = aig.outputs()[0].lit.node();
        assert!(tfo.contains(y_node));
    }

    #[test]
    fn dangling_detection() {
        let (aig, _a, _b, _c, ab, _bc, d) = sample();
        let fanouts = aig.fanout_map();
        assert!(fanouts.is_dangling(d.node()));
        assert!(!fanouts.is_dangling(ab.node()));
    }

    #[test]
    fn mffc_of_output_or_includes_single_use_cone() {
        let (aig, _a, _b, _c, ab, bc, _d) = sample();
        let fanouts = aig.fanout_map();
        let y_node = aig.outputs()[0].lit.node();
        let mffc = aig.mffc(y_node, &fanouts);
        // OR node plus both single-use AND fanins.
        assert_eq!(mffc.len(), 3);
        assert!(mffc.contains(&ab.node()));
        assert!(mffc.contains(&bc.node()));
    }

    #[test]
    fn mffc_stops_at_shared_nodes() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let shared = aig.and(a, b);
        let top = aig.and(shared, c);
        aig.add_output("t", top);
        aig.add_output("s", shared); // second reference keeps `shared` alive
        let fanouts = aig.fanout_map();
        let mffc = aig.mffc(top.node(), &fanouts);
        assert_eq!(mffc, vec![top.node()]);
    }

    #[test]
    fn mffc_of_input_is_empty() {
        let (aig, a, ..) = sample();
        let fanouts = aig.fanout_map();
        assert!(aig.mffc(a.node(), &fanouts).is_empty());
    }

    #[test]
    fn cone_interior_accepts_valid_cut() {
        let (aig, a, b, c, ab, bc, _d) = sample();
        let y = aig.outputs()[0].lit.node();
        let interior = aig
            .cone_interior(y, &[a.node(), b.node(), c.node()])
            .expect("valid cut");
        assert_eq!(interior, vec![ab.node(), bc.node(), y]);
    }

    #[test]
    fn cone_interior_rejects_non_cut() {
        let (aig, a, _b, _c, _ab, _bc, _d) = sample();
        let y = aig.outputs()[0].lit.node();
        // Leaving out b and c means the walk escapes to inputs not in the cut.
        assert!(aig.cone_interior(y, &[a.node()]).is_none());
    }

    #[test]
    fn cone_interior_root_as_leaf_is_empty() {
        let (aig, _a, _b, _c, ab, ..) = sample();
        let interior = aig.cone_interior(ab.node(), &[ab.node()]).expect("cut");
        assert!(interior.is_empty());
    }
}
