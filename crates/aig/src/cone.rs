//! Transitive fanin/fanout cones, fanout maps, and MFFC computation.

use crate::{Aig, Lit, Node, NodeId};

/// A set of nodes forming a cone, stored as a sorted list of node ids plus a
/// membership bitmap for O(1) queries.
///
/// Produced by [`Aig::tfi_cone`] and [`Aig::tfo_cone`].
#[derive(Clone, Debug)]
pub struct Cone {
    members: Vec<NodeId>,
    bitmap: Vec<bool>,
}

impl Cone {
    fn from_bitmap(bitmap: Vec<bool>) -> Cone {
        let members = bitmap
            .iter()
            .enumerate()
            .filter(|(_, &m)| m)
            .map(|(i, _)| NodeId::new(i))
            .collect();
        Cone { members, bitmap }
    }

    /// Nodes in the cone in ascending (= topological) order.
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// Returns `true` if `id` belongs to the cone.
    pub fn contains(&self, id: NodeId) -> bool {
        self.bitmap.get(id.index()).copied().unwrap_or(false)
    }

    /// Number of nodes in the cone.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` if the cone is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// Fanout information for every node of an [`Aig`], plus the per-node
/// logic levels computed in the same pass.
///
/// The AIG itself only stores fanins; algorithms that walk "downstream"
/// (observability, TFO re-simulation, MFFC) build this map once per graph
/// snapshot via [`Aig::fanout_map`]. Levels ride along so per-node
/// consumers (divisor selection, level-bucketed worklists) never have to
/// re-derive `Aig::levels` — an `O(n)` sweep — inside their own loops.
#[derive(Clone, Debug)]
pub struct FanoutMap {
    /// `fanouts[n]` lists the AND nodes that reference node `n` as a fanin.
    fanouts: Vec<Vec<NodeId>>,
    /// Number of references to each node, counting primary outputs.
    ref_counts: Vec<u32>,
    /// Logic level per node (identical to [`Aig::levels`]).
    levels: Vec<u32>,
    /// `max(levels) + 1`: the number of distinct level buckets.
    num_levels: u32,
}

impl FanoutMap {
    /// Returns the fanout nodes of `id` (AND nodes only; primary-output
    /// references are reflected in [`FanoutMap::ref_count`] instead).
    pub fn fanouts(&self, id: NodeId) -> &[NodeId] {
        &self.fanouts[id.index()]
    }

    /// Returns the total reference count of `id` (fanin references plus
    /// primary-output references).
    pub fn ref_count(&self, id: NodeId) -> u32 {
        self.ref_counts[id.index()]
    }

    /// Returns `true` if the node drives nothing (no fanouts, no outputs).
    pub fn is_dangling(&self, id: NodeId) -> bool {
        self.ref_counts[id.index()] == 0
    }

    /// Logic level of `id` (0 for inputs and the constant).
    #[inline]
    pub fn level(&self, id: NodeId) -> u32 {
        self.levels[id.index()]
    }

    /// Per-node logic levels, identical to [`Aig::levels`] of the same
    /// snapshot but computed once inside [`Aig::fanout_map`].
    pub fn levels(&self) -> &[u32] {
        &self.levels
    }

    /// Number of distinct levels (`max level + 1`); sizes level-bucketed
    /// worklists.
    pub fn num_levels(&self) -> u32 {
        self.num_levels
    }
}

/// Reusable scratch for [`Aig::mffc_with`]: epoch-stamped per-node
/// reference-count deltas, so repeated MFFC computations cost
/// `O(|MFFC|)` per query instead of cloning all `n` reference counts.
///
/// Every query reads the base counts straight from the [`FanoutMap`] it is
/// given and bumps the epoch, so a scratch can be reused across graph
/// snapshots without any reset call.
#[derive(Clone, Debug, Default)]
pub struct MffcScratch {
    /// Decrements applied during the current query; valid only where
    /// `stamp[i] == epoch`.
    deltas: Vec<u32>,
    stamp: Vec<u32>,
    epoch: u32,
}

impl MffcScratch {
    /// An empty scratch; sized lazily on first use.
    pub fn new() -> MffcScratch {
        MffcScratch::default()
    }

    fn begin(&mut self, num_nodes: usize) {
        if self.stamp.len() < num_nodes {
            self.deltas.clear();
            self.deltas.resize(num_nodes, 0);
            self.stamp.clear();
            self.stamp.resize(num_nodes, 0);
            self.epoch = 0;
        }
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// Decrements the effective count of `id` and returns the new value,
    /// given its base reference count.
    #[inline]
    fn decrement(&mut self, id: NodeId, base: u32) -> u32 {
        let i = id.index();
        if self.stamp[i] != self.epoch {
            self.stamp[i] = self.epoch;
            self.deltas[i] = 0;
        }
        self.deltas[i] += 1;
        debug_assert!(self.deltas[i] <= base, "fanin reference count underflow");
        base - self.deltas[i]
    }
}

impl Aig {
    /// Builds the fanout map for the current graph.
    pub fn fanout_map(&self) -> FanoutMap {
        let n = self.num_nodes();
        let mut fanouts = vec![Vec::new(); n];
        let mut ref_counts = vec![0u32; n];
        let mut levels = vec![0u32; n];
        let mut num_levels = 1u32;
        for id in self.iter_nodes() {
            if let Node::And { f0, f1 } = *self.node(id) {
                fanouts[f0.node().index()].push(id);
                ref_counts[f0.node().index()] += 1;
                if f1.node() != f0.node() {
                    fanouts[f1.node().index()].push(id);
                }
                ref_counts[f1.node().index()] += 1;
                let level = 1 + levels[f0.node().index()].max(levels[f1.node().index()]);
                levels[id.index()] = level;
                num_levels = num_levels.max(level + 1);
            }
        }
        for output in self.outputs() {
            ref_counts[output.lit.node().index()] += 1;
        }
        FanoutMap {
            fanouts,
            ref_counts,
            levels,
            num_levels,
        }
    }

    /// Computes the transitive-fanin cone of `root`, **including** `root`
    /// itself (the paper's §II-A definition).
    pub fn tfi_cone(&self, root: NodeId) -> Cone {
        let mut bitmap = vec![false; self.num_nodes()];
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if std::mem::replace(&mut bitmap[id.index()], true) {
                continue;
            }
            if let Node::And { f0, f1 } = *self.node(id) {
                stack.push(f0.node());
                stack.push(f1.node());
            }
        }
        Cone::from_bitmap(bitmap)
    }

    /// Computes the transitive-fanout cone of `root`, **including** `root`.
    ///
    /// Requires a prebuilt [`FanoutMap`] for the current graph snapshot.
    pub fn tfo_cone(&self, root: NodeId, fanouts: &FanoutMap) -> Cone {
        let mut bitmap = vec![false; self.num_nodes()];
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if std::mem::replace(&mut bitmap[id.index()], true) {
                continue;
            }
            stack.extend_from_slice(fanouts.fanouts(id));
        }
        Cone::from_bitmap(bitmap)
    }

    /// Computes the maximum fanout-free cone (MFFC) of `root`: the set of AND
    /// nodes that would become dangling if `root` were removed.
    ///
    /// The returned list contains `root` first (if it is an AND node) and is
    /// the conventional measure of how many nodes a resubstitution of `root`
    /// can save.
    pub fn mffc(&self, root: NodeId, fanouts: &FanoutMap) -> Vec<NodeId> {
        self.mffc_with(root, fanouts, &mut MffcScratch::new())
    }

    /// Like [`Aig::mffc`], but reuses a caller-held [`MffcScratch`] so the
    /// per-call cost is proportional to the MFFC itself, not the graph.
    /// Per-node loops (LAC generation visits every AND node) should hold
    /// one scratch and reuse it; results are identical to [`Aig::mffc`].
    pub fn mffc_with(
        &self,
        root: NodeId,
        fanouts: &FanoutMap,
        scratch: &mut MffcScratch,
    ) -> Vec<NodeId> {
        if !self.node(root).is_and() {
            return Vec::new();
        }
        // Simulate dereferencing root: counts of nodes whose refs all come
        // from inside the dereferenced cone drop to zero. The scratch
        // tracks the decrements of this query only; base counts come from
        // the fanout map every time, so nothing can go stale.
        scratch.begin(self.num_nodes());
        let mut mffc = Vec::new();
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            mffc.push(id);
            if let Node::And { f0, f1 } = *self.node(id) {
                for fanin in [f0.node(), f1.node()] {
                    let remaining = scratch.decrement(fanin, fanouts.ref_count(fanin));
                    if remaining == 0 && self.node(fanin).is_and() {
                        stack.push(fanin);
                    }
                }
            }
        }
        mffc
    }

    /// Collects the leaves (non-complemented node references) of the cone of
    /// `root` bounded by the cut `leaves`: all paths from `root` towards the
    /// inputs stop at nodes in `leaves`. Returns the interior AND nodes in
    /// topological order.
    ///
    /// Returns `None` if the cone escapes past an input or the constant that
    /// is not listed as a leaf (i.e. `leaves` is not a valid cut of `root`).
    pub fn cone_interior(&self, root: NodeId, leaves: &[NodeId]) -> Option<Vec<NodeId>> {
        let mut is_leaf = vec![false; self.num_nodes()];
        for &l in leaves {
            is_leaf[l.index()] = true;
        }
        let mut seen = vec![false; self.num_nodes()];
        let mut interior = Vec::new();
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            if is_leaf[id.index()] || std::mem::replace(&mut seen[id.index()], true) {
                continue;
            }
            match *self.node(id) {
                Node::And { f0, f1 } => {
                    interior.push(id);
                    stack.push(f0.node());
                    stack.push(f1.node());
                }
                // Hit an input or the constant that is not a leaf: not a cut.
                _ => return None,
            }
        }
        interior.sort_unstable();
        Some(interior)
    }

    /// Returns the literal-level fanins of an AND node as an array, panicking
    /// on non-AND nodes. Convenience for cone walkers.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not an AND node.
    pub fn and_fanins(&self, id: NodeId) -> [Lit; 2] {
        match *self.node(id) {
            Node::And { f0, f1 } => [f0, f1],
            ref other => panic!("{id} is not an AND node: {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// y = (a & b) | (b & c); extra dangling node d = a & c.
    fn sample() -> (Aig, Lit, Lit, Lit, Lit, Lit, Lit) {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let ab = aig.and(a, b);
        let bc = aig.and(b, c);
        let y = aig.or(ab, bc);
        let dangling = aig.and(a, c);
        aig.add_output("y", y);
        (aig, a, b, c, ab, bc, dangling)
    }

    #[test]
    fn tfi_includes_root_and_supports() {
        let (aig, a, b, _c, ab, _bc, _d) = sample();
        let cone = aig.tfi_cone(ab.node());
        assert!(cone.contains(ab.node()));
        assert!(cone.contains(a.node()));
        assert!(cone.contains(b.node()));
        assert_eq!(cone.len(), 3);
    }

    #[test]
    fn tfo_reaches_outputs() {
        let (aig, a, _b, _c, ab, _bc, d) = sample();
        let fanouts = aig.fanout_map();
        let tfo = aig.tfo_cone(a.node(), &fanouts);
        assert!(tfo.contains(ab.node()));
        assert!(tfo.contains(d.node()));
        // The OR node (output driver) is in a's TFO.
        let y_node = aig.outputs()[0].lit.node();
        assert!(tfo.contains(y_node));
    }

    #[test]
    fn dangling_detection() {
        let (aig, _a, _b, _c, ab, _bc, d) = sample();
        let fanouts = aig.fanout_map();
        assert!(fanouts.is_dangling(d.node()));
        assert!(!fanouts.is_dangling(ab.node()));
    }

    #[test]
    fn mffc_of_output_or_includes_single_use_cone() {
        let (aig, _a, _b, _c, ab, bc, _d) = sample();
        let fanouts = aig.fanout_map();
        let y_node = aig.outputs()[0].lit.node();
        let mffc = aig.mffc(y_node, &fanouts);
        // OR node plus both single-use AND fanins.
        assert_eq!(mffc.len(), 3);
        assert!(mffc.contains(&ab.node()));
        assert!(mffc.contains(&bc.node()));
    }

    #[test]
    fn mffc_stops_at_shared_nodes() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let shared = aig.and(a, b);
        let top = aig.and(shared, c);
        aig.add_output("t", top);
        aig.add_output("s", shared); // second reference keeps `shared` alive
        let fanouts = aig.fanout_map();
        let mffc = aig.mffc(top.node(), &fanouts);
        assert_eq!(mffc, vec![top.node()]);
    }

    #[test]
    fn mffc_of_input_is_empty() {
        let (aig, a, ..) = sample();
        let fanouts = aig.fanout_map();
        assert!(aig.mffc(a.node(), &fanouts).is_empty());
    }

    #[test]
    fn cone_interior_accepts_valid_cut() {
        let (aig, a, b, c, ab, bc, _d) = sample();
        let y = aig.outputs()[0].lit.node();
        let interior = aig
            .cone_interior(y, &[a.node(), b.node(), c.node()])
            .expect("valid cut");
        assert_eq!(interior, vec![ab.node(), bc.node(), y]);
    }

    #[test]
    fn cone_interior_rejects_non_cut() {
        let (aig, a, _b, _c, _ab, _bc, _d) = sample();
        let y = aig.outputs()[0].lit.node();
        // Leaving out b and c means the walk escapes to inputs not in the cut.
        assert!(aig.cone_interior(y, &[a.node()]).is_none());
    }

    #[test]
    fn fanout_map_levels_match_graph_levels() {
        let (aig, ..) = sample();
        let fanouts = aig.fanout_map();
        assert_eq!(fanouts.levels(), &aig.levels()[..]);
        let max = aig.levels().iter().copied().max().unwrap_or(0);
        assert_eq!(fanouts.num_levels(), max + 1);
        for id in aig.iter_nodes() {
            assert_eq!(fanouts.level(id), aig.levels()[id.index()]);
        }
    }

    #[test]
    fn mffc_with_shared_scratch_matches_fresh_queries() {
        let (aig, ..) = sample();
        let fanouts = aig.fanout_map();
        let mut scratch = MffcScratch::new();
        // Interleave queries so the scratch carries decrements between
        // calls; every result must match a fresh O(n) query.
        for _ in 0..3 {
            for id in aig.iter_nodes() {
                let reused = aig.mffc_with(id, &fanouts, &mut scratch);
                let fresh = aig.mffc(id, &fanouts);
                assert_eq!(reused, fresh, "node {id}");
            }
        }
    }

    #[test]
    fn mffc_scratch_survives_graph_swaps() {
        // The same scratch must be correct across different graphs of the
        // same node count (base counts come from the map, not the scratch).
        let (a, ..) = sample();
        let mut b = Aig::new("t2");
        let x = b.add_input("x");
        let y = b.add_input("y");
        let z = b.add_input("z");
        let xy = b.and(x, y);
        let yz = b.and(y, z);
        let top = b.and(xy, yz);
        b.add_output("o", top);
        b.add_output("o2", xy); // extra ref changes the MFFC shape
        let fa = a.fanout_map();
        let fb = b.fanout_map();
        let mut scratch = MffcScratch::new();
        for id in a.iter_nodes() {
            assert_eq!(a.mffc_with(id, &fa, &mut scratch), a.mffc(id, &fa));
        }
        for id in b.iter_nodes() {
            assert_eq!(b.mffc_with(id, &fb, &mut scratch), b.mffc(id, &fb));
        }
    }

    #[test]
    fn cone_interior_root_as_leaf_is_empty() {
        let (aig, _a, _b, _c, ab, ..) = sample();
        let interior = aig.cone_interior(ab.node(), &[ab.node()]).expect("cut");
        assert!(interior.is_empty());
    }
}
