//! Rebuilding: compaction, sweeping, and node substitution.
//!
//! ALSRAC never mutates AND nodes in place. A local approximate change first
//! *appends* the replacement logic to the graph (referencing existing
//! divisors), then asks for a rebuilt graph in which the target node is
//! substituted by the replacement literal. The rebuild walks the output
//! cones, re-applies structural hashing and constant folding, drops dangling
//! nodes, and re-checks acyclicity — so the result is always a valid,
//! compacted AIG.

use std::collections::HashMap;

use crate::{Aig, Lit, Node, NodeId, RebuildError};

enum Task {
    Visit(NodeId),
    Finish(NodeId),
}

const UNVISITED: u8 = 0;
const IN_PROGRESS: u8 = 1;
const DONE: u8 = 2;

impl Aig {
    /// Rebuilds the graph with every node in `substitutions` replaced by its
    /// target literal.
    ///
    /// The rebuilt graph contains only logic reachable from the primary
    /// outputs (dangling nodes are swept), is freshly structurally hashed,
    /// and keeps the inputs and output names of `self`. Substitutions chain:
    /// if `a -> lit(b)` and `b -> c`, then `a` ends up implemented by `c`'s
    /// replacement. Inputs can be substituted as well (the input node is
    /// still declared, but its logic no longer drives anything).
    ///
    /// # Errors
    ///
    /// * [`RebuildError::Cycle`] if a substitution makes a node depend on
    ///   itself.
    /// * [`RebuildError::SubstitutionOutOfBounds`] if a target literal
    ///   references a node outside the graph.
    ///
    /// # Example
    ///
    /// ```
    /// use std::collections::HashMap;
    /// use alsrac_aig::Aig;
    ///
    /// # fn main() -> Result<(), alsrac_aig::RebuildError> {
    /// let mut aig = Aig::new("t");
    /// let a = aig.add_input("a");
    /// let b = aig.add_input("b");
    /// let x = aig.xor(a, b);
    /// aig.add_output("y", x);
    ///
    /// // Replace the XOR by a plain OR (an approximate change). The map is
    /// // keyed by *node*, so compensate for the polarity of `x`.
    /// let replacement = aig.or(a, b).complement_if(x.is_complement());
    /// let approx = aig.rebuilt_with_substitutions(
    ///     &HashMap::from([(x.node(), replacement)]),
    /// )?;
    /// assert_eq!(approx.evaluate(&[true, true]), vec![true]); // was false
    /// # Ok(())
    /// # }
    /// ```
    pub fn rebuilt_with_substitutions(
        &self,
        substitutions: &HashMap<NodeId, Lit>,
    ) -> Result<Aig, RebuildError> {
        self.rebuilt_with_substitutions_mapped(substitutions)
            .map(|(aig, _)| aig)
    }

    /// Like [`Aig::rebuilt_with_substitutions`], additionally returning the
    /// rebuild map: `map[old.index()]` is the literal of the rebuilt graph
    /// that old node `old` resolves to (`None` for nodes unreachable from
    /// the outputs, i.e. swept).
    ///
    /// The map lets callers relate old and new node ids — e.g. to carry
    /// simulated values of structurally untouched nodes across a rewrite
    /// instead of re-simulating from scratch. A complemented map literal
    /// means the new node computes the old node's complement (constant
    /// folding and substitution chains can introduce these).
    ///
    /// # Errors
    ///
    /// Same contract as [`Aig::rebuilt_with_substitutions`].
    pub fn rebuilt_with_substitutions_mapped(
        &self,
        substitutions: &HashMap<NodeId, Lit>,
    ) -> Result<(Aig, Vec<Option<Lit>>), RebuildError> {
        for (&node, &lit) in substitutions {
            if lit.node().index() >= self.num_nodes() {
                return Err(RebuildError::SubstitutionOutOfBounds { node });
            }
        }

        let mut out = Aig::new(self.name().to_string());
        let mut map: Vec<Option<Lit>> = vec![None; self.num_nodes()];
        map[NodeId::CONST.index()] = Some(Lit::FALSE);
        for (pos, &input) in self.inputs().iter().enumerate() {
            let lit = out.add_input(self.input_name(pos).to_string());
            // A substituted input is still declared but resolves elsewhere.
            if !substitutions.contains_key(&input) {
                map[input.index()] = Some(lit);
            }
        }

        let mut state = vec![UNVISITED; self.num_nodes()];
        for i in 0..self.num_nodes() {
            if map[i].is_some() {
                state[i] = DONE;
            }
        }

        let mut stack = Vec::new();
        for output in self.outputs() {
            stack.push(Task::Visit(output.lit.node()));
            while let Some(task) = stack.pop() {
                match task {
                    Task::Visit(id) => match state[id.index()] {
                        DONE => {}
                        IN_PROGRESS => return Err(RebuildError::Cycle { node: id }),
                        _ => {
                            state[id.index()] = IN_PROGRESS;
                            stack.push(Task::Finish(id));
                            if let Some(&target) = substitutions.get(&id) {
                                stack.push(Task::Visit(target.node()));
                            } else if let Node::And { f0, f1 } = *self.node(id) {
                                stack.push(Task::Visit(f0.node()));
                                stack.push(Task::Visit(f1.node()));
                            }
                        }
                    },
                    Task::Finish(id) => {
                        let lit = if let Some(&target) = substitutions.get(&id) {
                            let mapped = map[target.node().index()]
                                .expect("substitution target visited before finish");
                            mapped.complement_if(target.is_complement())
                        } else {
                            match *self.node(id) {
                                Node::Const => Lit::FALSE,
                                Node::Input { .. } => {
                                    // Unsubstituted inputs were premapped; a
                                    // substituted input never reaches here.
                                    unreachable!("input not premapped")
                                }
                                Node::And { f0, f1 } => {
                                    let a = map[f0.node().index()]
                                        .expect("fanin visited before finish")
                                        .complement_if(f0.is_complement());
                                    let b = map[f1.node().index()]
                                        .expect("fanin visited before finish")
                                        .complement_if(f1.is_complement());
                                    out.and(a, b)
                                }
                            }
                        };
                        map[id.index()] = Some(lit);
                        state[id.index()] = DONE;
                    }
                }
            }
        }

        for output in self.outputs() {
            let mapped = map[output.lit.node().index()].expect("output cone visited");
            out.add_output(
                output.name.clone(),
                mapped.complement_if(output.lit.is_complement()),
            );
        }
        Ok((out, map))
    }

    /// Rebuilds the graph with no substitutions: sweeps dangling nodes,
    /// re-applies structural hashing and constant folding, and compacts node
    /// ids.
    ///
    /// Equivalent to ABC's `sweep` for a combinational AIG.
    pub fn cleaned(&self) -> Aig {
        self.rebuilt_with_substitutions(&HashMap::new())
            .expect("empty substitution cannot introduce cycles")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_drops_dangling_nodes() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let keep = aig.and(a, b);
        let _dangling = aig.and(a, !b);
        aig.add_output("y", keep);
        assert_eq!(aig.num_ands(), 2);
        let clean = aig.cleaned();
        assert_eq!(clean.num_ands(), 1);
        assert_eq!(clean.num_inputs(), 2);
        assert_eq!(clean.evaluate(&[true, true]), vec![true]);
        assert_eq!(clean.evaluate(&[true, false]), vec![false]);
    }

    #[test]
    fn clean_preserves_names() {
        let mut aig = Aig::new("named");
        let a = aig.add_input("alpha");
        aig.add_output("omega", !a);
        let clean = aig.cleaned();
        assert_eq!(clean.name(), "named");
        assert_eq!(clean.input_name(0), "alpha");
        assert_eq!(clean.outputs()[0].name, "omega");
        assert_eq!(clean.evaluate(&[false]), vec![true]);
    }

    #[test]
    fn substitution_rewires_fanouts() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let x = aig.xor(a, b);
        let y = aig.and(x, c);
        aig.add_output("y", y);
        // Substitute the XOR with just `a`. Substitution targets the *node*,
        // so compensate for the polarity of the literal xor() handed back.
        let rebuilt = aig
            .rebuilt_with_substitutions(&HashMap::from([(
                x.node(),
                a.complement_if(x.is_complement()),
            )]))
            .expect("no cycle");
        // Now y = a & c.
        assert_eq!(rebuilt.evaluate(&[true, true, true]), vec![true]);
        assert_eq!(rebuilt.evaluate(&[false, true, true]), vec![false]);
        // The XOR cone is gone.
        assert_eq!(rebuilt.num_ands(), 1);
    }

    #[test]
    fn substitution_with_complement_target() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let x = aig.and(a, b);
        aig.add_output("y", x);
        let rebuilt = aig
            .rebuilt_with_substitutions(&HashMap::from([(x.node(), !a)]))
            .expect("no cycle");
        assert_eq!(rebuilt.evaluate(&[true, false]), vec![false]);
        assert_eq!(rebuilt.evaluate(&[false, false]), vec![true]);
        assert_eq!(rebuilt.num_ands(), 0);
    }

    #[test]
    fn substitution_to_constant() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let x = aig.and(a, b);
        let y = aig.or(x, a);
        aig.add_output("y", y);
        let rebuilt = aig
            .rebuilt_with_substitutions(&HashMap::from([(x.node(), Lit::TRUE)]))
            .expect("no cycle");
        // y = 1 | a = 1.
        assert_eq!(rebuilt.evaluate(&[false, false]), vec![true]);
        assert_eq!(rebuilt.num_ands(), 0);
    }

    #[test]
    fn self_cycle_is_detected() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let x = aig.and(a, b);
        let y = aig.and(x, a); // y depends on x
        aig.add_output("y", y);
        // x := y creates x -> y -> x.
        let err = aig
            .rebuilt_with_substitutions(&HashMap::from([(x.node(), y)]))
            .expect_err("cycle");
        assert!(matches!(err, RebuildError::Cycle { .. }));
    }

    #[test]
    fn out_of_bounds_substitution_is_rejected() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        aig.add_output("y", a);
        let bogus = NodeId::new(1000).lit();
        let err = aig
            .rebuilt_with_substitutions(&HashMap::from([(a.node(), bogus)]))
            .expect_err("out of bounds");
        assert!(matches!(err, RebuildError::SubstitutionOutOfBounds { .. }));
    }

    #[test]
    fn chained_substitutions_resolve() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let x = aig.and(a, b);
        let y = aig.xor(x, c);
        aig.add_output("y", y);
        // node(y) := x, node(x) := !c; the output reads node(y) through the
        // polarity xor() returned, so the output ends up as !c overall.
        let rebuilt = aig
            .rebuilt_with_substitutions(&HashMap::from([
                (y.node(), x.complement_if(y.is_complement())),
                (x.node(), !c),
            ]))
            .expect("no cycle");
        assert_eq!(rebuilt.evaluate(&[true, true, false]), vec![true]);
        assert_eq!(rebuilt.evaluate(&[true, true, true]), vec![false]);
        assert_eq!(rebuilt.num_ands(), 0);
    }

    #[test]
    fn substituting_an_input_keeps_it_declared() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let x = aig.and(a, b);
        aig.add_output("y", x);
        // Tie input a to constant true.
        let rebuilt = aig
            .rebuilt_with_substitutions(&HashMap::from([(a.node(), Lit::TRUE)]))
            .expect("no cycle");
        assert_eq!(rebuilt.num_inputs(), 2);
        // y = b now.
        assert_eq!(rebuilt.evaluate(&[false, true]), vec![true]);
        assert_eq!(rebuilt.evaluate(&[false, false]), vec![false]);
    }

    #[test]
    fn mapped_rebuild_relates_old_and_new_ids() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let ab = aig.and(a, b);
        let y = aig.and(ab, c);
        let dangling = aig.and(a, !b);
        aig.add_output("y", y);
        let (rebuilt, map) = aig
            .rebuilt_with_substitutions_mapped(&HashMap::new())
            .expect("no cycle");
        // Inputs map to inputs, reachable ANDs map to equivalent new nodes,
        // dangling nodes are swept (None).
        assert_eq!(map[a.node().index()], Some(rebuilt.inputs()[0].lit()));
        assert!(map[dangling.node().index()].is_none());
        let mapped_y = map[y.node().index()].expect("output driver kept");
        assert_eq!(
            rebuilt.outputs()[0].lit,
            mapped_y.complement_if(y.is_complement())
        );
        // The mapped graph is the same as the unmapped rebuild.
        assert_eq!(rebuilt.num_ands(), aig.cleaned().num_ands());
    }

    #[test]
    fn rebuild_restrashes_merged_structures() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let x = aig.and(a, b);
        let y = aig.and(c, b);
        let top = aig.or(x, y);
        aig.add_output("y", top);
        // Substituting c := a makes x and y structurally identical; the
        // rebuild must merge them.
        let rebuilt = aig
            .rebuilt_with_substitutions(&HashMap::from([(c.node(), a)]))
            .expect("no cycle");
        // or(x, x) folds to x: a single AND remains.
        assert_eq!(rebuilt.num_ands(), 1);
    }
}
