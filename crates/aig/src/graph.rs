//! The [`Aig`] graph structure and its construction API.

use std::collections::HashMap;
use std::fmt;

use crate::{Lit, NodeId};

/// One node of an [`Aig`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Node {
    /// The constant-false node (always node 0).
    Const,
    /// A primary input; `index` is its position in the input list.
    Input {
        /// Position of this input in [`Aig::inputs`].
        index: u32,
    },
    /// A two-input AND gate over two literals, normalized so `f0 < f1`.
    And {
        /// First (smaller) fanin literal.
        f0: Lit,
        /// Second (larger) fanin literal.
        f1: Lit,
    },
}

impl Node {
    /// Returns `true` if this node is an AND gate.
    #[inline]
    pub fn is_and(&self) -> bool {
        matches!(self, Node::And { .. })
    }

    /// Returns `true` if this node is a primary input.
    #[inline]
    pub fn is_input(&self) -> bool {
        matches!(self, Node::Input { .. })
    }

    /// Returns the fanin literals if this node is an AND gate.
    #[inline]
    pub fn fanins(&self) -> Option<(Lit, Lit)> {
        match *self {
            Node::And { f0, f1 } => Some((f0, f1)),
            _ => None,
        }
    }
}

/// A named primary output driven by a literal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Output {
    /// Output name (used by BLIF writers and reports).
    pub name: String,
    /// Driving literal.
    pub lit: Lit,
}

/// An AND-inverter graph.
///
/// See the [crate-level documentation](crate) for the invariants. All
/// construction goes through [`Aig::add_input`], [`Aig::and`] and the derived
/// gate helpers ([`Aig::or`], [`Aig::xor`], [`Aig::mux`], …), which maintain
/// structural hashing and topological order automatically.
#[derive(Clone)]
pub struct Aig {
    name: String,
    nodes: Vec<Node>,
    /// Structural hashing: normalized (f0.raw, f1.raw) -> node index.
    strash: HashMap<(u32, u32), u32>,
    inputs: Vec<NodeId>,
    input_names: Vec<String>,
    outputs: Vec<Output>,
}

impl Aig {
    /// Creates an empty graph containing only the constant node.
    pub fn new(name: impl Into<String>) -> Aig {
        Aig {
            name: name.into(),
            nodes: vec![Node::Const],
            strash: HashMap::new(),
            inputs: Vec::new(),
            input_names: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Returns the circuit name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sets the circuit name.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Total number of nodes including the constant and the inputs.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of AND nodes (the conventional "AIG size").
    pub fn num_ands(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_and()).count()
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Returns the node stored at `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Returns the primary input nodes in declaration order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Returns the name of input `position`.
    pub fn input_name(&self, position: usize) -> &str {
        &self.input_names[position]
    }

    /// Returns the primary outputs in declaration order.
    pub fn outputs(&self) -> &[Output] {
        &self.outputs
    }

    /// Returns the literals driving the primary outputs, in order.
    pub fn output_lits(&self) -> Vec<Lit> {
        self.outputs.iter().map(|o| o.lit).collect()
    }

    /// Iterates over all node ids in topological order (fanins first).
    pub fn iter_nodes(&self) -> impl DoubleEndedIterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId::new)
    }

    /// Iterates over the ids of the AND nodes in topological order.
    pub fn iter_ands(&self) -> impl DoubleEndedIterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.is_and())
            .map(|(i, _)| NodeId::new(i))
    }

    /// Appends a new primary input and returns its (positive) literal.
    pub fn add_input(&mut self, name: impl Into<String>) -> Lit {
        let id = NodeId::new(self.nodes.len());
        self.nodes.push(Node::Input {
            index: self.inputs.len() as u32,
        });
        self.inputs.push(id);
        self.input_names.push(name.into());
        id.lit()
    }

    /// Appends `count` primary inputs named `{prefix}{i}` and returns their
    /// literals.
    pub fn add_inputs(&mut self, prefix: &str, count: usize) -> Vec<Lit> {
        (0..count)
            .map(|i| self.add_input(format!("{prefix}{i}")))
            .collect()
    }

    /// Declares `lit` as a primary output with the given name.
    pub fn add_output(&mut self, name: impl Into<String>, lit: Lit) {
        debug_assert!(lit.node().index() < self.nodes.len(), "dangling output");
        self.outputs.push(Output {
            name: name.into(),
            lit,
        });
    }

    /// Replaces the driver of output `position`.
    ///
    /// # Panics
    ///
    /// Panics if `position` is out of bounds.
    pub fn set_output_lit(&mut self, position: usize, lit: Lit) {
        self.outputs[position].lit = lit;
    }

    /// Returns the AND of two literals, creating a node only when necessary.
    ///
    /// Applies constant folding (`x & 0`, `x & 1`, `x & x`, `x & !x`) and
    /// structural hashing, so the result is canonical for the pair.
    pub fn and(&mut self, a: Lit, b: Lit) -> Lit {
        // Constant and trivial folds.
        if a == Lit::FALSE || b == Lit::FALSE || a == !b {
            return Lit::FALSE;
        }
        if a == Lit::TRUE {
            return b;
        }
        if b == Lit::TRUE || a == b {
            return a;
        }
        let (f0, f1) = if a.raw() < b.raw() { (a, b) } else { (b, a) };
        let key = (f0.raw(), f1.raw());
        if let Some(&idx) = self.strash.get(&key) {
            return NodeId::new(idx as usize).lit();
        }
        let id = NodeId::new(self.nodes.len());
        self.nodes.push(Node::And { f0, f1 });
        self.strash.insert(key, id.index() as u32);
        id.lit()
    }

    /// Returns the OR of two literals.
    pub fn or(&mut self, a: Lit, b: Lit) -> Lit {
        !self.and(!a, !b)
    }

    /// Returns the XOR of two literals (two-level AND realization).
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        let p = self.and(a, !b);
        let q = self.and(!a, b);
        self.or(p, q)
    }

    /// Returns the XNOR of two literals.
    pub fn xnor(&mut self, a: Lit, b: Lit) -> Lit {
        !self.xor(a, b)
    }

    /// Returns `if sel { t } else { e }`.
    pub fn mux(&mut self, sel: Lit, t: Lit, e: Lit) -> Lit {
        let p = self.and(sel, t);
        let q = self.and(!sel, e);
        self.or(p, q)
    }

    /// Returns the AND of all literals in `lits` (true for an empty slice),
    /// built as a balanced tree.
    pub fn and_all(&mut self, lits: &[Lit]) -> Lit {
        self.reduce_balanced(lits, Lit::TRUE, Aig::and)
    }

    /// Returns the OR of all literals in `lits` (false for an empty slice),
    /// built as a balanced tree.
    pub fn or_all(&mut self, lits: &[Lit]) -> Lit {
        self.reduce_balanced(lits, Lit::FALSE, Aig::or)
    }

    /// Returns the XOR of all literals in `lits` (false for an empty slice).
    pub fn xor_all(&mut self, lits: &[Lit]) -> Lit {
        self.reduce_balanced(lits, Lit::FALSE, Aig::xor)
    }

    fn reduce_balanced(
        &mut self,
        lits: &[Lit],
        unit: Lit,
        mut op: impl FnMut(&mut Aig, Lit, Lit) -> Lit,
    ) -> Lit {
        match lits {
            [] => unit,
            [single] => *single,
            _ => {
                let mut layer = lits.to_vec();
                while layer.len() > 1 {
                    let mut next = Vec::with_capacity(layer.len().div_ceil(2));
                    for pair in layer.chunks(2) {
                        next.push(match pair {
                            [a, b] => op(self, *a, *b),
                            [a] => *a,
                            _ => unreachable!(),
                        });
                    }
                    layer = next;
                }
                layer[0]
            }
        }
    }

    /// Computes the logic level (depth) of every node.
    ///
    /// Inputs and the constant have level 0; an AND node has level
    /// `1 + max(level(f0), level(f1))`.
    pub fn levels(&self) -> Vec<u32> {
        let mut levels = vec![0u32; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            if let Node::And { f0, f1 } = node {
                levels[i] = 1 + levels[f0.node().index()].max(levels[f1.node().index()]);
            }
        }
        levels
    }

    /// Returns the maximum level over the primary outputs (circuit depth).
    pub fn depth(&self) -> u32 {
        let levels = self.levels();
        self.outputs
            .iter()
            .map(|o| levels[o.lit.node().index()])
            .max()
            .unwrap_or(0)
    }

    /// Evaluates the circuit on a single input assignment.
    ///
    /// This is the semantic reference evaluator used by tests; the
    /// `alsrac-sim` crate provides the fast 64-way parallel version.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.num_inputs()`.
    pub fn evaluate(&self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(
            inputs.len(),
            self.inputs.len(),
            "expected {} input values, got {}",
            self.inputs.len(),
            inputs.len()
        );
        let mut values = vec![false; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            values[i] = match *node {
                Node::Const => false,
                Node::Input { index } => inputs[index as usize],
                Node::And { f0, f1 } => {
                    let v0 = values[f0.node().index()] ^ f0.is_complement();
                    let v1 = values[f1.node().index()] ^ f1.is_complement();
                    v0 && v1
                }
            };
        }
        self.outputs
            .iter()
            .map(|o| values[o.lit.node().index()] ^ o.lit.is_complement())
            .collect()
    }

    /// Evaluates the circuit exhaustively and returns, for each output, a
    /// bit-vector of `2^num_inputs` result bits (input pattern `p` at bit
    /// position `p`, inputs interpreted LSB-first).
    ///
    /// # Panics
    ///
    /// Panics if the circuit has more than 20 inputs (the table would exceed
    /// a million entries per output).
    pub fn evaluate_exhaustive(&self) -> Vec<Vec<u64>> {
        let n = self.inputs.len();
        assert!(n <= 20, "exhaustive evaluation limited to 20 inputs");
        let patterns = 1usize << n;
        let words = patterns.div_ceil(64);
        let mut outs = vec![vec![0u64; words]; self.outputs.len()];
        let mut assignment = vec![false; n];
        for p in 0..patterns {
            for (i, slot) in assignment.iter_mut().enumerate() {
                *slot = p >> i & 1 != 0;
            }
            for (o, value) in self.evaluate(&assignment).into_iter().enumerate() {
                if value {
                    outs[o][p / 64] |= 1 << (p % 64);
                }
            }
        }
        outs
    }
}

impl fmt::Debug for Aig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Aig(\"{}\": {} inputs, {} outputs, {} ands, depth {})",
            self.name,
            self.num_inputs(),
            self.num_outputs(),
            self.num_ands(),
            self.depth()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_circuit() -> Aig {
        let mut aig = Aig::new("xor2");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let x = aig.xor(a, b);
        aig.add_output("y", x);
        aig
    }

    #[test]
    fn constant_folds() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        assert_eq!(aig.and(a, Lit::FALSE), Lit::FALSE);
        assert_eq!(aig.and(Lit::FALSE, a), Lit::FALSE);
        assert_eq!(aig.and(a, Lit::TRUE), a);
        assert_eq!(aig.and(Lit::TRUE, a), a);
        assert_eq!(aig.and(a, a), a);
        assert_eq!(aig.and(a, !a), Lit::FALSE);
        assert_eq!(aig.num_ands(), 0);
    }

    #[test]
    fn structural_hashing_shares_nodes() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let x = aig.and(a, b);
        let y = aig.and(b, a);
        assert_eq!(x, y);
        assert_eq!(aig.num_ands(), 1);
    }

    #[test]
    fn fanins_are_normalized() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let x = aig.and(b, a);
        let (f0, f1) = aig.node(x.node()).fanins().expect("and node");
        assert!(f0.raw() < f1.raw());
    }

    #[test]
    fn xor_truth_table() {
        let aig = xor_circuit();
        assert_eq!(aig.evaluate(&[false, false]), vec![false]);
        assert_eq!(aig.evaluate(&[true, false]), vec![true]);
        assert_eq!(aig.evaluate(&[false, true]), vec![true]);
        assert_eq!(aig.evaluate(&[true, true]), vec![false]);
    }

    #[test]
    fn mux_selects() {
        let mut aig = Aig::new("mux");
        let s = aig.add_input("s");
        let t = aig.add_input("t");
        let e = aig.add_input("e");
        let m = aig.mux(s, t, e);
        aig.add_output("y", m);
        for s_v in [false, true] {
            for t_v in [false, true] {
                for e_v in [false, true] {
                    let want = if s_v { t_v } else { e_v };
                    assert_eq!(aig.evaluate(&[s_v, t_v, e_v]), vec![want]);
                }
            }
        }
    }

    #[test]
    fn and_all_empty_is_true() {
        let mut aig = Aig::new("t");
        assert_eq!(aig.and_all(&[]), Lit::TRUE);
        assert_eq!(aig.or_all(&[]), Lit::FALSE);
        assert_eq!(aig.xor_all(&[]), Lit::FALSE);
    }

    #[test]
    fn and_all_matches_semantics() {
        let mut aig = Aig::new("t");
        let lits = aig.add_inputs("x", 5);
        let all = aig.and_all(&lits);
        let any = aig.or_all(&lits);
        let parity = aig.xor_all(&lits);
        aig.add_output("all", all);
        aig.add_output("any", any);
        aig.add_output("parity", parity);
        for p in 0..32u32 {
            let bits: Vec<bool> = (0..5).map(|i| p >> i & 1 != 0).collect();
            let out = aig.evaluate(&bits);
            assert_eq!(out[0], bits.iter().all(|&b| b));
            assert_eq!(out[1], bits.iter().any(|&b| b));
            assert_eq!(out[2], bits.iter().filter(|&&b| b).count() % 2 == 1);
        }
    }

    #[test]
    fn levels_and_depth() {
        let aig = xor_circuit();
        let levels = aig.levels();
        assert_eq!(levels[0], 0);
        // xor of two inputs = 3 ands, depth 2.
        assert_eq!(aig.depth(), 2);
        assert_eq!(aig.num_ands(), 3);
    }

    #[test]
    fn exhaustive_matches_single_evaluation() {
        let aig = xor_circuit();
        let table = aig.evaluate_exhaustive();
        for p in 0..4usize {
            let bits = [p & 1 != 0, p & 2 != 0];
            let want = aig.evaluate(&bits)[0];
            assert_eq!(table[0][0] >> p & 1 != 0, want);
        }
    }

    #[test]
    fn topological_invariant_holds() {
        let mut aig = Aig::new("t");
        let xs = aig.add_inputs("x", 4);
        let s = aig.xor_all(&xs);
        aig.add_output("s", s);
        for id in aig.iter_ands() {
            let (f0, f1) = aig.node(id).fanins().expect("and");
            assert!(f0.node() < id);
            assert!(f1.node() < id);
        }
    }

    #[test]
    #[should_panic(expected = "expected 2 input values")]
    fn evaluate_validates_arity() {
        let aig = xor_circuit();
        aig.evaluate(&[true]);
    }
}
