//! AND-inverter graph (AIG) infrastructure for the ALSRAC reproduction.
//!
//! An AIG models a multi-level combinational circuit as a directed acyclic
//! graph whose internal nodes are all two-input AND gates and whose edges
//! carry an optional complement (inverter) marker. This is the circuit
//! representation the ALSRAC flow (DAC 2020) operates on, and the same
//! representation used by ABC.
//!
//! The central types are:
//!
//! * [`Lit`] — a *literal*: a node reference plus a complement bit, packed in
//!   a `u32`. [`Lit::FALSE`] / [`Lit::TRUE`] denote the constants.
//! * [`NodeId`] — an index into the node table.
//! * [`Aig`] — the graph itself: a node table in topological order (fanins
//!   always precede their fanouts), a structural-hashing table guaranteeing
//!   that no two AND nodes have the same (normalized) fanin pair, named
//!   primary inputs, and named primary outputs.
//!
//! # Invariants
//!
//! 1. Node 0 is the constant-false node; `Lit::FALSE` is node 0 without
//!    complement and `Lit::TRUE` is node 0 with complement.
//! 2. For every AND node, both fanin literals refer to nodes with a strictly
//!    smaller index, so the node table order is a valid topological order.
//! 3. AND fanins are normalized so `fanin0 < fanin1` (by raw literal value),
//!    and the builder performs the standard constant/trivial folds
//!    (`x & 0 = 0`, `x & 1 = x`, `x & x = x`, `x & !x = 0`), so structurally
//!    equal nodes are always shared.
//!
//! Nodes are never removed in place; restructuring is expressed as a
//! *rebuild* (see [`Aig::rebuilt_with_substitutions`] and [`Aig::cleaned`])
//! which produces a fresh, compacted, re-hashed graph. This keeps every
//! intermediate graph valid and makes invariant violations impossible to
//! observe from safe code.
//!
//! # Example
//!
//! ```
//! use alsrac_aig::Aig;
//!
//! // Build a full adder: sum = a ^ b ^ cin, cout = majority(a, b, cin).
//! let mut aig = Aig::new("full_adder");
//! let a = aig.add_input("a");
//! let b = aig.add_input("b");
//! let cin = aig.add_input("cin");
//! let a_xor_b = aig.xor(a, b);
//! let sum = aig.xor(a_xor_b, cin);
//! let ab = aig.and(a, b);
//! let carry_prop = aig.and(cin, a_xor_b);
//! let cout = aig.or(ab, carry_prop);
//! aig.add_output("sum", sum);
//! aig.add_output("cout", cout);
//!
//! assert_eq!(aig.evaluate(&[true, false, true]), vec![false, true]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cone;
mod cuts;
mod error;
mod graph;
mod lit;
mod rebuild;
mod stats;
mod window;

pub use cone::{Cone, FanoutMap, MffcScratch};
pub use cuts::{Cut, CutSet};
pub use error::{AigError, RebuildError};
pub use graph::{Aig, Node};
pub use lit::{Lit, NodeId};
pub use stats::AigStats;
pub use window::{Window, WindowExtractor, WindowParams};
