//! Regenerates Table III: the benchmark inventory (circuit sizes).
//!
//! For each generated benchmark, prints the AIG node count, the mapped
//! cell area (ASIC suites) or 6-LUT count and depth (EPFL suites) —
//! the quantities the paper's Table III lists. Absolute values differ from
//! the paper (our circuits are generated, not the original files); this
//! table documents our substitutes' sizes.

use alsrac_bench::{asic_cost, fpga_cost, print_table, Options};
use alsrac_circuits::catalog;

fn main() {
    let options = Options::parse(std::env::args().skip(1));
    options.init_trace("table3");

    let mut rows = Vec::new();
    for bench in catalog::iscas_and_arith(options.scale) {
        let (area, delay) = asic_cost(&bench.aig);
        rows.push(vec![
            bench.paper_name.to_string(),
            bench.aig.num_inputs().to_string(),
            bench.aig.num_outputs().to_string(),
            bench.aig.num_ands().to_string(),
            format!("{area:.0}"),
            format!("{delay:.1}"),
        ]);
    }
    print_table(
        "Table III (a): ISCAS & arithmetic (ASIC: MCNC-like cell mapping)",
        &["Circuit", "#PI", "#PO", "#AND", "Area", "Delay"],
        &rows,
        &[],
    );

    for (title, suite) in [
        (
            "Table III (b): EPFL random/control (FPGA: 6-LUT mapping)",
            catalog::epfl_control(options.scale),
        ),
        (
            "Table III (c): EPFL arithmetic (FPGA: 6-LUT mapping)",
            catalog::epfl_arith(options.scale),
        ),
    ] {
        let mut rows = Vec::new();
        for bench in suite {
            let (luts, depth) = fpga_cost(&bench.aig);
            rows.push(vec![
                bench.paper_name.to_string(),
                bench.aig.num_inputs().to_string(),
                bench.aig.num_outputs().to_string(),
                bench.aig.num_ands().to_string(),
                format!("{luts:.0}"),
                format!("{depth:.0}"),
            ]);
        }
        print_table(
            title,
            &["Circuit", "#PI", "#PO", "#AND", "#LUT", "Depth"],
            &rows,
            &[],
        );
    }
    options.finish_trace();
}
