//! Full-sweep vs incremental simulation-engine benchmark.
//!
//! Runs the ALSRAC flow twice per bundled circuit — once with
//! `FlowConfig::full_resim` (re-simulate both circuits from scratch every
//! iteration, full-TFO-cone flip influences) and once with the incremental
//! engine (carried estimation simulation with cone-local updates,
//! event-driven scratch-arena influences). Both engines are exact, so the
//! two flow results are asserted bit-identical before anything is
//! recorded; the benchmark then compares *work*, measured in node-words
//! simulated (`sim_node_words` + `influence_words_computed` trace
//! counters), alongside wall time.
//!
//! Results land in `BENCH_sim.json` (hand-rolled JSON; the workspace has
//! no serializer by design). `--smoke` restricts the run to one small
//! circuit with a short iteration budget for CI, and still enforces the
//! same invariants: bit-identical flow output, `sim_words_saved > 0`, and
//! strictly fewer node-words than the full-sweep baseline.

use std::time::Instant;

use alsrac::flow::{run, FlowConfig, FlowResult};
use alsrac_circuits::catalog::{iscas_and_arith, Benchmark, Scale};
use alsrac_metrics::ErrorMetric;
use alsrac_rt::trace;

/// Work and wall-time measured for one flow run under one engine.
struct EngineRun {
    secs: f64,
    /// Node-words evaluated by `Simulation::new`/`Simulation::update`.
    sim_node_words: u64,
    /// Node-words evaluated while computing flip-influence masks.
    influence_words: u64,
    /// Node-words the incremental engine copied instead of recomputing.
    words_saved: u64,
    /// Cone-local `Simulation::update` calls (0 for the full engine).
    incremental_updates: u64,
    /// Influence propagations that quenched before reaching any output.
    early_exits: u64,
    result: FlowResult,
}

fn counter(counters: &[(String, u64)], name: &str) -> u64 {
    counters
        .iter()
        .find(|(n, _)| n == name)
        .map(|&(_, v)| v)
        .unwrap_or(0)
}

fn flow_config(max_iterations: usize, full_resim: bool) -> FlowConfig {
    FlowConfig {
        metric: ErrorMetric::ErrorRate,
        threshold: 0.10,
        max_iterations,
        seed: 42,
        full_resim,
        ..FlowConfig::default()
    }
}

fn run_engine(bench: &Benchmark, max_iterations: usize, full_resim: bool) -> EngineRun {
    // Counters only record while tracing is enabled; a sink writer keeps
    // the JSONL records out of the way while the totals accumulate.
    trace::enable_writer(Box::new(std::io::sink()));
    trace::reset();
    let config = flow_config(max_iterations, full_resim);
    let start = Instant::now();
    let result = run(&bench.aig, &config).expect("flow");
    let secs = start.elapsed().as_secs_f64();
    let (_, counters) = trace::snapshot();
    trace::disable();
    EngineRun {
        secs,
        sim_node_words: counter(&counters, "sim_node_words"),
        influence_words: counter(&counters, "influence_words_computed"),
        words_saved: counter(&counters, "sim_words_saved"),
        incremental_updates: counter(&counters, "sim_incremental_updates"),
        early_exits: counter(&counters, "influence_early_exits"),
        result,
    }
}

/// Bit-identical comparison of the two engines' flow results: iteration
/// and acceptance counts, the accepted-LAC history (raw f64 bits), and
/// the final measurement.
fn assert_identical(name: &str, full: &FlowResult, inc: &FlowResult) {
    assert_eq!(full.iterations, inc.iterations, "{name}: iterations differ");
    assert_eq!(full.applied, inc.applied, "{name}: applied counts differ");
    assert_eq!(
        full.approx.num_ands(),
        inc.approx.num_ands(),
        "{name}: final sizes differ"
    );
    assert_eq!(
        full.history.len(),
        inc.history.len(),
        "{name}: history lengths differ"
    );
    for (i, (a, b)) in full.history.iter().zip(&inc.history).enumerate() {
        assert_eq!(
            a.estimated_error.to_bits(),
            b.estimated_error.to_bits(),
            "{name}: accepted LAC {i}: estimated errors differ"
        );
        assert_eq!(a.ands, b.ands, "{name}: accepted LAC {i}: sizes differ");
    }
    assert_eq!(
        full.measured.error_rate.to_bits(),
        inc.measured.error_rate.to_bits(),
        "{name}: measured error rates differ"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_sim.json".to_string());

    let max_iterations = if smoke { 12 } else { 60 };
    let cases: Vec<Benchmark> = if smoke {
        iscas_and_arith(Scale::Test)
            .into_iter()
            .filter(|b| b.paper_name == "c1908")
            .collect()
    } else {
        iscas_and_arith(Scale::Test)
    };

    let mut entries = Vec::new();
    for bench in &cases {
        let full = run_engine(bench, max_iterations, true);
        let inc = run_engine(bench, max_iterations, false);
        assert_identical(bench.paper_name, &full.result, &inc.result);

        let full_words = full.sim_node_words + full.influence_words;
        let inc_words = inc.sim_node_words + inc.influence_words;
        assert!(
            inc.words_saved > 0,
            "{}: incremental engine saved no words",
            bench.paper_name
        );
        assert!(
            inc_words < full_words,
            "{}: incremental engine simulated {inc_words} node-words, \
             full-sweep baseline {full_words}",
            bench.paper_name
        );

        eprintln!(
            "{}: {} ANDs, {} applied in {} iters; node-words {} -> {} ({:.2}x), \
             wall {:.4}s -> {:.4}s ({:.2}x), {} early exits",
            bench.paper_name,
            bench.aig.num_ands(),
            inc.result.applied,
            inc.result.iterations,
            full_words,
            inc_words,
            full_words as f64 / inc_words.max(1) as f64,
            full.secs,
            inc.secs,
            full.secs / inc.secs,
            inc.early_exits,
        );
        entries.push((bench, full, inc));
    }

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!("  \"max_iterations\": {max_iterations},\n"));
    json.push_str("  \"seed\": 42,\n");
    json.push_str("  \"work_unit\": \"node-words simulated (64 patterns/word)\",\n");
    json.push_str("  \"cases\": [\n");
    for (i, (bench, full, inc)) in entries.iter().enumerate() {
        let full_words = full.sim_node_words + full.influence_words;
        let inc_words = inc.sim_node_words + inc.influence_words;
        json.push_str("    {\n");
        json.push_str(&format!("      \"circuit\": \"{}\",\n", bench.paper_name));
        json.push_str(&format!("      \"ands\": {},\n", bench.aig.num_ands()));
        json.push_str(&format!(
            "      \"iterations\": {},\n",
            inc.result.iterations
        ));
        json.push_str(&format!("      \"applied\": {},\n", inc.result.applied));
        json.push_str(&format!(
            "      \"full\": {{\"secs\": {:.6}, \"sim_node_words\": {}, \"influence_words\": {}}},\n",
            full.secs, full.sim_node_words, full.influence_words
        ));
        json.push_str(&format!(
            "      \"incremental\": {{\"secs\": {:.6}, \"sim_node_words\": {}, \
             \"influence_words\": {}, \"sim_words_saved\": {}, \
             \"incremental_updates\": {}, \"early_exits\": {}}},\n",
            inc.secs,
            inc.sim_node_words,
            inc.influence_words,
            inc.words_saved,
            inc.incremental_updates,
            inc.early_exits
        ));
        json.push_str(&format!(
            "      \"node_words_ratio\": {:.3},\n",
            full_words as f64 / inc_words.max(1) as f64
        ));
        json.push_str(&format!("      \"speedup\": {:.3}\n", full.secs / inc.secs));
        json.push_str(&format!(
            "    }}{}\n",
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    std::fs::write(&path, &json).expect("write benchmark JSON");
    println!("wrote {path}");
}
