//! Full-sweep vs incremental simulation-engine benchmark.
//!
//! Runs the ALSRAC flow twice per bundled circuit — once with
//! `FlowConfig::full_resim` (re-simulate both circuits from scratch every
//! iteration, full-TFO-cone flip influences, materialize-then-compare
//! estimation) and once with the incremental engine (carried estimation
//! simulation with cone-local batched updates, event-driven scratch-arena
//! influences fused into the estimation compare). Both engines are exact,
//! so the two flow results are asserted bit-identical before anything is
//! recorded; the benchmark then compares *work*, measured in node-words
//! simulated (`sim_node_words` + `influence_words_computed` trace
//! counters), alongside wall time.
//!
//! Wall time is the **minimum over [`REPEATS`] runs** of each engine: the
//! flow is deterministic, so every repeat performs the same work and the
//! minimum is the cleanest estimate of that work's cost on a noisy
//! single-hardware-thread host. When the resulting speedup still lands
//! below 1.0× the measurement is retried a bounded number of times
//! (folding minima) before the gate fails — scheduler noise gets retries,
//! a real regression does not pass.
//!
//! Results land in `BENCH_sim.json` (hand-rolled JSON; the workspace has
//! no serializer by design). Three modes:
//!
//! * default — every bundled Test-scale circuit, 60 iterations, writes
//!   `BENCH_sim.json`; gates per-circuit wall speedup ≥ 1.0×.
//! * `--smoke` — one small circuit with a short iteration budget for CI,
//!   same invariants: bit-identical flow output, `sim_words_saved > 0`,
//!   strictly fewer node-words than the full-sweep baseline, and wall
//!   speedup ≥ 1.0×.
//! * `--scale` — the ≥20k-AND generated circuit from `scale_benchmarks`,
//!   comparing the two engines under a windowed, estimation-heavy budget;
//!   splices a `"sim_engine"` block into an existing `BENCH_scale.json`
//!   (run `bench_window` first) proving the engine win carries to large
//!   circuits.
//!
//! Set `ALSRAC_TRACE` to keep the full JSONL record stream (including one
//! `totals` record per engine run) for `report` to validate and break
//! down; counters are collected either way.

use std::time::Instant;

use alsrac::flow::{run, FlowConfig, FlowResult};
use alsrac::window::WindowConfig;
use alsrac_circuits::catalog::{iscas_and_arith, scale_benchmarks, Benchmark, Scale};
use alsrac_metrics::ErrorMetric;
use alsrac_rt::json::Json;
use alsrac_rt::trace;

/// Timed runs per engine; the reported wall time is their minimum.
const REPEATS: usize = 3;

/// Extra measurement rounds allowed before a sub-1.0× speedup is treated
/// as a real regression rather than scheduler noise.
const RETRY_LIMIT: usize = 4;

/// Work and wall-time measured for one flow run under one engine.
struct EngineRun {
    /// Minimum wall seconds over [`REPEATS`] identical runs.
    secs: f64,
    /// Minimum engine-attributed wall seconds over [`REPEATS`] runs: the
    /// summed `estimate` + `sim_update` spans, i.e. the simulation-engine
    /// work itself without the shared LAC-generation/optimizer phases
    /// (which are identical in both runs and dominate small circuits).
    engine_secs: f64,
    /// Node-words evaluated by `Simulation::new`/`Simulation::update`.
    sim_node_words: u64,
    /// Node-words evaluated while computing flip-influence masks.
    influence_words: u64,
    /// Node-words the incremental engine copied instead of recomputing.
    words_saved: u64,
    /// Cone-local `Simulation::update` calls (0 for the full engine).
    incremental_updates: u64,
    /// Influence propagations whose flip died out before *any* output.
    early_exits: u64,
    /// Propagation visits where the flip quenched at one node (zero diff).
    quenched: u64,
    result: FlowResult,
}

fn counter(counters: &[(String, u64)], name: &str) -> u64 {
    counters
        .iter()
        .find(|(n, _)| n == name)
        .map(|&(_, v)| v)
        .unwrap_or(0)
}

fn span_ns(spans: &[trace::PhaseSnapshot], name: &str) -> u64 {
    spans
        .iter()
        .find(|s| s.name == name)
        .map(|s| s.ns)
        .unwrap_or(0)
}

fn flow_config(max_iterations: usize, full_resim: bool) -> FlowConfig {
    FlowConfig {
        metric: ErrorMetric::ErrorRate,
        threshold: 0.10,
        max_iterations,
        seed: 42,
        full_resim,
        ..FlowConfig::default()
    }
}

/// Scale-experiment configuration: estimation-heavy (8192 estimation
/// patterns — 128 words per node, so the batched kernel runs 32 full
/// 4-word steps per visit) with a bounded window so LAC generation stays
/// tractable at 20k+ ANDs. Windowing is identical in both runs and so
/// cancels out of the comparison; only the estimation engine differs.
fn scale_flow_config(full_resim: bool) -> FlowConfig {
    FlowConfig {
        metric: ErrorMetric::ErrorRate,
        threshold: 0.05,
        max_iterations: 4,
        lac_limit: 10,
        est_rounds: 8192,
        measure_rounds: 1024,
        optimize_after_apply: false,
        seed: 42,
        full_resim,
        window: WindowConfig {
            max_tfi: 150,
            ..WindowConfig::default()
        },
        ..FlowConfig::default()
    }
}

/// Runs the flow [`REPEATS`] times under one configuration, asserting the
/// repeats bit-identical to each other, and returns the minimum wall time
/// together with the (repeat-invariant) work counters. Emits one `totals`
/// trace record per call so an `ALSRAC_TRACE` stream stays auditable.
fn run_engine(bench: &Benchmark, config: &FlowConfig) -> EngineRun {
    let mut best: Option<EngineRun> = None;
    for _ in 0..REPEATS {
        trace::reset();
        let start = Instant::now();
        let result = run(&bench.aig, config).expect("flow");
        let secs = start.elapsed().as_secs_f64();
        let (spans, counters) = trace::snapshot();
        let engine_ns = span_ns(&spans, "flow/estimate") + span_ns(&spans, "flow/sim_update");
        let this = EngineRun {
            secs,
            engine_secs: engine_ns as f64 / 1e9,
            sim_node_words: counter(&counters, "sim_node_words"),
            influence_words: counter(&counters, "influence_words_computed"),
            words_saved: counter(&counters, "sim_words_saved"),
            incremental_updates: counter(&counters, "sim_incremental_updates"),
            early_exits: counter(&counters, "influence_early_exits"),
            quenched: counter(&counters, "influence_quenched_nodes"),
            result,
        };
        match &mut best {
            None => best = Some(this),
            Some(b) => {
                assert_identical(bench.paper_name, &b.result, &this.result);
                assert_eq!(
                    (b.sim_node_words, b.influence_words, b.words_saved),
                    (this.sim_node_words, this.influence_words, this.words_saved),
                    "{}: work counters drifted between repeats",
                    bench.paper_name
                );
                b.secs = b.secs.min(this.secs);
                b.engine_secs = b.engine_secs.min(this.engine_secs);
            }
        }
    }
    trace::emit_totals();
    best.expect("REPEATS >= 1")
}

/// Re-measures both engines (folding minima into the existing runs) until
/// the engine-attributed wall speedup clears 1.0× or the retry budget runs
/// out. Returns the final (flow, engine) speedup pair; the caller asserts
/// on the engine one. The whole-flow ratio is reported but not gated: on
/// small circuits the shared optimizer phase is >90% of the wall, so the
/// true flow-level difference sits below scheduler-noise resolution.
fn remeasure_until_speedup(
    bench: &Benchmark,
    full_config: &FlowConfig,
    inc_config: &FlowConfig,
    full: &mut EngineRun,
    inc: &mut EngineRun,
) -> (f64, f64) {
    let mut retries = 0;
    while full.engine_secs / inc.engine_secs < 1.0 && retries < RETRY_LIMIT {
        retries += 1;
        eprintln!(
            "{}: flow speedup {:.3}, engine speedup {:.3} — re-measuring \
             (attempt {retries}/{RETRY_LIMIT})",
            bench.paper_name,
            full.secs / inc.secs,
            full.engine_secs / inc.engine_secs
        );
        let f = run_engine(bench, full_config);
        let i = run_engine(bench, inc_config);
        assert_identical(bench.paper_name, &f.result, &full.result);
        assert_identical(bench.paper_name, &i.result, &inc.result);
        full.secs = full.secs.min(f.secs);
        inc.secs = inc.secs.min(i.secs);
        full.engine_secs = full.engine_secs.min(f.engine_secs);
        inc.engine_secs = inc.engine_secs.min(i.engine_secs);
    }
    (full.secs / inc.secs, full.engine_secs / inc.engine_secs)
}

/// Bit-identical comparison of the two engines' flow results: iteration
/// and acceptance counts, the accepted-LAC history (raw f64 bits), and
/// the final measurement.
fn assert_identical(name: &str, full: &FlowResult, inc: &FlowResult) {
    assert_eq!(full.iterations, inc.iterations, "{name}: iterations differ");
    assert_eq!(full.applied, inc.applied, "{name}: applied counts differ");
    assert_eq!(
        full.approx.num_ands(),
        inc.approx.num_ands(),
        "{name}: final sizes differ"
    );
    assert_eq!(
        full.history.len(),
        inc.history.len(),
        "{name}: history lengths differ"
    );
    for (i, (a, b)) in full.history.iter().zip(&inc.history).enumerate() {
        assert_eq!(
            a.estimated_error.to_bits(),
            b.estimated_error.to_bits(),
            "{name}: accepted LAC {i}: estimated errors differ"
        );
        assert_eq!(a.ands, b.ands, "{name}: accepted LAC {i}: sizes differ");
    }
    assert_eq!(
        full.measured.error_rate.to_bits(),
        inc.measured.error_rate.to_bits(),
        "{name}: measured error rates differ"
    );
}

/// Hand-rolled JSON for one engine's measurement block.
fn engine_json(run: &EngineRun, incremental: bool) -> String {
    if incremental {
        format!(
            "{{\"secs\": {:.6}, \"engine_secs\": {:.6}, \"sim_node_words\": {}, \
             \"influence_words\": {}, \"sim_words_saved\": {}, \
             \"incremental_updates\": {}, \"early_exits\": {}, \
             \"quenched\": {}}}",
            run.secs,
            run.engine_secs,
            run.sim_node_words,
            run.influence_words,
            run.words_saved,
            run.incremental_updates,
            run.early_exits,
            run.quenched
        )
    } else {
        format!(
            "{{\"secs\": {:.6}, \"engine_secs\": {:.6}, \"sim_node_words\": {}, \
             \"influence_words\": {}}}",
            run.secs, run.engine_secs, run.sim_node_words, run.influence_words
        )
    }
}

fn total_words(run: &EngineRun) -> u64 {
    run.sim_node_words + run.influence_words
}

/// Default and `--smoke` modes: per-circuit full-vs-incremental sweep
/// writing `BENCH_sim.json` (or the smoke copy CI inspects).
fn sweep(path: &str, smoke: bool) {
    let max_iterations = if smoke { 12 } else { 60 };
    let cases: Vec<Benchmark> = if smoke {
        iscas_and_arith(Scale::Test)
            .into_iter()
            .filter(|b| b.paper_name == "c1908")
            .collect()
    } else {
        iscas_and_arith(Scale::Test)
    };

    let full_config = flow_config(max_iterations, true);
    let inc_config = flow_config(max_iterations, false);
    let mut entries = Vec::new();
    for bench in &cases {
        let mut full = run_engine(bench, &full_config);
        let mut inc = run_engine(bench, &inc_config);
        assert_identical(bench.paper_name, &full.result, &inc.result);

        let full_words = total_words(&full);
        let inc_words = total_words(&inc);
        assert!(
            inc.words_saved > 0,
            "{}: incremental engine saved no words",
            bench.paper_name
        );
        assert!(
            inc_words < full_words,
            "{}: incremental engine simulated {inc_words} node-words, \
             full-sweep baseline {full_words}",
            bench.paper_name
        );
        let (flow_speedup, speedup) =
            remeasure_until_speedup(bench, &full_config, &inc_config, &mut full, &mut inc);
        assert!(
            speedup >= 1.0,
            "{}: incremental engine slower than full sweep after retries \
             (flow {flow_speedup:.3}x, engine {speedup:.3}x)",
            bench.paper_name
        );

        eprintln!(
            "{}: {} ANDs, {} applied in {} iters; node-words {} -> {} ({:.2}x), \
             engine {:.2}ms -> {:.2}ms ({:.2}x), flow {:.4}s -> {:.4}s ({:.2}x), \
             {} quenched, {} early exits",
            bench.paper_name,
            bench.aig.num_ands(),
            inc.result.applied,
            inc.result.iterations,
            full_words,
            inc_words,
            full_words as f64 / inc_words.max(1) as f64,
            full.engine_secs * 1e3,
            inc.engine_secs * 1e3,
            speedup,
            full.secs,
            inc.secs,
            flow_speedup,
            inc.quenched,
            inc.early_exits,
        );
        entries.push((bench, full, inc));
    }

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!("  \"max_iterations\": {max_iterations},\n"));
    json.push_str("  \"seed\": 42,\n");
    json.push_str(&format!(
        "  \"timing\": \"min wall seconds over {REPEATS} runs per engine\",\n"
    ));
    json.push_str(
        "  \"speedup_definition\": \"engine-attributed wall time (estimate + sim_update \
         spans); flow_speedup is whole-process wall including the shared \
         LAC-generation/optimizer phases\",\n",
    );
    json.push_str("  \"work_unit\": \"node-words simulated (64 patterns/word)\",\n");
    json.push_str("  \"cases\": [\n");
    for (i, (bench, full, inc)) in entries.iter().enumerate() {
        let full_words = total_words(full);
        let inc_words = total_words(inc);
        json.push_str("    {\n");
        json.push_str(&format!("      \"circuit\": \"{}\",\n", bench.paper_name));
        json.push_str(&format!("      \"ands\": {},\n", bench.aig.num_ands()));
        json.push_str(&format!(
            "      \"iterations\": {},\n",
            inc.result.iterations
        ));
        json.push_str(&format!("      \"applied\": {},\n", inc.result.applied));
        json.push_str(&format!("      \"full\": {},\n", engine_json(full, false)));
        json.push_str(&format!(
            "      \"incremental\": {},\n",
            engine_json(inc, true)
        ));
        json.push_str(&format!(
            "      \"node_words_ratio\": {:.3},\n",
            full_words as f64 / inc_words.max(1) as f64
        ));
        json.push_str(&format!(
            "      \"flow_speedup\": {:.3},\n",
            full.secs / inc.secs
        ));
        json.push_str(&format!(
            "      \"speedup\": {:.3}\n",
            full.engine_secs / inc.engine_secs
        ));
        json.push_str(&format!(
            "    }}{}\n",
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    std::fs::write(path, &json).expect("write benchmark JSON");
    println!("wrote {path}");
}

/// `--scale` mode: one ≥20k-AND circuit, both engines, estimation-heavy
/// budget. Splices the result into an existing `BENCH_scale.json` as a
/// top-level `"sim_engine"` object (run `bench_window` — which owns the
/// rest of that file — first).
fn scale(path: &str) {
    let existing = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("{path}: cannot read ({e}); run `bench_window {path}` first"));
    assert!(
        !existing.contains("\"sim_engine\""),
        "{path} already has a \"sim_engine\" block; re-run `bench_window {path}` first"
    );

    let bench = scale_benchmarks()
        .into_iter()
        .find(|b| b.paper_name == "mtp48")
        .expect("mtp48 in scale_benchmarks");
    assert!(
        bench.aig.num_ands() >= 20_000,
        "scale circuit below 20k ANDs"
    );
    eprintln!(
        "scale run: {} ({} ANDs, {} inputs, {} outputs)",
        bench.paper_name,
        bench.aig.num_ands(),
        bench.aig.num_inputs(),
        bench.aig.num_outputs()
    );

    let full_config = scale_flow_config(true);
    let inc_config = scale_flow_config(false);
    let mut full = run_engine(&bench, &full_config);
    let mut inc = run_engine(&bench, &inc_config);
    assert_identical(bench.paper_name, &full.result, &inc.result);
    let full_words = total_words(&full);
    let inc_words = total_words(&inc);
    assert!(
        inc.words_saved > 0 && inc_words < full_words,
        "scale: incremental engine did not reduce node-words \
         ({inc_words} vs {full_words})"
    );
    let (flow_speedup, speedup) =
        remeasure_until_speedup(&bench, &full_config, &inc_config, &mut full, &mut inc);
    assert!(
        speedup >= 1.0,
        "scale: incremental engine slower than full sweep after retries \
         (flow {flow_speedup:.3}x, engine {speedup:.3}x)"
    );
    eprintln!(
        "scale: node-words {} -> {} ({:.2}x), engine {:.3}s -> {:.3}s ({:.2}x), \
         flow {:.3}s -> {:.3}s ({:.2}x)",
        full_words,
        inc_words,
        full_words as f64 / inc_words.max(1) as f64,
        full.engine_secs,
        inc.engine_secs,
        speedup,
        full.secs,
        inc.secs,
        flow_speedup
    );

    let block = format!(
        "  \"sim_engine\": {{\n\
         \x20   \"circuit\": \"{}\",\n\
         \x20   \"ands\": {},\n\
         \x20   \"est_patterns\": 8192,\n\
         \x20   \"max_iterations\": 4,\n\
         \x20   \"seed\": 42,\n\
         \x20   \"timing\": \"min wall seconds over {REPEATS} runs per engine\",\n\
         \x20   \"full\": {},\n\
         \x20   \"incremental\": {},\n\
         \x20   \"node_words_ratio\": {:.3},\n\
         \x20   \"flow_speedup\": {:.3},\n\
         \x20   \"speedup\": {:.3}\n\
         \x20 }}",
        bench.paper_name,
        bench.aig.num_ands(),
        engine_json(&full, false),
        engine_json(&inc, true),
        full_words as f64 / inc_words.max(1) as f64,
        full.secs / inc.secs,
        full.engine_secs / inc.engine_secs
    );
    // bench_window's hand-rolled output ends `...\n}\n`; splice before the
    // closing brace and prove the result still parses.
    let trimmed = existing.trim_end();
    let body = trimmed
        .strip_suffix('}')
        .unwrap_or_else(|| panic!("{path}: not a JSON object"))
        .trim_end()
        .trim_end_matches(',');
    let merged = format!("{body},\n{block}\n}}\n");
    Json::parse(&merged).unwrap_or_else(|e| panic!("{path}: splice produced invalid JSON: {e}"));
    std::fs::write(path, &merged).expect("write benchmark JSON");
    println!("wrote {path} (added \"sim_engine\")");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let scale_mode = args.iter().any(|a| a == "--scale");
    let path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| {
            if scale_mode {
                "BENCH_scale.json".to_string()
            } else {
                "BENCH_sim.json".to_string()
            }
        });

    // Counters are always collected; set ALSRAC_TRACE to also keep the
    // full per-run record stream (plus per-engine totals) for `report`.
    match trace::init_from_env() {
        Ok(Some(_)) => {}
        Ok(None) => trace::enable_writer(Box::new(std::io::sink())),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }

    if scale_mode {
        scale(&path);
    } else {
        sweep(&path, smoke);
    }
    trace::disable();
}
