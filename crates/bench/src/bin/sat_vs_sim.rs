//! The paper's scalability argument, measured: simulation-only feasibility
//! checking (ALSRAC, §III-B2) vs the exact SAT-based check it replaces
//! (Mishchenko et al. [18], our `alsrac-sat` implementation).
//!
//! For every AND node of each benchmark, both methods decide whether the
//! node's first divisor set can form a resubstitution. We report total
//! runtime and the agreement structure: the simulation check with few
//! patterns accepts a superset of the SAT check (that is the point — the
//! difference is the approximation head-room).

use std::time::Instant;

use alsrac::care::ApproximateCareSet;
use alsrac::divisors::{select_divisor_sets, DivisorConfig};
use alsrac_aig::Lit;
use alsrac_bench::{print_table, Options};
use alsrac_circuits::catalog;
use alsrac_sat::cec::exact_resub_feasible;
use alsrac_sim::{PatternBuffer, Simulation};

fn main() {
    let options = Options::parse(std::env::args().skip(1));
    options.init_trace("sat_vs_sim");
    let mut rows = Vec::new();
    for bench in catalog::iscas_and_arith(options.scale)
        .into_iter()
        .take(if options.full { usize::MAX } else { 6 })
    {
        let aig = &bench.aig;
        let divisor_config = DivisorConfig::default();
        // Collect one candidate divisor set per node.
        let queries: Vec<(Lit, Vec<Lit>)> = aig
            .iter_ands()
            .filter_map(|node| {
                select_divisor_sets(aig, node, &divisor_config)
                    .into_iter()
                    .find(|set| set.len() >= 2)
                    .map(|set| (node.lit(), set.iter().map(|&d| d.lit()).collect::<Vec<_>>()))
            })
            .collect();

        // Simulation-only check (N = 32 patterns).
        let patterns = PatternBuffer::random(aig.num_inputs(), 32, 7);
        let start = Instant::now();
        let sim = Simulation::new(aig, &patterns);
        let sim_feasible: Vec<bool> = queries
            .iter()
            .map(|(node, divisors)| {
                ApproximateCareSet::harvest(&sim, &patterns, *node, divisors).is_some()
            })
            .collect();
        let sim_time = start.elapsed().as_secs_f64();

        // Exact SAT check.
        let start = Instant::now();
        let sat_feasible: Vec<bool> = queries
            .iter()
            .map(|(node, divisors)| exact_resub_feasible(aig, *node, divisors))
            .collect();
        let sat_time = start.elapsed().as_secs_f64();

        // The simulation check must accept everything SAT accepts
        // (simulated patterns are a subset of all patterns).
        let mut superset_violations = 0usize;
        let mut extra_accepts = 0usize;
        for (s, e) in sim_feasible.iter().zip(&sat_feasible) {
            if *e && !*s {
                superset_violations += 1;
            }
            if *s && !*e {
                extra_accepts += 1;
            }
        }
        assert_eq!(
            superset_violations, 0,
            "simulation rejected a SAT-feasible divisor set"
        );

        rows.push(vec![
            bench.paper_name.to_string(),
            queries.len().to_string(),
            format!("{:.4}", sim_time),
            format!("{:.4}", sat_time),
            format!("{:.0}x", sat_time / sim_time.max(1e-9)),
            extra_accepts.to_string(),
        ]);
        eprintln!("done: {}", bench.paper_name);
    }
    print_table(
        "Feasibility checking: simulation (N=32) vs exact SAT (Theorem 1)",
        &[
            "Circuit",
            "Queries",
            "Sim t(s)",
            "SAT t(s)",
            "Speedup",
            "Approx-only accepts",
        ],
        &rows,
        &[],
    );
    println!(
        "\n'Approx-only accepts' counts divisor sets usable only under the\n\
         approximate care set — the approximation head-room ALSRAC exploits."
    );
    options.finish_trace();
}
