//! Windowed vs whole-circuit resubstitution benchmark.
//!
//! Two modes. `--smoke` (the CI gate) runs the ALSRAC flow twice on every
//! bundled Test-scale circuit — once with windowing enabled (the default
//! [`FlowConfig`]) and once with [`WindowConfig::disabled`] — and asserts
//! the two results bit-identical: the window bound covers every pivot's
//! TFI on these circuits and the signature pre-screen only skips divisor
//! sets the harvest provably rejects, so windowing must not change a
//! single bit. It also asserts the `window_*` trace counters are live.
//!
//! The default mode is the scale experiment: a ≥10k-AND generated circuit
//! (from [`scale_benchmarks`]) runs the windowed flow, which must finish
//! in under 60 seconds, while the whole-circuit path runs under a wall
//! deadline; its time (or timeout) and the windowed/whole ratio land in
//! `BENCH_scale.json` together with the divisor-filter counters.

use std::time::{Duration, Instant};

use alsrac::flow::{run, FlowConfig, FlowResult};
use alsrac::window::WindowConfig;
use alsrac_circuits::catalog::{iscas_and_arith, scale_benchmarks, Benchmark, Scale};
use alsrac_metrics::ErrorMetric;
use alsrac_rt::trace;

/// Wall-time and telemetry of one flow run.
struct WindowRun {
    secs: f64,
    window_extracted: u64,
    window_nodes: u64,
    divisors_filtered: u64,
    result: FlowResult,
}

fn counter(counters: &[(String, u64)], name: &str) -> u64 {
    counters
        .iter()
        .find(|(n, _)| n == name)
        .map(|&(_, v)| v)
        .unwrap_or(0)
}

fn smoke_config(windowed: bool) -> FlowConfig {
    FlowConfig {
        metric: ErrorMetric::ErrorRate,
        threshold: 0.10,
        max_iterations: 12,
        seed: 42,
        window: if windowed {
            WindowConfig::default()
        } else {
            WindowConfig::disabled()
        },
        ..FlowConfig::default()
    }
}

/// Scale-experiment configuration: a short, optimizer-free budget so the
/// comparison isolates the resubstitution core (windowing only changes
/// LAC generation; estimation and measurement are shared costs). Unlike
/// the smoke gate — whose default bound covers whole TFIs to stay
/// bit-identical — the scale run uses a genuinely bounded window, which
/// is the point of windowing: per-pivot cost stops tracking circuit size.
fn scale_config(windowed: bool) -> FlowConfig {
    FlowConfig {
        metric: ErrorMetric::ErrorRate,
        threshold: 0.05,
        max_iterations: 2,
        est_rounds: 64,
        measure_rounds: 1024,
        optimize_after_apply: false,
        seed: 42,
        window: if windowed {
            WindowConfig {
                max_tfi: 150,
                ..WindowConfig::default()
            }
        } else {
            WindowConfig::disabled()
        },
        ..FlowConfig::default()
    }
}

fn run_flow(bench: &Benchmark, config: &FlowConfig) -> WindowRun {
    // Counters are always collected; set ALSRAC_TRACE to also keep the
    // full per-iteration record stream for `report` to break down.
    match trace::init_from_env() {
        Ok(Some(_)) => {}
        Ok(None) => trace::enable_writer(Box::new(std::io::sink())),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
    trace::reset();
    let start = Instant::now();
    let result = run(&bench.aig, config).expect("flow");
    let secs = start.elapsed().as_secs_f64();
    let (_, counters) = trace::snapshot();
    trace::disable();
    WindowRun {
        secs,
        window_extracted: counter(&counters, "window_extracted"),
        window_nodes: counter(&counters, "window_nodes"),
        divisors_filtered: counter(&counters, "divisors_filtered_by_signature"),
        result,
    }
}

/// Bit-identical comparison of the windowed and whole-circuit results.
fn assert_identical(name: &str, whole: &FlowResult, win: &FlowResult) {
    assert_eq!(
        whole.iterations, win.iterations,
        "{name}: iterations differ"
    );
    assert_eq!(whole.applied, win.applied, "{name}: applied counts differ");
    assert_eq!(
        whole.approx.num_ands(),
        win.approx.num_ands(),
        "{name}: final sizes differ"
    );
    assert_eq!(
        whole.history.len(),
        win.history.len(),
        "{name}: history lengths differ"
    );
    for (i, (a, b)) in whole.history.iter().zip(&win.history).enumerate() {
        assert_eq!(
            a.estimated_error.to_bits(),
            b.estimated_error.to_bits(),
            "{name}: accepted LAC {i}: estimated errors differ"
        );
        assert_eq!(a.ands, b.ands, "{name}: accepted LAC {i}: sizes differ");
    }
    assert_eq!(
        whole.measured.error_rate.to_bits(),
        win.measured.error_rate.to_bits(),
        "{name}: measured error rates differ"
    );
}

fn smoke(path: &str) {
    let cases = iscas_and_arith(Scale::Test);
    let mut entries = Vec::new();
    for bench in &cases {
        let win = run_flow(bench, &smoke_config(true));
        let whole = run_flow(bench, &smoke_config(false));
        assert_identical(bench.paper_name, &whole.result, &win.result);
        assert!(
            win.window_extracted > 0,
            "{}: windowed run extracted no windows",
            bench.paper_name
        );
        assert!(
            win.window_nodes >= win.window_extracted,
            "{}: window_nodes counter implausibly small",
            bench.paper_name
        );
        assert_eq!(
            whole.window_extracted, 0,
            "{}: disabled run extracted windows",
            bench.paper_name
        );
        eprintln!(
            "{}: {} ANDs, bit-identical over {} iters ({} applied); \
             {} windows (avg {:.1} nodes), {} divisor sets pre-screened",
            bench.paper_name,
            bench.aig.num_ands(),
            win.result.iterations,
            win.result.applied,
            win.window_extracted,
            win.window_nodes as f64 / win.window_extracted.max(1) as f64,
            win.divisors_filtered,
        );
        entries.push((bench, whole, win));
    }

    let mut json = String::from("{\n");
    json.push_str("  \"smoke\": true,\n");
    json.push_str("  \"seed\": 42,\n");
    json.push_str("  \"cases\": [\n");
    for (i, (bench, whole, win)) in entries.iter().enumerate() {
        json.push_str("    {\n");
        json.push_str(&format!("      \"circuit\": \"{}\",\n", bench.paper_name));
        json.push_str(&format!("      \"ands\": {},\n", bench.aig.num_ands()));
        json.push_str(&format!(
            "      \"iterations\": {},\n",
            win.result.iterations
        ));
        json.push_str(&format!("      \"applied\": {},\n", win.result.applied));
        json.push_str("      \"bit_identical\": true,\n");
        json.push_str(&format!(
            "      \"window_extracted\": {},\n",
            win.window_extracted
        ));
        json.push_str(&format!("      \"window_nodes\": {},\n", win.window_nodes));
        json.push_str(&format!(
            "      \"divisors_filtered_by_signature\": {},\n",
            win.divisors_filtered
        ));
        json.push_str(&format!(
            "      \"windowed_secs\": {:.6},\n      \"whole_secs\": {:.6}\n",
            win.secs, whole.secs
        ));
        json.push_str(&format!(
            "    }}{}\n",
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(path, &json).expect("write benchmark JSON");
    println!("wrote {path}");
}

fn scale(path: &str, circuit: &str) {
    let bench = scale_benchmarks()
        .into_iter()
        .find(|b| b.paper_name == circuit)
        .unwrap_or_else(|| panic!("unknown scale circuit '{circuit}'"));
    assert!(
        bench.aig.num_ands() >= 10_000,
        "scale circuit below 10k ANDs"
    );
    eprintln!(
        "scale run: {} ({} ANDs, {} inputs, {} outputs)",
        bench.paper_name,
        bench.aig.num_ands(),
        bench.aig.num_inputs(),
        bench.aig.num_outputs()
    );

    let win = run_flow(&bench, &scale_config(true));
    eprintln!(
        "windowed: {:.2}s, {} applied in {} iters, final {} ANDs, \
         error {:.5}; {} windows (avg {:.1} nodes), {} sets pre-screened",
        win.secs,
        win.result.applied,
        win.result.iterations,
        win.result.approx.num_ands(),
        win.result.measured.error_rate,
        win.window_extracted,
        win.window_nodes as f64 / win.window_extracted.max(1) as f64,
        win.divisors_filtered,
    );
    assert!(
        win.secs < 60.0,
        "windowed flow took {:.1}s (budget 60s)",
        win.secs
    );

    // Whole-circuit path under a wall deadline: generous enough that a
    // finishing run is timed fairly, bounded so a pathological one cannot
    // hang the benchmark. The worker thread is detached on timeout; the
    // process exits right after writing the JSON.
    let deadline = Duration::from_secs_f64((win.secs * 20.0).max(300.0));
    let (tx, rx) = std::sync::mpsc::channel();
    let aig = bench.aig.clone();
    std::thread::spawn(move || {
        let config = scale_config(false);
        let start = Instant::now();
        let result = run(&aig, &config).expect("flow");
        let _ = tx.send((start.elapsed().as_secs_f64(), result));
    });
    let whole = rx.recv_timeout(deadline).ok();

    let (whole_secs, whole_desc) = match &whole {
        Some((secs, result)) => {
            eprintln!(
                "whole-circuit: {:.2}s, {} applied, final {} ANDs, error {:.5}",
                secs,
                result.applied,
                result.approx.num_ands(),
                result.measured.error_rate
            );
            (Some(*secs), format!("{secs:.6}"))
        }
        None => {
            eprintln!(
                "whole-circuit: timed out after {:.0}s",
                deadline.as_secs_f64()
            );
            (None, "null".to_string())
        }
    };
    let ratio = whole_secs.map(|s| s / win.secs);
    assert!(
        whole_secs.is_none() || ratio.unwrap_or(0.0) >= 5.0,
        "whole-circuit path finished in {whole_desc}s, less than 5x the \
         windowed {:.2}s",
        win.secs
    );

    let mut json = String::from("{\n");
    json.push_str("  \"smoke\": false,\n");
    json.push_str("  \"seed\": 42,\n");
    json.push_str(&format!("  \"circuit\": \"{}\",\n", bench.paper_name));
    json.push_str(&format!("  \"ands\": {},\n", bench.aig.num_ands()));
    json.push_str(&format!(
        "  \"windowed\": {{\"secs\": {:.6}, \"iterations\": {}, \"applied\": {}, \
         \"final_ands\": {}, \"error_rate\": {:.8}, \"window_extracted\": {}, \
         \"window_nodes\": {}, \"divisors_filtered_by_signature\": {}}},\n",
        win.secs,
        win.result.iterations,
        win.result.applied,
        win.result.approx.num_ands(),
        win.result.measured.error_rate,
        win.window_extracted,
        win.window_nodes,
        win.divisors_filtered
    ));
    match &whole {
        Some((secs, result)) => {
            json.push_str(&format!(
                "  \"whole_circuit\": {{\"secs\": {:.6}, \"timed_out\": false, \
                 \"final_ands\": {}, \"error_rate\": {:.8}}},\n",
                secs,
                result.approx.num_ands(),
                result.measured.error_rate
            ));
        }
        None => {
            json.push_str(&format!(
                "  \"whole_circuit\": {{\"secs\": null, \"timed_out\": true, \
                 \"deadline_secs\": {:.1}}},\n",
                deadline.as_secs_f64()
            ));
        }
    }
    json.push_str(&format!(
        "  \"speedup\": {}\n",
        ratio.map_or("null".to_string(), |r| format!("{r:.3}"))
    ));
    json.push_str("}\n");
    std::fs::write(path, &json).expect("write benchmark JSON");
    println!("wrote {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let is_smoke = args.iter().any(|a| a == "--smoke");
    let circuit = args
        .iter()
        .position(|a| a == "--circuit")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "mtp48".to_string());
    let path = args
        .iter()
        .enumerate()
        .filter(|&(i, a)| !a.starts_with("--") && (i == 0 || args[i - 1] != "--circuit"))
        .map(|(_, a)| a.clone())
        .next()
        .unwrap_or_else(|| "BENCH_scale.json".to_string());

    if is_smoke {
        smoke(&path);
    } else {
        scale(&path, &circuit);
    }
}
