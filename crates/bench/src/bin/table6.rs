//! Regenerates Table VI: ALSRAC vs Liu's method on FPGA designs under a
//! 1% error-rate constraint.
//!
//! EPFL random/control benchmarks, mapped to 6-LUTs; area = LUT count,
//! delay = LUT depth. The paper runs one threshold (ER = 1%).

use alsrac::baseline::liu::{self, LiuConfig};
use alsrac::flow::{self, FlowConfig};
use alsrac_bench::{average_outcome, fpga_cost, percent, print_table, within_budget, Options};
use alsrac_circuits::catalog;
use alsrac_metrics::ErrorMetric;
use alsrac_rt::pool;

fn main() {
    let options = Options::parse(std::env::args().skip(1));
    options.init_trace("table6");
    let period = if options.scale == alsrac_circuits::catalog::Scale::Paper {
        8
    } else {
        1
    };
    let threshold = 0.01;

    // Per-circuit fan-out on the hermetic pool; deterministic per seed.
    let benches = catalog::epfl_control(options.scale);
    let rows = pool::par_map(&benches, |bench| {
        let exact = &bench.aig;
        let a = average_outcome(
            exact,
            options.seeds,
            fpga_cost,
            |seed| {
                let config = FlowConfig {
                    metric: ErrorMetric::ErrorRate,
                    threshold,
                    seed,
                    max_iterations: 600,
                    est_rounds: 1024,
                    optimize_period: period,
                    ..FlowConfig::default()
                };
                flow::run(exact, &config).expect("ALSRAC flow")
            },
            within_budget(ErrorMetric::ErrorRate, threshold),
        );
        let l = average_outcome(
            exact,
            options.seeds,
            fpga_cost,
            |seed| {
                let config = LiuConfig {
                    metric: ErrorMetric::ErrorRate,
                    threshold,
                    seed,
                    steps: if options.full { 600 } else { 200 },
                    ..LiuConfig::default()
                };
                liu::run(exact, &config).expect("Liu flow")
            },
            within_budget(ErrorMetric::ErrorRate, threshold),
        );
        let row = vec![
            bench.paper_name.to_string(),
            percent(a.area_ratio),
            percent(l.area_ratio),
            percent(a.delay_ratio),
            percent(l.delay_ratio),
            format!("{:.1}", a.seconds),
            format!("{}/{}", a.violations, l.violations),
        ];
        eprintln!("done: {} {:?}", bench.paper_name, row);
        row
    });
    print_table(
        "Table VI: ALSRAC vs Liu under ER = 1% (FPGA, 6-LUT)",
        &[
            "Circuit",
            "ALSRAC area",
            "Liu area",
            "ALSRAC delay",
            "Liu delay",
            "ALSRAC t(s)",
            "viol A/L",
        ],
        &rows,
        &[1, 2, 3, 4, 5],
    );
    options.finish_trace();
}
