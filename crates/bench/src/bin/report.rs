//! Trace-report reader: turns a JSONL run trace (`--trace` /
//! `ALSRAC_TRACE`, schema in DESIGN.md "Telemetry") into a human-readable
//! per-phase time breakdown and error-trajectory summary, plus a compact
//! `RUN_SUMMARY.json` for downstream tooling.
//!
//! Three modes:
//!
//! * `report <trace.jsonl> [--summary PATH]` — validate every record
//!   against the schema, print the breakdown, write the summary JSON
//!   (default `RUN_SUMMARY.json` next to the trace).
//! * `report --smoke [PATH]` — run a tiny seeded ALSRAC flow with tracing
//!   into `PATH` (or `ALSRAC_TRACE`, or a tempfile under `target/`), then
//!   validate the trace *against the in-process `FlowResult`*: every
//!   accepted iteration's `est_error` and the final `measured` block must
//!   round-trip bit-for-bit. The CI smoke gate runs exactly this.
//! * `report --overhead` — micro-benchmark the disabled-trace path (an
//!   inert span + counter per work item against the bare kernel) and fail
//!   if the overhead exceeds 2%. The CI gate that keeps tracing free for
//!   untraced runs.
//! * `report --cert PATH` — validate a `BENCH_cert.json` certification
//!   artifact (schema, certified-vs-sampled agreement, WCE bounds).
//! * `report --serve PATH` — validate a `BENCH_serve.json` daemon
//!   throughput artifact (schema, jobs/sec > 0, monotone latency
//!   percentiles, exactly one terminal record per job).
//!
//! Every validation failure is a diagnostic naming the offending record's
//! line number (or JSON path), never a panic backtrace. Exits 0 on
//! success, 1 on any validation or gate failure, 2 on usage errors.

use std::collections::BTreeMap;
use std::process::ExitCode;

use alsrac::flow::{self, FlowConfig};
use alsrac_metrics::ErrorMetric;
use alsrac_rt::bench::{format_ns, Options as BenchOptions, Runner};
use alsrac_rt::json::{Arr, Json, Obj};
use alsrac_rt::{trace, Rng};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--smoke") => smoke(args.get(1).map(String::as_str)),
        Some("--overhead") => overhead(),
        Some("--cert") => match args.get(1) {
            Some(path) => cert_check(path),
            None => usage("--cert needs a path"),
        },
        Some("--serve") => match args.get(1) {
            Some(path) => serve_check(path),
            None => usage("--serve needs a path"),
        },
        Some(path) if !path.starts_with("--") => {
            let summary = match args.get(1).map(String::as_str) {
                Some("--summary") => match args.get(2) {
                    Some(p) => p.clone(),
                    None => return usage("--summary needs a path"),
                },
                Some(other) => return usage(&format!("unknown flag {other:?}")),
                None => sibling_summary_path(path),
            };
            analyze(path, &summary)
        }
        _ => usage("missing trace path"),
    }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("error: {problem}");
    eprintln!(
        "usage: report <trace.jsonl> [--summary PATH] | report --smoke [PATH] | \
         report --overhead | report --cert PATH | report --serve PATH"
    );
    ExitCode::from(2)
}

/// `RUN_SUMMARY.json` in the same directory as the trace file.
fn sibling_summary_path(trace_path: &str) -> String {
    match trace_path.rfind('/') {
        Some(i) => format!("{}/RUN_SUMMARY.json", &trace_path[..i]),
        None => "RUN_SUMMARY.json".to_string(),
    }
}

// ---------------------------------------------------------------------------
// Schema validation
// ---------------------------------------------------------------------------

/// Every counter name the flow may emit into a `totals` record. Schema
/// validation rejects unknown names so a typo in a `trace::add` call site
/// (or a stale reader) fails the smoke gate instead of silently dropping
/// the counter from reports.
const KNOWN_COUNTERS: &[&str] = &[
    "simulations",
    "sim_node_words",
    "sim_incremental_updates",
    "sim_words_saved",
    "influence_words_computed",
    "influence_early_exits",
    "influence_quenched_nodes",
    "influences_computed",
    "influence_cache_hits",
    "lacs_scored",
    "nan_filtered",
    "patterns_simulated",
    "window_extracted",
    "window_nodes",
    "divisors_filtered_by_signature",
    "overhead_probe",
    "cert_miters_built",
    "cert_sat_queries",
    "cert_wce_searches",
    "cert_candidate_rejects",
    "cert_degraded",
    "flow_interrupts",
    "checkpoints_written",
    "faults_injected",
    "serve_jobs_submitted",
    "serve_jobs_completed",
    "serve_jobs_interrupted",
    "serve_jobs_cancelled",
    "serve_jobs_failed",
    "serve_lines_rejected",
    "serve_cache_hits",
];

/// The record types a trace may contain, with their required fields (see
/// DESIGN.md "Telemetry" for the authoritative description).
fn validate_record(rec: &Json) -> Result<(), String> {
    let typ = rec
        .get("type")
        .and_then(Json::as_str)
        .ok_or("record has no string \"type\"")?;
    let need_u64 = |key: &str| -> Result<u64, String> {
        rec.get(key)
            .and_then(Json::as_u64)
            .ok_or(format!("{typ}: missing or non-integer {key:?}"))
    };
    let need_str = |key: &str| -> Result<&str, String> {
        rec.get(key)
            .and_then(Json::as_str)
            .ok_or(format!("{typ}: missing or non-string {key:?}"))
    };
    let need_f64 = |key: &str| -> Result<f64, String> {
        rec.get(key)
            .and_then(Json::as_f64)
            .ok_or(format!("{typ}: missing or non-number {key:?}"))
    };
    let need_phase_ns = || -> Result<(), String> {
        let phases = rec
            .get("phase_ns")
            .and_then(Json::as_obj)
            .ok_or(format!("{typ}: missing \"phase_ns\" object"))?;
        for (name, v) in phases {
            v.as_u64()
                .ok_or(format!("{typ}: phase_ns.{name} is not an integer"))?;
        }
        Ok(())
    };
    // Flow records from a daemon session carry the submitting job's id
    // (1-based; 0 is the reserved untagged value and must never appear).
    let optional_job_id = || -> Result<(), String> {
        match rec.get("job_id") {
            None => Ok(()),
            Some(v) => match v.as_u64() {
                Some(id) if id > 0 => Ok(()),
                _ => Err(format!("{typ}: \"job_id\" is not a positive integer")),
            },
        }
    };
    match typ {
        "process" => {
            need_str("binary")?;
            need_str("scale")?;
            need_u64("seeds")?;
            need_u64("threads")?;
            rec.get("full")
                .and_then(Json::as_bool)
                .ok_or("process: missing bool \"full\"")?;
        }
        "run_start" => {
            optional_job_id()?;
            need_u64("run")?;
            need_str("flow")?;
            need_str("circuit")?;
            need_u64("seed")?;
            need_str("metric")?;
            need_f64("threshold")?;
            for key in ["inputs", "outputs", "ands", "depth"] {
                need_u64(key)?;
            }
        }
        "iteration" => {
            optional_job_id()?;
            need_u64("run")?;
            need_u64("iter")?;
            need_u64("candidates")?;
            need_u64("rounds")?;
            need_phase_ns()?;
            let accepted = rec
                .get("accepted")
                .and_then(Json::as_bool)
                .ok_or("iteration: missing bool \"accepted\"")?;
            if accepted {
                need_str("lac")?;
                need_f64("est_error")?;
                need_u64("ands")?;
                need_u64("depth")?;
                rec.get("gain")
                    .and_then(Json::as_f64)
                    .ok_or("iteration: missing number \"gain\"")?;
            } else {
                need_str("reason")?;
            }
        }
        "run_end" => {
            optional_job_id()?;
            for key in ["run", "iterations", "applied", "ands", "depth", "wall_ns"] {
                need_u64(key)?;
            }
            need_phase_ns()?;
            let measured = rec
                .get("measured")
                .and_then(Json::as_obj)
                .ok_or("run_end: missing \"measured\" object")?;
            measured
                .get("num_patterns")
                .and_then(Json::as_u64)
                .ok_or("run_end: measured.num_patterns missing")?;
            measured
                .get("error_rate")
                .and_then(Json::as_f64)
                .ok_or("run_end: measured.error_rate missing")?;
            for key in ["nmed", "mred", "max_error_distance"] {
                let v = measured
                    .get(key)
                    .ok_or(format!("run_end: measured.{key} missing"))?;
                if !v.is_null() && v.as_f64().is_none() {
                    return Err(format!(
                        "run_end: measured.{key} is neither number nor null"
                    ));
                }
            }
            // Optional SAT certificate (present for WCE / certify flows).
            if let Some(cert) = rec.get("certified") {
                let cert = cert
                    .as_obj()
                    .ok_or("run_end: \"certified\" is not an object")?;
                validate_certified(cert).map_err(|e| format!("run_end: certified.{e}"))?;
            }
            // Optional outcome (absent in pre-budget traces = completed).
            if let Some(outcome) = rec.get("outcome") {
                match outcome.as_str() {
                    Some("completed") => {}
                    Some("interrupted") => {
                        need_str("interrupt_reason")?;
                    }
                    Some(other) => {
                        return Err(format!("run_end: unknown outcome {other:?}"));
                    }
                    None => return Err("run_end: \"outcome\" is not a string".to_string()),
                }
            }
            if let Some(v) = rec.get("resumed_from") {
                v.as_u64()
                    .ok_or("run_end: \"resumed_from\" is not an integer")?;
            }
        }
        "totals" => {
            let spans = rec
                .get("spans")
                .and_then(Json::as_obj)
                .ok_or("totals: missing \"spans\" object")?;
            for (name, span) in spans {
                for key in ["ns", "count", "threads"] {
                    span.get(key)
                        .and_then(Json::as_u64)
                        .ok_or(format!("totals: spans.{name}.{key} missing"))?;
                }
            }
            let counters = rec
                .get("counters")
                .and_then(Json::as_obj)
                .ok_or("totals: missing \"counters\" object")?;
            for (name, v) in counters {
                if !KNOWN_COUNTERS.contains(&name.as_str()) {
                    return Err(format!("totals: unknown counter {name:?}"));
                }
                v.as_u64()
                    .ok_or(format!("totals: counter {name} is not an integer"))?;
            }
        }
        // Daemon protocol records (see DESIGN.md "Service mode"): a
        // captured serve session is a valid trace file.
        "response" => {
            need_str("op")?;
            let ok = rec
                .get("ok")
                .and_then(Json::as_bool)
                .ok_or("response: missing bool \"ok\"")?;
            if !ok {
                need_str("error")?;
            }
        }
        "status" => {
            for key in ["queued", "running", "done"] {
                need_u64(key)?;
            }
        }
        "job_done" => {
            let id = need_u64("job_id")?;
            if id == 0 {
                return Err("job_done: \"job_id\" must be positive".to_string());
            }
            for key in [
                "queue_ns",
                "run_ns",
                "queue_depth",
                "iterations",
                "applied",
                "ands",
            ] {
                need_u64(key)?;
            }
            // Cache replays carry a bool marker; it is omitted when false.
            if let Some(v) = rec.get("cache_hit") {
                v.as_bool().ok_or("job_done: \"cache_hit\" is not a bool")?;
            }
            match need_str("outcome")? {
                "completed" | "cancelled" => {}
                "interrupted" => {
                    need_str("interrupt_reason")?;
                    need_str("checkpoint")?;
                }
                "failed" => {
                    need_str("error")?;
                }
                other => return Err(format!("job_done: unknown outcome {other:?}")),
            }
        }
        "error" => {
            let line = need_u64("line")?;
            if line == 0 {
                return Err("error: \"line\" must be 1-based".to_string());
            }
            need_str("message")?;
        }
        "shutdown" => {
            match need_str("reason")? {
                "shutdown_request" | "input_closed" | "stop_requested" => {}
                other => return Err(format!("shutdown: unknown reason {other:?}")),
            }
            for key in [
                "submitted",
                "completed",
                "interrupted",
                "cancelled",
                "failed",
                "rejected_lines",
            ] {
                need_u64(key)?;
            }
        }
        other => return Err(format!("unknown record type {other:?}")),
    }
    Ok(())
}

/// Validates the fields of a `certified` object (a serialized
/// `CertifiedMeasurement`), shared between `run_end` records and
/// `BENCH_cert.json` entries. Error messages are field-relative; callers
/// prefix the location.
fn validate_certified(cert: &BTreeMap<String, Json>) -> Result<(), String> {
    let get = |key: &str| cert.get(key);
    let metric = get("metric")
        .and_then(Json::as_str)
        .ok_or("metric missing or not a string")?;
    if !["ER", "NMED", "MRED", "WCE"].contains(&metric) {
        return Err(format!("metric {metric:?} unknown"));
    }
    let value = get("value")
        .and_then(Json::as_f64)
        .ok_or("value missing or not a number")?;
    if !value.is_finite() || value < 0.0 {
        return Err(format!("value {value} out of range"));
    }
    if metric == "ER" && value > 1.0 {
        return Err(format!("ER value {value} > 1"));
    }
    let exact = get("exact")
        .and_then(Json::as_bool)
        .ok_or("exact missing or not a bool")?;
    let epsilon = get("epsilon")
        .and_then(Json::as_f64)
        .ok_or("epsilon missing or not a number")?;
    let delta = get("delta")
        .and_then(Json::as_f64)
        .ok_or("delta missing or not a number")?;
    // Optional status (absent in pre-budget artifacts = certified). A
    // degraded certificate carries no (ε, δ) guarantee at all — its value
    // is the sampled measurement — so the exactness cross-checks below
    // only apply to certified ones.
    let degraded = match get("status").and_then(Json::as_str) {
        None | Some("certified") => false,
        Some("degraded") => {
            get("status_reason")
                .and_then(Json::as_str)
                .ok_or("degraded certificate has no status_reason")?;
            if exact {
                return Err("degraded certificate cannot claim exactness".to_string());
            }
            true
        }
        Some(other) => return Err(format!("unknown status {other:?}")),
    };
    if exact && (epsilon != 0.0 || delta != 0.0) {
        return Err("exact certificate must have epsilon = delta = 0".to_string());
    }
    if !exact && !degraded && (epsilon <= 0.0 || delta <= 0.0 || delta >= 1.0) {
        return Err(format!(
            "approximate certificate needs epsilon > 0, delta in (0,1); got ({epsilon}, {delta})"
        ));
    }
    get("sat_queries")
        .and_then(Json::as_u64)
        .ok_or("sat_queries missing or not an integer")?;
    Ok(())
}

/// Whether a `certified` object is a degraded (budget-starved) one.
fn is_degraded(cert: &BTreeMap<String, Json>) -> bool {
    cert.get("status").and_then(Json::as_str) == Some("degraded")
}

/// Reads a trace file, parsing and schema-validating every line. Each
/// returned record carries its 1-based line number so downstream readers
/// can name the offending record in diagnostics.
fn load(path: &str) -> Result<Vec<(usize, Json)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let rec = Json::parse(line).map_err(|e| format!("{path}:{}: invalid JSON: {e}", i + 1))?;
        validate_record(&rec).map_err(|e| format!("{path}:{}: {e}", i + 1))?;
        records.push((i + 1, rec));
    }
    if records.is_empty() {
        return Err(format!("{path}: no records"));
    }
    Ok(records)
}

/// Field accessors that *report* instead of panicking: a malformed or
/// truncated record that slipped past (or post-dates) `validate_record`
/// becomes a schema-validation error naming the record's line number.
fn req_u64(rec: &Json, path: &str, line: usize, key: &str) -> Result<u64, String> {
    rec.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("{path}:{line}: missing or non-integer {key:?}"))
}

fn req_f64(rec: &Json, path: &str, line: usize, key: &str) -> Result<f64, String> {
    rec.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{path}:{line}: missing or non-number {key:?}"))
}

fn req_str<'a>(rec: &'a Json, path: &str, line: usize, key: &str) -> Result<&'a str, String> {
    rec.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{path}:{line}: missing or non-string {key:?}"))
}

// ---------------------------------------------------------------------------
// Default mode: breakdown + RUN_SUMMARY.json
// ---------------------------------------------------------------------------

#[derive(Default)]
struct RunDigest {
    flow: String,
    circuit: String,
    start_ands: u64,
    end_ands: u64,
    iterations: u64,
    applied: u64,
    wall_ns: u64,
    error_rate: Option<f64>,
    /// Accepted-iteration estimated errors, in order.
    trajectory: Vec<f64>,
    /// `run_end.outcome` (absent in pre-budget traces = completed).
    outcome: Option<String>,
    /// Why the run was interrupted, when it was.
    interrupt_reason: Option<String>,
    /// Checkpoint iteration this run resumed from, when it did.
    resumed_from: Option<u64>,
    /// Whether the run's certificate was degraded by budget exhaustion.
    degraded_cert: bool,
}

fn analyze(path: &str, summary_path: &str) -> ExitCode {
    match try_analyze(path, summary_path) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn try_analyze(path: &str, summary_path: &str) -> Result<ExitCode, String> {
    let records = load(path)?;

    let mut runs: BTreeMap<u64, RunDigest> = BTreeMap::new();
    let mut phase_ns: BTreeMap<String, u64> = BTreeMap::new();
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    for &(line, ref rec) in &records {
        let typ = req_str(rec, path, line, "type")?;
        match typ {
            "run_start" => {
                let run = req_u64(rec, path, line, "run")?;
                let digest = runs.entry(run).or_default();
                digest.flow = req_str(rec, path, line, "flow")?.to_string();
                digest.circuit = req_str(rec, path, line, "circuit")?.to_string();
                digest.start_ands = req_u64(rec, path, line, "ands")?;
            }
            "iteration" => {
                let run = req_u64(rec, path, line, "run")?;
                let digest = runs.entry(run).or_default();
                if rec.get("accepted").and_then(Json::as_bool) == Some(true) {
                    digest
                        .trajectory
                        .push(req_f64(rec, path, line, "est_error")?);
                }
                if let Some(phases) = rec.get("phase_ns").and_then(Json::as_obj) {
                    for (name, v) in phases {
                        let ns = v.as_u64().ok_or_else(|| {
                            format!("{path}:{line}: phase_ns.{name} is not an integer")
                        })?;
                        *phase_ns.entry(name.clone()).or_insert(0) += ns;
                    }
                }
            }
            "run_end" => {
                let run = req_u64(rec, path, line, "run")?;
                let digest = runs.entry(run).or_default();
                digest.iterations = req_u64(rec, path, line, "iterations")?;
                digest.applied = req_u64(rec, path, line, "applied")?;
                digest.end_ands = req_u64(rec, path, line, "ands")?;
                digest.wall_ns = req_u64(rec, path, line, "wall_ns")?;
                digest.error_rate = rec
                    .get("measured")
                    .and_then(|m| m.get("error_rate"))
                    .and_then(Json::as_f64);
                digest.outcome = rec
                    .get("outcome")
                    .and_then(Json::as_str)
                    .map(str::to_string);
                digest.interrupt_reason = rec
                    .get("interrupt_reason")
                    .and_then(Json::as_str)
                    .map(str::to_string);
                digest.resumed_from = rec.get("resumed_from").and_then(Json::as_u64);
                digest.degraded_cert = rec
                    .get("certified")
                    .and_then(Json::as_obj)
                    .is_some_and(is_degraded);
            }
            "totals" => {
                if let Some(cs) = rec.get("counters").and_then(Json::as_obj) {
                    for (name, v) in cs {
                        let count = v.as_u64().ok_or_else(|| {
                            format!("{path}:{line}: counter {name} is not an integer")
                        })?;
                        *counters.entry(name.clone()).or_insert(0) += count;
                    }
                }
            }
            _ => {}
        }
    }

    println!("{}: {} records, {} runs", path, records.len(), runs.len());
    println!("\nper-phase time (summed over per-iteration phase_ns):");
    let total: u64 = phase_ns.values().sum();
    for (name, &ns) in &phase_ns {
        let share = if total > 0 {
            100.0 * ns as f64 / total as f64
        } else {
            0.0
        };
        println!("  {name:<12} {:>12}  {share:5.1}%", format_ns(ns as f64));
    }
    if !counters.is_empty() {
        println!("\ncounters:");
        for (name, v) in &counters {
            println!("  {name:<24} {v}");
        }
    }
    println!("\nruns:");
    for (id, d) in &runs {
        let traj = match (d.trajectory.first(), d.trajectory.last()) {
            (Some(first), Some(last)) => {
                format!(
                    "est err {first:.5} -> {last:.5} over {} accepts",
                    d.trajectory.len()
                )
            }
            _ => "no accepted iterations".to_string(),
        };
        let mut notes = String::new();
        if let Some(from) = d.resumed_from {
            notes.push_str(&format!("; resumed from iteration {from}"));
        }
        if d.outcome.as_deref() == Some("interrupted") {
            notes.push_str(&format!(
                "; INTERRUPTED ({})",
                d.interrupt_reason.as_deref().unwrap_or("unknown reason")
            ));
        }
        if d.degraded_cert {
            notes.push_str("; degraded certificate");
        }
        println!(
            "  run {id}: {} {} ands {} -> {} ({} iters, {} applied, {}), {}; measured ER {}{notes}",
            d.flow,
            d.circuit,
            d.start_ands,
            d.end_ands,
            d.iterations,
            d.applied,
            format_ns(d.wall_ns as f64),
            traj,
            d.error_rate
                .map_or("n/a".to_string(), |e| format!("{e:.6}")),
        );
    }
    let interrupted = runs
        .values()
        .filter(|d| d.outcome.as_deref() == Some("interrupted"))
        .count();
    let resumed = runs.values().filter(|d| d.resumed_from.is_some()).count();
    let degraded = runs.values().filter(|d| d.degraded_cert).count();
    if interrupted + resumed + degraded > 0 {
        println!(
            "\nbudgets: {interrupted} interrupted run(s), {resumed} resumed run(s), \
             {degraded} degraded certificate(s)"
        );
    }

    let mut run_arr = Arr::new();
    for (id, d) in &runs {
        let mut traj = Arr::new();
        for &e in &d.trajectory {
            traj = traj.f64(e);
        }
        let mut run_obj = Obj::new()
            .u64("run", *id)
            .str("flow", &d.flow)
            .str("circuit", &d.circuit)
            .u64("start_ands", d.start_ands)
            .u64("end_ands", d.end_ands)
            .u64("iterations", d.iterations)
            .u64("applied", d.applied)
            .u64("wall_ns", d.wall_ns)
            .opt_f64("error_rate", d.error_rate)
            .arr("est_error_trajectory", traj);
        if let Some(outcome) = &d.outcome {
            run_obj = run_obj.str("outcome", outcome);
        }
        if let Some(reason) = &d.interrupt_reason {
            run_obj = run_obj.str("interrupt_reason", reason);
        }
        if let Some(from) = d.resumed_from {
            run_obj = run_obj.u64("resumed_from", from);
        }
        if d.degraded_cert {
            run_obj = run_obj.bool("degraded_certificate", true);
        }
        run_arr = run_arr.obj(run_obj);
    }
    let mut phases_obj = Obj::new();
    for (name, &ns) in &phase_ns {
        phases_obj = phases_obj.u64(name, ns);
    }
    let mut counters_obj = Obj::new();
    for (name, &v) in &counters {
        counters_obj = counters_obj.u64(name, v);
    }
    let summary = Obj::new()
        .str("trace", path)
        .u64("records", records.len() as u64)
        .u64("interrupted_runs", interrupted as u64)
        .u64("resumed_runs", resumed as u64)
        .u64("degraded_certificates", degraded as u64)
        .obj("phase_ns", phases_obj)
        .obj("counters", counters_obj)
        .arr("runs", run_arr)
        .finish();
    std::fs::write(summary_path, summary + "\n")
        .map_err(|e| format!("cannot write {summary_path}: {e}"))?;
    println!("\nwrote {summary_path}");
    Ok(ExitCode::SUCCESS)
}

// ---------------------------------------------------------------------------
// --smoke: seeded flow, schema + bit-exactness gate
// ---------------------------------------------------------------------------

fn smoke(path_arg: Option<&str>) -> ExitCode {
    let path = path_arg
        .map(str::to_string)
        .or_else(|| std::env::var("ALSRAC_TRACE").ok().filter(|p| !p.is_empty()))
        .unwrap_or_else(|| "target/alsrac_smoke_trace.jsonl".to_string());
    if let Err(e) = trace::enable_file(&path) {
        eprintln!("error: cannot create {path}: {e}");
        return ExitCode::FAILURE;
    }

    // A configuration that reliably accepts LACs (same shape as the flow's
    // own `saves_area_at_loose_threshold` test) — a smoke trace with zero
    // accepted iterations would make the bit-exactness check vacuous.
    let exact = alsrac_circuits::arith::kogge_stone_adder(4);
    let config = FlowConfig {
        metric: ErrorMetric::ErrorRate,
        threshold: 0.30,
        seed: 7,
        max_iterations: 120,
        ..FlowConfig::default()
    };
    let result = match flow::run(&exact, &config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: smoke flow failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    trace::emit_totals();
    trace::disable();
    trace::reset();

    let records = match load(&path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Cross-check the trace against the in-process result, bit for bit.
    let fail = |msg: String| -> ExitCode {
        eprintln!("error: smoke mismatch: {msg}");
        ExitCode::FAILURE
    };
    let accepted: Vec<(usize, &Json)> = records
        .iter()
        .filter(|(_, r)| {
            r.get("type").and_then(Json::as_str) == Some("iteration")
                && r.get("accepted").and_then(Json::as_bool) == Some(true)
        })
        .map(|&(line, ref r)| (line, r))
        .collect();
    if accepted.is_empty() {
        return fail("no accepted iterations — the bit-exactness check would be vacuous".into());
    }
    if accepted.len() != result.history.len() {
        return fail(format!(
            "{} accepted iteration records vs history of {}",
            accepted.len(),
            result.history.len()
        ));
    }
    for (&(line, rec), hist) in accepted.iter().zip(&result.history) {
        let est = match req_f64(rec, &path, line, "est_error") {
            Ok(v) => v,
            Err(e) => return fail(e),
        };
        if est.to_bits() != hist.estimated_error.to_bits() {
            return fail(format!(
                "{path}:{line}: est_error {est:?} != history {:?} (bit-exact check)",
                hist.estimated_error
            ));
        }
        if rec.get("ands").and_then(Json::as_u64) != Some(hist.ands as u64) {
            return fail(format!(
                "{path}:{line}: iteration ands != history ands {}",
                hist.ands
            ));
        }
        if rec.get("rounds").and_then(Json::as_u64) != Some(hist.rounds as u64) {
            return fail(format!(
                "{path}:{line}: iteration rounds != history rounds {}",
                hist.rounds
            ));
        }
    }
    let run_end = records
        .iter()
        .find(|(_, r)| r.get("type").and_then(Json::as_str) == Some("run_end"));
    let Some(&(line, ref run_end)) = run_end else {
        return fail("no run_end record".to_string());
    };
    let Some(measured) = run_end.get("measured") else {
        return fail(format!("{path}:{line}: run_end has no \"measured\""));
    };
    let er = match measured.get("error_rate").and_then(Json::as_f64) {
        Some(v) => v,
        None => return fail(format!("{path}:{line}: measured.error_rate missing")),
    };
    if er.to_bits() != result.measured.error_rate.to_bits() {
        return fail(format!(
            "{path}:{line}: measured.error_rate {er:?} != {:?} (bit-exact check)",
            result.measured.error_rate
        ));
    }
    let checks = [
        ("iterations", result.iterations as u64),
        ("applied", result.applied as u64),
        ("ands", result.approx.num_ands() as u64),
    ];
    for (key, want) in checks {
        if run_end.get(key).and_then(Json::as_u64) != Some(want) {
            return fail(format!("{path}:{line}: run_end.{key} != {want}"));
        }
    }
    if measured.get("num_patterns").and_then(Json::as_u64)
        != Some(result.measured.num_patterns as u64)
    {
        return fail(format!("{path}:{line}: measured.num_patterns mismatch"));
    }
    for (key, want) in [
        ("nmed", result.measured.nmed),
        ("mred", result.measured.mred),
    ] {
        let Some(got) = measured.get(key) else {
            return fail(format!("{path}:{line}: measured.{key} missing"));
        };
        match want {
            Some(w) => {
                if got.as_f64().map(f64::to_bits) != Some(w.to_bits()) {
                    return fail(format!("{path}:{line}: measured.{key} mismatch"));
                }
            }
            None => {
                if !got.is_null() {
                    return fail(format!("{path}:{line}: measured.{key} should be null"));
                }
            }
        }
    }
    println!(
        "smoke OK: {path}: {} records, {} accepted iterations, measured ER {} — \
         all bit-exact against FlowResult",
        records.len(),
        accepted.len(),
        result.measured.error_rate,
    );
    ExitCode::SUCCESS
}

// ---------------------------------------------------------------------------
// --cert: BENCH_cert.json validation
// ---------------------------------------------------------------------------

fn cert_check(path: &str) -> ExitCode {
    match try_cert_check(path) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Validates a `BENCH_cert.json` artifact: schema, certificate internal
/// consistency, Wilson-bound agreement between sampled and certified
/// error rates (recomputed, not trusted), and WCE-within-bound claims.
fn try_cert_check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read: {e}"))?;
    let root = Json::parse(&text).map_err(|e| format!("invalid JSON: {e}"))?;
    let name = root
        .get("benchmark")
        .and_then(Json::as_str)
        .ok_or("missing string \"benchmark\"")?;
    if name != "cert" {
        return Err(format!("benchmark is {name:?}, expected \"cert\""));
    }
    for key in ["threads", "seed"] {
        root.get(key)
            .and_then(Json::as_u64)
            .ok_or(format!("missing integer {key:?}"))?;
    }

    let er_entries = root
        .get("er")
        .and_then(Json::as_arr)
        .ok_or("missing \"er\" array")?;
    if er_entries.is_empty() {
        return Err("\"er\" array is empty".to_string());
    }
    for (i, entry) in er_entries.iter().enumerate() {
        let at = |e: String| format!("er[{i}]: {e}");
        let circuit = entry
            .get("circuit")
            .and_then(Json::as_str)
            .ok_or_else(|| at("missing string \"circuit\"".into()))?;
        let within = |e: String| format!("er[{i}] ({circuit}): {e}");
        for key in ["inputs", "outputs", "ands_before", "ands_after", "applied"] {
            entry
                .get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| within(format!("missing integer {key:?}")))?;
        }
        let cert = entry
            .get("certified")
            .and_then(Json::as_obj)
            .ok_or_else(|| within("missing \"certified\" object".into()))?;
        validate_certified(cert).map_err(|e| within(format!("certified.{e}")))?;
        let value = cert.get("value").and_then(Json::as_f64).expect("validated");
        if cert.get("metric").and_then(Json::as_str) != Some("ER") {
            return Err(within("certified.metric must be \"ER\"".into()));
        }
        let errors = entry
            .get("sampled_errors")
            .and_then(Json::as_u64)
            .ok_or_else(|| within("missing integer \"sampled_errors\"".into()))?;
        let patterns = entry
            .get("sampled_patterns")
            .and_then(Json::as_u64)
            .filter(|&n| n > 0)
            .ok_or_else(|| within("missing positive \"sampled_patterns\"".into()))?;
        if errors > patterns {
            return Err(within(format!(
                "sampled_errors {errors} > patterns {patterns}"
            )));
        }
        // Recompute the agreement gate instead of trusting the flag: the
        // certified rate must sit inside the Wilson interval around the
        // sampled estimate (widened by ε for approximate certificates).
        let (low, high) =
            alsrac_metrics::wilson_interval(errors, patterns, alsrac_bench::CERT_WILSON_Z);
        let epsilon = cert
            .get("epsilon")
            .and_then(Json::as_f64)
            .expect("validated");
        let (value_low, value_high) = if epsilon > 0.0 {
            (value / (1.0 + epsilon), value * (1.0 + epsilon))
        } else {
            (value, value)
        };
        let agrees = value_high >= low && value_low <= high;
        if !agrees {
            return Err(within(format!(
                "certified rate {value} outside Wilson interval [{low}, {high}] \
                 of {errors}/{patterns} sampled"
            )));
        }
        if entry.get("agreement").and_then(Json::as_bool) != Some(true) {
            return Err(within("\"agreement\" must be true".into()));
        }
    }

    let wce_entries = root
        .get("wce")
        .and_then(Json::as_arr)
        .ok_or("missing \"wce\" array")?;
    if wce_entries.is_empty() {
        return Err("\"wce\" array is empty".to_string());
    }
    for (i, entry) in wce_entries.iter().enumerate() {
        let at = |e: String| format!("wce[{i}]: {e}");
        let circuit = entry
            .get("circuit")
            .and_then(Json::as_str)
            .ok_or_else(|| at("missing string \"circuit\"".into()))?;
        let within = |e: String| format!("wce[{i}] ({circuit}): {e}");
        let bound = entry
            .get("bound")
            .and_then(Json::as_u64)
            .ok_or_else(|| within("missing integer \"bound\"".into()))?;
        for key in [
            "ands_before",
            "ands_after",
            "applied",
            "sampled_max_distance",
        ] {
            entry
                .get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| within(format!("missing integer {key:?}")))?;
        }
        let cert = entry
            .get("certified")
            .and_then(Json::as_obj)
            .ok_or_else(|| within("missing \"certified\" object".into()))?;
        validate_certified(cert).map_err(|e| within(format!("certified.{e}")))?;
        if cert.get("metric").and_then(Json::as_str) != Some("WCE") {
            return Err(within("certified.metric must be \"WCE\"".into()));
        }
        if is_degraded(cert) {
            // A budget-starved certificate's value is the sampled
            // measurement, not a proven maximum — none of the exactness
            // cross-checks below apply.
            continue;
        }
        if cert.get("exact").and_then(Json::as_bool) != Some(true) {
            return Err(within("non-degraded WCE certificates must be exact".into()));
        }
        let value = cert.get("value").and_then(Json::as_f64).expect("validated");
        if value > bound as f64 {
            return Err(within(format!(
                "certified WCE {value} exceeds the configured bound {bound}"
            )));
        }
        let sampled = entry
            .get("sampled_max_distance")
            .and_then(Json::as_u64)
            .expect("checked above");
        if (sampled as f64) > value {
            return Err(within(format!(
                "sampled max distance {sampled} exceeds the certified maximum {value} \
                 — the certificate cannot be exact"
            )));
        }
        if entry.get("within_bound").and_then(Json::as_bool) != Some(true) {
            return Err(within("\"within_bound\" must be true".into()));
        }
    }

    println!(
        "cert OK: {path}: {} ER certificates (all inside the Wilson interval), \
         {} WCE certificates (all within their bounds)",
        er_entries.len(),
        wce_entries.len()
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// --serve: BENCH_serve.json validation
// ---------------------------------------------------------------------------

fn serve_check(path: &str) -> ExitCode {
    match try_serve_check(path) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Validates a `BENCH_serve.json` daemon throughput artifact: schema,
/// totals that add up, a positive jobs/sec (recomputed, not trusted),
/// monotone latency percentiles, and exactly one terminal record per
/// submitted job.
fn try_serve_check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read: {e}"))?;
    let root = Json::parse(&text).map_err(|e| format!("invalid JSON: {e}"))?;
    let name = root
        .get("benchmark")
        .and_then(Json::as_str)
        .ok_or("missing string \"benchmark\"")?;
    if name != "serve" {
        return Err(format!("benchmark is {name:?}, expected \"serve\""));
    }
    root.get("smoke")
        .and_then(Json::as_bool)
        .ok_or("missing bool \"smoke\"")?;
    let int = |key: &str| -> Result<u64, String> {
        root.get(key)
            .and_then(Json::as_u64)
            .ok_or(format!("missing integer {key:?}"))
    };
    let threads = int("threads")?;
    let workers = int("workers")?;
    if threads == 0 || workers == 0 {
        return Err("threads and workers must be positive".to_string());
    }
    let jobs = int("jobs")?;
    if jobs == 0 {
        return Err("an artifact with zero jobs is vacuous".to_string());
    }
    let completed = int("completed")?;
    let settled = completed + int("interrupted")? + int("cancelled")? + int("failed")?;
    if settled != jobs {
        return Err(format!(
            "outcome totals sum to {settled}, but {jobs} jobs were submitted"
        ));
    }
    int("rejected_lines")?;
    let wall_ns = int("wall_ns")?;
    if wall_ns == 0 {
        return Err("wall_ns must be positive".to_string());
    }

    // Recompute the throughput instead of trusting the field.
    let jobs_per_sec = root
        .get("jobs_per_sec")
        .and_then(Json::as_f64)
        .ok_or("missing number \"jobs_per_sec\"")?;
    if jobs_per_sec.is_nan() || jobs_per_sec <= 0.0 {
        return Err(format!("jobs_per_sec must be positive, got {jobs_per_sec}"));
    }
    let recomputed = jobs as f64 / (wall_ns as f64 / 1e9);
    if (jobs_per_sec - recomputed).abs() > recomputed * 1e-6 {
        return Err(format!(
            "jobs_per_sec {jobs_per_sec} does not match {jobs} jobs over {wall_ns} ns \
             (expected {recomputed})"
        ));
    }

    let latency = root
        .get("latency_ns")
        .and_then(Json::as_obj)
        .ok_or("missing \"latency_ns\" object")?;
    let lat = |key: &str| -> Result<u64, String> {
        latency
            .get(key)
            .and_then(Json::as_u64)
            .ok_or(format!("latency_ns.{key} missing or not an integer"))
    };
    let (p50, p95, max) = (lat("p50")?, lat("p95")?, lat("max")?);
    if !(p50 <= p95 && p95 <= max) {
        return Err(format!(
            "latency percentiles must be monotone: p50 {p50} <= p95 {p95} <= max {max}"
        ));
    }

    let depth = root
        .get("queue_depth")
        .and_then(Json::as_obj)
        .ok_or("missing \"queue_depth\" object")?;
    let depth_max = depth
        .get("max")
        .and_then(Json::as_u64)
        .ok_or("queue_depth.max missing or not an integer")?;
    let depth_mean = depth
        .get("mean")
        .and_then(Json::as_f64)
        .ok_or("queue_depth.mean missing or not a number")?;
    if depth_mean < 0.0 || depth_mean > depth_max as f64 {
        return Err(format!(
            "queue_depth.mean {depth_mean} outside [0, max {depth_max}]"
        ));
    }

    // Exactly one terminal record per job, ids unique and in range.
    let detail = root
        .get("jobs_detail")
        .and_then(Json::as_arr)
        .ok_or("missing \"jobs_detail\" array")?;
    if detail.len() as u64 != jobs {
        return Err(format!(
            "jobs_detail has {} entries for {jobs} jobs — a job's terminal record \
             is missing or duplicated",
            detail.len()
        ));
    }
    let mut seen = std::collections::BTreeSet::new();
    let mut detail_completed = 0u64;
    for (i, entry) in detail.iter().enumerate() {
        let at = |e: String| format!("jobs_detail[{i}]: {e}");
        let id = entry
            .get("job_id")
            .and_then(Json::as_u64)
            .filter(|&id| id > 0)
            .ok_or_else(|| at("missing positive integer \"job_id\"".into()))?;
        if id > jobs {
            return Err(at(format!("job_id {id} out of range 1..={jobs}")));
        }
        if !seen.insert(id) {
            return Err(at(format!("job {id} has more than one terminal record")));
        }
        entry
            .get("circuit")
            .and_then(Json::as_str)
            .ok_or_else(|| at("missing string \"circuit\"".into()))?;
        let get = |key: &str| -> Result<u64, String> {
            entry
                .get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| at(format!("missing integer {key:?}")))
        };
        let job_latency = get("queue_ns")? + get("run_ns")?;
        if job_latency > max {
            return Err(at(format!(
                "end-to-end latency {job_latency} exceeds the reported max {max}"
            )));
        }
        for key in ["queue_depth", "priority", "iterations", "applied", "ands"] {
            get(key)?;
        }
        match entry.get("outcome").and_then(Json::as_str) {
            Some("completed") => detail_completed += 1,
            Some("interrupted") | Some("cancelled") | Some("failed") => {}
            Some(other) => return Err(at(format!("unknown outcome {other:?}"))),
            None => return Err(at("missing string \"outcome\"".into())),
        }
    }
    if detail_completed != completed {
        return Err(format!(
            "jobs_detail shows {detail_completed} completed jobs, header says {completed}"
        ));
    }

    println!(
        "serve OK: {path}: {jobs} jobs ({completed} completed) at {workers} worker(s), \
         {jobs_per_sec:.3} jobs/s, latency p50 {} / p95 {} / max {}",
        format_ns(p50 as f64),
        format_ns(p95 as f64),
        format_ns(max as f64),
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// --overhead: disabled-path cost gate
// ---------------------------------------------------------------------------

/// Maximum tolerated disabled-trace overhead: 2%.
const MAX_OVERHEAD_RATIO: f64 = 1.02;
/// Measurement retries before declaring a regression (single-run medians on
/// shared CI machines are noisy; a genuine regression fails every time).
const OVERHEAD_ATTEMPTS: usize = 5;

/// The work item both kernels share: enough PRNG steps that one inert span
/// and counter per item is a realistic instrumentation density (one span
/// per flow phase, not one per AND gate).
fn kernel(rng: &mut Rng) -> u64 {
    let mut acc = 0u64;
    for _ in 0..512 {
        acc ^= rng.next_u64();
    }
    acc
}

fn overhead() -> ExitCode {
    assert!(
        !trace::is_enabled(),
        "--overhead measures the DISABLED path; unset ALSRAC_TRACE"
    );
    let options = BenchOptions {
        samples: 11,
        warmup_samples: 2,
        target_sample: std::time::Duration::from_millis(10),
    };
    let mut best_ratio = f64::INFINITY;
    for attempt in 1..=OVERHEAD_ATTEMPTS {
        let mut runner = Runner::new(options.clone(), false);
        let mut rng = Rng::from_seed(1);
        let bare = runner
            .bench("kernel (bare)", || {
                std::hint::black_box(kernel(&mut rng));
            })
            .median_ns;
        let mut rng = Rng::from_seed(1);
        let traced = runner
            .bench("kernel + disabled span/counter", || {
                let span = trace::span("overhead_probe");
                std::hint::black_box(kernel(&mut rng));
                trace::add("overhead_probe", 1);
                span.finish();
            })
            .median_ns;
        let ratio = traced / bare.max(1.0);
        best_ratio = best_ratio.min(ratio);
        println!(
            "attempt {attempt}: bare {} traced {} ratio {ratio:.4}",
            format_ns(bare),
            format_ns(traced)
        );
        if ratio <= MAX_OVERHEAD_RATIO {
            println!("overhead OK: disabled-trace ratio {ratio:.4} <= {MAX_OVERHEAD_RATIO:.2}");
            return ExitCode::SUCCESS;
        }
    }
    eprintln!(
        "error: disabled-trace overhead {best_ratio:.4} exceeds {MAX_OVERHEAD_RATIO:.2} \
         after {OVERHEAD_ATTEMPTS} attempts"
    );
    ExitCode::FAILURE
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A unique tempfile under the target directory, cleaned up on drop.
    struct TempTrace(String);

    impl TempTrace {
        fn write(name: &str, content: &str) -> TempTrace {
            let path = std::env::temp_dir()
                .join(format!("report_test_{}_{name}", std::process::id()))
                .to_string_lossy()
                .into_owned();
            std::fs::write(&path, content).expect("write temp trace");
            TempTrace(path)
        }
    }

    impl Drop for TempTrace {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    const TOTALS: &str = r#"{"type":"totals","spans":{},"counters":{}}"#;

    #[test]
    fn truncated_json_is_reported_with_its_line_number() {
        let t = TempTrace::write(
            "truncated",
            &format!("{TOTALS}\n{{\"type\":\"run_end\",\"run\":1\n"),
        );
        let err = load(&t.0).expect_err("truncated line must fail");
        assert!(err.contains(":2:"), "no line number: {err}");
        assert!(err.contains("invalid JSON"), "wrong diagnostic: {err}");
    }

    #[test]
    fn schema_violations_name_the_line_and_field() {
        let t = TempTrace::write(
            "schema",
            &format!("{TOTALS}\n{{\"type\":\"iteration\",\"run\":1}}\n"),
        );
        let err = load(&t.0).expect_err("incomplete record must fail");
        assert!(err.contains(":2:"), "no line number: {err}");
        assert!(err.contains("iteration"), "wrong diagnostic: {err}");
    }

    #[test]
    fn unknown_counters_are_rejected() {
        let t = TempTrace::write(
            "counter",
            r#"{"type":"totals","spans":{},"counters":{"cert_sat_quries":1}}"#,
        );
        let err = load(&t.0).expect_err("typoed counter must fail");
        assert!(err.contains("cert_sat_quries"), "wrong diagnostic: {err}");
    }

    #[test]
    fn empty_traces_are_an_error_not_a_panic() {
        let t = TempTrace::write("empty", "\n\n");
        assert!(load(&t.0).is_err());
    }

    fn cert_artifact(certified_value: f64) -> String {
        format!(
            r#"{{"benchmark":"cert","threads":1,"seed":1,
"er":[{{"circuit":"rca32","inputs":12,"outputs":7,"ands_before":49,"ands_after":40,
"applied":2,"sampled_errors":100,"sampled_patterns":1000,"agreement":true,
"certified":{{"metric":"ER","value":{certified_value},"exact":true,"epsilon":0,"delta":0,"sat_queries":3}}}}],
"wce":[{{"circuit":"rca32","bound":4,"ands_before":49,"ands_after":40,"applied":2,
"sampled_max_distance":3,"within_bound":true,
"certified":{{"metric":"WCE","value":3,"exact":true,"epsilon":0,"delta":0,"sat_queries":7}}}}]}}"#
        )
    }

    /// A minimal schema-complete run_end record with extra fields spliced
    /// in before the closing brace.
    fn run_end_with(extra: &str) -> String {
        format!(
            r#"{{"type":"run_end","run":1,"iterations":5,"applied":2,"ands":30,"depth":9,
"wall_ns":1000,"phase_ns":{{}},
"measured":{{"num_patterns":4096,"error_rate":0.01,"nmed":null,"mred":null,"max_error_distance":null}}{extra}}}"#
        )
    }

    #[test]
    fn interrupted_run_end_records_validate() {
        let rec = run_end_with(r#","outcome":"interrupted","interrupt_reason":"cancelled""#);
        validate_record(&Json::parse(&rec).unwrap()).expect("interrupted run_end must validate");
        let rec = run_end_with(r#","outcome":"completed","resumed_from":3"#);
        validate_record(&Json::parse(&rec).unwrap()).expect("resumed run_end must validate");
    }

    #[test]
    fn interrupted_run_end_needs_a_reason() {
        let rec = run_end_with(r#","outcome":"interrupted""#);
        let err = validate_record(&Json::parse(&rec).unwrap()).expect_err("reason required");
        assert!(err.contains("interrupt_reason"), "wrong diagnostic: {err}");
        let rec = run_end_with(r#","outcome":"gave_up""#);
        let err = validate_record(&Json::parse(&rec).unwrap()).expect_err("unknown outcome");
        assert!(err.contains("gave_up"), "wrong diagnostic: {err}");
    }

    #[test]
    fn degraded_certificates_validate_without_epsilon_delta() {
        let cert = r#"{"metric":"WCE","value":3,"exact":false,"epsilon":0,"delta":0,
"sat_queries":7,"status":"degraded","status_reason":"SAT budget exhausted"}"#;
        let cert = Json::parse(cert).unwrap();
        validate_certified(cert.as_obj().unwrap()).expect("degraded cert must validate");
        assert!(is_degraded(cert.as_obj().unwrap()));
    }

    #[test]
    fn degraded_certificates_need_a_reason_and_cannot_be_exact() {
        let no_reason = r#"{"metric":"ER","value":0.1,"exact":false,"epsilon":0,"delta":0,
"sat_queries":1,"status":"degraded"}"#;
        let err = validate_certified(Json::parse(no_reason).unwrap().as_obj().unwrap())
            .expect_err("reason required");
        assert!(err.contains("status_reason"), "wrong diagnostic: {err}");
        let exact = r#"{"metric":"ER","value":0.1,"exact":true,"epsilon":0,"delta":0,
"sat_queries":1,"status":"degraded","status_reason":"budget"}"#;
        let err = validate_certified(Json::parse(exact).unwrap().as_obj().unwrap())
            .expect_err("exact degraded must fail");
        assert!(err.contains("exactness"), "wrong diagnostic: {err}");
    }

    #[test]
    fn degraded_wce_cert_entries_skip_the_exactness_gate() {
        // Same artifact as cert_artifact but the WCE certificate is
        // degraded and its value exceeds the bound — allowed, because a
        // degraded value is a sampled measurement, not a proven maximum.
        let artifact = r#"{"benchmark":"cert","threads":1,"seed":1,
"er":[{"circuit":"rca32","inputs":12,"outputs":7,"ands_before":49,"ands_after":40,
"applied":2,"sampled_errors":100,"sampled_patterns":1000,"agreement":true,
"certified":{"metric":"ER","value":0.1,"exact":true,"epsilon":0,"delta":0,"sat_queries":3}}],
"wce":[{"circuit":"rca32","bound":4,"ands_before":49,"ands_after":40,"applied":2,
"sampled_max_distance":6,"within_bound":false,
"certified":{"metric":"WCE","value":6,"exact":false,"epsilon":0,"delta":0,"sat_queries":7,
"status":"degraded","status_reason":"SAT budget exhausted during WCE binary search"}}]}"#;
        let t = TempTrace::write("cert_degraded", artifact);
        try_cert_check(&t.0).expect("degraded WCE entry must validate");
    }

    /// A minimal valid serve artifact; `patch` rewrites one substring to
    /// produce the invalid variants.
    fn serve_artifact(patch: &[(&str, &str)]) -> String {
        let mut s = r#"{"benchmark":"serve","smoke":true,"threads":1,"workers":2,"jobs":2,
"completed":2,"interrupted":0,"cancelled":0,"failed":0,"rejected_lines":1,
"wall_ns":1000000000,"jobs_per_sec":2,
"latency_ns":{"p50":400000000,"p95":900000000,"max":900000000},
"queue_depth":{"max":1,"mean":0.5},
"jobs_detail":[
{"job_id":1,"circuit":"alu4","priority":0,"outcome":"completed","queue_ns":1000,
"run_ns":399999000,"queue_depth":1,"iterations":5,"applied":3,"ands":80},
{"job_id":2,"circuit":"mtp8","priority":0,"outcome":"completed","queue_ns":2000,
"run_ns":899998000,"queue_depth":0,"iterations":5,"applied":2,"ands":70}]}"#
            .to_string();
        for (from, to) in patch {
            assert!(s.contains(from), "patch target {from:?} not in artifact");
            s = s.replace(from, to);
        }
        s
    }

    #[test]
    fn serve_artifacts_validate() {
        let t = TempTrace::write("serve_ok", &serve_artifact(&[]));
        try_serve_check(&t.0).expect("valid serve artifact must pass");
    }

    #[test]
    fn serve_artifacts_with_inconsistent_totals_fail() {
        let t = TempTrace::write(
            "serve_totals",
            &serve_artifact(&[("\"completed\":2", "\"completed\":1")]),
        );
        let err = try_serve_check(&t.0).expect_err("totals must add up");
        assert!(err.contains("sum to"), "wrong diagnostic: {err}");
    }

    #[test]
    fn serve_artifacts_with_nonmonotone_latency_fail() {
        let t = TempTrace::write(
            "serve_latency",
            &serve_artifact(&[("\"p50\":400000000", "\"p50\":950000000")]),
        );
        let err = try_serve_check(&t.0).expect_err("p50 > p95 must fail");
        assert!(err.contains("monotone"), "wrong diagnostic: {err}");
    }

    #[test]
    fn serve_artifacts_with_duplicate_terminal_records_fail() {
        let t = TempTrace::write(
            "serve_dup",
            &serve_artifact(&[("\"job_id\":2", "\"job_id\":1")]),
        );
        let err = try_serve_check(&t.0).expect_err("duplicate job id must fail");
        assert!(
            err.contains("more than one terminal record"),
            "wrong diagnostic: {err}"
        );
    }

    #[test]
    fn serve_artifacts_with_fabricated_throughput_fail() {
        let t = TempTrace::write(
            "serve_rate",
            &serve_artifact(&[("\"jobs_per_sec\":2", "\"jobs_per_sec\":1000")]),
        );
        let err = try_serve_check(&t.0).expect_err("jobs_per_sec is recomputed");
        assert!(err.contains("does not match"), "wrong diagnostic: {err}");
    }

    #[test]
    fn daemon_records_validate_as_trace_records() {
        for rec in [
            r#"{"type":"response","op":"submit","ok":true,"job_id":1}"#,
            r#"{"type":"response","op":"cancel","ok":false,"error":"unknown job"}"#,
            r#"{"type":"status","queued":1,"running":2,"done":3}"#,
            r#"{"type":"job_done","job_id":1,"outcome":"completed","queue_ns":5,
"run_ns":10,"queue_depth":0,"iterations":3,"applied":1,"ands":40}"#,
            r#"{"type":"job_done","job_id":3,"outcome":"completed","cache_hit":true,
"queue_ns":5,"run_ns":0,"queue_depth":0,"iterations":3,"applied":1,"ands":40}"#,
            r#"{"type":"job_done","job_id":2,"outcome":"interrupted",
"interrupt_reason":"cancelled","checkpoint":"{}","queue_ns":5,"run_ns":10,
"queue_depth":0,"iterations":3,"applied":1,"ands":40}"#,
            r#"{"type":"error","line":4,"message":"expected a value"}"#,
            r#"{"type":"shutdown","reason":"input_closed","submitted":1,"completed":1,
"interrupted":0,"cancelled":0,"failed":0,"rejected_lines":0}"#,
        ] {
            validate_record(&Json::parse(rec).unwrap())
                .unwrap_or_else(|e| panic!("{rec} must validate: {e}"));
        }
    }

    #[test]
    fn daemon_records_with_schema_violations_fail() {
        for (rec, expect) in [
            (
                r#"{"type":"job_done","job_id":0,"outcome":"completed","queue_ns":5,
"run_ns":10,"queue_depth":0,"iterations":3,"applied":1,"ands":40}"#,
                "positive",
            ),
            (
                r#"{"type":"job_done","job_id":1,"outcome":"vanished","queue_ns":5,
"run_ns":10,"queue_depth":0,"iterations":3,"applied":1,"ands":40}"#,
                "vanished",
            ),
            (r#"{"type":"error","line":0,"message":"m"}"#, "1-based"),
            (
                r#"{"type":"shutdown","reason":"crash","submitted":0,"completed":0,
"interrupted":0,"cancelled":0,"failed":0,"rejected_lines":0}"#,
                "crash",
            ),
        ] {
            let err = validate_record(&Json::parse(rec).unwrap())
                .expect_err("schema violation must fail");
            assert!(err.contains(expect), "wrong diagnostic for {rec}: {err}");
        }
    }

    #[test]
    fn job_tagged_flow_records_validate_but_job_id_zero_fails() {
        let rec = run_end_with(r#","job_id":3"#);
        validate_record(&Json::parse(&rec).unwrap()).expect("tagged run_end must validate");
        let rec = run_end_with(r#","job_id":0"#);
        let err = validate_record(&Json::parse(&rec).unwrap()).expect_err("zero tag must fail");
        assert!(err.contains("job_id"), "wrong diagnostic: {err}");
    }

    #[test]
    fn cert_artifacts_inside_the_wilson_interval_pass() {
        let t = TempTrace::write("cert_ok", &cert_artifact(0.1));
        try_cert_check(&t.0).expect("agreeing artifact must validate");
    }

    #[test]
    fn cert_artifacts_outside_the_wilson_interval_fail() {
        let t = TempTrace::write("cert_bad", &cert_artifact(0.9));
        let err = try_cert_check(&t.0).expect_err("disagreement must fail");
        assert!(err.contains("Wilson"), "wrong diagnostic: {err}");
        assert!(err.contains("rca32"), "must name the circuit: {err}");
    }
}
