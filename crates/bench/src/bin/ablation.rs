//! Ablations of ALSRAC's design choices (not a paper table; DESIGN.md
//! experiments ABL1/ABL2).
//!
//! 1. **Divisor distance** — fanin-edit divisor sets drawn from the whole
//!    TFI cone (the paper's Algorithm 1) vs. restricted to a shallow pool
//!    (max_sets small, emulating "too local" LACs, §I's critique).
//! 2. **Dynamic N control** — the paper's adaptive simulation-round
//!    shrinking (t = 5, r = 0.9) vs. a fixed N, and a sweep of the initial
//!    N (§III-C's discussion that small N widens the approximation space).

use alsrac::divisors::DivisorConfig;
use alsrac::flow::{self, FlowConfig};
use alsrac::lac::LacConfig;
use alsrac_bench::{asic_cost, average_outcome, percent, print_table, Options};
use alsrac_circuits::catalog;
use alsrac_metrics::ErrorMetric;
use alsrac_rt::pool;

fn config_with(lac: LacConfig, threshold: f64, rounds: usize, patience: usize) -> FlowConfig {
    FlowConfig {
        metric: ErrorMetric::ErrorRate,
        threshold,
        initial_rounds: rounds,
        patience,
        lac,
        max_iterations: 300,
        ..FlowConfig::default()
    }
}

fn main() {
    let options = Options::parse(std::env::args().skip(1));
    options.init_trace("ablation");
    let threshold = 0.03;
    let circuits = ["cla32", "ksa32", "wal8"];

    // Ablation 1: divisor pool width. Each circuit's runs are seeded
    // flows, so the parallel rows match the serial ones exactly.
    let rows = pool::par_map(&circuits, |name| {
        let exact = catalog::by_name(name, options.scale).expect("known benchmark");
        let wide = average_outcome(
            &exact,
            options.seeds,
            asic_cost,
            |seed| {
                let cfg = config_with(LacConfig::default(), threshold, 32, 5);
                flow::run(&exact, &FlowConfig { seed, ..cfg }).expect("flow")
            },
            |_| true,
        );
        let narrow = average_outcome(
            &exact,
            options.seeds,
            asic_cost,
            |seed| {
                let lac = LacConfig {
                    divisors: DivisorConfig {
                        max_sets: 3, // barely beyond the fanin removals
                        ..DivisorConfig::default()
                    },
                    ..LacConfig::default()
                };
                let cfg = config_with(lac, threshold, 32, 5);
                flow::run(&exact, &FlowConfig { seed, ..cfg }).expect("flow")
            },
            |_| true,
        );
        vec![
            name.to_string(),
            percent(wide.area_ratio),
            percent(narrow.area_ratio),
        ]
    });
    print_table(
        "Ablation 1: TFI-wide divisors vs fanin-local divisors (ER = 3%, area ratio)",
        &["Circuit", "TFI-wide", "Fanin-local"],
        &rows,
        &[1, 2],
    );

    // Ablation 2: initial simulation rounds N (dynamic control always on).
    let rows = pool::par_map(&circuits, |name| {
        let exact = catalog::by_name(name, options.scale).expect("known benchmark");
        let mut row = vec![name.to_string()];
        for rounds in [8usize, 32, 128] {
            let outcome = average_outcome(
                &exact,
                options.seeds,
                asic_cost,
                |seed| {
                    let cfg = config_with(LacConfig::default(), threshold, rounds, 5);
                    flow::run(&exact, &FlowConfig { seed, ..cfg }).expect("flow")
                },
                |_| true,
            );
            row.push(percent(outcome.area_ratio));
        }
        row
    });
    print_table(
        "Ablation 2: initial simulation rounds N (ER = 3%, area ratio)",
        &["Circuit", "N=8", "N=32", "N=128"],
        &rows,
        &[1, 2, 3],
    );

    // Ablation 2b: adaptive N vs effectively-fixed N (huge patience).
    let rows = pool::par_map(&circuits, |name| {
        let exact = catalog::by_name(name, options.scale).expect("known benchmark");
        let adaptive = average_outcome(
            &exact,
            options.seeds,
            asic_cost,
            |seed| {
                let cfg = config_with(LacConfig::default(), threshold, 32, 5);
                flow::run(&exact, &FlowConfig { seed, ..cfg }).expect("flow")
            },
            |_| true,
        );
        let fixed = average_outcome(
            &exact,
            options.seeds,
            asic_cost,
            |seed| {
                let cfg = config_with(LacConfig::default(), threshold, 32, usize::MAX / 8);
                flow::run(
                    &exact,
                    &FlowConfig {
                        seed,
                        max_iterations: 120,
                        ..cfg
                    },
                )
                .expect("flow")
            },
            |_| true,
        );
        vec![
            name.to_string(),
            percent(adaptive.area_ratio),
            percent(fixed.area_ratio),
        ]
    });
    print_table(
        "Ablation 2b: adaptive N (t=5, r=0.9) vs fixed N = 32 (ER = 3%, area ratio)",
        &["Circuit", "Adaptive", "Fixed"],
        &rows,
        &[1, 2],
    );

    // Ablation 3: divisor-set arity — the paper's 2-divisor fanin edits vs
    // extended 3-divisor sets (fanins + one TFI signal). Extensions go
    // beyond Algorithm 1 but quantify how much expressive power the
    // 2-divisor restriction leaves on the table.
    let rows = pool::par_map(&circuits, |name| {
        let exact = catalog::by_name(name, options.scale).expect("known benchmark");
        let two = average_outcome(
            &exact,
            options.seeds,
            asic_cost,
            |seed| {
                let cfg = config_with(LacConfig::default(), threshold, 32, 5);
                flow::run(&exact, &FlowConfig { seed, ..cfg }).expect("flow")
            },
            |_| true,
        );
        let three = average_outcome(
            &exact,
            options.seeds,
            asic_cost,
            |seed| {
                let lac = LacConfig {
                    lac_limit: 3,
                    divisors: DivisorConfig {
                        include_extensions: true,
                        ..DivisorConfig::default()
                    },
                };
                let cfg = config_with(lac, threshold, 32, 5);
                flow::run(&exact, &FlowConfig { seed, ..cfg }).expect("flow")
            },
            |_| true,
        );
        vec![
            name.to_string(),
            percent(two.area_ratio),
            percent(three.area_ratio),
        ]
    });
    print_table(
        "Ablation 3: 2-divisor (paper) vs extended 3-divisor LACs (ER = 3%, area ratio)",
        &["Circuit", "2-divisor", "3-divisor"],
        &rows,
        &[1, 2],
    );
    options.finish_trace();
}
