//! Regenerates Table V: ALSRAC vs Su's method on ASIC arithmetic circuits
//! under NMED constraints.
//!
//! Uses the arithmetic subset (cla32, ksa32, mtp8, rca32, wal8 analogues)
//! and the paper's eight NMED thresholds (`--full`) or a three-point
//! subset (default).

use alsrac::baseline::su::{self, SuConfig};
use alsrac::flow::{self, FlowConfig};
use alsrac_bench::{
    asic_cost, average_outcome, percent, print_table, within_budget, Options, Outcome,
};
use alsrac_circuits::catalog;
use alsrac_metrics::ErrorMetric;
use alsrac_rt::pool;

fn main() {
    let options = Options::parse(std::env::args().skip(1));
    options.init_trace("table5");
    // Paper-scale circuits re-optimize in batches to keep runtimes sane.
    let period = if options.scale == alsrac_circuits::catalog::Scale::Paper {
        8
    } else {
        1
    };
    let thresholds: &[f64] = if options.full {
        &[
            0.0000153, 0.0000305, 0.0000610, 0.0001221, 0.0002441, 0.0004883, 0.0009766, 0.0019531,
        ]
    } else {
        &[0.0001221, 0.0004883, 0.0019531]
    };

    // Per-circuit fan-out on the hermetic pool; deterministic per seed.
    let benches = catalog::arithmetic_subset(options.scale);
    let rows = pool::par_map(&benches, |bench| {
        let exact = &bench.aig;
        let mut alsrac_avg = Outcome::default();
        let mut su_avg = Outcome::default();
        for &threshold in thresholds {
            let a = average_outcome(
                exact,
                options.seeds,
                asic_cost,
                |seed| {
                    let config = FlowConfig {
                        metric: ErrorMetric::Nmed,
                        threshold,
                        seed,
                        max_iterations: 600,
                        est_rounds: 1024,
                        optimize_period: period,
                        ..FlowConfig::default()
                    };
                    flow::run(exact, &config).expect("ALSRAC flow")
                },
                within_budget(ErrorMetric::Nmed, threshold),
            );
            let s = average_outcome(
                exact,
                options.seeds,
                asic_cost,
                |seed| {
                    let config = SuConfig {
                        metric: ErrorMetric::Nmed,
                        threshold,
                        seed,
                        max_iterations: if period > 1 { 150 } else { 400 },
                        est_rounds: 1024,
                        optimize_period: period,
                        ..SuConfig::default()
                    };
                    su::run(exact, &config).expect("Su flow")
                },
                within_budget(ErrorMetric::Nmed, threshold),
            );
            alsrac_avg.area_ratio += a.area_ratio;
            alsrac_avg.delay_ratio += a.delay_ratio;
            alsrac_avg.seconds += a.seconds;
            alsrac_avg.violations += a.violations;
            su_avg.area_ratio += s.area_ratio;
            su_avg.delay_ratio += s.delay_ratio;
            su_avg.seconds += s.seconds;
            su_avg.violations += s.violations;
        }
        let n = thresholds.len() as f64;
        let row = vec![
            bench.paper_name.to_string(),
            percent(alsrac_avg.area_ratio / n),
            percent(su_avg.area_ratio / n),
            percent(alsrac_avg.delay_ratio / n),
            percent(su_avg.delay_ratio / n),
            format!("{:.1}", alsrac_avg.seconds / n),
            format!("{:.1}", su_avg.seconds / n),
            format!("{}/{}", alsrac_avg.violations, su_avg.violations),
        ];
        eprintln!("done: {} {:?}", bench.paper_name, row);
        row
    });
    print_table(
        "Table V: ALSRAC vs Su under NMED constraint (ASIC)",
        &[
            "Circuit",
            "ALSRAC area",
            "Su area",
            "ALSRAC delay",
            "Su delay",
            "ALSRAC t(s)",
            "Su t(s)",
            "viol A/S",
        ],
        &rows,
        &[1, 2, 3, 4, 5, 6],
    );
    options.finish_trace();
}
