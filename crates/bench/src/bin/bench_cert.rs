//! Certified-error benchmark: SAT certificates for every bundled circuit.
//!
//! For each Test-scale circuit of the ISCAS + arithmetic suite this binary
//! runs the ALSRAC flow with `certify` on and records the exact
//! (model-counted) error rate of the optimized output next to an
//! independent Monte-Carlo estimate; the two must agree within the Wilson
//! interval at [`alsrac_bench::CERT_WILSON_Z`] (recomputed — not trusted —
//! by `report --cert`). The arithmetic subset additionally runs the
//! WCE-constrained flow, whose result carries an exact SAT certificate of
//! the maximum error distance that must sit at or below the configured
//! bound.
//!
//! The output (`BENCH_cert.json` by default, or the path given as the
//! first non-flag argument) is committed at the repo root and validated in
//! CI by `report --cert`. `--smoke` shrinks the Monte-Carlo sample for the
//! CI gate; everything else — flows, certificates, agreement checks — is
//! identical, and the whole artifact is deterministic in the thread count
//! except for the recorded `"threads"` field itself (`scripts/ci.sh
//! cert-smoke` diffs two runs modulo that line).

use alsrac::flow::{certified_record, run, FlowConfig, FlowResult};
use alsrac_bench::CERT_WILSON_Z;
use alsrac_circuits::catalog::{arithmetic_subset, iscas_and_arith, Benchmark, Scale};
use alsrac_metrics::{measure_sampled, wilson_interval, CertifiedMeasurement, ErrorMetric};
use alsrac_rt::json::{Arr, Obj};
use alsrac_rt::{pool, trace};

/// Shared RNG seed of every flow and sampling run in the artifact.
const SEED: u64 = 42;
/// Monte-Carlo rounds for the independent sampled estimate.
const SAMPLE_ROUNDS: usize = 200_000;
/// `--smoke` Monte-Carlo rounds (CI wall-clock budget).
const SMOKE_ROUNDS: usize = 20_000;

fn flow_config(metric: ErrorMetric, threshold: f64) -> FlowConfig {
    FlowConfig {
        metric,
        threshold,
        max_iterations: 12,
        seed: SEED,
        certify: true,
        ..FlowConfig::default()
    }
}

/// Absolute worst-case-error-distance budget for a WCE-constrained run:
/// roughly 3% of the circuit's output range, at least 2.
fn wce_bound(bench: &Benchmark) -> u64 {
    let range = 1u64 << bench.aig.num_outputs().min(63);
    (range / 32).max(2)
}

fn certificate(result: &FlowResult, circuit: &str) -> CertifiedMeasurement {
    result
        .certificate
        .clone()
        .unwrap_or_else(|| panic!("{circuit}: flow returned no certificate"))
}

/// One ER entry: certified exact error rate vs. an independent sample.
fn er_entry(bench: &Benchmark, rounds: usize) -> Obj {
    let name = bench.paper_name;
    let result = run(&bench.aig, &flow_config(ErrorMetric::ErrorRate, 0.05)).expect("flow");
    let cert = certificate(&result, name);
    assert_eq!(cert.metric, ErrorMetric::ErrorRate, "{name}: wrong metric");

    let sampled = measure_sampled(&bench.aig, &result.approx, rounds, SEED).expect("measure");
    let patterns = sampled.num_patterns as u64;
    let errors = (sampled.error_rate * sampled.num_patterns as f64).round() as u64;
    let (low, high) = wilson_interval(errors, patterns, CERT_WILSON_Z);
    let (value_low, value_high) = if cert.exact {
        (cert.value, cert.value)
    } else {
        (
            cert.value / (1.0 + cert.epsilon),
            cert.value * (1.0 + cert.epsilon),
        )
    };
    let agreement = value_high >= low && value_low <= high;
    assert!(
        agreement,
        "{name}: certified rate {} outside Wilson interval [{low}, {high}] of \
         {errors}/{patterns} sampled",
        cert.value
    );
    eprintln!(
        "ER  {name}: {} -> {} ANDs ({} applied), certified {} ({}, {} SAT queries), \
         sampled {errors}/{patterns}",
        bench.aig.num_ands(),
        result.approx.num_ands(),
        result.applied,
        cert.value,
        if cert.exact { "exact" } else { "hash-count" },
        cert.sat_queries,
    );

    Obj::new()
        .str("circuit", name)
        .u64("inputs", bench.aig.num_inputs() as u64)
        .u64("outputs", bench.aig.num_outputs() as u64)
        .u64("ands_before", bench.aig.num_ands() as u64)
        .u64("ands_after", result.approx.num_ands() as u64)
        .u64("applied", result.applied as u64)
        .u64("sampled_errors", errors)
        .u64("sampled_patterns", patterns)
        .bool("agreement", agreement)
        .obj("certified", certified_record(&cert))
}

/// One WCE entry: SAT-gated flow plus an exact certificate of the final
/// maximum error distance.
fn wce_entry(bench: &Benchmark) -> Obj {
    let name = bench.paper_name;
    let bound = wce_bound(bench);
    let result = run(&bench.aig, &flow_config(ErrorMetric::Wce, bound as f64)).expect("flow");
    let cert = certificate(&result, name);
    assert_eq!(cert.metric, ErrorMetric::Wce, "{name}: wrong metric");
    assert!(cert.exact, "{name}: WCE certificate must be exact");
    assert!(
        cert.value <= bound as f64,
        "{name}: certified WCE {} exceeds the bound {bound}",
        cert.value
    );
    let sampled_max = result.measured.max_error_distance.unwrap_or(0);
    assert!(
        (sampled_max as f64) <= cert.value,
        "{name}: simulation observed distance {sampled_max} above the certified \
         maximum {}",
        cert.value
    );
    eprintln!(
        "WCE {name}: {} -> {} ANDs ({} applied), certified max distance {} <= {bound} \
         ({} SAT queries), simulated max {sampled_max}",
        bench.aig.num_ands(),
        result.approx.num_ands(),
        result.applied,
        cert.value,
        cert.sat_queries,
    );

    Obj::new()
        .str("circuit", name)
        .u64("bound", bound)
        .u64("ands_before", bench.aig.num_ands() as u64)
        .u64("ands_after", result.approx.num_ands() as u64)
        .u64("applied", result.applied as u64)
        .u64("sampled_max_distance", sampled_max)
        .bool("within_bound", true)
        .obj("certified", certified_record(&cert))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_cert.json".to_string());
    let rounds = if smoke { SMOKE_ROUNDS } else { SAMPLE_ROUNDS };

    // Counters are always collected; set ALSRAC_TRACE to also keep the
    // full JSONL record stream for `report` to break down.
    match trace::init_from_env() {
        Ok(Some(_)) => {}
        Ok(None) => trace::enable_writer(Box::new(std::io::sink())),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
    trace::reset();

    let mut er = Arr::new();
    for bench in &iscas_and_arith(Scale::Test) {
        er = er.obj(er_entry(bench, rounds));
    }
    let mut wce = Arr::new();
    for bench in &arithmetic_subset(Scale::Test) {
        wce = wce.obj(wce_entry(bench));
    }

    let json = Obj::new()
        .str("benchmark", "cert")
        .bool("smoke", smoke)
        .u64("threads", pool::current_threads() as u64)
        .u64("seed", SEED)
        .arr("er", er)
        .arr("wce", wce)
        .finish();
    std::fs::write(&path, json + "\n").expect("write benchmark JSON");
    let (_, counters) = trace::snapshot();
    let queries = counters
        .iter()
        .find(|(n, _)| n == "cert_sat_queries")
        .map_or(0, |&(_, v)| v);
    println!("wrote {path} ({queries} SAT queries total)");
}
