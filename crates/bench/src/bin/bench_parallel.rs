//! Serial-vs-parallel wall-clock microbenchmark for the hermetic pool
//! (`alsrac_rt::pool`), focused on `Estimator::estimate_all` — the flow's
//! hottest kernel (DESIGN.md, "Parallel execution").
//!
//! For each circuit the same LAC batch is estimated under
//! `pool::with_threads(1)` and under each probed thread count; results are
//! asserted equal before timings are recorded, so the file doubles as a
//! determinism check. Timings land in `BENCH_parallel.json` (hand-rolled
//! JSON; the workspace has no serializer by design).
//!
//! Speedups depend on the machine: on a single-hardware-thread host the
//! pool degrades to roughly serial throughput (scheduling overhead only)
//! and the recorded ratios hover around 1.0x. The `host_threads` field
//! captures what the run actually had available.

use std::time::Instant;

use alsrac::estimate::Estimator;
use alsrac::lac::{generate_lacs, Lac, LacConfig};
use alsrac_aig::Aig;
use alsrac_circuits::arith;
use alsrac_rt::pool;
use alsrac_sim::{PatternBuffer, Simulation};

const EST_ROUNDS: usize = 2048;
const REPS: usize = 5;

struct Case {
    name: &'static str,
    aig: Aig,
}

struct Timing {
    threads: usize,
    secs: f64,
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            name: "ksa16",
            aig: arith::kogge_stone_adder(16),
        },
        Case {
            name: "cla16",
            aig: arith::carry_lookahead_adder(16),
        },
        Case {
            name: "wal8",
            aig: arith::wallace_multiplier(8),
        },
    ]
}

fn prepare(aig: &Aig) -> (PatternBuffer, alsrac_aig::FanoutMap, Vec<Lac>) {
    let care_patterns = PatternBuffer::random(aig.num_inputs(), 64, 11);
    let care_sim = Simulation::new(aig, &care_patterns);
    let fanouts = aig.fanout_map();
    let lacs = generate_lacs(
        aig,
        &care_sim,
        &care_patterns,
        &fanouts,
        &LacConfig::default(),
    );
    let est_patterns = PatternBuffer::random(aig.num_inputs(), EST_ROUNDS, 13);
    (est_patterns, fanouts, lacs)
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn time_at(threads: usize, mut run: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..REPS)
        .map(|_| {
            let start = Instant::now();
            pool::with_threads(threads, &mut run);
            start.elapsed().as_secs_f64()
        })
        .collect();
    median(&mut samples)
}

fn main() {
    let host_threads = pool::configured_threads();
    let probe: Vec<usize> = [2usize, 4, host_threads]
        .into_iter()
        .filter(|&t| t > 1)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();

    let mut entries = Vec::new();
    for case in cases() {
        let (est_patterns, fanouts, lacs) = prepare(&case.aig);
        let estimator = Estimator::new(&case.aig, &case.aig, &est_patterns, &fanouts);

        let reference = pool::with_threads(1, || estimator.estimate_all(&lacs));
        let serial_secs = time_at(1, || {
            std::hint::black_box(estimator.estimate_all(&lacs));
        });

        let mut timings = Vec::new();
        for &threads in &probe {
            let parallel = pool::with_threads(threads, || estimator.estimate_all(&lacs));
            assert_eq!(
                reference, parallel,
                "estimate_all diverged between 1 and {threads} threads on {}",
                case.name
            );
            let secs = time_at(threads, || {
                std::hint::black_box(estimator.estimate_all(&lacs));
            });
            timings.push(Timing { threads, secs });
        }

        eprintln!(
            "{}: {} LACs, serial {:.4}s{}",
            case.name,
            lacs.len(),
            serial_secs,
            timings
                .iter()
                .map(|t| format!(
                    ", {}t {:.4}s ({:.2}x)",
                    t.threads,
                    t.secs,
                    serial_secs / t.secs
                ))
                .collect::<String>()
        );
        entries.push((case.name, lacs.len(), serial_secs, timings));
    }

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"host_threads\": {host_threads},\n"));
    json.push_str(&format!("  \"est_rounds\": {EST_ROUNDS},\n"));
    json.push_str(&format!("  \"reps_per_sample\": {REPS},\n"));
    json.push_str("  \"kernel\": \"Estimator::estimate_all\",\n");
    json.push_str("  \"cases\": [\n");
    for (i, (name, num_lacs, serial_secs, timings)) in entries.iter().enumerate() {
        json.push_str("    {\n");
        json.push_str(&format!("      \"circuit\": \"{name}\",\n"));
        json.push_str(&format!("      \"lacs\": {num_lacs},\n"));
        json.push_str(&format!("      \"serial_secs\": {serial_secs:.6},\n"));
        json.push_str("      \"parallel\": [\n");
        for (j, t) in timings.iter().enumerate() {
            json.push_str(&format!(
                "        {{\"threads\": {}, \"secs\": {:.6}, \"speedup\": {:.3}}}{}\n",
                t.threads,
                t.secs,
                serial_secs / t.secs,
                if j + 1 < timings.len() { "," } else { "" }
            ));
        }
        json.push_str("      ]\n");
        json.push_str(&format!(
            "    }}{}\n",
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_parallel.json".to_string());
    std::fs::write(&path, &json).expect("write benchmark JSON");
    println!("wrote {path}");
}
