//! Daemon throughput benchmark and the `serve-smoke` CI gate.
//!
//! Default mode saturates an in-process daemon ([`alsrac::serve`]) with a
//! mixed workload — one small exact-certification job per Test-scale
//! circuit plus windowed 10k+-AND multiplier jobs at a higher priority —
//! and writes `BENCH_serve.json`: jobs/sec, p50/p95/max end-to-end
//! latency, queue-depth statistics, and a per-job detail array. The
//! committed artifact is validated in CI by `report --serve`.
//!
//! `--smoke` runs the CI gate instead:
//!
//! 1. three concurrent jobs whose streamed `run_end` records must be
//!    bit-identical — modulo run ids and wall-clock fields — to a direct
//!    `flow::run` with the same configuration and seed,
//! 2. a malformed request line that must produce a structured `error`
//!    response (with its 1-based line number) without killing the daemon,
//! 3. a `cancel` of an in-flight large job that must yield an
//!    `interrupted` terminal record carrying a checkpoint that
//!    `flow::resume` accepts and completes from.
//!
//! The smoke also writes its (small) artifact so `report --serve` gets
//! exercised on a fresh file in CI, not just on the committed one.

use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use alsrac::checkpoint::Checkpoint;
use alsrac::flow::{self, FlowConfig};
use alsrac::serve::{
    self, request_pipe, wait_for_record, Catalog, CircuitSource, LineCollector, Request,
    RequestPipe, ServeOptions, ServeSummary, SubmitRequest,
};
use alsrac_aig::Aig;
use alsrac_circuits::catalog::{self, Scale};
use alsrac_circuits::{aiger, blif};
use alsrac_metrics::ErrorMetric;
use alsrac_rt::json::{Arr, Json, Obj};
use alsrac_rt::{pool, trace};

/// Fields of a flow record that legitimately differ between a daemon job
/// and a direct run (run ids, wall-clock timings, the job tag itself).
const VOLATILE: [&str; 4] = ["run", "wall_ns", "phase_ns", "job_id"];

/// RNG seed of the small certification jobs in the saturation workload.
const SEED: u64 = 42;

fn resolver() -> Box<serve::Resolver> {
    Box::new(|source: &CircuitSource| match source {
        CircuitSource::Named { name, scale } => {
            let scale = match scale.as_str() {
                "paper" => Scale::Paper,
                _ => Scale::Test,
            };
            catalog::by_name(name, scale)
                .or_else(|| {
                    catalog::scale_benchmarks()
                        .into_iter()
                        .find(|b| b.paper_name == *name)
                        .map(|b| b.aig)
                })
                .ok_or_else(|| format!("unknown benchmark {name:?}"))
        }
        CircuitSource::Blif(text) => blif::parse(text).map_err(|e| e.to_string()),
        CircuitSource::Aag(text) => aiger::parse_ascii(text).map_err(|e| e.to_string()),
    })
}

fn resolve(source: &CircuitSource) -> Aig {
    resolver()(source).expect("bundled circuit resolves")
}

/// An in-process daemon session: requests go in through `pipe`, every
/// output line lands in `out`.
struct Session {
    pipe: RequestPipe,
    out: LineCollector,
    handle: JoinHandle<ServeSummary>,
}

fn start_session(workers: usize) -> Session {
    let catalog = Arc::new(Catalog::new(resolver()));
    let (pipe, reader) = request_pipe();
    let out = LineCollector::new();
    let sink = out.clone();
    let handle = std::thread::spawn(move || {
        serve::serve(reader, sink, catalog, &ServeOptions { workers }, None)
    });
    Session { pipe, out, handle }
}

impl Session {
    /// Sends `shutdown` (drain), closes the request stream, and returns
    /// the summary along with the collected output (the collector is
    /// shared, so this is every line the session wrote).
    fn shut_down(self) -> (ServeSummary, LineCollector) {
        self.pipe.request(&Request::Shutdown { cancel: false });
        drop(self.pipe);
        (self.handle.join().expect("serve thread"), self.out)
    }
}

/// Strips [`VOLATILE`] fields so two records can be compared for the
/// bit-identity the daemon promises.
fn stripped(record: &Json) -> Json {
    match record {
        Json::Obj(map) => {
            let mut map = map.clone();
            for key in VOLATILE {
                map.remove(key);
            }
            Json::Obj(map)
        }
        other => panic!("flow record is not an object: {other:?}"),
    }
}

fn record_type(record: &Json) -> &str {
    record.get("type").and_then(Json::as_str).unwrap_or("")
}

fn job_id(record: &Json) -> Option<u64> {
    record.get("job_id").and_then(Json::as_u64)
}

/// Runs `flow::run` directly with the job's exact configuration and
/// returns its volatile-stripped `run_end` record.
fn direct_run_end(spec: &SubmitRequest) -> Json {
    let aig = resolve(&spec.source);
    let collector = LineCollector::new();
    trace::reset();
    trace::enable_writer(Box::new(collector.clone()));
    flow::run(&aig, &spec.flow_config()).expect("direct flow");
    trace::flush();
    trace::disable();
    let line = collector
        .lines()
        .into_iter()
        .rev()
        .find(|l| l.contains("\"type\":\"run_end\""))
        .expect("direct run emitted a run_end record");
    stripped(&Json::parse(&line).expect("direct run_end parses"))
}

/// The three-job mix of the smoke gate: an exact-certified job, an NMED
/// job, and a plain ER job, all on Test-scale circuits with distinct
/// seeds.
fn smoke_jobs() -> Vec<SubmitRequest> {
    let mut cert = SubmitRequest::named("alu4", "test");
    cert.threshold = 0.05;
    cert.seed = 7;
    cert.max_iterations = Some(12);
    cert.measure_rounds = Some(20_000);
    cert.certify = true;

    let mut nmed = SubmitRequest::named("mtp8", "test");
    nmed.metric = ErrorMetric::Nmed;
    nmed.threshold = 0.01;
    nmed.seed = 3;
    nmed.max_iterations = Some(10);
    nmed.measure_rounds = Some(20_000);

    let mut er = SubmitRequest::named("wal8", "test");
    er.threshold = 0.03;
    er.seed = 5;
    er.max_iterations = Some(10);
    er.measure_rounds = Some(20_000);

    vec![cert, nmed, er]
}

/// A windowed job over the ~10.5k-AND Wallace multiplier from the
/// scale-study set, bounded to two iterations so the saturation run (and
/// the smoke's cancel target) stays within a CI budget.
fn large_job(seed: u64) -> SubmitRequest {
    let mut job = SubmitRequest::named("wal32", "test");
    job.threshold = 0.05;
    job.seed = seed;
    job.priority = 1;
    job.max_iterations = Some(2);
    job.measure_rounds = Some(2_000);
    job
}

/// Waits on `rx` for a record satisfying `pred`, panicking with `what`
/// after the timeout.
fn expect_record(rx: &mpsc::Receiver<String>, what: &str, pred: impl Fn(&Json) -> bool) -> Json {
    wait_for_record(rx, Duration::from_secs(300), pred)
        .unwrap_or_else(|| panic!("timed out waiting for {what}"))
}

// -------------------------------------------------------------------
// Smoke gate

fn run_smoke(path: &str) {
    let workers = pool::current_threads();
    let jobs = smoke_jobs();

    // References first: the daemon owns the global trace sink while a
    // session is live.
    let references: Vec<Json> = jobs.iter().map(direct_run_end).collect();

    let session = start_session(workers);
    let started = Instant::now();
    // Job ids are assigned in submission order: 1, 2, 3. The malformed
    // line goes in as line 2 and must be rejected by line number without
    // disturbing the jobs around it.
    session.pipe.request(&Request::Submit(jobs[0].clone()));
    session.pipe.send_line("{\"op\":");
    session.pipe.request(&Request::Submit(jobs[1].clone()));
    session.pipe.request(&Request::Submit(jobs[2].clone()));
    let (summary, out) = session.shut_down();
    let wall_ns = started.elapsed().as_nanos() as u64;

    let records: Vec<Json> = out
        .lines()
        .iter()
        .map(|l| Json::parse(l).expect("daemon emits valid JSON lines"))
        .collect();

    // 1. Bit-identity of every streamed run_end against the direct run.
    for (i, reference) in references.iter().enumerate() {
        let id = i as u64 + 1;
        let matching: Vec<&Json> = records
            .iter()
            .filter(|r| record_type(r) == "run_end" && job_id(r) == Some(id))
            .collect();
        assert_eq!(
            matching.len(),
            1,
            "job {id}: expected exactly one run_end, got {}",
            matching.len()
        );
        assert_eq!(
            &stripped(matching[0]),
            reference,
            "job {id} ({}): daemon run_end differs from direct flow::run",
            jobs[i].source.label()
        );
    }

    // 2. The malformed line produced a structured error naming line 2.
    let error = records
        .iter()
        .find(|r| record_type(r) == "error")
        .expect("malformed line produced an error record");
    assert_eq!(
        error.get("line").and_then(Json::as_u64),
        Some(2),
        "error record must carry the 1-based line number"
    );

    // 3. All three jobs finished despite the bad line in the middle.
    let done: Vec<&Json> = records
        .iter()
        .filter(|r| record_type(r) == "job_done")
        .collect();
    assert_eq!(done.len(), 3, "expected 3 job_done records");
    for d in &done {
        assert_eq!(
            d.get("outcome").and_then(Json::as_str),
            Some("completed"),
            "job {:?} did not complete",
            job_id(d)
        );
    }
    assert_eq!(summary.totals.submitted, 3);
    assert_eq!(summary.totals.completed, 3);
    assert_eq!(summary.totals.rejected_lines, 1);

    eprintln!(
        "smoke: 3/3 run_end records bit-identical to direct runs at {workers} worker(s); \
         malformed line rejected in place"
    );

    run_cancel_smoke();

    // A small artifact from the session so `report --serve` sees a fresh
    // file in CI.
    let artifact = artifact_json(true, workers, &jobs, &done, &summary, wall_ns);
    std::fs::write(path, artifact + "\n").expect("write benchmark JSON");
    println!("wrote {path}");
}

/// Cancels an in-flight large job and proves the terminal record is
/// `interrupted` with a checkpoint `flow::resume` completes from.
fn run_cancel_smoke() {
    let spec = large_job(9);
    let session = start_session(1);
    let watch = session.out.watch();
    session.pipe.request(&Request::Submit(spec.clone()));
    // The first wal32 iteration takes seconds; the cancel lands well
    // before the flow's next budget check.
    expect_record(&watch, "run_start of the cancel target", |r| {
        record_type(r) == "run_start" && job_id(r) == Some(1)
    });
    session.pipe.request(&Request::Cancel { job_id: 1 });
    let done = expect_record(&watch, "terminal record of the cancelled job", |r| {
        record_type(r) == "job_done" && job_id(r) == Some(1)
    });
    let (summary, _) = session.shut_down();

    assert_eq!(
        done.get("outcome").and_then(Json::as_str),
        Some("interrupted"),
        "cancel of an in-flight job must interrupt it"
    );
    assert_eq!(summary.totals.interrupted, 1);
    let text = done
        .get("checkpoint")
        .and_then(Json::as_str)
        .expect("interrupted job carries a checkpoint");
    let checkpoint = Checkpoint::parse(text).expect("checkpoint round-trips");
    let iterations_done = checkpoint.iterations;

    let aig = resolve(&spec.source);
    let config: FlowConfig = spec.flow_config();
    let resumed = flow::resume(&aig, &config, checkpoint).expect("resume from daemon checkpoint");
    assert!(
        resumed.outcome.is_completed(),
        "resumed run must complete: {:?}",
        resumed.outcome
    );
    assert_eq!(resumed.iterations, config.max_iterations);
    eprintln!(
        "smoke: in-flight cancel interrupted wal32 after {iterations_done} iteration(s); \
         resume completed the remaining {}",
        config.max_iterations - iterations_done
    );
}

// -------------------------------------------------------------------
// Saturation benchmark

fn run_saturation(path: &str) {
    let workers = pool::current_threads();
    let mut jobs = Vec::new();
    for bench in catalog::iscas_and_arith(Scale::Test) {
        let mut job = SubmitRequest::named(bench.paper_name, "test");
        job.threshold = 0.05;
        job.seed = SEED;
        job.max_iterations = Some(12);
        job.measure_rounds = Some(20_000);
        job.certify = true;
        jobs.push(job);
    }
    jobs.push(large_job(1));
    jobs.push(large_job(2));

    let session = start_session(workers);
    let started = Instant::now();
    for job in &jobs {
        session.pipe.request(&Request::Submit(job.clone()));
    }
    let (summary, out) = session.shut_down();
    let wall_ns = started.elapsed().as_nanos() as u64;

    let records: Vec<Json> = out
        .lines()
        .iter()
        .map(|l| Json::parse(l).expect("daemon emits valid JSON lines"))
        .collect();
    let done: Vec<&Json> = records
        .iter()
        .filter(|r| record_type(r) == "job_done")
        .collect();
    assert_eq!(
        done.len(),
        jobs.len(),
        "every job must reach a terminal record"
    );
    assert_eq!(summary.totals.completed, jobs.len() as u64);

    let artifact = artifact_json(false, workers, &jobs, &done, &summary, wall_ns);
    std::fs::write(path, artifact + "\n").expect("write benchmark JSON");
    println!(
        "wrote {path} ({} jobs in {:.2}s at {workers} worker(s))",
        jobs.len(),
        wall_ns as f64 / 1e9
    );
}

// -------------------------------------------------------------------
// Artifact

fn percentile(sorted: &[u64], pct: usize) -> u64 {
    assert!(!sorted.is_empty());
    let idx = (sorted.len() * pct / 100).min(sorted.len() - 1);
    sorted[idx]
}

fn artifact_json(
    smoke: bool,
    workers: usize,
    jobs: &[SubmitRequest],
    done: &[&Json],
    summary: &ServeSummary,
    wall_ns: u64,
) -> String {
    let req = |record: &Json, key: &str| {
        record
            .get(key)
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("job_done record lacks {key:?}"))
    };

    // Terminal records arrive in completion order; report them by job id.
    let mut sorted_done: Vec<&Json> = done.to_vec();
    sorted_done.sort_by_key(|d| job_id(d).expect("job_done carries job_id"));

    let mut latencies: Vec<u64> = Vec::new();
    let mut depths: Vec<u64> = Vec::new();
    let mut detail = Arr::new();
    for d in &sorted_done {
        let id = job_id(d).expect("job_done carries job_id");
        let queue_ns = req(d, "queue_ns");
        let run_ns = req(d, "run_ns");
        let depth = req(d, "queue_depth");
        latencies.push(queue_ns + run_ns);
        depths.push(depth);
        let spec = &jobs[(id - 1) as usize];
        detail = detail.obj(
            Obj::new()
                .u64("job_id", id)
                .str("circuit", spec.source.label())
                .u64("priority", spec.priority)
                .str(
                    "outcome",
                    d.get("outcome").and_then(Json::as_str).unwrap_or("?"),
                )
                .u64("queue_ns", queue_ns)
                .u64("run_ns", run_ns)
                .u64("queue_depth", depth)
                .u64("iterations", req(d, "iterations"))
                .u64("applied", req(d, "applied"))
                .u64("ands", req(d, "ands")),
        );
    }
    latencies.sort_unstable();
    let mean_depth = depths.iter().sum::<u64>() as f64 / depths.len().max(1) as f64;

    Obj::new()
        .str("benchmark", "serve")
        .bool("smoke", smoke)
        .u64("threads", pool::current_threads() as u64)
        .u64("workers", workers as u64)
        .u64("jobs", jobs.len() as u64)
        .u64("completed", summary.totals.completed)
        .u64("interrupted", summary.totals.interrupted)
        .u64("cancelled", summary.totals.cancelled)
        .u64("failed", summary.totals.failed)
        .u64("rejected_lines", summary.totals.rejected_lines)
        .u64("wall_ns", wall_ns)
        .f64(
            "jobs_per_sec",
            done.len() as f64 / (wall_ns.max(1) as f64 / 1e9),
        )
        .obj(
            "latency_ns",
            Obj::new()
                .u64("p50", percentile(&latencies, 50))
                .u64("p95", percentile(&latencies, 95))
                .u64("max", *latencies.last().expect("at least one job")),
        )
        .obj(
            "queue_depth",
            Obj::new()
                .u64("max", depths.iter().copied().max().unwrap_or(0))
                .f64("mean", mean_depth),
        )
        .arr("jobs_detail", detail)
        .finish()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    if smoke {
        run_smoke(&path);
    } else {
        run_saturation(&path);
    }
}
