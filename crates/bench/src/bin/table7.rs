//! Regenerates Table VII: ALSRAC vs Liu's method on EPFL arithmetic
//! circuits under an MRED constraint of 0.19531%.
//!
//! Mapped to 6-LUTs; `hyp` is omitted as in the paper. The arithmetic
//! means with and without `max` are both reported (the paper calls out
//! `max` as ALSRAC's one loss).

use alsrac::baseline::liu::{self, LiuConfig};
use alsrac::flow::{self, FlowConfig};
use alsrac_bench::{average_outcome, fpga_cost, percent, print_table, within_budget, Options};
use alsrac_circuits::catalog;
use alsrac_metrics::ErrorMetric;
use alsrac_rt::pool;

fn main() {
    let options = Options::parse(std::env::args().skip(1));
    options.init_trace("table7");
    let period = if options.scale == alsrac_circuits::catalog::Scale::Paper {
        8
    } else {
        1
    };
    let threshold = 0.0019531;

    // Per-circuit fan-out on the hermetic pool; deterministic per seed.
    // Each worker also reports its circuit's area pair for the no-`max`
    // arithmetic mean, folded after the parallel section.
    let benches = catalog::epfl_arith(options.scale);
    let outcomes = pool::par_map(&benches, |bench| {
        let exact = &bench.aig;
        let a = average_outcome(
            exact,
            options.seeds,
            fpga_cost,
            |seed| {
                let config = FlowConfig {
                    metric: ErrorMetric::Mred,
                    threshold,
                    seed,
                    max_iterations: 600,
                    est_rounds: 1024,
                    optimize_period: period,
                    ..FlowConfig::default()
                };
                flow::run(exact, &config).expect("ALSRAC flow")
            },
            within_budget(ErrorMetric::Mred, threshold),
        );
        let l = average_outcome(
            exact,
            options.seeds,
            fpga_cost,
            |seed| {
                let config = LiuConfig {
                    metric: ErrorMetric::Mred,
                    threshold,
                    seed,
                    steps: if options.full { 600 } else { 200 },
                    ..LiuConfig::default()
                };
                liu::run(exact, &config).expect("Liu flow")
            },
            within_budget(ErrorMetric::Mred, threshold),
        );
        let area_pair = (bench.paper_name != "max").then_some((a.area_ratio, l.area_ratio));
        let row = vec![
            bench.paper_name.to_string(),
            percent(a.area_ratio),
            percent(l.area_ratio),
            percent(a.delay_ratio),
            percent(l.delay_ratio),
            format!("{:.1}", a.seconds),
            format!("{}/{}", a.violations, l.violations),
        ];
        eprintln!("done: {} {:?}", bench.paper_name, row);
        (row, area_pair)
    });
    let mut rows = Vec::new();
    let mut without_max: Vec<(f64, f64)> = Vec::new();
    for (row, area_pair) in outcomes {
        rows.push(row);
        without_max.extend(area_pair);
    }
    print_table(
        "Table VII: ALSRAC vs Liu under MRED = 0.19531% (FPGA, 6-LUT)",
        &[
            "Circuit",
            "ALSRAC area",
            "Liu area",
            "ALSRAC delay",
            "Liu delay",
            "ALSRAC t(s)",
            "viol A/L",
        ],
        &rows,
        &[1, 2, 3, 4, 5],
    );
    if !without_max.is_empty() {
        let n = without_max.len() as f64;
        let a: f64 = without_max.iter().map(|(a, _)| a).sum::<f64>() / n;
        let l: f64 = without_max.iter().map(|(_, l)| l).sum::<f64>() / n;
        println!(
            "Arithmean w/o max: ALSRAC area {}  Liu area {}",
            percent(a),
            percent(l)
        );
    }
    options.finish_trace();
}
