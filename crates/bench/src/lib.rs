//! Shared experiment harness for regenerating the ALSRAC paper's tables.
//!
//! Each table of §IV has a binary in `src/bin` (`table3` … `table7`,
//! `ablation`); this library holds the common machinery: cost evaluation
//! through the two technology mappers, multi-seed averaging (the paper runs
//! everything three times), and fixed-width table printing.
//!
//! All binaries accept:
//!
//! * `--scale test|paper` — circuit sizes (default `test`, CI-friendly;
//!   `paper` approaches Table III sizes),
//! * `--seeds N` — averaging runs (default 1; the paper uses 3),
//! * `--quick` / `--full` — threshold sweep density,
//! * `--trace PATH` — write a JSONL run report (also honoured via the
//!   `ALSRAC_TRACE` environment variable; the flag wins). See DESIGN.md
//!   ("Telemetry") for the record schema and `report` for the reader.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

use alsrac::flow::FlowResult;
use alsrac_aig::Aig;
use alsrac_circuits::catalog::Scale;
use alsrac_map::cell::{map_cells, Library};
use alsrac_map::lut::map_luts;

/// Confidence width (in standard normal z-units) of the Wilson interval
/// used by the certification gates: `bench_cert` records agreement
/// between the sampled and SAT-certified error rates at this z, and
/// `report --cert` recomputes the same interval when validating
/// `BENCH_cert.json`. z = 3.89 keeps the false-failure probability of the
/// CI gate around 1e-4 per circuit.
pub const CERT_WILSON_Z: f64 = 3.89;

/// Parsed command-line options shared by every experiment binary.
#[derive(Clone, Debug)]
pub struct Options {
    /// Benchmark generation scale.
    pub scale: Scale,
    /// Number of seeds to average over.
    pub seeds: u64,
    /// Dense threshold sweep (the paper's full list) vs. a quick subset.
    pub full: bool,
    /// JSONL trace sink path (`--trace`); `None` falls back to the
    /// `ALSRAC_TRACE` environment variable.
    pub trace: Option<String>,
}

impl Options {
    /// Parses `std::env::args`-style arguments; unknown flags abort with a
    /// usage message.
    pub fn parse(args: impl Iterator<Item = String>) -> Options {
        let mut options = Options {
            scale: Scale::Test,
            seeds: 1,
            full: false,
            trace: None,
        };
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--scale" => {
                    let value = args.next().unwrap_or_default();
                    options.scale = match value.as_str() {
                        "test" => Scale::Test,
                        "paper" => Scale::Paper,
                        other => usage(&format!("unknown scale {other:?}")),
                    };
                }
                "--seeds" => {
                    let value = args.next().unwrap_or_default();
                    options.seeds = value.parse().unwrap_or_else(|_| usage("bad --seeds"));
                }
                "--quick" => options.full = false,
                "--full" => options.full = true,
                "--trace" => {
                    let value = args.next().unwrap_or_default();
                    if value.is_empty() {
                        usage("--trace needs a path");
                    }
                    options.trace = Some(value);
                }
                other => usage(&format!("unknown flag {other:?}")),
            }
        }
        options
    }

    /// Installs the trace sink requested by `--trace` (or, failing that,
    /// `ALSRAC_TRACE`) and emits the opening `process` record. Call once at
    /// the top of an experiment binary, paired with [`Options::finish_trace`]
    /// before exit. Returns whether tracing is on.
    pub fn init_trace(&self, binary: &'static str) -> bool {
        let enabled = match &self.trace {
            Some(path) => {
                alsrac_rt::trace::enable_file(path)
                    .unwrap_or_else(|e| usage(&format!("--trace {path}: cannot create: {e}")));
                true
            }
            None => alsrac_rt::trace::init_from_env()
                .unwrap_or_else(|e| usage(&e.to_string()))
                .is_some(),
        };
        if enabled {
            alsrac_rt::trace::emit(
                alsrac_rt::json::Obj::new()
                    .str("type", "process")
                    .str("binary", binary)
                    .str(
                        "scale",
                        match self.scale {
                            Scale::Test => "test",
                            Scale::Paper => "paper",
                        },
                    )
                    .u64("seeds", self.seeds)
                    .bool("full", self.full)
                    .u64("threads", alsrac_rt::pool::current_threads() as u64),
            );
        }
        enabled
    }

    /// Emits the closing `totals` record and flushes the sink. No-op when
    /// tracing is off.
    pub fn finish_trace(&self) {
        alsrac_rt::trace::emit_totals();
        alsrac_rt::trace::flush();
    }
}

fn usage(problem: &str) -> ! {
    eprintln!("error: {problem}");
    eprintln!("usage: <binary> [--scale test|paper] [--seeds N] [--quick|--full] [--trace PATH]");
    std::process::exit(2)
}

/// ASIC cost of a circuit: (cell area, critical-path delay) under the
/// MCNC-like library — the §IV-B cost model.
pub fn asic_cost(aig: &Aig) -> (f64, f64) {
    let mapping = map_cells(aig, &Library::mcnc());
    (mapping.area, mapping.delay)
}

/// FPGA cost of a circuit: (6-LUT count, LUT depth) — the §IV-C cost model.
pub fn fpga_cost(aig: &Aig) -> (f64, f64) {
    let mapping = map_luts(aig, 6);
    (mapping.num_luts() as f64, f64::from(mapping.depth()))
}

/// One averaged experiment outcome for a (circuit, method, threshold) cell.
#[derive(Clone, Copy, Debug, Default)]
pub struct Outcome {
    /// Mapped area of the approximate circuit over the exact one.
    pub area_ratio: f64,
    /// Mapped delay of the approximate circuit over the exact one.
    pub delay_ratio: f64,
    /// Wall-clock seconds of the synthesis run.
    pub seconds: f64,
    /// Runs whose independently *measured* error exceeded the threshold by
    /// more than 10% — statistical-estimation escapes the paper's setup
    /// shares but does not report. Non-zero values flag untrustworthy
    /// area numbers.
    pub violations: usize,
}

/// Runs `method` `seeds` times and averages mapped cost ratios, using
/// `cost` as the technology cost model. `check` receives each run's
/// measurement and says whether it honours the error budget (used for the
/// violation count).
pub fn average_outcome(
    exact: &Aig,
    seeds: u64,
    cost: impl Fn(&Aig) -> (f64, f64),
    mut method: impl FnMut(u64) -> FlowResult,
    check: impl Fn(&FlowResult) -> bool,
) -> Outcome {
    let (base_area, base_delay) = cost(exact);
    let mut total = Outcome::default();
    for seed in 1..=seeds {
        let start = Instant::now();
        let result = method(seed);
        let seconds = start.elapsed().as_secs_f64();
        let (area, delay) = cost(&result.approx);
        total.area_ratio += safe_ratio(area, base_area);
        total.delay_ratio += safe_ratio(delay, base_delay);
        total.seconds += seconds;
        if !check(&result) {
            total.violations += 1;
        }
    }
    let n = seeds.max(1) as f64;
    Outcome {
        area_ratio: total.area_ratio / n,
        delay_ratio: total.delay_ratio / n,
        seconds: total.seconds / n,
        violations: total.violations,
    }
}

/// Standard budget check: measured error within 110% of the threshold
/// (tolerating Monte-Carlo noise).
pub fn within_budget(
    metric: alsrac_metrics::ErrorMetric,
    threshold: f64,
) -> impl Fn(&FlowResult) -> bool {
    move |result| {
        result
            .measured
            .value(metric)
            .is_none_or(|v| v <= threshold * 1.10 + 1e-12)
    }
}

fn safe_ratio(value: f64, base: f64) -> f64 {
    if base > 0.0 {
        value / base
    } else {
        1.0
    }
}

/// Prints a fixed-width table: a header row and then `rows`, with the
/// arithmetic-mean row appended (as in the paper's tables).
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>], mean_over: &[usize]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let print_row = |cells: &[String]| {
        let line: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect();
        println!("{}", line.join("  "));
    };
    print_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    for row in rows {
        print_row(row);
    }
    if !rows.is_empty() && !mean_over.is_empty() {
        let mut mean_row: Vec<String> = vec![String::new(); header.len()];
        mean_row[0] = "Arithmean".to_string();
        for &col in mean_over {
            let sum: f64 = rows.iter().filter_map(|r| parse_cell(&r[col])).sum();
            let count = rows
                .iter()
                .filter(|r| parse_cell(&r[col]).is_some())
                .count();
            if count > 0 {
                let mean = sum / count as f64;
                mean_row[col] = if rows.iter().any(|r| r[col].ends_with('%')) {
                    format!("{mean:.2}%")
                } else {
                    format!("{mean:.2}")
                };
            }
        }
        print_row(&mean_row);
    }
}

fn parse_cell(cell: &str) -> Option<f64> {
    cell.trim_end_matches('%').parse().ok()
}

/// Formats a ratio as the paper does (percent, two decimals).
pub fn percent(ratio: f64) -> String {
    format!("{:.2}%", ratio * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_defaults() {
        let o = Options::parse(std::iter::empty());
        assert_eq!(o.scale, Scale::Test);
        assert_eq!(o.seeds, 1);
        assert!(!o.full);
    }

    #[test]
    fn parse_flags() {
        let args = ["--scale", "paper", "--seeds", "3", "--full"]
            .iter()
            .map(|s| s.to_string());
        let o = Options::parse(args);
        assert_eq!(o.scale, Scale::Paper);
        assert_eq!(o.seeds, 3);
        assert!(o.full);
    }

    #[test]
    fn costs_are_positive_for_real_circuits() {
        let aig = alsrac_circuits::arith::ripple_carry_adder(4);
        let (a, d) = asic_cost(&aig);
        assert!(a > 0.0 && d > 0.0);
        let (l, dep) = fpga_cost(&aig);
        assert!(l > 0.0 && dep > 0.0);
    }

    #[test]
    fn percent_formatting() {
        assert_eq!(percent(0.8011), "80.11%");
    }

    #[test]
    fn safe_ratio_handles_zero_base() {
        assert_eq!(safe_ratio(5.0, 0.0), 1.0);
        assert_eq!(safe_ratio(5.0, 10.0), 0.5);
    }
}
