//! Criterion micro-benchmarks for the performance-critical kernels:
//! bit-parallel simulation, ISOP computation, cut enumeration, care-set
//! harvesting, flip-influence / batch error estimation, the traditional
//! optimizer, and both technology mappers.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use alsrac::care::ApproximateCareSet;
use alsrac::estimate::Estimator;
use alsrac::lac::{generate_lacs, LacConfig};
use alsrac_circuits::arith;
use alsrac_map::cell::{map_cells, Library};
use alsrac_map::lut::map_luts;
use alsrac_sim::{FlipInfluence, PatternBuffer, Simulation};
use alsrac_truthtable::{isop, Tt};

fn bench_simulation(c: &mut Criterion) {
    let aig = arith::array_multiplier(8);
    let patterns = PatternBuffer::random(16, 4096, 7);
    c.bench_function("simulate mtp8 x 4096 patterns", |b| {
        b.iter(|| Simulation::new(black_box(&aig), black_box(&patterns)))
    });
}

fn bench_isop(c: &mut Criterion) {
    let f = Tt::from_fn(8, |p| (p * 2654435761) % 7 < 3);
    c.bench_function("isop 8-var pseudorandom", |b| {
        b.iter(|| isop(black_box(&f), black_box(&f)))
    });
}

fn bench_cuts(c: &mut Criterion) {
    let aig = arith::wallace_multiplier(8);
    c.bench_function("4-cut enumeration wal8", |b| {
        b.iter(|| black_box(&aig).enumerate_cuts(4, 8))
    });
}

fn bench_care_harvest(c: &mut Criterion) {
    let aig = arith::kogge_stone_adder(16);
    let patterns = PatternBuffer::random(32, 32, 3);
    let sim = Simulation::new(&aig, &patterns);
    let node = aig.iter_ands().last().expect("ands");
    let [f0, f1] = aig.and_fanins(node);
    let divisors = [f0.node().lit(), f1.node().lit()];
    c.bench_function("care harvest ksa16 (2 divisors, N=32)", |b| {
        b.iter(|| {
            ApproximateCareSet::harvest(
                black_box(&sim),
                black_box(&patterns),
                node.lit(),
                &divisors,
            )
        })
    });
}

fn bench_influence(c: &mut Criterion) {
    let aig = arith::array_multiplier(6);
    let patterns = PatternBuffer::random(12, 2048, 9);
    let sim = Simulation::new(&aig, &patterns);
    let fanouts = aig.fanout_map();
    let node = aig.iter_ands().nth(10).expect("ands");
    c.bench_function("flip influence mtp6 x 2048 patterns", |b| {
        b.iter(|| FlipInfluence::compute(black_box(&aig), &sim, &fanouts, node))
    });
}

fn bench_batch_estimation(c: &mut Criterion) {
    let aig = arith::kogge_stone_adder(8);
    let care_patterns = PatternBuffer::random(16, 16, 5);
    let care_sim = Simulation::new(&aig, &care_patterns);
    let fanouts = aig.fanout_map();
    let lacs = generate_lacs(&aig, &care_sim, &care_patterns, &fanouts, &LacConfig::default());
    let est_patterns = PatternBuffer::random(16, 2048, 6);
    c.bench_function("batch estimate all LACs ksa8", |b| {
        b.iter(|| {
            let estimator = Estimator::new(&aig, &aig, &est_patterns);
            estimator.estimate_all(black_box(&lacs))
        })
    });
}

fn bench_optimizer(c: &mut Criterion) {
    let aig = arith::carry_lookahead_adder(8);
    c.bench_function("resyn2-lite cla8", |b| {
        b.iter(|| alsrac_synth::optimize(black_box(&aig)))
    });
}

fn bench_mappers(c: &mut Criterion) {
    let aig = arith::wallace_multiplier(6);
    c.bench_function("6-LUT map wal6", |b| {
        b.iter(|| map_luts(black_box(&aig), 6))
    });
    let library = Library::mcnc();
    c.bench_function("cell map wal6", |b| {
        b.iter(|| map_cells(black_box(&aig), &library))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_simulation, bench_isop, bench_cuts, bench_care_harvest,
              bench_influence, bench_batch_estimation, bench_optimizer,
              bench_mappers
}
criterion_main!(benches);
