//! Micro-benchmarks for the performance-critical kernels: bit-parallel
//! simulation, ISOP computation, cut enumeration, care-set harvesting,
//! flip-influence / batch error estimation, the traditional optimizer, and
//! both technology mappers.
//!
//! Runs on the `alsrac-rt` timer: `cargo bench -p alsrac-bench` takes full
//! timed samples; any other invocation (e.g. `cargo test`, which executes
//! `harness = false` bench targets) does a one-iteration smoke run.

use std::hint::black_box;

use alsrac::care::ApproximateCareSet;
use alsrac::estimate::Estimator;
use alsrac::lac::{generate_lacs, LacConfig};
use alsrac_circuits::arith;
use alsrac_map::cell::{map_cells, Library};
use alsrac_map::lut::map_luts;
use alsrac_rt::bench::Runner;
use alsrac_sim::{FlipInfluence, PatternBuffer, Simulation};
use alsrac_truthtable::{isop, Tt};

fn bench_simulation(runner: &mut Runner) {
    let aig = arith::array_multiplier(8);
    let patterns = PatternBuffer::random(16, 4096, 7);
    runner.bench("simulate mtp8 x 4096 patterns", || {
        black_box(Simulation::new(black_box(&aig), black_box(&patterns)));
    });
}

fn bench_isop(runner: &mut Runner) {
    let f = Tt::from_fn(8, |p| (p * 2654435761) % 7 < 3);
    runner.bench("isop 8-var pseudorandom", || {
        black_box(isop(black_box(&f), black_box(&f)));
    });
}

fn bench_cuts(runner: &mut Runner) {
    let aig = arith::wallace_multiplier(8);
    runner.bench("4-cut enumeration wal8", || {
        black_box(black_box(&aig).enumerate_cuts(4, 8));
    });
}

fn bench_care_harvest(runner: &mut Runner) {
    let aig = arith::kogge_stone_adder(16);
    let patterns = PatternBuffer::random(32, 32, 3);
    let sim = Simulation::new(&aig, &patterns);
    let node = aig.iter_ands().last().expect("ands");
    let [f0, f1] = aig.and_fanins(node);
    let divisors = [f0.node().lit(), f1.node().lit()];
    runner.bench("care harvest ksa16 (2 divisors, N=32)", || {
        black_box(ApproximateCareSet::harvest(
            black_box(&sim),
            black_box(&patterns),
            node.lit(),
            &divisors,
        ));
    });
}

fn bench_influence(runner: &mut Runner) {
    let aig = arith::array_multiplier(6);
    let patterns = PatternBuffer::random(12, 2048, 9);
    let sim = Simulation::new(&aig, &patterns);
    let fanouts = aig.fanout_map();
    let node = aig.iter_ands().nth(10).expect("ands");
    runner.bench("flip influence mtp6 x 2048 patterns", || {
        black_box(FlipInfluence::compute(
            black_box(&aig),
            &sim,
            &fanouts,
            node,
        ));
    });
}

fn bench_batch_estimation(runner: &mut Runner) {
    let aig = arith::kogge_stone_adder(8);
    let care_patterns = PatternBuffer::random(16, 16, 5);
    let care_sim = Simulation::new(&aig, &care_patterns);
    let fanouts = aig.fanout_map();
    let lacs = generate_lacs(
        &aig,
        &care_sim,
        &care_patterns,
        &fanouts,
        &LacConfig::default(),
    );
    let est_patterns = PatternBuffer::random(16, 2048, 6);
    runner.bench("batch estimate all LACs ksa8", || {
        let estimator = Estimator::new(&aig, &aig, &est_patterns, &fanouts);
        black_box(estimator.estimate_all(black_box(&lacs)));
    });
}

fn bench_optimizer(runner: &mut Runner) {
    let aig = arith::carry_lookahead_adder(8);
    runner.bench("resyn2-lite cla8", || {
        black_box(alsrac_synth::optimize(black_box(&aig)));
    });
}

fn bench_mappers(runner: &mut Runner) {
    let aig = arith::wallace_multiplier(6);
    runner.bench("6-LUT map wal6", || {
        black_box(map_luts(black_box(&aig), 6));
    });
    let library = Library::mcnc();
    runner.bench("cell map wal6", || {
        black_box(map_cells(black_box(&aig), &library));
    });
}

fn main() {
    let mut runner = Runner::from_args();
    bench_simulation(&mut runner);
    bench_isop(&mut runner);
    bench_cuts(&mut runner);
    bench_care_harvest(&mut runner);
    bench_influence(&mut runner);
    bench_batch_estimation(&mut runner);
    bench_optimizer(&mut runner);
    bench_mappers(&mut runner);
    runner.finish();
}
