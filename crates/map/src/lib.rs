//! Technology mapping for AIGs.
//!
//! The ALSRAC paper evaluates approximate circuits after mapping: ASIC
//! designs with the MCNC standard-cell library (ABC `map -D`), FPGA designs
//! as 6-input LUT networks (ABC `if -K 6`), reporting area and delay
//! *ratios* between the approximate and the accurate circuit. This crate
//! implements both mappers from scratch:
//!
//! * [`lut::map_luts`] — k-feasible-cut LUT mapping (depth-oriented with
//!   area-flow tie-breaking); area = LUT count, delay = LUT network depth,
//!   exactly the FPGA cost model of §IV-C;
//! * [`cell::map_cells`] — standard-cell mapping by cut matching against an
//!   MCNC-like gate library ([`cell::Library::mcnc`]) with full
//!   permutation/input-phase matching and explicit inverters; area = summed
//!   cell area, delay = critical path through cell delays, the ASIC cost
//!   model of §IV-B.
//!
//! Both mappers return coverings that are checked (in tests, by
//! property-based equivalence) to implement exactly the original function.
//!
//! # Example
//!
//! ```
//! use alsrac_circuits::arith;
//! use alsrac_map::{cell, lut};
//!
//! let aig = arith::ripple_carry_adder(8);
//! let luts = lut::map_luts(&aig, 6);
//! assert!(luts.num_luts() > 0);
//!
//! let mapping = cell::map_cells(&aig, &cell::Library::mcnc());
//! assert!(mapping.area > 0.0);
//! assert!(mapping.delay > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell;
pub mod lut;
