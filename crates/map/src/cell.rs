//! Standard-cell mapping against an MCNC-like gate library.

use std::collections::HashMap;

use alsrac_aig::{Aig, Node, NodeId};
use alsrac_truthtable::{cone_tt, Tt};

/// One library gate: a named function with area and pin-to-output delay.
#[derive(Clone, Debug)]
pub struct Gate {
    /// Cell name (e.g. `nand2`).
    pub name: String,
    /// Area cost (arbitrary consistent units).
    pub area: f64,
    /// Pin-to-output delay (single worst-case value).
    pub delay: f64,
    /// Function over the gate pins (variable `i` = pin `i`).
    pub tt: Tt,
}

/// How a cut function maps onto a gate: pin `j` is driven by cut leaf
/// `pin_leaf[j]`, complemented when bit `j` of `pin_neg` is set.
#[derive(Clone, Debug)]
struct GateMatch {
    gate: usize,
    pin_leaf: Vec<u8>,
    pin_neg: u8,
}

/// A gate library with a precomputed permutation/input-phase match table.
#[derive(Clone, Debug)]
pub struct Library {
    gates: Vec<Gate>,
    inv_area: f64,
    inv_delay: f64,
    /// Cut function -> ways to realize it with one gate.
    matches: HashMap<Tt, Vec<GateMatch>>,
}

impl Library {
    /// Builds a library from explicit gates plus an inverter.
    ///
    /// Every permutation and input-phase variant of every gate is indexed,
    /// so matching is a single hash lookup per cut function.
    pub fn new(gates: Vec<Gate>, inv_area: f64, inv_delay: f64) -> Library {
        let mut matches: HashMap<Tt, Vec<GateMatch>> = HashMap::new();
        for (g, gate) in gates.iter().enumerate() {
            let m = gate.tt.nvars();
            for perm in permutations(m) {
                for neg in 0..1u8 << m {
                    let variant = Tt::from_fn(m, |p| {
                        let mut pins = 0usize;
                        for (j, &leaf) in perm.iter().enumerate() {
                            let bit = (p >> leaf & 1) as u8 ^ (neg >> j & 1);
                            pins |= (bit as usize) << j;
                        }
                        gate.tt.get(pins)
                    });
                    matches.entry(variant).or_default().push(GateMatch {
                        gate: g,
                        pin_leaf: perm.clone(),
                        pin_neg: neg,
                    });
                }
            }
        }
        Library {
            gates,
            inv_area,
            inv_delay,
            matches,
        }
    }

    /// An MCNC-`genlib`-flavoured library: inverter, NAND/NOR/AND/OR up to
    /// 4 inputs, XOR/XNOR, AOI/OAI, MUX, and 3-input majority, with areas
    /// and delays in the same relative proportions as `mcnc.genlib`.
    pub fn mcnc() -> Library {
        fn tt2(f: impl Fn(bool, bool) -> bool) -> Tt {
            Tt::from_fn(2, |p| f(p & 1 != 0, p & 2 != 0))
        }
        fn tt3(f: impl Fn(bool, bool, bool) -> bool) -> Tt {
            Tt::from_fn(3, |p| f(p & 1 != 0, p & 2 != 0, p & 4 != 0))
        }
        fn tt4(f: impl Fn(bool, bool, bool, bool) -> bool) -> Tt {
            Tt::from_fn(4, |p| f(p & 1 != 0, p & 2 != 0, p & 4 != 0, p & 8 != 0))
        }
        let gate = |name: &str, area: f64, delay: f64, tt: Tt| Gate {
            name: name.to_string(),
            area,
            delay,
            tt,
        };
        Library::new(
            vec![
                gate("nand2", 2.0, 1.0, tt2(|a, b| !(a && b))),
                gate("nor2", 2.0, 1.4, tt2(|a, b| !(a || b))),
                gate("and2", 3.0, 1.9, tt2(|a, b| a && b)),
                gate("or2", 3.0, 1.9, tt2(|a, b| a || b)),
                gate("xor2", 5.0, 1.9, tt2(|a, b| a ^ b)),
                gate("xnor2", 5.0, 2.1, tt2(|a, b| !(a ^ b))),
                gate("nand3", 3.0, 1.1, tt3(|a, b, c| !(a && b && c))),
                gate("nor3", 3.0, 2.4, tt3(|a, b, c| !(a || b || c))),
                gate("and3", 4.0, 2.0, tt3(|a, b, c| a && b && c)),
                gate("or3", 4.0, 2.4, tt3(|a, b, c| a || b || c)),
                gate("nand4", 4.0, 1.4, tt4(|a, b, c, d| !(a && b && c && d))),
                gate("nor4", 4.0, 3.8, tt4(|a, b, c, d| !(a || b || c || d))),
                gate("aoi21", 3.0, 1.6, tt3(|a, b, c| !(a && b || c))),
                gate("oai21", 3.0, 1.6, tt3(|a, b, c| !((a || b) && c))),
                gate("aoi22", 4.0, 2.1, tt4(|a, b, c, d| !(a && b || c && d))),
                gate("oai22", 4.0, 2.1, tt4(|a, b, c, d| !((a || b) && (c || d)))),
                gate("mux21", 5.0, 2.0, tt3(|a, b, s| if s { b } else { a })),
                gate("maj3", 6.0, 2.4, tt3(|a, b, c| (a & b) | (b & c) | (a & c))),
            ],
            1.0,
            1.0,
        )
    }

    /// The gates of the library (excluding the implicit inverter).
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }
}

fn permutations(m: usize) -> Vec<Vec<u8>> {
    let mut result = Vec::new();
    let mut items: Vec<u8> = (0..m as u8).collect();
    permute_rec(&mut items, 0, &mut result);
    result
}

fn permute_rec(items: &mut Vec<u8>, k: usize, out: &mut Vec<Vec<u8>>) {
    if k == items.len() {
        out.push(items.clone());
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute_rec(items, k + 1, out);
        items.swap(k, i);
    }
}

/// Mapping objective.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum MapMode {
    /// Minimize area, tie-break on delay (default).
    #[default]
    Area,
    /// Minimize delay, tie-break on area (ABC `map -D`-style).
    Delay,
}

/// A signal in the mapped netlist: an AIG node in a polarity.
pub type Signal = (NodeId, bool);

/// One placed cell.
#[derive(Clone, Debug)]
pub struct CellInstance {
    /// Cell name (`inv` for inverters).
    pub gate: String,
    /// Area of this instance.
    pub area: f64,
    /// The signal this cell produces.
    pub output: Signal,
    /// Driving signals, in pin order.
    pub inputs: Vec<Signal>,
    /// Cell function over the pins.
    pub tt: Tt,
}

/// A complete standard-cell covering.
#[derive(Clone, Debug)]
pub struct CellMapping {
    /// Placed cells in a topologically evaluable order.
    pub cells: Vec<CellInstance>,
    /// Total cell area.
    pub area: f64,
    /// Critical-path delay.
    pub delay: f64,
}

#[derive(Clone, Debug)]
enum Choice {
    /// Input or constant: available for free in positive polarity.
    Wire,
    /// Realized by an inverter from the opposite polarity.
    Inverter,
    /// Realized by one gate over a cut.
    Mapped {
        leaves: Vec<NodeId>,
        gate: usize,
        pin_leaf: Vec<u8>,
        pin_neg: u8,
    },
    /// Not realizable directly (before inverter relaxation).
    None,
}

/// Maps `aig` onto `library` cells.
///
/// Dynamic programming over (node, polarity) with full phase assignment:
/// each AND node picks the cheapest gate match over its ≤4-feasible cuts in
/// both polarities, with explicit inverters closing the gaps. The cover is
/// extracted from the outputs so shared cells are counted once.
pub fn map_cells(aig: &Aig, library: &Library) -> CellMapping {
    map_cells_with_mode(aig, library, MapMode::Area)
}

/// [`map_cells`] with an explicit optimization objective.
pub fn map_cells_with_mode(aig: &Aig, library: &Library, mode: MapMode) -> CellMapping {
    let cut_sets = aig.enumerate_cuts(4, 10);
    let num = aig.num_nodes();
    // [node][phase]: cost, arrival, choice.
    let mut cost = vec![[f64::INFINITY; 2]; num];
    let mut arrival = vec![[f64::INFINITY; 2]; num];
    let mut choice = vec![[Choice::None, Choice::None]; num];

    fn better(mode: MapMode, c1: f64, a1: f64, c2: f64, a2: f64) -> bool {
        match mode {
            MapMode::Area => (c1, a1) < (c2, a2),
            MapMode::Delay => (a1, c1) < (a2, c2),
        }
    }

    for id in aig.iter_nodes() {
        let i = id.index();
        match *aig.node(id) {
            Node::Const | Node::Input { .. } => {
                cost[i][0] = 0.0;
                arrival[i][0] = 0.0;
                choice[i][0] = Choice::Wire;
                cost[i][1] = library.inv_area;
                arrival[i][1] = library.inv_delay;
                choice[i][1] = Choice::Inverter;
            }
            Node::And { .. } => {
                for cut in cut_sets[i].nontrivial() {
                    let Some(tt) = cone_tt(aig, id.lit(), cut.leaves()) else {
                        continue;
                    };
                    for phase in 0..2 {
                        let key = if phase == 0 { tt.clone() } else { tt.not() };
                        let Some(candidates) = library.matches.get(&key) else {
                            continue;
                        };
                        for m in candidates {
                            let gate = &library.gates[m.gate];
                            let mut c = gate.area;
                            let mut a = 0.0f64;
                            let mut feasible = true;
                            for (j, &leaf_idx) in m.pin_leaf.iter().enumerate() {
                                let leaf = cut.leaves()[leaf_idx as usize];
                                let ph = (m.pin_neg >> j & 1) as usize;
                                if cost[leaf.index()][ph].is_infinite() {
                                    feasible = false;
                                    break;
                                }
                                c += cost[leaf.index()][ph];
                                a = a.max(arrival[leaf.index()][ph]);
                            }
                            if !feasible {
                                continue;
                            }
                            a += gate.delay;
                            if better(mode, c, a, cost[i][phase], arrival[i][phase]) {
                                cost[i][phase] = c;
                                arrival[i][phase] = a;
                                choice[i][phase] = Choice::Mapped {
                                    leaves: cut.leaves().to_vec(),
                                    gate: m.gate,
                                    pin_leaf: m.pin_leaf.clone(),
                                    pin_neg: m.pin_neg,
                                };
                            }
                        }
                    }
                }
                // Inverter relaxation between the two phases.
                for (phase, other) in [(0usize, 1usize), (1, 0)] {
                    let c = cost[i][other] + library.inv_area;
                    let a = arrival[i][other] + library.inv_delay;
                    if better(mode, c, a, cost[i][phase], arrival[i][phase])
                        && !matches!(choice[i][other], Choice::Inverter | Choice::None)
                    {
                        cost[i][phase] = c;
                        arrival[i][phase] = a;
                        choice[i][phase] = Choice::Inverter;
                    }
                }
                debug_assert!(
                    cost[i][0].is_finite() && cost[i][1].is_finite(),
                    "node {id} unmappable — fanin-pair cut should always match"
                );
            }
        }
    }

    // Extract the cover.
    let mut placed: HashMap<(usize, usize), ()> = HashMap::new();
    let mut cells = Vec::new();
    let mut stack: Vec<(NodeId, usize)> = aig
        .outputs()
        .iter()
        .map(|o| (o.lit.node(), o.lit.is_complement() as usize))
        .collect();
    while let Some((id, phase)) = stack.pop() {
        if placed.insert((id.index(), phase), ()).is_some() {
            continue;
        }
        match &choice[id.index()][phase] {
            Choice::Wire => {}
            Choice::None => unreachable!("cover references unmapped signal"),
            Choice::Inverter => {
                cells.push(CellInstance {
                    gate: "inv".to_string(),
                    area: library.inv_area,
                    output: (id, phase == 1),
                    inputs: vec![(id, phase == 0)],
                    tt: Tt::var(0, 1).not(),
                });
                stack.push((id, 1 - phase));
            }
            Choice::Mapped {
                leaves,
                gate,
                pin_leaf,
                pin_neg,
            } => {
                let g = &library.gates[*gate];
                let inputs: Vec<Signal> = pin_leaf
                    .iter()
                    .enumerate()
                    .map(|(j, &leaf_idx)| {
                        let leaf = leaves[leaf_idx as usize];
                        let ph = pin_neg >> j & 1 == 1;
                        stack.push((leaf, ph as usize));
                        (leaf, ph)
                    })
                    .collect();
                // When matching the negative phase we indexed by !f, so the
                // gate output *is* the complemented node function: the base
                // table applied to the pin signals yields the signal value
                // directly in either phase.
                cells.push(CellInstance {
                    gate: g.name.clone(),
                    area: g.area,
                    output: (id, phase == 1),
                    inputs,
                    tt: g.tt.clone(),
                });
            }
        }
    }
    // Topological order for evaluation: by (node id, phase-with-inverters
    // last). Inverters read the opposite phase of the same node, which is
    // always a non-inverter definition, so ordering inverters after direct
    // definitions of the same node suffices.
    cells.sort_by_key(|c| (c.output.0, c.gate == "inv"));

    let area = cells.iter().map(|c| c.area).sum();
    let delay = aig
        .outputs()
        .iter()
        .map(|o| {
            let v = arrival[o.lit.node().index()][o.lit.is_complement() as usize];
            if v.is_finite() {
                v
            } else {
                0.0
            }
        })
        .fold(0.0f64, f64::max);
    CellMapping { cells, area, delay }
}

/// Evaluates a cell mapping on one input pattern — the reference used to
/// check covers against the original circuit.
///
/// # Panics
///
/// Panics if `inputs.len()` differs from the graph's input count.
pub fn evaluate_mapping(aig: &Aig, mapping: &CellMapping, inputs: &[bool]) -> Vec<bool> {
    assert_eq!(inputs.len(), aig.num_inputs(), "input arity mismatch");
    let mut signals: HashMap<(usize, bool), bool> = HashMap::new();
    signals.insert((NodeId::CONST.index(), false), false);
    signals.insert((NodeId::CONST.index(), true), true);
    for (i, &input) in aig.inputs().iter().enumerate() {
        signals.insert((input.index(), false), inputs[i]);
        signals.insert((input.index(), true), !inputs[i]);
    }
    for cell in &mapping.cells {
        let mut pattern = 0usize;
        for (j, &(node, phase)) in cell.inputs.iter().enumerate() {
            let v = *signals
                .get(&(node.index(), phase))
                .expect("inputs precede consumers in cell order");
            pattern |= (v as usize) << j;
        }
        let v = cell.tt.get(pattern);
        signals.insert((cell.output.0.index(), cell.output.1), v);
    }
    aig.outputs()
        .iter()
        .map(|o| {
            *signals
                .get(&(o.lit.node().index(), o.lit.is_complement()))
                .expect("output signal mapped")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_cover(aig: &Aig, mode: MapMode) -> CellMapping {
        let lib = Library::mcnc();
        let mapping = map_cells_with_mode(aig, &lib, mode);
        let n = aig.num_inputs();
        assert!(n <= 12, "test helper is exhaustive");
        for p in 0..1u64 << n {
            let bits: Vec<bool> = (0..n).map(|i| p >> i & 1 != 0).collect();
            assert_eq!(
                evaluate_mapping(aig, &mapping, &bits),
                aig.evaluate(&bits),
                "{} pattern {p:b}",
                aig.name()
            );
        }
        mapping
    }

    #[test]
    fn maps_single_gates_to_single_cells() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let x = aig.and(a, b);
        aig.add_output("y", !x); // nand
        let mapping = check_cover(&aig, MapMode::Area);
        assert_eq!(mapping.cells.len(), 1);
        assert_eq!(mapping.cells[0].gate, "nand2");
    }

    #[test]
    fn xor_uses_xor_cell() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let x = aig.xor(a, b);
        aig.add_output("y", x);
        let mapping = check_cover(&aig, MapMode::Area);
        assert_eq!(mapping.cells.len(), 1);
        assert_eq!(mapping.cells[0].gate, "xor2");
    }

    #[test]
    fn covers_arithmetic_circuits() {
        for aig in [
            alsrac_circuits::arith::ripple_carry_adder(4),
            alsrac_circuits::arith::wallace_multiplier(3),
            alsrac_circuits::arith::alu(3),
        ] {
            let area_mapping = check_cover(&aig, MapMode::Area);
            let delay_mapping = check_cover(&aig, MapMode::Delay);
            assert!(area_mapping.area <= delay_mapping.area + 1e-9);
            assert!(delay_mapping.delay <= area_mapping.delay + 1e-9);
        }
    }

    #[test]
    fn covers_control_circuits() {
        for aig in [
            alsrac_circuits::control::voter(7),
            alsrac_circuits::control::priority_encoder(6),
            alsrac_circuits::catalog::ecc_network(6, 5),
        ] {
            check_cover(&aig, MapMode::Area);
        }
    }

    #[test]
    fn inverter_only_circuit() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        aig.add_output("y", !a);
        let mapping = check_cover(&aig, MapMode::Area);
        assert_eq!(mapping.cells.len(), 1);
        assert_eq!(mapping.cells[0].gate, "inv");
        assert!((mapping.area - 1.0).abs() < 1e-9);
    }

    #[test]
    fn constant_outputs_cost_nothing() {
        let mut aig = Aig::new("t");
        let _ = aig.add_input("a");
        aig.add_output("zero", alsrac_aig::Lit::FALSE);
        aig.add_output("one", alsrac_aig::Lit::TRUE);
        let mapping = check_cover(&aig, MapMode::Area);
        // A single inverter realizes constant-one from constant-zero.
        assert!(mapping.area <= 1.0 + 1e-9);
    }

    #[test]
    fn shared_cells_counted_once() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let x = aig.and(a, b);
        aig.add_output("y1", x);
        aig.add_output("y2", x);
        let mapping = check_cover(&aig, MapMode::Area);
        assert_eq!(mapping.cells.len(), 1);
    }

    #[test]
    fn library_matches_cover_basic_functions() {
        let lib = Library::mcnc();
        // Every 2-input function of the form (±a)&(±b) and its complement
        // must match directly.
        for neg in 0..4u8 {
            let tt = Tt::from_fn(2, |p| {
                ((p & 1 != 0) ^ (neg & 1 != 0)) && ((p & 2 != 0) ^ (neg & 2 != 0))
            });
            assert!(lib.matches.contains_key(&tt), "missing (±a)&(±b) {neg}");
            assert!(
                lib.matches.contains_key(&tt.not()),
                "missing complement {neg}"
            );
        }
    }
}
