//! K-input LUT mapping.

use alsrac_aig::{Aig, Node, NodeId};
use alsrac_truthtable::{cone_tt, Tt};

/// One mapped LUT.
#[derive(Clone, Debug)]
pub struct Lut {
    /// The AIG node this LUT implements (positive polarity).
    pub root: NodeId,
    /// Leaf nodes (LUT input signals), ascending.
    pub leaves: Vec<NodeId>,
    /// The LUT function over the leaves.
    pub tt: Tt,
}

/// A complete LUT covering of an AIG.
#[derive(Clone, Debug)]
pub struct LutMapping {
    luts: Vec<Lut>,
    depth: u32,
}

impl LutMapping {
    /// The LUTs, in topological order of their roots.
    pub fn luts(&self) -> &[Lut] {
        &self.luts
    }

    /// Number of LUTs (the FPGA area metric).
    pub fn num_luts(&self) -> usize {
        self.luts.len()
    }

    /// Depth of the LUT network (the FPGA delay metric).
    pub fn depth(&self) -> u32 {
        self.depth
    }
}

/// Maps `aig` into `k`-input LUTs.
///
/// Depth-oriented: each node picks the cut minimizing mapped depth, with
/// area flow as the tie-breaker; the cover is then extracted from the
/// outputs so shared LUTs are counted once. Constant or input-driven
/// outputs need no LUT. This mirrors the cost model of ABC's `if -K k`
/// (without its iterative refinement passes).
///
/// # Panics
///
/// Panics if `k < 2`.
pub fn map_luts(aig: &Aig, k: usize) -> LutMapping {
    assert!(k >= 2, "LUT size must be at least 2");
    let cut_sets = aig.enumerate_cuts(k, 12);
    let num = aig.num_nodes();
    // Best (depth, area_flow, cut index) per node.
    let mut best_depth = vec![0u32; num];
    let mut best_flow = vec![0.0f64; num];
    let mut best_cut: Vec<usize> = vec![0; num];
    let fanouts = aig.fanout_map();

    for id in aig.iter_nodes() {
        if !aig.node(id).is_and() {
            continue;
        }
        let i = id.index();
        let mut chosen: Option<(u32, f64, usize)> = None;
        for (c, cut) in cut_sets[i].nontrivial().iter().enumerate() {
            let depth = 1 + cut
                .leaves()
                .iter()
                .map(|l| best_depth[l.index()])
                .max()
                .unwrap_or(0);
            let flow: f64 = 1.0
                + cut
                    .leaves()
                    .iter()
                    .map(|l| best_flow[l.index()] / f64::from(fanouts.ref_count(*l).max(1)))
                    .sum::<f64>();
            if chosen.is_none_or(|(d, f, _)| (depth, flow) < (d, f)) {
                chosen = Some((depth, flow, c + 1)); // +1: index into cuts()
            }
        }
        let (d, f, c) = chosen.expect("every AND node has at least its fanin-pair cut");
        best_depth[i] = d;
        best_flow[i] = f;
        best_cut[i] = c;
    }

    // Extract the cover from the outputs.
    let mut needed = vec![false; num];
    let mut stack: Vec<NodeId> = Vec::new();
    for output in aig.outputs() {
        let n = output.lit.node();
        if aig.node(n).is_and() {
            stack.push(n);
        }
    }
    let mut luts = Vec::new();
    while let Some(id) = stack.pop() {
        if std::mem::replace(&mut needed[id.index()], true) {
            continue;
        }
        let cut = &cut_sets[id.index()].cuts()[best_cut[id.index()]];
        let tt = cone_tt(aig, id.lit(), cut.leaves()).expect("enumerated cuts are valid cuts");
        for &leaf in cut.leaves() {
            if aig.node(leaf).is_and() {
                stack.push(leaf);
            }
        }
        luts.push(Lut {
            root: id,
            leaves: cut.leaves().to_vec(),
            tt,
        });
    }
    luts.sort_by_key(|l| l.root);

    let depth = aig
        .outputs()
        .iter()
        .map(|o| best_depth[o.lit.node().index()])
        .max()
        .unwrap_or(0);
    LutMapping { luts, depth }
}

/// Evaluates a LUT mapping on a single input pattern — the reference
/// used to check covers against the original circuit.
///
/// # Panics
///
/// Panics if `inputs.len()` differs from the graph's input count.
pub fn evaluate_mapping(aig: &Aig, mapping: &LutMapping, inputs: &[bool]) -> Vec<bool> {
    assert_eq!(inputs.len(), aig.num_inputs(), "input arity mismatch");
    let mut values = vec![false; aig.num_nodes()];
    for (i, &input) in aig.inputs().iter().enumerate() {
        values[input.index()] = inputs[i];
    }
    //

    for lut in mapping.luts() {
        let mut pattern = 0usize;
        for (v, leaf) in lut.leaves.iter().enumerate() {
            if values[leaf.index()] {
                pattern |= 1 << v;
            }
        }
        values[lut.root.index()] = lut.tt.get(pattern);
    }
    aig.outputs()
        .iter()
        .map(|o| {
            let v = match aig.node(o.lit.node()) {
                Node::Const => false,
                _ => values[o.lit.node().index()],
            };
            v ^ o.lit.is_complement()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_cover(aig: &Aig, k: usize) -> LutMapping {
        let mapping = map_luts(aig, k);
        let n = aig.num_inputs();
        assert!(n <= 12, "test helper is exhaustive");
        for p in 0..1u64 << n {
            let bits: Vec<bool> = (0..n).map(|i| p >> i & 1 != 0).collect();
            assert_eq!(
                evaluate_mapping(aig, &mapping, &bits),
                aig.evaluate(&bits),
                "pattern {p:b}"
            );
        }
        for lut in mapping.luts() {
            assert!(lut.leaves.len() <= k, "oversized LUT");
        }
        mapping
    }

    #[test]
    fn covers_adder_correctly() {
        let aig = alsrac_circuits::arith::ripple_carry_adder(4);
        let m6 = check_cover(&aig, 6);
        let m4 = check_cover(&aig, 4);
        // Bigger LUTs never need more of them.
        assert!(m6.num_luts() <= m4.num_luts());
        assert!(m6.depth() <= m4.depth());
    }

    #[test]
    fn covers_various_circuits() {
        for aig in [
            alsrac_circuits::arith::alu(3),
            alsrac_circuits::arith::wallace_multiplier(3),
            alsrac_circuits::control::voter(7),
            alsrac_circuits::control::arbiter(5),
        ] {
            check_cover(&aig, 6);
        }
    }

    #[test]
    fn single_gate_circuit_is_one_lut() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let x = aig.and(a, b);
        aig.add_output("y", x);
        let mapping = check_cover(&aig, 6);
        assert_eq!(mapping.num_luts(), 1);
        assert_eq!(mapping.depth(), 1);
    }

    #[test]
    fn constant_and_wire_outputs_need_no_lut() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        aig.add_output("w", !a);
        aig.add_output("k", alsrac_aig::Lit::TRUE);
        let mapping = check_cover(&aig, 6);
        assert_eq!(mapping.num_luts(), 0);
        assert_eq!(mapping.depth(), 0);
    }

    #[test]
    fn depth_matches_longest_lut_chain() {
        // A 12-input AND tree in 6-LUTs: 2 levels.
        let mut aig = Aig::new("t");
        let xs = aig.add_inputs("x", 12);
        let root = aig.and_all(&xs);
        aig.add_output("y", root);
        let mapping = check_cover(&aig, 6);
        assert_eq!(mapping.depth(), 2);
    }

    #[test]
    fn shared_logic_counted_once() {
        let mut aig = Aig::new("t");
        let xs = aig.add_inputs("x", 6);
        let shared = aig.and_all(&xs);
        aig.add_output("y1", shared);
        aig.add_output("y2", !shared);
        let mapping = check_cover(&aig, 6);
        assert_eq!(mapping.num_luts(), 1);
    }
}
