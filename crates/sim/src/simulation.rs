//! Whole-graph bit-parallel simulation, plus cone-local incremental
//! resimulation after a structural change.

use alsrac_aig::{Aig, Lit, Node, NodeId};

use crate::{kernel, PatternBuffer, SimDelta, SimSource};

/// The simulated values of every node of an [`Aig`] under a
/// [`PatternBuffer`].
///
/// Values are stored per node in positive polarity; [`Simulation::lit_word`]
/// applies edge complements on the fly. The layout is a flat
/// `nodes × words` matrix for cache-friendly sweeps.
#[derive(Clone, Debug)]
pub struct Simulation {
    num_words: usize,
    num_patterns: usize,
    /// `values[node * num_words + w]`.
    values: Vec<u64>,
}

/// Flattened primary-output words: all outputs of one simulation in a
/// single `outputs × words` allocation (`words[po * num_words + w]`).
///
/// Replaces the old nested `Vec<Vec<u64>>` shape: the flow compares output
/// words once per candidate, so the buffer is built and read on hot paths
/// and one allocation (instead of `num_outputs + 1`) matters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OutputWords {
    num_outputs: usize,
    num_words: usize,
    words: Vec<u64>,
}

impl OutputWords {
    /// An all-zero buffer of the given shape.
    pub fn zeroed(num_outputs: usize, num_words: usize) -> OutputWords {
        OutputWords {
            num_outputs,
            num_words,
            words: vec![0u64; num_outputs * num_words],
        }
    }

    /// Builds a buffer from one row of words per output (test convenience;
    /// rows must all have the same length).
    ///
    /// # Panics
    ///
    /// Panics if the rows are ragged.
    pub fn from_rows(rows: &[Vec<u64>]) -> OutputWords {
        let num_words = rows.first().map_or(0, Vec::len);
        let mut words = Vec::with_capacity(rows.len() * num_words);
        for row in rows {
            assert_eq!(row.len(), num_words, "ragged output rows");
            words.extend_from_slice(row);
        }
        OutputWords {
            num_outputs: rows.len(),
            num_words,
            words,
        }
    }

    /// Number of outputs covered.
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// Number of words per output.
    pub fn num_words(&self) -> usize {
        self.num_words
    }

    /// The packed words of output `po`.
    #[inline]
    pub fn po(&self, po: usize) -> &[u64] {
        &self.words[po * self.num_words..(po + 1) * self.num_words]
    }

    /// Mutable words of output `po`.
    #[inline]
    pub fn po_mut(&mut self, po: usize) -> &mut [u64] {
        &mut self.words[po * self.num_words..(po + 1) * self.num_words]
    }

    /// Word `w` of output `po`.
    #[inline]
    pub fn word(&self, po: usize, w: usize) -> u64 {
        self.words[po * self.num_words + w]
    }
}

impl Simulation {
    /// Simulates `aig` on `patterns` in one topological sweep.
    ///
    /// # Panics
    ///
    /// Panics if the buffer's input count differs from the graph's.
    pub fn new(aig: &Aig, patterns: &PatternBuffer) -> Simulation {
        assert_eq!(
            patterns.num_inputs(),
            aig.num_inputs(),
            "pattern buffer has {} inputs, graph has {}",
            patterns.num_inputs(),
            aig.num_inputs()
        );
        let num_words = patterns.num_words();
        let mut values = vec![0u64; aig.num_nodes() * num_words];
        for id in aig.iter_nodes() {
            let base = id.index() * num_words;
            match *aig.node(id) {
                Node::Const => {}
                Node::Input { index } => {
                    values[base..base + num_words]
                        .copy_from_slice(patterns.input_words(index as usize));
                }
                Node::And { f0, f1 } => {
                    let m0 = if f0.is_complement() { u64::MAX } else { 0 };
                    let m1 = if f1.is_complement() { u64::MAX } else { 0 };
                    let b0 = f0.node().index() * num_words;
                    let b1 = f1.node().index() * num_words;
                    // Fanin indices are strictly below the node index
                    // (topological construction), so splitting the arena at
                    // `base` yields disjoint source/destination rows.
                    let (lo, hi) = values.split_at_mut(base);
                    kernel::and_into(
                        &mut hi[..num_words],
                        &lo[b0..b0 + num_words],
                        &lo[b1..b1 + num_words],
                        m0,
                        m1,
                    );
                }
            }
        }
        // Telemetry: simulation volume is the flow's dominant cost driver,
        // so the sweep count and word throughput are worth a counter each.
        alsrac_rt::trace::add("simulations", 1);
        alsrac_rt::trace::add("sim_node_words", (aig.num_nodes() * num_words) as u64);
        Simulation {
            num_words,
            num_patterns: patterns.num_patterns(),
            values,
        }
    }

    /// Re-simulates after a structural change: values of nodes whose
    /// function is untouched are carried over from `self` (one word copy,
    /// no gate evaluation) and only the delta's changed cone is swept.
    ///
    /// `new_aig` must be the graph the delta was produced for (same node
    /// count) and `patterns` the buffer `self` was simulated on. The result
    /// is bit-identical to `Simulation::new(new_aig, patterns)` — the delta
    /// is exact, not approximate (pinned by property tests).
    ///
    /// # Panics
    ///
    /// Panics if the delta's node count disagrees with `new_aig` or the
    /// pattern shape disagrees with `self`.
    pub fn update(&self, new_aig: &Aig, delta: &SimDelta, patterns: &PatternBuffer) -> Simulation {
        assert_eq!(delta.num_nodes(), new_aig.num_nodes(), "delta shape");
        assert_eq!(patterns.num_words(), self.num_words, "pattern shape");
        assert_eq!(
            patterns.num_inputs(),
            new_aig.num_inputs(),
            "pattern buffer has {} inputs, graph has {}",
            patterns.num_inputs(),
            new_aig.num_inputs()
        );
        let num_words = self.num_words;
        let mut values = vec![0u64; new_aig.num_nodes() * num_words];
        let mut recomputed = 0usize;
        for id in new_aig.iter_nodes() {
            let base = id.index() * num_words;
            match delta.source(id) {
                SimSource::Copy { old, complement } => {
                    let src = old.index() * num_words;
                    if complement {
                        kernel::not_into(
                            &mut values[base..base + num_words],
                            &self.values[src..src + num_words],
                        );
                    } else {
                        values[base..base + num_words]
                            .copy_from_slice(&self.values[src..src + num_words]);
                    }
                }
                SimSource::Compute => {
                    recomputed += 1;
                    match *new_aig.node(id) {
                        Node::Const => {}
                        Node::Input { index } => {
                            values[base..base + num_words]
                                .copy_from_slice(patterns.input_words(index as usize));
                        }
                        Node::And { f0, f1 } => {
                            let m0 = if f0.is_complement() { u64::MAX } else { 0 };
                            let m1 = if f1.is_complement() { u64::MAX } else { 0 };
                            let b0 = f0.node().index() * num_words;
                            let b1 = f1.node().index() * num_words;
                            let (lo, hi) = values.split_at_mut(base);
                            kernel::and_into(
                                &mut hi[..num_words],
                                &lo[b0..b0 + num_words],
                                &lo[b1..b1 + num_words],
                                m0,
                                m1,
                            );
                        }
                    }
                }
            }
        }
        // Only recomputed nodes count as simulated work; carried-over nodes
        // are the words the incremental path did not have to evaluate.
        let copied = new_aig.num_nodes() - recomputed;
        alsrac_rt::trace::add("sim_incremental_updates", 1);
        alsrac_rt::trace::add("sim_node_words", (recomputed * num_words) as u64);
        alsrac_rt::trace::add("sim_words_saved", (copied * num_words) as u64);
        Simulation {
            num_words,
            num_patterns: self.num_patterns,
            values,
        }
    }

    /// Number of 64-pattern words per node.
    pub fn num_words(&self) -> usize {
        self.num_words
    }

    /// Number of valid patterns.
    pub fn num_patterns(&self) -> usize {
        self.num_patterns
    }

    /// The packed values of `node` (positive polarity).
    pub fn node_words(&self, node: NodeId) -> &[u64] {
        let base = node.index() * self.num_words;
        &self.values[base..base + self.num_words]
    }

    /// Word `w` of `node` in positive polarity.
    #[inline]
    pub fn node_word(&self, node: NodeId, w: usize) -> u64 {
        self.values[node.index() * self.num_words + w]
    }

    /// Word `w` of a literal, with the complement applied.
    ///
    /// Note the complement flips *all 64 lanes*; callers working with a
    /// partial final word must mask with the buffer's
    /// [`word_mask`](PatternBuffer::word_mask).
    #[inline]
    pub fn lit_word(&self, lit: Lit, w: usize) -> u64 {
        let v = self.node_word(lit.node(), w);
        if lit.is_complement() {
            !v
        } else {
            v
        }
    }

    /// Value of `lit` under pattern `p`.
    pub fn lit_bit(&self, lit: Lit, p: usize) -> bool {
        (self.lit_word(lit, p / 64) >> (p % 64)) & 1 != 0
    }

    /// Word `w` of primary output `po` of `aig` (the graph the simulation
    /// was built from).
    pub fn output_word(&self, aig: &Aig, po: usize, w: usize) -> u64 {
        self.lit_word(aig.outputs()[po].lit, w)
    }

    /// Collects all output words into one flat allocation.
    pub fn output_words(&self, aig: &Aig) -> OutputWords {
        let mut out = OutputWords::zeroed(aig.num_outputs(), self.num_words);
        for (po, output) in aig.outputs().iter().enumerate() {
            let lit = output.lit;
            let base = lit.node().index() * self.num_words;
            let row = out.po_mut(po);
            if lit.is_complement() {
                kernel::not_into(row, &self.values[base..base + self.num_words]);
            } else {
                row.copy_from_slice(&self.values[base..base + self.num_words]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PatternBuffer;

    fn adder_bit() -> Aig {
        let mut aig = Aig::new("fa");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let cin = aig.add_input("cin");
        let axb = aig.xor(a, b);
        let sum = aig.xor(axb, cin);
        let ab = aig.and(a, b);
        let cx = aig.and(cin, axb);
        let cout = aig.or(ab, cx);
        aig.add_output("sum", sum);
        aig.add_output("cout", cout);
        aig
    }

    #[test]
    fn matches_reference_evaluator_exhaustively() {
        let aig = adder_bit();
        let patterns = PatternBuffer::exhaustive(3);
        let sim = Simulation::new(&aig, &patterns);
        for p in 0..8 {
            let bits: Vec<bool> = (0..3).map(|i| patterns.get(i, p)).collect();
            let want = aig.evaluate(&bits);
            for (po, &w) in want.iter().enumerate() {
                assert_eq!(
                    sim.lit_bit(aig.outputs()[po].lit, p),
                    w,
                    "pattern {p}, output {po}"
                );
            }
        }
    }

    #[test]
    fn matches_reference_on_random_patterns() {
        let aig = adder_bit();
        let patterns = PatternBuffer::random(3, 200, 99);
        let sim = Simulation::new(&aig, &patterns);
        for p in (0..200).step_by(7) {
            let bits: Vec<bool> = (0..3).map(|i| patterns.get(i, p)).collect();
            let want = aig.evaluate(&bits);
            for (po, &wv) in want.iter().enumerate() {
                assert_eq!(sim.lit_bit(aig.outputs()[po].lit, p), wv);
            }
        }
    }

    #[test]
    fn constant_node_is_all_zero() {
        let mut aig = Aig::new("t");
        let _a = aig.add_input("a");
        aig.add_output("zero", alsrac_aig::Lit::FALSE);
        aig.add_output("one", alsrac_aig::Lit::TRUE);
        let patterns = PatternBuffer::random(1, 64, 3);
        let sim = Simulation::new(&aig, &patterns);
        assert_eq!(sim.output_word(&aig, 0, 0), 0);
        assert_eq!(sim.output_word(&aig, 1, 0), u64::MAX);
    }

    #[test]
    fn lit_word_applies_complement() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        aig.add_output("y", !a);
        let patterns = PatternBuffer::exhaustive(1);
        let sim = Simulation::new(&aig, &patterns);
        assert_eq!(sim.lit_word(a, 0) & 0b11, 0b10);
        assert_eq!(sim.lit_word(!a, 0) & 0b11, 0b01);
    }

    #[test]
    fn output_words_shape() {
        let aig = adder_bit();
        let patterns = PatternBuffer::random(3, 130, 5);
        let sim = Simulation::new(&aig, &patterns);
        let outs = sim.output_words(&aig);
        assert_eq!(outs.num_outputs(), 2);
        assert_eq!(outs.num_words(), 3); // ceil(130/64)
        for po in 0..2 {
            for w in 0..3 {
                assert_eq!(outs.word(po, w), sim.output_word(&aig, po, w));
            }
        }
    }

    #[test]
    fn output_words_applies_output_complements() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        aig.add_output("pos", a);
        aig.add_output("neg", !a);
        let patterns = PatternBuffer::exhaustive(1);
        let sim = Simulation::new(&aig, &patterns);
        let outs = sim.output_words(&aig);
        assert_eq!(outs.word(0, 0) & 0b11, 0b10);
        assert_eq!(outs.word(1, 0) & 0b11, 0b01);
    }

    #[test]
    fn from_rows_round_trips() {
        let rows = vec![vec![1u64, 2], vec![3, 4]];
        let out = OutputWords::from_rows(&rows);
        assert_eq!(out.num_outputs(), 2);
        assert_eq!(out.num_words(), 2);
        assert_eq!(out.po(0), &[1, 2]);
        assert_eq!(out.po(1), &[3, 4]);
    }

    #[test]
    fn update_matches_full_resimulation_after_substitution() {
        use std::collections::HashMap;
        let aig = adder_bit();
        let patterns = PatternBuffer::random(3, 150, 11);
        let base = Simulation::new(&aig, &patterns);
        let fanouts = aig.fanout_map();
        // Substitute the first AND node by constant 0 (an approximate
        // change) and resimulate incrementally.
        let node = aig.iter_ands().next().expect("has ands");
        let (rebuilt, map) = aig
            .rebuilt_with_substitutions_mapped(&HashMap::from([(node, alsrac_aig::Lit::FALSE)]))
            .expect("no cycle");
        let tfo = aig.tfo_cone(node, &fanouts);
        let delta = SimDelta::from_rebuild_map(rebuilt.num_nodes(), &map, |old| !tfo.contains(old));
        let incremental = base.update(&rebuilt, &delta, &patterns);
        let full = Simulation::new(&rebuilt, &patterns);
        for id in rebuilt.iter_nodes() {
            assert_eq!(incremental.node_words(id), full.node_words(id), "node {id}");
        }
        // The incremental path must have carried over at least the inputs.
        assert!(delta.num_compute() < rebuilt.num_nodes());
    }

    #[test]
    #[should_panic(expected = "inputs")]
    fn validates_input_arity() {
        let aig = adder_bit();
        let patterns = PatternBuffer::random(2, 64, 1);
        Simulation::new(&aig, &patterns);
    }
}
