//! Whole-graph bit-parallel simulation.

use alsrac_aig::{Aig, Lit, Node, NodeId};

use crate::PatternBuffer;

/// The simulated values of every node of an [`Aig`] under a
/// [`PatternBuffer`].
///
/// Values are stored per node in positive polarity; [`Simulation::lit_word`]
/// applies edge complements on the fly. The layout is a flat
/// `nodes × words` matrix for cache-friendly sweeps.
#[derive(Clone, Debug)]
pub struct Simulation {
    num_words: usize,
    num_patterns: usize,
    /// `values[node * num_words + w]`.
    values: Vec<u64>,
}

impl Simulation {
    /// Simulates `aig` on `patterns` in one topological sweep.
    ///
    /// # Panics
    ///
    /// Panics if the buffer's input count differs from the graph's.
    pub fn new(aig: &Aig, patterns: &PatternBuffer) -> Simulation {
        assert_eq!(
            patterns.num_inputs(),
            aig.num_inputs(),
            "pattern buffer has {} inputs, graph has {}",
            patterns.num_inputs(),
            aig.num_inputs()
        );
        let num_words = patterns.num_words();
        let mut values = vec![0u64; aig.num_nodes() * num_words];
        for id in aig.iter_nodes() {
            let base = id.index() * num_words;
            match *aig.node(id) {
                Node::Const => {}
                Node::Input { index } => {
                    values[base..base + num_words]
                        .copy_from_slice(patterns.input_words(index as usize));
                }
                Node::And { f0, f1 } => {
                    let m0 = if f0.is_complement() { u64::MAX } else { 0 };
                    let m1 = if f1.is_complement() { u64::MAX } else { 0 };
                    let b0 = f0.node().index() * num_words;
                    let b1 = f1.node().index() * num_words;
                    for w in 0..num_words {
                        values[base + w] = (values[b0 + w] ^ m0) & (values[b1 + w] ^ m1);
                    }
                }
            }
        }
        // Telemetry: simulation volume is the flow's dominant cost driver,
        // so the sweep count and word throughput are worth a counter each.
        alsrac_rt::trace::add("simulations", 1);
        alsrac_rt::trace::add("sim_node_words", (aig.num_nodes() * num_words) as u64);
        Simulation {
            num_words,
            num_patterns: patterns.num_patterns(),
            values,
        }
    }

    /// Number of 64-pattern words per node.
    pub fn num_words(&self) -> usize {
        self.num_words
    }

    /// Number of valid patterns.
    pub fn num_patterns(&self) -> usize {
        self.num_patterns
    }

    /// The packed values of `node` (positive polarity).
    pub fn node_words(&self, node: NodeId) -> &[u64] {
        let base = node.index() * self.num_words;
        &self.values[base..base + self.num_words]
    }

    /// Word `w` of `node` in positive polarity.
    #[inline]
    pub fn node_word(&self, node: NodeId, w: usize) -> u64 {
        self.values[node.index() * self.num_words + w]
    }

    /// Word `w` of a literal, with the complement applied.
    ///
    /// Note the complement flips *all 64 lanes*; callers working with a
    /// partial final word must mask with the buffer's
    /// [`word_mask`](PatternBuffer::word_mask).
    #[inline]
    pub fn lit_word(&self, lit: Lit, w: usize) -> u64 {
        let v = self.node_word(lit.node(), w);
        if lit.is_complement() {
            !v
        } else {
            v
        }
    }

    /// Value of `lit` under pattern `p`.
    pub fn lit_bit(&self, lit: Lit, p: usize) -> bool {
        (self.lit_word(lit, p / 64) >> (p % 64)) & 1 != 0
    }

    /// Word `w` of primary output `po` of `aig` (the graph the simulation
    /// was built from).
    pub fn output_word(&self, aig: &Aig, po: usize, w: usize) -> u64 {
        self.lit_word(aig.outputs()[po].lit, w)
    }

    /// Collects all output words: `result[po][w]`.
    pub fn output_words(&self, aig: &Aig) -> Vec<Vec<u64>> {
        (0..aig.num_outputs())
            .map(|po| {
                (0..self.num_words)
                    .map(|w| self.output_word(aig, po, w))
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PatternBuffer;

    fn adder_bit() -> Aig {
        let mut aig = Aig::new("fa");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let cin = aig.add_input("cin");
        let axb = aig.xor(a, b);
        let sum = aig.xor(axb, cin);
        let ab = aig.and(a, b);
        let cx = aig.and(cin, axb);
        let cout = aig.or(ab, cx);
        aig.add_output("sum", sum);
        aig.add_output("cout", cout);
        aig
    }

    #[test]
    fn matches_reference_evaluator_exhaustively() {
        let aig = adder_bit();
        let patterns = PatternBuffer::exhaustive(3);
        let sim = Simulation::new(&aig, &patterns);
        for p in 0..8 {
            let bits: Vec<bool> = (0..3).map(|i| patterns.get(i, p)).collect();
            let want = aig.evaluate(&bits);
            for (po, &w) in want.iter().enumerate() {
                assert_eq!(
                    sim.lit_bit(aig.outputs()[po].lit, p),
                    w,
                    "pattern {p}, output {po}"
                );
            }
        }
    }

    #[test]
    fn matches_reference_on_random_patterns() {
        let aig = adder_bit();
        let patterns = PatternBuffer::random(3, 200, 99);
        let sim = Simulation::new(&aig, &patterns);
        for p in (0..200).step_by(7) {
            let bits: Vec<bool> = (0..3).map(|i| patterns.get(i, p)).collect();
            let want = aig.evaluate(&bits);
            for (po, &wv) in want.iter().enumerate() {
                assert_eq!(sim.lit_bit(aig.outputs()[po].lit, p), wv);
            }
        }
    }

    #[test]
    fn constant_node_is_all_zero() {
        let mut aig = Aig::new("t");
        let _a = aig.add_input("a");
        aig.add_output("zero", alsrac_aig::Lit::FALSE);
        aig.add_output("one", alsrac_aig::Lit::TRUE);
        let patterns = PatternBuffer::random(1, 64, 3);
        let sim = Simulation::new(&aig, &patterns);
        assert_eq!(sim.output_word(&aig, 0, 0), 0);
        assert_eq!(sim.output_word(&aig, 1, 0), u64::MAX);
    }

    #[test]
    fn lit_word_applies_complement() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        aig.add_output("y", !a);
        let patterns = PatternBuffer::exhaustive(1);
        let sim = Simulation::new(&aig, &patterns);
        assert_eq!(sim.lit_word(a, 0) & 0b11, 0b10);
        assert_eq!(sim.lit_word(!a, 0) & 0b11, 0b01);
    }

    #[test]
    fn output_words_shape() {
        let aig = adder_bit();
        let patterns = PatternBuffer::random(3, 130, 5);
        let sim = Simulation::new(&aig, &patterns);
        let outs = sim.output_words(&aig);
        assert_eq!(outs.len(), 2);
        assert_eq!(outs[0].len(), 3); // ceil(130/64)
    }

    #[test]
    #[should_panic(expected = "inputs")]
    fn validates_input_arity() {
        let aig = adder_bit();
        let patterns = PatternBuffer::random(2, 64, 1);
        Simulation::new(&aig, &patterns);
    }
}
