//! Simulation-signature equivalence classes over the nodes of an AIG.
//!
//! A node's *signature* is its simulated value vector masked to the valid
//! pattern lanes. Two nodes whose signatures agree — or agree after
//! complementing one of them — are indistinguishable under the current
//! patterns, which is exactly the relation resubstitution cares about:
//! a divisor set whose members all fall in one signature class (up to
//! complement) spans at most that one function over the care patterns.
//! [`Signatures`] buckets every node into such complement-canonical
//! classes with one hash lookup per node, turning pairwise
//! "simulation-equal?" checks into O(1) class-id comparisons (Lee et al.,
//! *Simulation-Guided Boolean Resubstitution*).
//!
//! Class 0 is always the constant class: node 0 (constant false) carries
//! the all-zero signature and is bucketed first, so `class(id) == 0` means
//! "constant under the current patterns, up to complement".
//!
//! The table is incrementally maintainable through [`SimDelta`]: a
//! [`SimSource::Copy`] node inherits its donor's class (complementing the
//! edge flips only the polarity flag, never the class, because classes are
//! complement-canonical), so an update after a LAC application rehashes
//! only the recomputed cone instead of the whole graph.

use std::collections::HashMap;

use alsrac_aig::{Aig, Lit, NodeId};

use crate::{PatternBuffer, SimDelta, SimSource, Simulation};

/// Complement-canonical signature equivalence classes for one simulation
/// snapshot. See the [module docs](self) for the relation and invariants.
#[derive(Clone, Debug)]
pub struct Signatures {
    num_words: usize,
    /// Class id per node, indexed by node.
    class_of: Vec<u32>,
    /// Per node: whether its signature is the complement of its class's
    /// canonical representative.
    complemented: Vec<bool>,
    /// Number of member nodes per class.
    class_sizes: Vec<u32>,
    /// Canonical representative signature → class id. Persisted across
    /// [`Signatures::update`] calls so classes keep stable identities.
    class_index: HashMap<Vec<u64>, u32>,
}

impl Signatures {
    /// Buckets every node of `aig` by its signature under `sim`.
    ///
    /// Class ids are assigned in first-seen node order, so the numbering
    /// is deterministic; class 0 is the constant class.
    pub fn build(aig: &Aig, sim: &Simulation, patterns: &PatternBuffer) -> Signatures {
        let num_words = sim.num_words();
        let masks = patterns.word_masks();
        let mut table = Signatures {
            num_words,
            class_of: Vec::with_capacity(aig.num_nodes()),
            complemented: Vec::with_capacity(aig.num_nodes()),
            class_sizes: Vec::new(),
            class_index: HashMap::new(),
        };
        let mut scratch = vec![0u64; num_words];
        for id in aig.iter_nodes() {
            let (class, complement) = table.classify(sim, &masks, id, &mut scratch);
            table.class_of.push(class);
            table.complemented.push(complement);
        }
        table
    }

    /// Rebuilds the table for a graph produced by an incremental rebuild,
    /// rehashing only the nodes `delta` marks [`SimSource::Compute`].
    ///
    /// `sim` must be the *new* graph's simulation (same patterns as the
    /// table was built with) and `delta` the same delta that produced it.
    /// Copy nodes inherit their donor's class in O(1); the result is
    /// identical to a fresh [`Signatures::build`] on the new graph, except
    /// that class ids keep the numbering history of the old table (fresh
    /// functions get fresh ids rather than renumbering from zero).
    pub fn update(
        &self,
        aig: &Aig,
        sim: &Simulation,
        patterns: &PatternBuffer,
        delta: &SimDelta,
    ) -> Signatures {
        assert_eq!(
            self.num_words,
            sim.num_words(),
            "pattern width changed; build a fresh table"
        );
        let masks = patterns.word_masks();
        let mut table = Signatures {
            num_words: self.num_words,
            class_of: Vec::with_capacity(aig.num_nodes()),
            complemented: Vec::with_capacity(aig.num_nodes()),
            class_sizes: vec![0; self.class_sizes.len()],
            class_index: self.class_index.clone(),
        };
        let mut scratch = vec![0u64; self.num_words];
        for id in aig.iter_nodes() {
            let (class, complement) = match delta.source(id) {
                SimSource::Copy { old, complement } => {
                    let class = self.class_of[old.index()];
                    table.class_sizes[class as usize] += 1;
                    (class, self.complemented[old.index()] ^ complement)
                }
                SimSource::Compute => table.classify(sim, &masks, id, &mut scratch),
            };
            table.class_of.push(class);
            table.complemented.push(complement);
        }
        table
    }

    /// Canonicalizes `id`'s masked signature into `scratch` and returns
    /// its (class, complemented) pair, creating the class if new.
    fn classify(
        &mut self,
        sim: &Simulation,
        masks: &[u64],
        id: NodeId,
        scratch: &mut [u64],
    ) -> (u32, bool) {
        // Canonical polarity: lane 0 (always valid) reads 0. Complementing
        // within the masked lanes keeps the relation symmetric.
        let complement = sim.node_word(id, 0) & 1 != 0;
        for (w, slot) in scratch.iter_mut().enumerate() {
            let word = sim.node_word(id, w);
            *slot = (if complement { !word } else { word }) & masks[w];
        }
        let class = match self.class_index.get(scratch as &[u64]) {
            Some(&class) => class,
            None => {
                let class = self.class_sizes.len() as u32;
                self.class_index.insert(scratch.to_vec(), class);
                self.class_sizes.push(0);
                class
            }
        };
        self.class_sizes[class as usize] += 1;
        (class, complement)
    }

    /// Number of distinct classes ever assigned (including classes whose
    /// members all disappeared across updates).
    pub fn num_classes(&self) -> usize {
        self.class_sizes.len()
    }

    /// Number of nodes covered by the table.
    pub fn num_nodes(&self) -> usize {
        self.class_of.len()
    }

    /// Class id of `id`. Class 0 is the constant class.
    #[inline]
    pub fn class(&self, id: NodeId) -> u32 {
        self.class_of[id.index()]
    }

    /// Class id of a literal's underlying node (the complement bit never
    /// changes the class — classes are complement-canonical).
    #[inline]
    pub fn lit_class(&self, lit: Lit) -> u32 {
        self.class_of[lit.node().index()]
    }

    /// Whether `id`'s signature is the complement of its class
    /// representative.
    #[inline]
    pub fn is_complemented(&self, id: NodeId) -> bool {
        self.complemented[id.index()]
    }

    /// Whether `id` is constant (up to complement) under the patterns.
    #[inline]
    pub fn is_constant(&self, id: NodeId) -> bool {
        self.class_of[id.index()] == 0
    }

    /// Number of member nodes in `class`.
    pub fn class_size(&self, class: u32) -> usize {
        self.class_sizes[class as usize] as usize
    }

    /// Whether two nodes carry the same signature up to complement.
    #[inline]
    pub fn same_class(&self, a: NodeId, b: NodeId) -> bool {
        self.class_of[a.index()] == self.class_of[b.index()]
    }

    /// Whether two *literals* carry identical signatures on the valid
    /// lanes (complements folded in: `!a` has equal signature to `b` iff
    /// `a` and `b` are same-class with opposite polarities).
    #[inline]
    pub fn lits_equal(&self, a: Lit, b: Lit) -> bool {
        self.same_class(a.node(), b.node())
            && (self.is_complemented(a.node()) ^ a.is_complement())
                == (self.is_complemented(b.node()) ^ b.is_complement())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alsrac_aig::Aig;

    fn sample() -> Aig {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let ab = aig.and(a, b);
        let ab2 = aig.and(b, a); // strashes onto ab
        let nand = !aig.and(a, b);
        let dead = aig.and(a, !a); // constant 0 behavior
        let x = aig.xor(a, b);
        let y = aig.or(ab, c);
        aig.add_output("y", y);
        aig.add_output("y2", ab2);
        aig.add_output("y3", nand);
        aig.add_output("d", dead);
        aig.add_output("x", x);
        aig
    }

    #[test]
    fn classes_match_pairwise_masked_equality() {
        let aig = sample();
        let patterns = PatternBuffer::exhaustive(3);
        let sim = Simulation::new(&aig, &patterns);
        let sigs = Signatures::build(&aig, &sim, &patterns);
        let mask = patterns.word_mask(0);
        for a in aig.iter_nodes() {
            for b in aig.iter_nodes() {
                let wa = sim.node_word(a, 0) & mask;
                let wb = sim.node_word(b, 0) & mask;
                let equal_up_to_complement = wa == wb || wa == !wb & mask;
                assert_eq!(
                    sigs.same_class(a, b),
                    equal_up_to_complement,
                    "nodes {a} / {b}"
                );
                // Polarity refinement: identical (not complemented)
                // signatures iff same class and same polarity flag.
                let lits_equal = sigs.lits_equal(a.lit(), b.lit());
                assert_eq!(lits_equal, wa == wb, "lits {a} / {b}");
            }
        }
    }

    #[test]
    fn constant_class_is_class_zero() {
        let aig = sample();
        let patterns = PatternBuffer::exhaustive(3);
        let sim = Simulation::new(&aig, &patterns);
        let sigs = Signatures::build(&aig, &sim, &patterns);
        assert_eq!(sigs.class(NodeId::CONST), 0);
        assert!(sigs.is_constant(NodeId::CONST));
        // `dead = a & !a` simulates to constant 0 too.
        let dead = aig.outputs()[3].lit.node();
        assert!(sigs.is_constant(dead));
        assert!(sigs.same_class(dead, NodeId::CONST));
    }

    #[test]
    fn complement_polarity_is_tracked() {
        let aig = sample();
        let patterns = PatternBuffer::exhaustive(3);
        let sim = Simulation::new(&aig, &patterns);
        let sigs = Signatures::build(&aig, &sim, &patterns);
        let ab = aig.outputs()[1].lit.node();
        // `nand` output is the complemented edge of the same node, so the
        // literal comparison must distinguish polarity.
        let nand_lit = aig.outputs()[2].lit;
        assert_eq!(nand_lit.node(), ab);
        assert!(sigs.lits_equal(ab.lit(), ab.lit()));
        assert!(!sigs.lits_equal(ab.lit(), nand_lit));
        assert!(sigs.lits_equal(!ab.lit(), nand_lit));
    }

    #[test]
    fn update_matches_fresh_build() {
        use std::collections::HashMap as Map;
        let aig = sample();
        let patterns = PatternBuffer::exhaustive(3);
        let sim = Simulation::new(&aig, &patterns);
        let sigs = Signatures::build(&aig, &sim, &patterns);

        // Substitute the xor node with constant 0 and rebuild.
        let x = aig.outputs()[4].lit.node();
        let (rebuilt, map) = aig
            .rebuilt_with_substitutions_mapped(&Map::from([(x, Lit::FALSE)]))
            .expect("no cycle");
        let tfo = {
            let fanouts = aig.fanout_map();
            aig.tfo_cone(x, &fanouts)
        };
        let delta = SimDelta::from_rebuild_map(rebuilt.num_nodes(), &map, |old| !tfo.contains(old));
        let new_sim = sim.update(&rebuilt, &delta, &patterns);

        let updated = sigs.update(&rebuilt, &new_sim, &patterns, &delta);
        let fresh = Signatures::build(&rebuilt, &new_sim, &patterns);
        assert_eq!(updated.num_nodes(), fresh.num_nodes());
        for a in rebuilt.iter_nodes() {
            assert_eq!(updated.is_constant(a), fresh.is_constant(a), "node {a}");
            for b in rebuilt.iter_nodes() {
                assert_eq!(
                    updated.same_class(a, b),
                    fresh.same_class(a, b),
                    "nodes {a} / {b}"
                );
                assert_eq!(
                    updated.lits_equal(a.lit(), b.lit()),
                    fresh.lits_equal(a.lit(), b.lit()),
                    "lits {a} / {b}"
                );
            }
        }
        // Class sizes agree per member count even though ids may differ.
        for a in rebuilt.iter_nodes() {
            assert_eq!(
                updated.class_size(updated.class(a)),
                fresh.class_size(fresh.class(a)),
                "node {a}"
            );
        }
    }
}
