//! Exact single-node flip influence (batch error estimation support).
//!
//! Su et al. (DAC 2018) observed that the error of *every* candidate local
//! change at a node can be evaluated from one base simulation plus knowledge
//! of how a value flip at that node propagates to the primary outputs.
//! ALSRAC adopts the same scheme (§III-C, Line 6 of Algorithm 3).
//!
//! For a fixed input pattern, the circuit outputs are a deterministic
//! function of the flipped node's value, so toggling the node either flips a
//! given output or leaves it unchanged — [`FlipInfluence`] records that
//! bitmask per output, per pattern. Any candidate replacement function for
//! the node then yields exact candidate outputs via
//! [`FlipInfluence::apply`]: outputs flip exactly on the lanes where the
//! replacement disagrees with the current node value *and* the flip
//! propagates.
//!
//! Propagation is event-driven over a reusable [`InfluenceScratch`]: a flip
//! only visits nodes whose diff mask is still non-zero, so a flip that dies
//! locally costs a handful of word ops instead of a full-TFO sweep, and the
//! arena makes the hot loop allocation-free after warm-up (pinned by a
//! counting-allocator test). The per-visit word loop goes through the
//! batched [`crate::kernel`], and [`FlipInfluence::compute_fused`] discovers
//! touched outputs *during* propagation via an [`OutputIndex`] instead of
//! re-scanning every primary output per candidate.

use alsrac_aig::{Aig, FanoutMap, Node, NodeId};

use crate::{kernel, OutputWords, Simulation};

/// Sentinel marking an empty frontier bucket / end of a bucket list.
const EMPTY: u32 = u32::MAX;

/// Reusable arena for event-driven flip propagation.
///
/// Holds a flat `nodes × words` buffer of flipped values plus epoch-stamped
/// dirty/queued arrays: bumping the epoch invalidates every per-node stamp
/// in O(1), so consecutive [`propagate`](InfluenceScratch::propagate) calls
/// reuse the buffers without clearing them. The frontier is a level-bucketed
/// worklist: one intrusive singly-linked list of node indices per circuit
/// level, drained by a monotonically rising level cursor. That is a valid
/// evaluation order because every fanout of a level-`L` node sits strictly
/// above `L` (so nothing is ever pushed at or below the cursor), and
/// same-level AND nodes never feed each other. Unlike the min-heap frontier
/// it replaces, a pop is O(1) with no comparisons or sift-downs, and the
/// buckets drain to empty on every call so they need no per-epoch clearing.
///
/// One scratch per worker thread keeps the parallel estimator bit-identical
/// at any thread count: the scratch carries no cross-call state that the
/// masks depend on.
#[derive(Debug, Default)]
pub struct InfluenceScratch {
    num_words: usize,
    /// Flipped values, `flipped[node * num_words + w]`; valid only where
    /// `dirty_epoch[node] == epoch`.
    flipped: Vec<u64>,
    /// Stamp of the last propagation in which the node's value differed
    /// from the base simulation.
    dirty_epoch: Vec<u32>,
    /// Stamp of the last propagation in which the node entered the
    /// frontier (dedup so shared fanouts enqueue once).
    queued_epoch: Vec<u32>,
    epoch: u32,
    /// Head node index of each level's frontier list ([`EMPTY`] when the
    /// bucket is empty). Always all-[`EMPTY`] between propagations because
    /// every call drains the frontier completely.
    bucket_head: Vec<u32>,
    /// Intrusive next pointers threading frontier nodes within a bucket.
    next_in_bucket: Vec<u32>,
    /// Frontier entries pushed but not yet popped this propagation.
    pending: usize,
}

impl InfluenceScratch {
    /// An empty scratch; buffers are sized lazily on first use.
    pub fn new() -> InfluenceScratch {
        InfluenceScratch::default()
    }

    /// Resizes the arena for a graph of `num_nodes` nodes at `num_levels`
    /// levels simulated at `num_words` words and starts a fresh epoch.
    fn begin(&mut self, num_nodes: usize, num_words: usize, num_levels: usize) {
        if self.num_words != num_words || self.dirty_epoch.len() < num_nodes {
            self.num_words = num_words;
            self.flipped.clear();
            self.flipped.resize(num_nodes * num_words, 0);
            self.dirty_epoch.clear();
            self.dirty_epoch.resize(num_nodes, 0);
            self.queued_epoch.clear();
            self.queued_epoch.resize(num_nodes, 0);
            self.next_in_bucket.clear();
            self.next_in_bucket.resize(num_nodes, EMPTY);
            self.epoch = 0;
        }
        if self.bucket_head.len() < num_levels {
            // Existing entries are already EMPTY (the frontier fully
            // drains), so only the appended levels need the sentinel.
            self.bucket_head.resize(num_levels, EMPTY);
        }
        // Epoch wraparound: reset all stamps once every 2^32 - 1 calls.
        if self.epoch == u32::MAX {
            self.dirty_epoch.fill(0);
            self.queued_epoch.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// Pushes `id` onto its level's frontier bucket unless it was already
    /// queued this propagation.
    #[inline]
    fn enqueue(&mut self, id: NodeId, level: u32) {
        let idx = id.index();
        if self.queued_epoch[idx] != self.epoch {
            self.queued_epoch[idx] = self.epoch;
            self.next_in_bucket[idx] = self.bucket_head[level as usize];
            self.bucket_head[level as usize] = idx as u32;
            self.pending += 1;
        }
    }

    /// Whether `node` ended the last propagation with a value differing
    /// from the base simulation in at least one lane.
    #[inline]
    pub fn is_dirty(&self, node: NodeId) -> bool {
        self.dirty_epoch[node.index()] == self.epoch
    }

    /// Flipped value word of a dirty node (base value otherwise).
    #[inline]
    pub fn node_word(&self, sim: &Simulation, node: NodeId, w: usize) -> u64 {
        if self.is_dirty(node) {
            self.flipped[node.index() * self.num_words + w]
        } else {
            sim.node_word(node, w)
        }
    }

    /// The full flipped row of a dirty node (base row otherwise): the
    /// slice form of [`node_word`](InfluenceScratch::node_word), resolving
    /// the dirty branch once per node instead of once per word.
    #[inline]
    pub fn node_words<'a>(&'a self, sim: &'a Simulation, node: NodeId) -> &'a [u64] {
        if self.is_dirty(node) {
            let base = node.index() * self.num_words;
            &self.flipped[base..base + self.num_words]
        } else {
            sim.node_words(node)
        }
    }

    /// Propagates a flip of `node` through its fanout, event-driven.
    ///
    /// After the call, [`is_dirty`](InfluenceScratch::is_dirty) and
    /// [`node_word`](InfluenceScratch::node_word) describe the flipped
    /// circuit state. The hot loop performs no allocations once the arena
    /// and frontier heap have warmed up to the graph's size.
    ///
    /// Returns the number of nodes whose flipped values were evaluated
    /// (the root plus every frontier node visited).
    pub fn propagate(
        &mut self,
        aig: &Aig,
        sim: &Simulation,
        fanouts: &FanoutMap,
        node: NodeId,
    ) -> usize {
        self.propagate_inner(aig, sim, fanouts, node, |_| {})
    }

    /// [`propagate`](InfluenceScratch::propagate) with a callback invoked
    /// once per node that turns dirty (the root included), in propagation
    /// order. This is what lets [`FlipInfluence::compute_fused`] discover
    /// touched outputs during the walk instead of in a second pass.
    fn propagate_inner(
        &mut self,
        aig: &Aig,
        sim: &Simulation,
        fanouts: &FanoutMap,
        node: NodeId,
        mut on_dirty: impl FnMut(NodeId),
    ) -> usize {
        let num_words = sim.num_words();
        self.begin(aig.num_nodes(), num_words, fanouts.num_levels() as usize);
        let epoch = self.epoch;

        // Seed: the root differs from the base in every lane.
        let root_base = node.index() * num_words;
        kernel::not_into(
            &mut self.flipped[root_base..root_base + num_words],
            sim.node_words(node),
        );
        self.dirty_epoch[node.index()] = epoch;
        on_dirty(node);
        for &f in fanouts.fanouts(node) {
            self.enqueue(f, fanouts.level(f));
        }

        let mut visited = 1usize;
        let mut quenched = 0u64;
        // Drain buckets by ascending level. The cursor never moves back:
        // every enqueue targets a level strictly above the node being
        // processed, so once a bucket empties it stays empty.
        let mut cursor = fanouts.level(node) as usize;
        while self.pending > 0 {
            while self.bucket_head[cursor] == EMPTY {
                cursor += 1;
            }
            let raw = self.bucket_head[cursor];
            self.bucket_head[cursor] = self.next_in_bucket[raw as usize];
            self.pending -= 1;
            let id = NodeId::new(raw as usize);
            // Fanout maps list only AND consumers, and level order
            // guarantees both fanins (strictly lower levels) are final.
            let Node::And { f0, f1 } = *aig.node(id) else {
                continue;
            };
            visited += 1;
            let m0 = if f0.is_complement() { u64::MAX } else { 0 };
            let m1 = if f1.is_complement() { u64::MAX } else { 0 };
            let base = id.index() * num_words;
            // Fanins sit strictly below `id` in the arena, so splitting at
            // `base` separates the destination row from both source rows;
            // resolving each fanin's dirty branch once per row (instead of
            // once per word) hands whole rows to the batched kernel.
            let f0_base = f0.node().index() * num_words;
            let f1_base = f1.node().index() * num_words;
            let (lo, hi) = self.flipped.split_at_mut(base);
            let v0: &[u64] = if self.dirty_epoch[f0.node().index()] == epoch {
                &lo[f0_base..f0_base + num_words]
            } else {
                sim.node_words(f0.node())
            };
            let v1: &[u64] = if self.dirty_epoch[f1.node().index()] == epoch {
                &lo[f1_base..f1_base + num_words]
            } else {
                sim.node_words(f1.node())
            };
            let diff =
                kernel::and_diff_into(&mut hi[..num_words], v0, v1, m0, m1, sim.node_words(id));
            if diff == 0 {
                // The flip quenched here: downstream of this node nothing
                // changes through this path, so its fanouts are not
                // enqueued. When every frontier branch quenches the
                // worklist drains and the propagation stops early.
                quenched += 1;
                continue;
            }
            self.dirty_epoch[id.index()] = epoch;
            on_dirty(id);
            for &f in fanouts.fanouts(id) {
                self.enqueue(f, fanouts.level(f));
            }
        }
        alsrac_rt::trace::add("influence_words_computed", (visited * num_words) as u64);
        if quenched > 0 {
            // Quench pruning fires *inside* live propagations far more
            // often than whole flips die out (`influence_early_exits`),
            // so count the visits it stops separately.
            alsrac_rt::trace::add("influence_quenched_nodes", quenched);
        }
        visited
    }
}

/// Node → driven-primary-output index, CSR-packed.
///
/// Built once per estimation session, it gives the fused influence pass an
/// O(1) answer to "does this node drive an output, and which?" as nodes
/// turn dirty — replacing the per-candidate scan over *all* primary
/// outputs that [`FlipInfluence::compute_with`] performs after propagation.
#[derive(Clone, Debug)]
pub struct OutputIndex {
    /// CSR row offsets: node `i` drives `pos[offsets[i]..offsets[i + 1]]`.
    offsets: Vec<u32>,
    /// Output indices, ascending within each node's row.
    pos: Vec<u32>,
}

impl OutputIndex {
    /// Indexes the output drivers of `aig`.
    pub fn new(aig: &Aig) -> OutputIndex {
        let num_nodes = aig.num_nodes();
        let mut offsets = vec![0u32; num_nodes + 1];
        for output in aig.outputs() {
            offsets[output.lit.node().index() + 1] += 1;
        }
        for i in 0..num_nodes {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor = offsets.clone();
        let mut pos = vec![0u32; aig.num_outputs()];
        for (po, output) in aig.outputs().iter().enumerate() {
            let idx = output.lit.node().index();
            pos[cursor[idx] as usize] = po as u32;
            cursor[idx] += 1;
        }
        OutputIndex { offsets, pos }
    }

    /// Primary outputs driven by `node`, ascending (usually empty).
    #[inline]
    pub fn pos_of(&self, node: NodeId) -> &[u32] {
        let idx = node.index();
        &self.pos[self.offsets[idx] as usize..self.offsets[idx + 1] as usize]
    }
}

/// Per-output, per-pattern masks of where a flip of one node reaches each
/// primary output.
///
/// Rows are stored sparsely: only outputs the flip actually reached get a
/// row, and every other output implicitly carries the all-zero mask. This
/// is what makes window-local estimation project to whole-circuit error
/// without whole-circuit cost — a node deep inside a large graph usually
/// reaches a handful of its outputs, so masks scale with the reached set
/// rather than `outputs × words`.
#[derive(Clone, Debug)]
pub struct FlipInfluence {
    node: NodeId,
    num_words: usize,
    num_outputs: usize,
    /// Output indices with a stored influence row, ascending.
    touched: Vec<u32>,
    /// Flattened `touched.len() × words` rows, parallel to `touched`: bit
    /// set iff flipping the node flips that output in that lane.
    rows: Vec<u64>,
    /// All-zero row lent out for untouched outputs.
    zeros: Vec<u64>,
    /// Union of the rows over all outputs.
    any: Vec<u64>,
}

impl FlipInfluence {
    /// Computes the influence masks of `node` with a fresh scratch.
    ///
    /// Convenience wrapper over
    /// [`compute_with`](FlipInfluence::compute_with); batch callers should
    /// hold one [`InfluenceScratch`] per worker and reuse it.
    ///
    /// Lanes beyond the pattern buffer's valid count carry unspecified
    /// values; callers must mask with the buffer's `word_mask` when
    /// counting.
    pub fn compute(
        aig: &Aig,
        sim: &Simulation,
        fanouts: &FanoutMap,
        node: NodeId,
    ) -> FlipInfluence {
        FlipInfluence::compute_with(aig, sim, fanouts, node, &mut InfluenceScratch::new())
    }

    /// Computes the influence masks of `node` by event-driven propagation
    /// over `scratch`.
    pub fn compute_with(
        aig: &Aig,
        sim: &Simulation,
        fanouts: &FanoutMap,
        node: NodeId,
        scratch: &mut InfluenceScratch,
    ) -> FlipInfluence {
        let num_words = sim.num_words();
        scratch.propagate(aig, sim, fanouts, node);
        let mut touched = Vec::new();
        let mut rows = Vec::new();
        let mut any = vec![0u64; num_words];
        for (po, output) in aig.outputs().iter().enumerate() {
            let o_node = output.lit.node();
            if !scratch.is_dirty(o_node) {
                continue;
            }
            touched.push(po as u32);
            for (w, any_w) in any.iter_mut().enumerate() {
                // Complement on the output edge cancels in the XOR.
                let diff = scratch.node_word(sim, o_node, w) ^ sim.node_word(o_node, w);
                rows.push(diff);
                *any_w |= diff;
            }
        }
        if any.iter().all(|&w| w == 0) {
            // The flip died before reaching any primary output.
            alsrac_rt::trace::add("influence_early_exits", 1);
        }
        FlipInfluence {
            node,
            num_words,
            num_outputs: aig.num_outputs(),
            touched,
            rows,
            zeros: vec![0u64; num_words],
            any,
        }
    }

    /// Computes the influence masks of `node` with touched outputs
    /// discovered *during* propagation: every node that turns dirty is
    /// checked against the [`OutputIndex`] in O(1), so the post-propagation
    /// scan over all primary outputs that
    /// [`compute_with`](FlipInfluence::compute_with) performs disappears.
    /// Masks are bit-identical to `compute_with` — same touched set (an
    /// output is touched iff its driver ended the walk dirty), same
    /// ascending row order, same row words (pinned by property tests).
    pub fn compute_fused(
        aig: &Aig,
        sim: &Simulation,
        fanouts: &FanoutMap,
        outputs: &OutputIndex,
        node: NodeId,
        scratch: &mut InfluenceScratch,
    ) -> FlipInfluence {
        let num_words = sim.num_words();
        let mut dirty_pos: Vec<u32> = Vec::new();
        scratch.propagate_inner(aig, sim, fanouts, node, |id| {
            dirty_pos.extend_from_slice(outputs.pos_of(id));
        });
        // Discovery happens in propagation order; rows are stored ascending
        // by output index, so restore that contract here. Each output has
        // exactly one driver node, so no dedup is needed.
        dirty_pos.sort_unstable();
        let mut rows = vec![0u64; dirty_pos.len() * num_words];
        let mut any = vec![0u64; num_words];
        for (slot, &po) in dirty_pos.iter().enumerate() {
            let o_node = aig.outputs()[po as usize].lit.node();
            let row = &mut rows[slot * num_words..(slot + 1) * num_words];
            // Complement on the output edge cancels in the XOR.
            kernel::xor_into(row, scratch.node_words(sim, o_node), sim.node_words(o_node));
            for (any_w, &r) in any.iter_mut().zip(row.iter()) {
                *any_w |= r;
            }
        }
        if any.iter().all(|&w| w == 0) {
            // The flip died before reaching any primary output.
            alsrac_rt::trace::add("influence_early_exits", 1);
        }
        FlipInfluence {
            node,
            num_words,
            num_outputs: aig.num_outputs(),
            touched: dirty_pos,
            rows,
            zeros: vec![0u64; num_words],
            any,
        }
    }

    /// Computes the influence masks of `node` by re-simulating its entire
    /// TFO cone, with no early exit.
    ///
    /// This is the pre-event-driven algorithm, kept as the reference
    /// baseline for `bench_sim` and the bit-identity property tests; flow
    /// code uses [`compute_with`](FlipInfluence::compute_with).
    pub fn compute_full(
        aig: &Aig,
        sim: &Simulation,
        fanouts: &FanoutMap,
        node: NodeId,
    ) -> FlipInfluence {
        let num_words = sim.num_words();
        let cone = aig.tfo_cone(node, fanouts);
        // Flipped values for cone members only.
        let mut flipped: Vec<Option<Vec<u64>>> = vec![None; aig.num_nodes()];
        flipped[node.index()] = Some(sim.node_words(node).iter().map(|&w| !w).collect());
        for &id in cone.members() {
            if id == node {
                continue;
            }
            let Node::And { f0, f1 } = *aig.node(id) else {
                // The TFO of an internal node contains only AND nodes above
                // it; an input can only appear as the root itself.
                continue;
            };
            let mut words = vec![0u64; num_words];
            for w in 0..num_words {
                let v0 = match &flipped[f0.node().index()] {
                    Some(new) => new[w],
                    None => sim.node_word(f0.node(), w),
                } ^ if f0.is_complement() { u64::MAX } else { 0 };
                let v1 = match &flipped[f1.node().index()] {
                    Some(new) => new[w],
                    None => sim.node_word(f1.node(), w),
                } ^ if f1.is_complement() { u64::MAX } else { 0 };
                words[w] = v0 & v1;
            }
            flipped[id.index()] = Some(words);
        }
        alsrac_rt::trace::add(
            "influence_words_computed",
            (cone.members().len() * num_words) as u64,
        );

        let mut touched = Vec::new();
        let mut rows = Vec::new();
        let mut any = vec![0u64; num_words];
        for (po, output) in aig.outputs().iter().enumerate() {
            let o_node = output.lit.node();
            if let Some(new) = &flipped[o_node.index()] {
                touched.push(po as u32);
                for w in 0..num_words {
                    // Complement on the output edge cancels in the XOR.
                    let diff = new[w] ^ sim.node_word(o_node, w);
                    rows.push(diff);
                    any[w] |= diff;
                }
            }
        }
        FlipInfluence {
            node,
            num_words,
            num_outputs: aig.num_outputs(),
            touched,
            rows,
            zeros: vec![0u64; num_words],
            any,
        }
    }

    /// The node these masks describe.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Influence mask of output `po` (`[w]` indexed). Outputs the flip
    /// never reached share one all-zero row.
    pub fn po_mask(&self, po: usize) -> &[u64] {
        assert!(po < self.num_outputs, "output index out of range");
        match self.touched.binary_search(&(po as u32)) {
            Ok(slot) => &self.rows[slot * self.num_words..(slot + 1) * self.num_words],
            Err(_) => &self.zeros,
        }
    }

    /// Union of the influence masks over all outputs: lanes where a flip of
    /// the node changes *some* output.
    pub fn any_mask(&self) -> &[u64] {
        &self.any
    }

    /// Number of outputs covered (stored rows plus implicit zero rows).
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// Number of outputs the flip actually reached (stored rows).
    pub fn num_touched_outputs(&self) -> usize {
        self.touched.len()
    }

    /// Output indices with a stored row, ascending (parallel to row slots).
    ///
    /// Together with [`row`](FlipInfluence::row) this exposes the sparse
    /// layout directly, so fused consumers can merge against it with one
    /// rising cursor instead of a binary search per output.
    #[inline]
    pub fn touched(&self) -> &[u32] {
        &self.touched
    }

    /// Stored influence row at `slot` (see
    /// [`touched`](FlipInfluence::touched) for which output that is).
    #[inline]
    pub fn row(&self, slot: usize) -> &[u64] {
        &self.rows[slot * self.num_words..(slot + 1) * self.num_words]
    }

    /// Computes candidate output words after replacing the node's function.
    ///
    /// `base_outputs` are the current output values (from the base
    /// simulation) and `change_mask[w]` flags the lanes where the
    /// replacement function disagrees with the node's current value. The
    /// result is exact: `out'[po] = out[po] ^ (influence[po] & change)`.
    pub fn apply(&self, base_outputs: &OutputWords, change_mask: &[u64]) -> OutputWords {
        assert_eq!(
            base_outputs.num_outputs(),
            self.num_outputs(),
            "output count mismatch"
        );
        let mut out = base_outputs.clone();
        // Untouched outputs carry zero masks; only stored rows can flip.
        for (slot, &po) in self.touched.iter().enumerate() {
            let inf = &self.rows[slot * self.num_words..(slot + 1) * self.num_words];
            let row = out.po_mut(po as usize);
            for (w, slot) in row.iter_mut().enumerate() {
                *slot ^= inf[w] & change_mask[w];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PatternBuffer;
    use alsrac_aig::Aig;
    use std::collections::HashMap;

    /// Builds a 4-input circuit with some reconvergence.
    fn sample() -> Aig {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let d = aig.add_input("d");
        let ab = aig.and(a, b);
        let bc = aig.xor(b, c);
        let top1 = aig.or(ab, bc);
        let top2 = aig.and(bc, d);
        let top3 = aig.xor(top1, top2); // reconverges on bc
        aig.add_output("y1", top1);
        aig.add_output("y2", top3);
        aig
    }

    /// Reference: flip `node` by forcing its value to the complement in a
    /// per-pattern reference evaluation.
    fn reference_influence(aig: &Aig, patterns: &PatternBuffer, node: NodeId) -> Vec<Vec<u64>> {
        let base = Simulation::new(aig, patterns);
        let mut result = vec![vec![0u64; base.num_words()]; aig.num_outputs()];
        for p in 0..patterns.num_patterns() {
            // Evaluate with node forced to its complement.
            let mut values = vec![false; aig.num_nodes()];
            for id in aig.iter_nodes() {
                let v = match *aig.node(id) {
                    alsrac_aig::Node::Const => false,
                    alsrac_aig::Node::Input { index } => patterns.get(index as usize, p),
                    alsrac_aig::Node::And { f0, f1 } => {
                        (values[f0.node().index()] ^ f0.is_complement())
                            && (values[f1.node().index()] ^ f1.is_complement())
                    }
                };
                values[id.index()] = if id == node { !v } else { v };
            }
            for (po, output) in aig.outputs().iter().enumerate() {
                let flipped_v = values[output.lit.node().index()] ^ output.lit.is_complement();
                let base_v = base.lit_bit(output.lit, p);
                if flipped_v != base_v {
                    result[po][p / 64] |= 1 << (p % 64);
                }
            }
        }
        result
    }

    #[test]
    fn influence_matches_reference_for_all_nodes() {
        let aig = sample();
        let patterns = PatternBuffer::exhaustive(4);
        let sim = Simulation::new(&aig, &patterns);
        let fanouts = aig.fanout_map();
        for id in aig.iter_nodes().skip(1) {
            let inf = FlipInfluence::compute(&aig, &sim, &fanouts, id);
            let want = reference_influence(&aig, &patterns, id);
            let mask = patterns.word_mask(0);
            for (po, want_po) in want.iter().enumerate() {
                for (w, &want_word) in want_po.iter().enumerate().take(sim.num_words()) {
                    assert_eq!(
                        inf.po_mask(po)[w] & mask,
                        want_word & mask,
                        "node {id}, po {po}"
                    );
                }
            }
        }
    }

    #[test]
    fn event_driven_matches_full_cone_for_all_nodes() {
        let aig = sample();
        let patterns = PatternBuffer::exhaustive(4);
        let sim = Simulation::new(&aig, &patterns);
        let fanouts = aig.fanout_map();
        let mut scratch = InfluenceScratch::new();
        for id in aig.iter_nodes().skip(1) {
            let fast = FlipInfluence::compute_with(&aig, &sim, &fanouts, id, &mut scratch);
            let full = FlipInfluence::compute_full(&aig, &sim, &fanouts, id);
            let mask = patterns.word_mask(0);
            for po in 0..aig.num_outputs() {
                for w in 0..sim.num_words() {
                    assert_eq!(
                        fast.po_mask(po)[w] & mask,
                        full.po_mask(po)[w] & mask,
                        "node {id}, po {po}"
                    );
                }
            }
            for w in 0..sim.num_words() {
                assert_eq!(fast.any_mask()[w] & mask, full.any_mask()[w] & mask);
            }
        }
    }

    #[test]
    fn fused_matches_separate_pass_for_all_nodes() {
        let aig = sample();
        let patterns = PatternBuffer::exhaustive(4);
        let sim = Simulation::new(&aig, &patterns);
        let fanouts = aig.fanout_map();
        let outputs = OutputIndex::new(&aig);
        let mut scratch = InfluenceScratch::new();
        for id in aig.iter_nodes().skip(1) {
            let fused =
                FlipInfluence::compute_fused(&aig, &sim, &fanouts, &outputs, id, &mut scratch);
            let separate = FlipInfluence::compute_with(&aig, &sim, &fanouts, id, &mut scratch);
            assert_eq!(fused.touched(), separate.touched(), "node {id}");
            for slot in 0..fused.touched().len() {
                assert_eq!(fused.row(slot), separate.row(slot), "node {id} slot {slot}");
            }
            assert_eq!(fused.any_mask(), separate.any_mask(), "node {id}");
        }
    }

    #[test]
    fn output_index_lists_drivers_ascending() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let x = aig.and(a, b);
        aig.add_output("y0", x);
        aig.add_output("y1", a);
        aig.add_output("y2", !x);
        let outputs = OutputIndex::new(&aig);
        assert_eq!(outputs.pos_of(x.node()), &[0, 2]);
        assert_eq!(outputs.pos_of(a.node()), &[1]);
        assert_eq!(outputs.pos_of(b.node()), &[] as &[u32]);
    }

    #[test]
    fn scratch_reuse_is_stateless_across_nodes() {
        // Computing node B after node A with a shared scratch must give the
        // same masks as a fresh scratch for B.
        let aig = sample();
        let patterns = PatternBuffer::exhaustive(4);
        let sim = Simulation::new(&aig, &patterns);
        let fanouts = aig.fanout_map();
        let nodes: Vec<NodeId> = aig.iter_ands().collect();
        let mut shared = InfluenceScratch::new();
        for &warm in &nodes {
            FlipInfluence::compute_with(&aig, &sim, &fanouts, warm, &mut shared);
        }
        for &id in &nodes {
            let reused = FlipInfluence::compute_with(&aig, &sim, &fanouts, id, &mut shared);
            let fresh = FlipInfluence::compute(&aig, &sim, &fanouts, id);
            assert_eq!(reused.po_mask(0), fresh.po_mask(0), "node {id}");
            assert_eq!(reused.po_mask(1), fresh.po_mask(1), "node {id}");
            assert_eq!(reused.any_mask(), fresh.any_mask(), "node {id}");
        }
    }

    #[test]
    fn any_mask_is_union() {
        let aig = sample();
        let patterns = PatternBuffer::exhaustive(4);
        let sim = Simulation::new(&aig, &patterns);
        let fanouts = aig.fanout_map();
        let node = aig.iter_ands().next().expect("has ands");
        let inf = FlipInfluence::compute(&aig, &sim, &fanouts, node);
        for w in 0..sim.num_words() {
            let union = (0..aig.num_outputs()).fold(0, |acc, po| acc | inf.po_mask(po)[w]);
            assert_eq!(inf.any_mask()[w], union);
        }
    }

    #[test]
    fn apply_reproduces_direct_resimulation() {
        // Replace a node with constant 0 and compare apply() against a
        // rebuilt circuit's simulation.
        let aig = sample();
        let patterns = PatternBuffer::exhaustive(4);
        let sim = Simulation::new(&aig, &patterns);
        let fanouts = aig.fanout_map();
        let node = aig.iter_ands().nth(1).expect("has ands");
        let inf = FlipInfluence::compute(&aig, &sim, &fanouts, node);

        // Change mask: lanes where "constant 0" differs from current value.
        let change: Vec<u64> = sim.node_words(node).to_vec();
        let candidate = inf.apply(&sim.output_words(&aig), &change);

        let rebuilt = aig
            .rebuilt_with_substitutions(&HashMap::from([(node, alsrac_aig::Lit::FALSE)]))
            .expect("no cycle");
        let rebuilt_sim = Simulation::new(&rebuilt, &patterns);
        let mask = patterns.word_mask(0);
        for po in 0..aig.num_outputs() {
            assert_eq!(
                candidate.word(po, 0) & mask,
                rebuilt_sim.output_word(&rebuilt, po, 0) & mask,
                "po {po}"
            );
        }
    }

    #[test]
    fn influence_of_fanout_free_node_is_empty_elsewhere() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let x = aig.and(a, b);
        let dangling = aig.and(a, !b);
        aig.add_output("y", x);
        let patterns = PatternBuffer::exhaustive(2);
        let sim = Simulation::new(&aig, &patterns);
        let fanouts = aig.fanout_map();
        let inf = FlipInfluence::compute(&aig, &sim, &fanouts, dangling.node());
        assert_eq!(inf.po_mask(0)[0] & patterns.word_mask(0), 0);
    }

    #[test]
    fn influence_of_output_driver_is_total() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let x = aig.and(a, b);
        aig.add_output("y", x);
        let patterns = PatternBuffer::exhaustive(2);
        let sim = Simulation::new(&aig, &patterns);
        let fanouts = aig.fanout_map();
        let inf = FlipInfluence::compute(&aig, &sim, &fanouts, x.node());
        assert_eq!(
            inf.po_mask(0)[0] & patterns.word_mask(0),
            patterns.word_mask(0)
        );
    }

    #[test]
    fn sparse_rows_cover_only_reached_outputs() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let x = aig.and(a, b);
        let dangling = aig.and(a, !b);
        aig.add_output("y", x);
        aig.add_output("z", a);
        let patterns = PatternBuffer::exhaustive(2);
        let sim = Simulation::new(&aig, &patterns);
        let fanouts = aig.fanout_map();
        // The dangling node reaches no output: zero stored rows, but the
        // mask accessors still answer for every output index.
        let inf = FlipInfluence::compute(&aig, &sim, &fanouts, dangling.node());
        assert_eq!(inf.num_touched_outputs(), 0);
        assert_eq!(inf.num_outputs(), 2);
        assert!(inf.po_mask(0).iter().all(|&w| w == 0));
        assert!(inf.po_mask(1).iter().all(|&w| w == 0));
        // The y-driver reaches exactly one of the two outputs.
        let inf = FlipInfluence::compute(&aig, &sim, &fanouts, x.node());
        assert_eq!(inf.num_touched_outputs(), 1);
        assert_eq!(inf.po_mask(0), inf.any_mask());
        assert!(inf.po_mask(1).iter().all(|&w| w == 0));
    }

    #[test]
    fn propagation_quenches_without_visiting_far_cone() {
        // y = a & 0-via-(b & !b): flipping the constant-like node cannot
        // change anything once masked... instead build a quench directly:
        // n = a & b, m = n | n (same value), flipping a node whose fanout
        // recomputes the same word quenches. Simplest robust construction:
        // two inputs driving an AND whose value the flip cannot change is
        // impossible for the root itself, so check the visit count instead:
        // a chain where the flip dies at the first AND.
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        // dead = b & !b == const-0 behavior per-pattern.
        let dead = aig.and(b, !b);
        let x = aig.and(a, dead);
        let mut y = x;
        for _ in 0..10 {
            y = aig.and(y, a);
        }
        aig.add_output("y", y);
        let patterns = PatternBuffer::exhaustive(2);
        let sim = Simulation::new(&aig, &patterns);
        let fanouts = aig.fanout_map();
        let mut scratch = InfluenceScratch::new();
        // Flipping `b` flips `dead` (b & !b stays 0? No: flipping the node
        // value of b changes both fanin edges, so dead = !b & b = 0 still).
        // So the flip of b quenches at `dead`... unless it also feeds other
        // nodes. b only feeds dead here, so the frontier dies immediately.
        let visited = scratch.propagate(&aig, &sim, &fanouts, b.node());
        assert!(visited <= 2, "visited {visited} nodes, expected quench");
        let inf = FlipInfluence::compute_with(&aig, &sim, &fanouts, b.node(), &mut scratch);
        assert_eq!(inf.any_mask()[0] & patterns.word_mask(0), 0);
    }
}
