//! Exact single-node flip influence (batch error estimation support).
//!
//! Su et al. (DAC 2018) observed that the error of *every* candidate local
//! change at a node can be evaluated from one base simulation plus knowledge
//! of how a value flip at that node propagates to the primary outputs.
//! ALSRAC adopts the same scheme (§III-C, Line 6 of Algorithm 3).
//!
//! For a fixed input pattern, the circuit outputs are a deterministic
//! function of the flipped node's value, so toggling the node either flips a
//! given output or leaves it unchanged — [`FlipInfluence`] records that
//! bitmask per output, per pattern, by re-simulating only the node's
//! transitive fanout cone with the node's value inverted. Any candidate
//! replacement function for the node then yields exact candidate outputs via
//! [`FlipInfluence::apply`]: outputs flip exactly on the lanes where the
//! replacement disagrees with the current node value *and* the flip
//! propagates.

use alsrac_aig::{Aig, FanoutMap, Node, NodeId};

use crate::Simulation;

/// Per-output, per-pattern masks of where a flip of one node reaches each
/// primary output.
#[derive(Clone, Debug)]
pub struct FlipInfluence {
    node: NodeId,
    /// `per_po[po][w]`: bit set iff flipping the node flips output `po` in
    /// that lane.
    per_po: Vec<Vec<u64>>,
    /// Union of `per_po` over all outputs.
    any: Vec<u64>,
}

impl FlipInfluence {
    /// Computes the influence masks of `node` by re-simulating its TFO cone
    /// with the node's value inverted.
    ///
    /// Lanes beyond the pattern buffer's valid count carry unspecified
    /// values; callers must mask with the buffer's `word_mask` when
    /// counting.
    pub fn compute(
        aig: &Aig,
        sim: &Simulation,
        fanouts: &FanoutMap,
        node: NodeId,
    ) -> FlipInfluence {
        let num_words = sim.num_words();
        let cone = aig.tfo_cone(node, fanouts);
        // Flipped values for cone members only.
        let mut flipped: Vec<Option<Vec<u64>>> = vec![None; aig.num_nodes()];
        flipped[node.index()] = Some(sim.node_words(node).iter().map(|&w| !w).collect());
        for &id in cone.members() {
            if id == node {
                continue;
            }
            let Node::And { f0, f1 } = *aig.node(id) else {
                // The TFO of an internal node contains only AND nodes above
                // it; an input can only appear as the root itself.
                continue;
            };
            let mut words = vec![0u64; num_words];
            for w in 0..num_words {
                let v0 = match &flipped[f0.node().index()] {
                    Some(new) => new[w],
                    None => sim.node_word(f0.node(), w),
                } ^ if f0.is_complement() { u64::MAX } else { 0 };
                let v1 = match &flipped[f1.node().index()] {
                    Some(new) => new[w],
                    None => sim.node_word(f1.node(), w),
                } ^ if f1.is_complement() { u64::MAX } else { 0 };
                words[w] = v0 & v1;
            }
            flipped[id.index()] = Some(words);
        }

        let mut per_po = Vec::with_capacity(aig.num_outputs());
        let mut any = vec![0u64; num_words];
        for output in aig.outputs() {
            let o_node = output.lit.node();
            let mut diff = vec![0u64; num_words];
            if let Some(new) = &flipped[o_node.index()] {
                for w in 0..num_words {
                    // Complement on the output edge cancels in the XOR.
                    diff[w] = new[w] ^ sim.node_word(o_node, w);
                    any[w] |= diff[w];
                }
            }
            per_po.push(diff);
        }
        FlipInfluence { node, per_po, any }
    }

    /// The node these masks describe.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Influence mask of output `po` (`[w]` indexed).
    pub fn po_mask(&self, po: usize) -> &[u64] {
        &self.per_po[po]
    }

    /// Union of the influence masks over all outputs: lanes where a flip of
    /// the node changes *some* output.
    pub fn any_mask(&self) -> &[u64] {
        &self.any
    }

    /// Number of outputs covered.
    pub fn num_outputs(&self) -> usize {
        self.per_po.len()
    }

    /// Computes candidate output words after replacing the node's function.
    ///
    /// `base_outputs[po][w]` are the current output values (from the base
    /// simulation) and `change_mask[w]` flags the lanes where the
    /// replacement function disagrees with the node's current value. The
    /// result is exact: `out'[po] = out[po] ^ (influence[po] & change)`.
    pub fn apply(&self, base_outputs: &[Vec<u64>], change_mask: &[u64]) -> Vec<Vec<u64>> {
        assert_eq!(
            base_outputs.len(),
            self.per_po.len(),
            "output count mismatch"
        );
        base_outputs
            .iter()
            .zip(&self.per_po)
            .map(|(base, inf)| {
                base.iter()
                    .zip(inf.iter().zip(change_mask))
                    .map(|(&b, (&i, &c))| b ^ (i & c))
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PatternBuffer;
    use alsrac_aig::Aig;
    use std::collections::HashMap;

    /// Builds a 4-input circuit with some reconvergence.
    fn sample() -> Aig {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let c = aig.add_input("c");
        let d = aig.add_input("d");
        let ab = aig.and(a, b);
        let bc = aig.xor(b, c);
        let top1 = aig.or(ab, bc);
        let top2 = aig.and(bc, d);
        let top3 = aig.xor(top1, top2); // reconverges on bc
        aig.add_output("y1", top1);
        aig.add_output("y2", top3);
        aig
    }

    /// Reference: flip `node` by substituting it with its complement and
    /// re-simulating the rebuilt circuit from scratch.
    fn reference_influence(aig: &Aig, patterns: &PatternBuffer, node: NodeId) -> Vec<Vec<u64>> {
        let lit = node.lit();
        let flipped_aig = aig
            .rebuilt_with_substitutions(&HashMap::new())
            .expect("clean");
        // Rebuild changes ids; instead flip via manual evaluation: simulate
        // base and a variant where the node value is complemented, using the
        // reference evaluator per pattern.
        let _ = (flipped_aig, lit);
        let base = Simulation::new(aig, patterns);
        let fanouts = aig.fanout_map();
        let cone = aig.tfo_cone(node, &fanouts);
        let mut result = vec![vec![0u64; base.num_words()]; aig.num_outputs()];
        for p in 0..patterns.num_patterns() {
            // Evaluate with node forced to its complement.
            let mut values = vec![false; aig.num_nodes()];
            for id in aig.iter_nodes() {
                let v = match *aig.node(id) {
                    alsrac_aig::Node::Const => false,
                    alsrac_aig::Node::Input { index } => patterns.get(index as usize, p),
                    alsrac_aig::Node::And { f0, f1 } => {
                        (values[f0.node().index()] ^ f0.is_complement())
                            && (values[f1.node().index()] ^ f1.is_complement())
                    }
                };
                values[id.index()] = if id == node { !v } else { v };
            }
            let _ = &cone;
            for (po, output) in aig.outputs().iter().enumerate() {
                let flipped_v = values[output.lit.node().index()] ^ output.lit.is_complement();
                let base_v = base.lit_bit(output.lit, p);
                if flipped_v != base_v {
                    result[po][p / 64] |= 1 << (p % 64);
                }
            }
        }
        result
    }

    #[test]
    fn influence_matches_reference_for_all_nodes() {
        let aig = sample();
        let patterns = PatternBuffer::exhaustive(4);
        let sim = Simulation::new(&aig, &patterns);
        let fanouts = aig.fanout_map();
        for id in aig.iter_nodes().skip(1) {
            let inf = FlipInfluence::compute(&aig, &sim, &fanouts, id);
            let want = reference_influence(&aig, &patterns, id);
            let mask = patterns.word_mask(0);
            for (po, want_po) in want.iter().enumerate() {
                for (w, &want_word) in want_po.iter().enumerate().take(sim.num_words()) {
                    assert_eq!(
                        inf.po_mask(po)[w] & mask,
                        want_word & mask,
                        "node {id}, po {po}"
                    );
                }
            }
        }
    }

    #[test]
    fn any_mask_is_union() {
        let aig = sample();
        let patterns = PatternBuffer::exhaustive(4);
        let sim = Simulation::new(&aig, &patterns);
        let fanouts = aig.fanout_map();
        let node = aig.iter_ands().next().expect("has ands");
        let inf = FlipInfluence::compute(&aig, &sim, &fanouts, node);
        for w in 0..sim.num_words() {
            let union = (0..aig.num_outputs()).fold(0, |acc, po| acc | inf.po_mask(po)[w]);
            assert_eq!(inf.any_mask()[w], union);
        }
    }

    #[test]
    fn apply_reproduces_direct_resimulation() {
        // Replace a node with constant 0 and compare apply() against a
        // rebuilt circuit's simulation.
        let aig = sample();
        let patterns = PatternBuffer::exhaustive(4);
        let sim = Simulation::new(&aig, &patterns);
        let fanouts = aig.fanout_map();
        let node = aig.iter_ands().nth(1).expect("has ands");
        let inf = FlipInfluence::compute(&aig, &sim, &fanouts, node);

        // Change mask: lanes where "constant 0" differs from current value.
        let change: Vec<u64> = sim.node_words(node).to_vec();
        let candidate = inf.apply(&sim.output_words(&aig), &change);

        let rebuilt = aig
            .rebuilt_with_substitutions(&HashMap::from([(node, alsrac_aig::Lit::FALSE)]))
            .expect("no cycle");
        let rebuilt_sim = Simulation::new(&rebuilt, &patterns);
        let mask = patterns.word_mask(0);
        for (po, candidate_po) in candidate.iter().enumerate() {
            assert_eq!(
                candidate_po[0] & mask,
                rebuilt_sim.output_word(&rebuilt, po, 0) & mask,
                "po {po}"
            );
        }
    }

    #[test]
    fn influence_of_fanout_free_node_is_empty_elsewhere() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let x = aig.and(a, b);
        let dangling = aig.and(a, !b);
        aig.add_output("y", x);
        let patterns = PatternBuffer::exhaustive(2);
        let sim = Simulation::new(&aig, &patterns);
        let fanouts = aig.fanout_map();
        let inf = FlipInfluence::compute(&aig, &sim, &fanouts, dangling.node());
        assert_eq!(inf.po_mask(0)[0] & patterns.word_mask(0), 0);
    }

    #[test]
    fn influence_of_output_driver_is_total() {
        let mut aig = Aig::new("t");
        let a = aig.add_input("a");
        let b = aig.add_input("b");
        let x = aig.and(a, b);
        aig.add_output("y", x);
        let patterns = PatternBuffer::exhaustive(2);
        let sim = Simulation::new(&aig, &patterns);
        let fanouts = aig.fanout_map();
        let inf = FlipInfluence::compute(&aig, &sim, &fanouts, x.node());
        assert_eq!(
            inf.po_mask(0)[0] & patterns.word_mask(0),
            patterns.word_mask(0)
        );
    }
}
