//! Bit-parallel logic simulation for AIGs.
//!
//! ALSRAC is a *simulation-only* synthesis flow: the approximate care set,
//! the feasibility of divisor sets, and the error of every candidate change
//! are all established by simulating the circuit on sampled input patterns
//! (§III of the paper). This crate provides:
//!
//! * [`PatternBuffer`] — packed input patterns (64 per machine word), from a
//!   seeded uniform source, a biased per-input distribution, or exhaustive
//!   enumeration;
//! * [`Simulation`] — the values of every node of an [`Aig`] under a pattern
//!   buffer, computed in one topological sweep at 64 patterns per word op;
//! * [`FlipInfluence`] — for a chosen node, the exact per-pattern, per-output
//!   effect of flipping that node's value, computed by event-driven
//!   propagation over a reusable [`InfluenceScratch`] arena that stops the
//!   moment the flip quenches. This is the engine behind the batch error
//!   estimation of Su et al. (DAC 2018) that ALSRAC reuses;
//! * [`SimDelta`] + [`Simulation::update`] — cone-local incremental
//!   resimulation after a structural rewrite: values of nodes whose function
//!   is untouched are carried over instead of re-evaluated;
//! * [`Signatures`] — complement-canonical equivalence classes over node
//!   signatures, turning pairwise simulation-equality checks into O(1)
//!   class-id comparisons for windowed divisor filtering;
//! * [`kernel`] — the wide-word batched primitives every hot loop above is
//!   built on: fixed-size [`kernel::BATCH_WORDS`]-word inner loops the
//!   autovectorizer turns into SIMD, bit-identical to the scalar
//!   recurrences at any row length.
//!
//! # Example
//!
//! ```
//! use alsrac_aig::Aig;
//! use alsrac_sim::{PatternBuffer, Simulation};
//!
//! let mut aig = Aig::new("t");
//! let a = aig.add_input("a");
//! let b = aig.add_input("b");
//! let y = aig.xor(a, b);
//! aig.add_output("y", y);
//!
//! let patterns = PatternBuffer::exhaustive(2);
//! let sim = Simulation::new(&aig, &patterns);
//! // Patterns 0..4 are (a,b) = 00, 10, 01, 11 -> xor = 0,1,1,0.
//! assert_eq!(sim.output_word(&aig, 0, 0) & 0xF, 0b0110);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod delta;
mod influence;
pub mod kernel;
mod patterns;
mod signatures;
mod simulation;

pub use delta::{SimDelta, SimSource};
pub use influence::{FlipInfluence, InfluenceScratch, OutputIndex};
pub use patterns::PatternBuffer;
pub use signatures::Signatures;
pub use simulation::{OutputWords, Simulation};
