//! Wide-word batched word kernels for the hot simulation loops.
//!
//! Every hot path in this crate — the topological sweep, cone-local
//! incremental updates, and event-driven flip propagation — reduces to a
//! handful of bitwise recurrences over per-node word rows. Evaluating them
//! one `u64` at a time leaves most of the cost in per-word loop and
//! indexing overhead; these kernels instead process [`BATCH_WORDS`] words
//! per step through fixed-size-array inner loops that the autovectorizer
//! turns into SIMD, with a scalar tail for ragged row lengths.
//!
//! Everything here is pure boolean algebra over independent lanes, so the
//! batched forms are *bit-identical* to the scalar recurrences for every
//! row length and batch width — evaluation order of AND/XOR/NOT over
//! disjoint words cannot change a single bit (pinned by the in-module
//! tests and the `batch_kernel` property suite).
//!
//! The callers in [`crate::Simulation`] and [`crate::InfluenceScratch`]
//! obtain the non-aliasing source/destination slices these kernels require
//! via `split_at_mut` on their flat arenas, relying on the AIG invariant
//! that fanin indices are strictly smaller than the node index (topological
//! construction order) — no `unsafe` anywhere (`alsrac-sim` forbids it).

/// Words processed per batched step (256 patterns per node visit).
///
/// Chosen so one batch fills two AVX2 registers (or one AVX-512 register)
/// per operand while staying useful on plain 64-bit ALUs; the kernels are
/// correct for any row length, including rows shorter than one batch.
pub const BATCH_WORDS: usize = 4;

/// `dst[w] = (a[w] ^ m0) & (b[w] ^ m1)` — the AND-gate recurrence, with
/// fanin complements pre-expanded to the lane masks `m0`/`m1`.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn and_into(dst: &mut [u64], a: &[u64], b: &[u64], m0: u64, m1: u64) {
    assert_eq!(dst.len(), a.len(), "row length mismatch");
    assert_eq!(dst.len(), b.len(), "row length mismatch");
    let mut dst_batches = dst.chunks_exact_mut(BATCH_WORDS);
    let mut a_batches = a.chunks_exact(BATCH_WORDS);
    let mut b_batches = b.chunks_exact(BATCH_WORDS);
    for ((d, av), bv) in (&mut dst_batches).zip(&mut a_batches).zip(&mut b_batches) {
        for i in 0..BATCH_WORDS {
            d[i] = (av[i] ^ m0) & (bv[i] ^ m1);
        }
    }
    for ((d, &av), &bv) in dst_batches
        .into_remainder()
        .iter_mut()
        .zip(a_batches.remainder())
        .zip(b_batches.remainder())
    {
        *d = (av ^ m0) & (bv ^ m1);
    }
}

/// [`and_into`] fused with the difference reduction the flip-propagation
/// loop needs: returns the OR over all words of `dst[w] ^ base[w]`, so each
/// freshly computed word is compared against the base simulation while it
/// is still in registers (a zero return is the quench signal).
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn and_diff_into(dst: &mut [u64], a: &[u64], b: &[u64], m0: u64, m1: u64, base: &[u64]) -> u64 {
    assert_eq!(dst.len(), a.len(), "row length mismatch");
    assert_eq!(dst.len(), b.len(), "row length mismatch");
    assert_eq!(dst.len(), base.len(), "row length mismatch");
    let mut diff = 0u64;
    let mut dst_batches = dst.chunks_exact_mut(BATCH_WORDS);
    let mut a_batches = a.chunks_exact(BATCH_WORDS);
    let mut b_batches = b.chunks_exact(BATCH_WORDS);
    let mut base_batches = base.chunks_exact(BATCH_WORDS);
    for (((d, av), bv), kv) in (&mut dst_batches)
        .zip(&mut a_batches)
        .zip(&mut b_batches)
        .zip(&mut base_batches)
    {
        let mut lane_diff = [0u64; BATCH_WORDS];
        for i in 0..BATCH_WORDS {
            let new = (av[i] ^ m0) & (bv[i] ^ m1);
            lane_diff[i] = new ^ kv[i];
            d[i] = new;
        }
        for d in lane_diff {
            diff |= d;
        }
    }
    for (((d, &av), &bv), &kv) in dst_batches
        .into_remainder()
        .iter_mut()
        .zip(a_batches.remainder())
        .zip(b_batches.remainder())
        .zip(base_batches.remainder())
    {
        let new = (av ^ m0) & (bv ^ m1);
        diff |= new ^ kv;
        *d = new;
    }
    diff
}

/// `dst[w] = !src[w]` — the complemented-copy recurrence of incremental
/// updates and flip seeding.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn not_into(dst: &mut [u64], src: &[u64]) {
    assert_eq!(dst.len(), src.len(), "row length mismatch");
    let mut dst_batches = dst.chunks_exact_mut(BATCH_WORDS);
    let mut src_batches = src.chunks_exact(BATCH_WORDS);
    for (d, s) in (&mut dst_batches).zip(&mut src_batches) {
        for i in 0..BATCH_WORDS {
            d[i] = !s[i];
        }
    }
    for (d, &s) in dst_batches
        .into_remainder()
        .iter_mut()
        .zip(src_batches.remainder())
    {
        *d = !s;
    }
}

/// `dst[w] = a[w] ^ b[w]` — the difference-row extraction used when
/// influence rows are collected for output-driving nodes.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn xor_into(dst: &mut [u64], a: &[u64], b: &[u64]) {
    assert_eq!(dst.len(), a.len(), "row length mismatch");
    assert_eq!(dst.len(), b.len(), "row length mismatch");
    let mut dst_batches = dst.chunks_exact_mut(BATCH_WORDS);
    let mut a_batches = a.chunks_exact(BATCH_WORDS);
    let mut b_batches = b.chunks_exact(BATCH_WORDS);
    for ((d, av), bv) in (&mut dst_batches).zip(&mut a_batches).zip(&mut b_batches) {
        for i in 0..BATCH_WORDS {
            d[i] = av[i] ^ bv[i];
        }
    }
    for ((d, &av), &bv) in dst_batches
        .into_remainder()
        .iter_mut()
        .zip(a_batches.remainder())
        .zip(b_batches.remainder())
    {
        *d = av ^ bv;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alsrac_rt::Rng;

    fn random_row(rng: &mut Rng, len: usize) -> Vec<u64> {
        (0..len).map(|_| rng.next_u64()).collect()
    }

    /// Every kernel must match its scalar recurrence for row lengths
    /// around, below, and far above the batch width (ragged tails).
    #[test]
    fn kernels_match_scalar_reference_on_ragged_lengths() {
        let mut rng = Rng::from_seed(0xBA7C4);
        for len in [0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 64, 129] {
            for &(m0, m1) in &[(0, 0), (u64::MAX, 0), (0, u64::MAX), (u64::MAX, u64::MAX)] {
                let a = random_row(&mut rng, len);
                let b = random_row(&mut rng, len);
                let base = random_row(&mut rng, len);

                let mut dst = vec![0u64; len];
                and_into(&mut dst, &a, &b, m0, m1);
                let want: Vec<u64> = (0..len).map(|w| (a[w] ^ m0) & (b[w] ^ m1)).collect();
                assert_eq!(dst, want, "and_into len={len} m0={m0:x} m1={m1:x}");

                let mut dst2 = vec![0u64; len];
                let diff = and_diff_into(&mut dst2, &a, &b, m0, m1, &base);
                assert_eq!(dst2, want, "and_diff_into values len={len}");
                let want_diff = (0..len).fold(0u64, |acc, w| acc | (want[w] ^ base[w]));
                assert_eq!(diff, want_diff, "and_diff_into diff len={len}");

                let mut dst3 = vec![0u64; len];
                not_into(&mut dst3, &a);
                assert!(
                    dst3.iter().zip(&a).all(|(&d, &s)| d == !s),
                    "not_into len={len}"
                );

                let mut dst4 = vec![0u64; len];
                xor_into(&mut dst4, &a, &b);
                assert!(
                    dst4.iter().zip(&a).zip(&b).all(|((&d, &x), &y)| d == x ^ y),
                    "xor_into len={len}"
                );
            }
        }
    }

    #[test]
    fn quench_signal_is_zero_iff_identical() {
        let a = vec![0b1100u64; 9];
        let b = vec![0b1010u64; 9];
        let want: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| x & y).collect();
        let mut dst = vec![0u64; 9];
        assert_eq!(and_diff_into(&mut dst, &a, &b, 0, 0, &want), 0);
        let mut off_base = want.clone();
        off_base[8] ^= 1 << 17;
        assert_eq!(and_diff_into(&mut dst, &a, &b, 0, 0, &off_base), 1 << 17);
    }

    #[test]
    #[should_panic(expected = "row length mismatch")]
    fn length_mismatch_panics() {
        let mut dst = vec![0u64; 3];
        and_into(&mut dst, &[0; 2], &[0; 3], 0, 0);
    }
}
