//! Structural deltas for cone-local incremental resimulation.
//!
//! When the flow applies a LAC, the rebuilt graph differs from its
//! predecessor only inside the substituted node's transitive fanout plus
//! the freshly materialized cover logic; everything else computes the same
//! Boolean function as some node of the old graph (possibly under a new id
//! or complemented edge). A [`SimDelta`] records, per node of the *new*
//! graph, whether its simulated values can be carried over from the old
//! simulation ([`SimSource::Copy`]) or must be re-evaluated
//! ([`SimSource::Compute`]). [`crate::Simulation::update`] consumes it.

use alsrac_aig::{Lit, NodeId};

/// Where one node of a rebuilt graph gets its simulated values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimSource {
    /// Function identical to old node `old` (complemented if set): copy its
    /// words from the previous simulation.
    Copy {
        /// Node of the *old* graph with the same function.
        old: NodeId,
        /// Whether the new node computes the complement of `old`.
        complement: bool,
    },
    /// Function new or changed: evaluate from fanins in topological order.
    Compute,
}

/// Per-node value provenance for one graph rebuild, indexed by *new* node
/// id.
#[derive(Clone, Debug)]
pub struct SimDelta {
    sources: Vec<SimSource>,
}

impl SimDelta {
    /// A delta over `num_nodes` new nodes with every node marked
    /// [`SimSource::Compute`] (equivalent to a full sweep).
    pub fn all_compute(num_nodes: usize) -> SimDelta {
        SimDelta {
            sources: vec![SimSource::Compute; num_nodes],
        }
    }

    /// Builds a delta from a rebuild map.
    ///
    /// `map[old]` is the literal of the new graph that old node `old` was
    /// rebuilt into (`None` if unreachable), as returned by the rebuild;
    /// `unchanged(old)` must report whether the old node's *function* is
    /// intact — for a substitution rebuild that is "not in the transitive
    /// fanout of any substituted node". Only unchanged old nodes donate
    /// their values; a new node no old unchanged node maps onto is marked
    /// [`SimSource::Compute`].
    pub fn from_rebuild_map<F>(
        num_new_nodes: usize,
        map: &[Option<Lit>],
        mut unchanged: F,
    ) -> SimDelta
    where
        F: FnMut(NodeId) -> bool,
    {
        let mut sources = vec![SimSource::Compute; num_new_nodes];
        for (old_index, target) in map.iter().enumerate() {
            let Some(lit) = target else { continue };
            let old = NodeId::new(old_index);
            if !unchanged(old) {
                continue;
            }
            // Strashing can map several equivalent old nodes onto one new
            // node; any of them is a valid source, so last-writer-wins is
            // fine.
            sources[lit.node().index()] = SimSource::Copy {
                old,
                complement: lit.is_complement(),
            };
        }
        SimDelta { sources }
    }

    /// Number of new-graph nodes covered.
    pub fn num_nodes(&self) -> usize {
        self.sources.len()
    }

    /// Value provenance of new node `id`.
    #[inline]
    pub fn source(&self, id: NodeId) -> SimSource {
        self.sources[id.index()]
    }

    /// Number of nodes that must be re-evaluated.
    pub fn num_compute(&self) -> usize {
        self.sources
            .iter()
            .filter(|s| matches!(s, SimSource::Compute))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_compute_marks_everything() {
        let delta = SimDelta::all_compute(3);
        assert_eq!(delta.num_nodes(), 3);
        assert_eq!(delta.num_compute(), 3);
    }

    #[test]
    fn from_map_copies_only_unchanged_nodes() {
        // Old nodes 0..4; node 3 changed. Map: 0->0, 1->1, 2->!2, 3->4.
        let map = vec![
            Some(NodeId::new(0).lit()),
            Some(NodeId::new(1).lit()),
            Some(!NodeId::new(2).lit()),
            Some(NodeId::new(4).lit()),
        ];
        let delta = SimDelta::from_rebuild_map(5, &map, |old| old.index() != 3);
        assert_eq!(
            delta.source(NodeId::new(0)),
            SimSource::Copy {
                old: NodeId::new(0),
                complement: false
            }
        );
        assert_eq!(
            delta.source(NodeId::new(2)),
            SimSource::Copy {
                old: NodeId::new(2),
                complement: true
            }
        );
        // New node 3 has no unchanged preimage; new node 4 is the image of
        // the *changed* old node 3 — both must be computed.
        assert_eq!(delta.source(NodeId::new(3)), SimSource::Compute);
        assert_eq!(delta.source(NodeId::new(4)), SimSource::Compute);
        assert_eq!(delta.num_compute(), 2);
    }

    #[test]
    fn unreachable_old_nodes_are_skipped() {
        let map = vec![Some(NodeId::new(0).lit()), None];
        let delta = SimDelta::from_rebuild_map(2, &map, |_| true);
        assert_eq!(delta.num_compute(), 1);
    }
}
