//! Packed input-pattern buffers.

use alsrac_rt::Rng;

/// A buffer of input patterns, bit-packed 64 per word.
///
/// Word `w` of input `i` holds the value of input `i` under patterns
/// `64*w .. 64*w+63` (pattern `p` in bit `p % 64`). A buffer may hold a
/// pattern count that is not a multiple of 64; [`PatternBuffer::tail_mask`]
/// masks the valid lanes of the last word, and generators always leave the
/// invalid lanes zero.
#[derive(Clone, Debug)]
pub struct PatternBuffer {
    num_inputs: usize,
    num_patterns: usize,
    num_words: usize,
    /// Flat `inputs × words` arena, `words[input * num_words + w]` — one
    /// allocation, so per-input rows are contiguous and consecutive inputs
    /// stream through cache during the simulation sweep.
    words: Vec<u64>,
}

impl PatternBuffer {
    /// Draws `num_patterns` uniformly random patterns from a seeded RNG.
    ///
    /// The same `(num_inputs, num_patterns, seed)` triple always produces
    /// the same buffer, making every flow in this workspace reproducible.
    /// (RNG words are drawn input-major, word-minor — the arena's layout
    /// order — which is the draw order the pre-SoA nested layout used, so
    /// seeds reproduce historical buffers bit-for-bit.)
    pub fn random(num_inputs: usize, num_patterns: usize, seed: u64) -> PatternBuffer {
        let mut rng = Rng::from_seed(seed);
        let num_words = num_patterns.div_ceil(64).max(1);
        let tail = Self::tail_mask_for(num_patterns);
        let mut words = Vec::with_capacity(num_inputs * num_words);
        for _ in 0..num_inputs {
            for w in 0..num_words {
                let bits = rng.next_u64();
                words.push(if w + 1 == num_words {
                    bits & tail
                } else {
                    bits
                });
            }
        }
        PatternBuffer {
            num_inputs,
            num_patterns,
            num_words,
            words,
        }
    }

    /// Draws patterns where input `i` is 1 with probability `bias[i]`.
    ///
    /// The paper's experiments use uniform inputs, but the method is defined
    /// for "random input patterns following a user-specified distribution"
    /// (§III-A); this constructor provides that generality.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != num_inputs` or any probability is outside
    /// `[0, 1]`.
    pub fn biased(
        num_inputs: usize,
        num_patterns: usize,
        bias: &[f64],
        seed: u64,
    ) -> PatternBuffer {
        assert_eq!(bias.len(), num_inputs, "one bias per input required");
        assert!(
            bias.iter().all(|p| (0.0..=1.0).contains(p)),
            "biases must be probabilities"
        );
        let mut rng = Rng::from_seed(seed);
        let num_words = num_patterns.div_ceil(64).max(1);
        let mut words = vec![0u64; num_inputs * num_words];
        for (i, &p) in bias.iter().enumerate() {
            let row = &mut words[i * num_words..(i + 1) * num_words];
            for pattern in 0..num_patterns {
                if rng.gen_bool(p) {
                    row[pattern / 64] |= 1 << (pattern % 64);
                }
            }
        }
        PatternBuffer {
            num_inputs,
            num_patterns,
            num_words,
            words,
        }
    }

    /// Enumerates all `2^num_inputs` patterns (pattern index = input value,
    /// LSB-first).
    ///
    /// # Panics
    ///
    /// Panics if `num_inputs > 24` (the buffer would exceed 16M patterns).
    pub fn exhaustive(num_inputs: usize) -> PatternBuffer {
        assert!(num_inputs <= 24, "exhaustive patterns limited to 24 inputs");
        let num_patterns = 1usize << num_inputs;
        let num_words = num_patterns.div_ceil(64).max(1);
        // Repeating sub-word patterns for the six lowest variables.
        const MASKS: [u64; 6] = [
            0xAAAA_AAAA_AAAA_AAAA,
            0xCCCC_CCCC_CCCC_CCCC,
            0xF0F0_F0F0_F0F0_F0F0,
            0xFF00_FF00_FF00_FF00,
            0xFFFF_0000_FFFF_0000,
            0xFFFF_FFFF_0000_0000,
        ];
        let mut words = Vec::with_capacity(num_inputs * num_words);
        for i in 0..num_inputs {
            let low_mask = MASKS.get(i).map(|m| m & Self::tail_mask_for(num_patterns));
            for w in 0..num_words {
                words.push(if let Some(mask) = low_mask {
                    mask
                } else if w >> (i - 6) & 1 == 1 {
                    u64::MAX
                } else {
                    0
                });
            }
        }
        PatternBuffer {
            num_inputs,
            num_patterns,
            num_words,
            words,
        }
    }

    /// Builds a buffer from explicit per-pattern input assignments.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(num_inputs: usize, rows: &[Vec<bool>]) -> PatternBuffer {
        let num_patterns = rows.len();
        let num_words = num_patterns.div_ceil(64).max(1);
        let mut words = vec![0u64; num_inputs * num_words];
        for (p, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), num_inputs, "row {p} has wrong arity");
            for (i, &bit) in row.iter().enumerate() {
                if bit {
                    words[i * num_words + p / 64] |= 1 << (p % 64);
                }
            }
        }
        PatternBuffer {
            num_inputs,
            num_patterns,
            num_words,
            words,
        }
    }

    /// Number of inputs per pattern.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of patterns in the buffer.
    pub fn num_patterns(&self) -> usize {
        self.num_patterns
    }

    /// Number of 64-bit words per input.
    pub fn num_words(&self) -> usize {
        self.num_words
    }

    /// The packed words of input `i`.
    #[inline]
    pub fn input_words(&self, i: usize) -> &[u64] {
        &self.words[i * self.num_words..(i + 1) * self.num_words]
    }

    /// Returns the value of input `i` under pattern `p`.
    pub fn get(&self, i: usize, p: usize) -> bool {
        self.words[i * self.num_words + p / 64] >> (p % 64) & 1 != 0
    }

    fn tail_mask_for(num_patterns: usize) -> u64 {
        match num_patterns % 64 {
            0 if num_patterns > 0 => u64::MAX,
            0 => 0,
            r => (1u64 << r) - 1,
        }
    }

    /// Mask of the valid lanes of word `w` (all lanes except possibly in the
    /// final word).
    pub fn word_mask(&self, w: usize) -> u64 {
        if w + 1 < self.num_words() {
            u64::MAX
        } else {
            Self::tail_mask_for(self.num_patterns)
        }
    }

    /// The valid-lane masks of every word, in word order.
    ///
    /// Convenience for the measurement and estimation kernels, which fold
    /// packed comparisons word by word (and, when parallelized, hand each
    /// worker the same read-only mask slice).
    pub fn word_masks(&self) -> Vec<u64> {
        (0..self.num_words()).map(|w| self.word_mask(w)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_is_reproducible() {
        let a = PatternBuffer::random(5, 100, 42);
        let b = PatternBuffer::random(5, 100, 42);
        let c = PatternBuffer::random(5, 100, 43);
        for i in 0..5 {
            assert_eq!(a.input_words(i), b.input_words(i));
        }
        assert!((0..5).any(|i| a.input_words(i) != c.input_words(i)));
    }

    #[test]
    fn word_masks_collects_every_word() {
        let buf = PatternBuffer::random(2, 70, 3);
        assert_eq!(buf.word_masks(), vec![u64::MAX, (1 << 6) - 1]);
    }

    #[test]
    fn random_masks_invalid_lanes() {
        let a = PatternBuffer::random(3, 10, 7);
        assert_eq!(a.num_words(), 1);
        for i in 0..3 {
            assert_eq!(a.input_words(i)[0] & !a.word_mask(0), 0);
        }
        assert_eq!(a.word_mask(0), (1 << 10) - 1);
    }

    #[test]
    fn exhaustive_covers_all_patterns() {
        let buf = PatternBuffer::exhaustive(3);
        assert_eq!(buf.num_patterns(), 8);
        let mut seen = std::collections::HashSet::new();
        for p in 0..8 {
            let key: Vec<bool> = (0..3).map(|i| buf.get(i, p)).collect();
            seen.insert(key.clone());
            // Pattern index encodes input values LSB-first.
            for (i, &bit) in key.iter().enumerate() {
                assert_eq!(bit, p >> i & 1 != 0);
            }
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn exhaustive_large_inputs_use_word_blocks() {
        let buf = PatternBuffer::exhaustive(8);
        assert_eq!(buf.num_patterns(), 256);
        assert_eq!(buf.num_words(), 4);
        for p in (0..256).step_by(17) {
            for i in 0..8 {
                assert_eq!(buf.get(i, p), p >> i & 1 != 0, "i={i} p={p}");
            }
        }
    }

    #[test]
    fn biased_extremes() {
        let always = PatternBuffer::biased(2, 64, &[1.0, 0.0], 5);
        assert_eq!(always.input_words(0)[0], u64::MAX);
        assert_eq!(always.input_words(1)[0], 0);
    }

    #[test]
    fn biased_roughly_matches_probability() {
        let buf = PatternBuffer::biased(1, 6400, &[0.25], 9);
        let ones: u32 = buf.input_words(0).iter().map(|w| w.count_ones()).sum();
        let frac = f64::from(ones) / 6400.0;
        assert!((frac - 0.25).abs() < 0.05, "frac={frac}");
    }

    #[test]
    fn from_rows_round_trip() {
        let rows = vec![
            vec![true, false, true],
            vec![false, false, true],
            vec![true, true, false],
        ];
        let buf = PatternBuffer::from_rows(3, &rows);
        for (p, row) in rows.iter().enumerate() {
            for (i, &bit) in row.iter().enumerate() {
                assert_eq!(buf.get(i, p), bit);
            }
        }
    }

    #[test]
    fn zero_pattern_buffer_has_one_empty_word() {
        let buf = PatternBuffer::random(2, 0, 1);
        assert_eq!(buf.num_patterns(), 0);
        assert_eq!(buf.num_words(), 1);
        assert_eq!(buf.word_mask(0), 0);
    }

    #[test]
    #[should_panic(expected = "one bias per input")]
    fn biased_validates_arity() {
        PatternBuffer::biased(3, 8, &[0.5], 1);
    }
}
