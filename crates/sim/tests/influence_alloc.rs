//! Pins the steady-state allocation contract of the scratch-arena flip
//! propagation: after one warm-up pass has sized the arena, the epoch
//! stamps, and the frontier heap, repeated [`InfluenceScratch::propagate`]
//! calls on the same graph must not allocate at all. The flow calls this
//! once per (node, iteration) — it is the estimation stage's inner loop —
//! so a hidden per-call allocation would silently dominate small-word
//! workloads.
//!
//! Same counting-allocator pattern as `alsrac-rt`'s `trace_disabled`
//! test: `GlobalAlloc` needs `unsafe`, which the library crates forbid,
//! so a test binary is the only place "allocates nothing" is observable.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use alsrac_aig::{Aig, NodeId};
use alsrac_sim::{InfluenceScratch, PatternBuffer, Simulation};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Pairwise reduction tree over `layer`, alternating XOR and AND levels
/// so the result is multi-level and reconvergent with the parity output.
fn reduce(aig: &mut Aig, layer: &[alsrac_aig::Lit]) -> alsrac_aig::Lit {
    let mut layer = layer.to_vec();
    let mut use_and = false;
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for pair in layer.chunks(2) {
            next.push(match *pair {
                [a, b] if use_and => aig.and(a, b),
                [a, b] => aig.xor(a, b),
                [a] => a,
                _ => unreachable!("chunks(2)"),
            });
        }
        use_and = !use_and;
        layer = next;
    }
    layer[0]
}

/// A reconvergent multi-level circuit: an alternating XOR/AND reduction
/// tree plus a full parity chain over the same 16 inputs, so propagations
/// traverse real fanout fans and shared subtrees.
fn build_circuit() -> Aig {
    let mut aig = Aig::new("alloc_probe");
    let inputs = aig.add_inputs("x", 16);
    let tree = reduce(&mut aig, &inputs);
    aig.add_output("y", tree);
    let parity = aig.xor_all(&inputs);
    aig.add_output("p", parity);
    aig
}

#[test]
fn steady_state_propagation_allocates_nothing() {
    let aig = build_circuit();
    let patterns = PatternBuffer::random(aig.num_inputs(), 256, 7);
    let sim = Simulation::new(&aig, &patterns);
    let fanouts = aig.fanout_map();
    let mut scratch = InfluenceScratch::new();

    // Warm-up: one full pass over every node sizes the arena and epoch
    // stamps for this graph and lets the frontier heap reach its
    // high-water capacity (heaps keep capacity across drains).
    for raw in 0..aig.num_nodes() {
        scratch.propagate(&aig, &sim, &fanouts, NodeId::new(raw));
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let mut visited_total = 0usize;
    for _round in 0..5 {
        for raw in 0..aig.num_nodes() {
            visited_total += scratch.propagate(&aig, &sim, &fanouts, NodeId::new(raw));
        }
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert!(visited_total > 0, "propagations visited no nodes");
    assert_eq!(
        after - before,
        0,
        "steady-state flip propagation allocated {} times",
        after - before
    );
}
