//! Property suite for the wide-word batched kernel path.
//!
//! The batched kernel (`alsrac_sim::kernel`, [`kernel::BATCH_WORDS`] words
//! per inner-loop step) and the fused influence pass promise *bit identity*
//! with the scalar recurrences they replace — the flow's determinism
//! contract rests on it. This suite pins that promise on real circuit
//! generators across ragged word counts:
//!
//! 1. **Batched simulation ≡ scalar reference.** Every node's packed words
//!    equal a per-pattern boolean re-evaluation of the graph, at pattern
//!    counts that exercise every remainder class of the batch width
//!    (`num_words % BATCH_WORDS` ∈ {0, 1, 2, 3}) and a partial final word.
//! 2. **Fused ≡ separate ≡ full-cone influence.** `compute_fused`
//!    (touched outputs discovered during propagation) stores the same
//!    touched set, rows, and any-mask as `compute_with` (post-propagation
//!    output scan) and `compute_full` (whole-TFO resimulation).
//! 3. **Both hold across random LAC applies.** After random node
//!    substitutions — the structural edits the flow performs — incremental
//!    update, fresh batched simulation, the scalar reference, and all three
//!    influence engines still agree on the rebuilt graph.

use std::collections::HashMap;

use alsrac_aig::{Aig, Lit, Node, NodeId};
use alsrac_circuits::arith;
use alsrac_rt::Rng;
use alsrac_sim::{kernel, FlipInfluence, InfluenceScratch, OutputIndex, PatternBuffer, Simulation};

/// Pattern counts covering one partial word, exact single words, and word
/// counts in every remainder class modulo [`kernel::BATCH_WORDS`] (so both
/// the batched inner loops and their scalar tails run).
fn ragged_pattern_counts() -> Vec<usize> {
    assert_eq!(
        kernel::BATCH_WORDS,
        4,
        "counts below assume a width-4 batch"
    );
    vec![1, 63, 64, 65, 130, 192, 256, 300]
}

/// Scalar reference: evaluates every node on every pattern with plain
/// bools, then packs the results. No word-level ops — this is the
/// specification the batched sweep must reproduce bit-for-bit.
fn reference_node_words(aig: &Aig, patterns: &PatternBuffer) -> Vec<Vec<u64>> {
    let num_words = patterns.num_words();
    let mut words = vec![vec![0u64; num_words]; aig.num_nodes()];
    for p in 0..patterns.num_patterns() {
        let mut values = vec![false; aig.num_nodes()];
        for id in aig.iter_nodes() {
            let v = match *aig.node(id) {
                Node::Const => false,
                Node::Input { index } => patterns.get(index as usize, p),
                Node::And { f0, f1 } => {
                    (values[f0.node().index()] ^ f0.is_complement())
                        && (values[f1.node().index()] ^ f1.is_complement())
                }
            };
            values[id.index()] = v;
            if v {
                words[id.index()][p / 64] |= 1 << (p % 64);
            }
        }
    }
    words
}

fn assert_simulation_matches_reference(aig: &Aig, patterns: &PatternBuffer, what: &str) {
    let sim = Simulation::new(aig, patterns);
    let want = reference_node_words(aig, patterns);
    for id in aig.iter_nodes() {
        for (w, &want_w) in want[id.index()].iter().enumerate() {
            let mask = patterns.word_mask(w);
            assert_eq!(
                sim.node_word(id, w) & mask,
                want_w & mask,
                "{what}: node {id}, word {w}"
            );
        }
    }
}

fn assert_influence_engines_agree(aig: &Aig, patterns: &PatternBuffer, what: &str) {
    let sim = Simulation::new(aig, patterns);
    let fanouts = aig.fanout_map();
    let outputs = OutputIndex::new(aig);
    let mut scratch = InfluenceScratch::new();
    for id in aig.iter_nodes().skip(1) {
        let fused = FlipInfluence::compute_fused(aig, &sim, &fanouts, &outputs, id, &mut scratch);
        let separate = FlipInfluence::compute_with(aig, &sim, &fanouts, id, &mut scratch);
        let full = FlipInfluence::compute_full(aig, &sim, &fanouts, id);
        // Fused vs separate: identical sparse layout, word for word (both
        // describe the dirty set of the same event-driven propagation).
        assert_eq!(fused.touched(), separate.touched(), "{what}: node {id}");
        for slot in 0..fused.touched().len() {
            assert_eq!(
                fused.row(slot),
                separate.row(slot),
                "{what}: node {id}, slot {slot}"
            );
        }
        assert_eq!(fused.any_mask(), separate.any_mask(), "{what}: node {id}");
        // Vs the full-cone baseline: same masks on the valid lanes (the
        // baseline touches every cone-reaching output even when the diff is
        // all-zero, so compare dense masks, not the sparse layout).
        for po in 0..aig.num_outputs() {
            for w in 0..sim.num_words() {
                let mask = patterns.word_mask(w);
                assert_eq!(
                    fused.po_mask(po)[w] & mask,
                    full.po_mask(po)[w] & mask,
                    "{what}: node {id}, po {po}, word {w}"
                );
            }
        }
    }
}

fn circuits() -> Vec<(&'static str, Aig)> {
    vec![
        ("rca4", arith::ripple_carry_adder(4)),
        ("ksa4", arith::kogge_stone_adder(4)),
        ("mtp3", arith::array_multiplier(3)),
    ]
}

#[test]
fn batched_simulation_matches_scalar_reference_on_ragged_pattern_counts() {
    for (name, aig) in circuits() {
        for (seed, num_patterns) in ragged_pattern_counts().into_iter().enumerate() {
            let patterns = PatternBuffer::random(aig.num_inputs(), num_patterns, seed as u64 + 1);
            let what = format!("{name} @ {num_patterns} patterns");
            assert_simulation_matches_reference(&aig, &patterns, &what);
        }
    }
}

#[test]
fn fused_separate_and_full_influence_agree_on_real_circuits() {
    for (name, aig) in circuits() {
        for num_patterns in [65, 256, 300] {
            let patterns = PatternBuffer::random(aig.num_inputs(), num_patterns, 7);
            let what = format!("{name} @ {num_patterns} patterns");
            assert_influence_engines_agree(&aig, &patterns, &what);
        }
    }
}

#[test]
fn equivalences_hold_across_random_lac_applies() {
    let mut aig = arith::ripple_carry_adder(4);
    let patterns_of = |aig: &Aig, round: u64| {
        // 130 patterns: two full words plus a partial third, so each round
        // exercises both a batch tail and a masked final word.
        PatternBuffer::random(aig.num_inputs(), 130, 100 + round)
    };
    let mut rng = Rng::from_seed(41);
    for round in 0..6u64 {
        // A random constant-substitution LAC: replace one AND node with a
        // constant, as the flow's simplest candidate shape does, and
        // rebuild. (Substituting by a constant can never create a cycle.)
        let ands: Vec<NodeId> = aig.iter_ands().collect();
        if ands.is_empty() {
            break;
        }
        let victim = ands[rng.next_u64() as usize % ands.len()];
        let replacement = if rng.next_u64() & 1 == 0 {
            Lit::FALSE
        } else {
            Lit::TRUE
        };
        aig = aig
            .rebuilt_with_substitutions(&HashMap::from([(victim, replacement)]))
            .expect("constant substitution cannot introduce a cycle");

        let patterns = patterns_of(&aig, round);
        let what = format!("round {round}");
        assert_simulation_matches_reference(&aig, &patterns, &what);
        assert_influence_engines_agree(&aig, &patterns, &what);
    }
}
